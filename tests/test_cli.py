"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.datasets import load_collection_csv, load_collection_json


def test_parser_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_generate_writes_csv_and_ground_truth(tmp_path):
    output = tmp_path / "dirty.csv"
    truth_path = tmp_path / "truth.json"
    exit_code = main(
        [
            "generate",
            "--entities",
            "30",
            "--duplicates",
            "1.0",
            "--seed",
            "3",
            "--output",
            str(output),
            "--ground-truth",
            str(truth_path),
        ]
    )
    assert exit_code == 0
    collection = load_collection_csv(output)
    assert len(collection) >= 30
    truth = json.loads(truth_path.read_text())
    assert truth["clusters"]


def test_generate_json_clean_clean(tmp_path):
    output = tmp_path / "pair.json"
    assert main(["generate", "--entities", "20", "--clean-clean", "--output", str(output)]) == 0
    collection = load_collection_json(output)
    assert any(identifier.startswith("kbA:") for identifier in collection.identifiers)
    assert any(identifier.startswith("kbB:") for identifier in collection.identifiers)


def test_resolve_roundtrip(tmp_path, capsys):
    data = tmp_path / "dirty.csv"
    main(["generate", "--entities", "40", "--seed", "5", "--output", str(data)])
    clusters_file = tmp_path / "clusters.txt"
    exit_code = main(
        [
            "resolve",
            str(data),
            "--threshold",
            "0.5",
            "--scheduler",
            "weight_order",
            "--output",
            str(clusters_file),
        ]
    )
    assert exit_code == 0
    captured = capsys.readouterr().out
    assert "blocking" in captured and "clusters" in captured
    lines = clusters_file.read_text().strip().splitlines()
    assert lines
    assert all("|" in line for line in lines)


def test_link_two_collections(tmp_path, capsys):
    left = tmp_path / "left.csv"
    right = tmp_path / "right.csv"
    # generate a clean-clean JSON then split it into the two sources by prefix
    combined = tmp_path / "combined.json"
    main(["generate", "--entities", "30", "--clean-clean", "--seed", "9", "--output", str(combined)])
    collection = load_collection_json(combined)
    from repro.datamodel.collection import EntityCollection
    from repro.datasets import save_collection_csv

    left_collection = EntityCollection(
        (d for d in collection if d.identifier.startswith("kbA:")), name="left"
    )
    right_collection = EntityCollection(
        (d for d in collection if d.identifier.startswith("kbB:")), name="right"
    )
    save_collection_csv(left_collection, left)
    save_collection_csv(right_collection, right)

    exit_code = main(["link", str(left), str(right), "--threshold", "0.5", "--no-metablocking"])
    assert exit_code == 0
    assert "linked clusters" in capsys.readouterr().out


def test_unsupported_format_is_rejected(tmp_path):
    bogus = tmp_path / "data.xml"
    bogus.write_text("<xml/>")
    with pytest.raises(SystemExit):
        main(["resolve", str(bogus)])


def test_blocking_engine_flag(tmp_path, capsys):
    data = tmp_path / "dirty.csv"
    main(["generate", "--entities", "30", "--seed", "7", "--output", str(data)])
    for engine in ("index", "oracle"):
        assert main(["resolve", str(data), "--blocking-engine", engine]) == 0
        out = capsys.readouterr().out
        assert f"engine={engine}" in out  # config.describe() names the engine
        assert f"@{engine}" in out  # the report stage names the executing engine
    assert build_parser().parse_args(["resolve", "x.csv"]).blocking_engine == "index"
    with pytest.raises(SystemExit):
        build_parser().parse_args(["resolve", "x.csv", "--blocking-engine", "bogus"])


def test_matching_engine_flag(tmp_path, capsys):
    data = tmp_path / "dirty.csv"
    main(["generate", "--entities", "30", "--seed", "7", "--output", str(data)])
    for engine in ("batch", "pairwise"):
        assert main(["resolve", str(data), "--matching-engine", engine]) == 0
        out = capsys.readouterr().out
        assert f"engine={engine}" in out  # config.describe() names the engine
        # the matching stage reports scheduling+matching engines as
        # "matching[<scheduler>@<scheduling engine>+<matching engine>]"
        assert f"+{engine}]" in out
    assert build_parser().parse_args(["resolve", "x.csv"]).matching_engine == "batch"
    with pytest.raises(SystemExit):
        build_parser().parse_args(["resolve", "x.csv", "--matching-engine", "bogus"])


def test_scheduling_engine_flag(tmp_path, capsys):
    data = tmp_path / "dirty.csv"
    main(["generate", "--entities", "30", "--seed", "7", "--output", str(data)])
    for engine in ("array", "object"):
        assert main(["resolve", str(data), "--scheduling-engine", engine]) == 0
        out = capsys.readouterr().out
        assert f"engine={engine}" in out  # config.describe() names the engine
        assert f"@{engine}+" in out  # the report stage names the executing engine
    assert build_parser().parse_args(["resolve", "x.csv"]).scheduling_engine == "array"
    with pytest.raises(SystemExit):
        build_parser().parse_args(["resolve", "x.csv", "--scheduling-engine", "bogus"])


def test_no_shared_context_flag(tmp_path, capsys):
    data = tmp_path / "dirty.csv"
    main(["generate", "--entities", "30", "--seed", "7", "--output", str(data)])
    assert main(["resolve", str(data)]) == 0
    assert "shared-context" in capsys.readouterr().out
    assert main(["resolve", str(data), "--no-shared-context"]) == 0
    assert "shared-context" not in capsys.readouterr().out


def test_clustering_engine_flag(tmp_path, capsys):
    data = tmp_path / "dirty.csv"
    main(["generate", "--entities", "30", "--seed", "7", "--output", str(data)])
    for engine in ("array", "object"):
        assert main(["resolve", str(data), "--clustering-engine", engine]) == 0
        out = capsys.readouterr().out
        assert f"engine={engine}" in out  # config.describe() names the engine
        # the clustering stage reports "clustering[<algorithm>@<engine>]"
        assert f"clustering[connected_components@{engine}]" in out
    assert build_parser().parse_args(["resolve", "x.csv"]).clustering_engine == "array"
    with pytest.raises(SystemExit):
        build_parser().parse_args(["resolve", "x.csv", "--clustering-engine", "bogus"])


def test_clustering_algorithm_flag(tmp_path, capsys):
    data = tmp_path / "dirty.csv"
    main(["generate", "--entities", "30", "--seed", "7", "--output", str(data)])
    assert main(["resolve", str(data), "--clustering", "merge_center"]) == 0
    out = capsys.readouterr().out
    assert "clustering[merge_center@array]" in out
    with pytest.raises(SystemExit):
        build_parser().parse_args(["resolve", "x.csv", "--clustering", "bogus"])


def test_incremental_snapshot_restore_roundtrip(tmp_path, capsys):
    data = tmp_path / "dirty.csv"
    main(["generate", "--entities", "30", "--seed", "9", "--output", str(data)])
    snap = tmp_path / "snap"
    clusters_file = tmp_path / "clusters.txt"
    assert (
        main(
            [
                "incremental",
                str(data),
                "--threshold",
                "0.5",
                "--snapshot",
                str(snap),
                "--output",
                str(clusters_file),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "incremental[profile_similarity@array]" in out
    assert "incremental_snapshot" in out
    assert clusters_file.exists()
    assert (snap / "manifest.json").is_file()

    # a later stream resumes from the snapshot without re-adding the history
    more = tmp_path / "more.csv"
    more.write_text("id,name\nnew:1,Completely Fresh Record\n")
    assert main(["incremental", str(more), "--restore", str(snap)]) == 0
    out = capsys.readouterr().out
    assert "incremental_restore" in out


def test_incremental_object_engine_flag(tmp_path, capsys):
    data = tmp_path / "dirty.csv"
    main(["generate", "--entities", "20", "--seed", "9", "--output", str(data)])
    assert main(["incremental", str(data), "--engine", "object"]) == 0
    assert "incremental[profile_similarity@object]" in capsys.readouterr().out
