"""Per-phase bit-identity of the newly parallelised workflow stages.

``tests/test_parallel_engine.py`` covers the original pooled stages
(blocking postings, meta-blocking node weights, matching scores); this
module sweeps the stages added for the multi-core end-to-end workflow --
sharded context interning, the block-cleaning passes (purging, filtering,
comparison propagation), the parametrised pruning schemes (explicit CEP
budgets and CNP ``k`` values, the reciprocal variants), the pooled weight
sort of the comparison columns and the per-shard union--find clustering --
each at 1/2/4/8 workers against the sequential engines, plus the
``contiguous_partitions`` edge cases the balancing layer must survive
(all-zero costs, one hot entity dominating the prefix sums, more workers
than items, empty input).
"""

from __future__ import annotations

from array import array

import pytest

from repro.blocking.cleaning import BlockFiltering, BlockPurging, ComparisonPropagation
from repro.blocking.engine import BlockingEngine
from repro.blocking.token_blocking import TokenBlocking
from repro.core.context import PipelineContext
from repro.datamodel.pairs import DecisionColumns
from repro.mapreduce.balancing import contiguous_partitions
from repro.mapreduce.parallel import ParallelEngine
from repro.matching.cluster_engine import ClusteringEngine
from repro.matching.clustering import (
    CenterClustering,
    ConnectedComponentsClustering,
    MergeCenterClustering,
)
from repro.metablocking.pipeline import MetaBlocking
from repro.metablocking.pruning import (
    CardinalityEdgePruning,
    CardinalityNodePruning,
    ReciprocalCardinalityNodePruning,
    ReciprocalWeightedNodePruning,
)

DATASETS = ("dirty", "clean")
WORKER_COUNTS = (1, 2, 4, 8)


def blocks_snapshot(blocks):
    """Full structural snapshot: key order, member order, bilateral split."""
    return [
        (block.key, tuple(block.members), tuple(block.left_members), tuple(block.right_members))
        for block in blocks
    ]


def edges_snapshot(edge_iterable):
    """Retained edges in stream order, weights compared exactly."""
    return [(edge.first, edge.second, edge.weight) for edge in edge_iterable]


def columns_snapshot(columns):
    """ComparisonColumns as plain tuples (identifier pairs keep the snapshot
    independent of the ordinal space the columns were built over)."""
    ids = columns.ids
    return [
        (ids[f], ids[s], w)
        for f, s, w in zip(columns.first, columns.second, columns.weights)
    ]


@pytest.fixture(scope="module")
def dirty_setup(small_dirty_dataset):
    data = small_dirty_dataset.collection
    context = PipelineContext(data)
    blocks = BlockingEngine(TokenBlocking(max_block_fraction=0.5), context=context).build(data)
    return data, context, blocks


@pytest.fixture(scope="module")
def clean_setup(small_clean_clean_dataset):
    data = small_clean_clean_dataset.task
    context = PipelineContext(data)
    blocks = BlockingEngine(TokenBlocking(max_block_fraction=0.5), context=context).build(data)
    return data, context, blocks


def _setup(request, dataset):
    return request.getfixturevalue(f"{dataset}_setup")


class TestContiguousPartitionsEdgeCases:
    def test_all_zero_costs_cover_everything(self):
        # degenerate balance: every prefix sum is 0, yet the ranges must
        # still be contiguous, ordered and jointly cover all items
        parts = contiguous_partitions([0.0] * 12, 4)
        assert len(parts) == 4
        assert parts[0][0] == 0 and parts[-1][1] == 12
        for (_, stop), (next_start, _) in zip(parts, parts[1:]):
            assert stop == next_start
        assert sum(stop - start for start, stop in parts) == 12

    @pytest.mark.parametrize("hot_position", (0, 25, 49))
    def test_hot_entity_dominating_prefix_sums(self, hot_position):
        # one item carries ~99% of the total cost: the partitioner must not
        # starve every other worker, and must keep ranges contiguous
        costs = [1.0] * 50
        costs[hot_position] = 5000.0
        parts = contiguous_partitions(costs, 4)
        assert len(parts) == 4
        assert parts[0][0] == 0 and parts[-1][1] == 50
        for (_, stop), (next_start, _) in zip(parts, parts[1:]):
            assert stop == next_start
        loads = [sum(costs[start:stop]) for start, stop in parts]
        # the hot item's range gets the hot item and little else; nobody
        # else inherits it, so the max load is the hot cost plus a sliver
        assert max(loads) < 5000.0 + 50.0
        hot_ranges = [1 for start, stop in parts if start <= hot_position < stop]
        assert hot_ranges == [1]

    def test_more_workers_than_items(self):
        parts = contiguous_partitions([3.0, 1.0, 2.0], 8)
        assert len(parts) == 8
        assert parts[0][0] == 0 and parts[-1][1] == 3
        assert sum(stop - start for start, stop in parts) == 3
        assert all(start <= stop for start, stop in parts)

    def test_empty_input_any_worker_count(self):
        for workers in (1, 2, 7):
            parts = contiguous_partitions([], workers)
            assert len(parts) == workers
            assert all(start == stop for start, stop in parts)


class TestParallelInterning:
    @pytest.mark.parametrize("dataset", DATASETS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_interned_columns_bit_identical(self, request, dataset, workers):
        data, _, _ = _setup(request, dataset)
        serial = PipelineContext(data)
        serial._intern_all()
        sharded = PipelineContext(data)
        with ParallelEngine(num_workers=workers) as par:
            assert par.intern_context(sharded)
        assert sharded._interned
        assert sharded._ids == serial._ids
        assert sharded._ordinal == serial._ordinal
        assert sharded._descriptions == serial._descriptions
        assert sharded.left_count == serial.left_count
        # the vocabulary must reproduce the serial first-occurrence order,
        # not just the same token set: every downstream ordinal depends on it
        assert sharded._tokens == serial._tokens
        assert sharded._token_ids == serial._token_ids
        assert sharded._attr_names == serial._attr_names
        assert sharded._attr_ids == serial._attr_ids
        assert sharded._attr_counts == serial._attr_counts
        assert sharded._streams == serial._streams

    def test_already_interned_context_is_refused(self, dirty_setup):
        data, _, _ = dirty_setup
        context = PipelineContext(data)
        context._intern_all()
        with ParallelEngine(num_workers=2) as par:
            assert not par.intern_context(context)

    def test_near_empty_context_falls_back(self, tiny_collection):
        single = PipelineContext(
            type(tiny_collection)(list(tiny_collection)[:1], name="one")
        )
        with ParallelEngine(num_workers=2) as par:
            assert not par.intern_context(single)
        # the refusal leaves the context usable: it interns itself serially
        assert single.num_descriptions == 1


class TestParallelCleaning:
    @pytest.mark.parametrize("dataset", DATASETS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_full_cleaning_pipeline_bit_identical(self, request, dataset, workers):
        _, _, blocks = _setup(request, dataset)
        purging = BlockPurging()
        filtering = BlockFiltering(0.8)
        expected = BlockingEngine().clean(
            blocks, purging=purging, filtering=filtering, propagate=True
        )
        with ParallelEngine(num_workers=workers) as par:
            engine = BlockingEngine(parallel=par)
            got = engine.clean(blocks, purging=purging, filtering=filtering, propagate=True)
        assert engine.last_engine == "index"
        assert blocks_snapshot(got) == blocks_snapshot(expected)

    @pytest.mark.parametrize("dataset", DATASETS)
    def test_pure_python_cleaning_matches(self, request, dataset):
        # the no-NumPy replica of the filtering/propagation passes must
        # stay bit-identical when the pool computes the keep flags
        _, _, blocks = _setup(request, dataset)
        purging = BlockPurging()
        filtering = BlockFiltering(0.8)
        expected = BlockingEngine(use_numpy=False).clean(
            blocks, purging=purging, filtering=filtering, propagate=True
        )
        with ParallelEngine(num_workers=3) as par:
            got = BlockingEngine(use_numpy=False, parallel=par).clean(
                blocks, purging=purging, filtering=filtering, propagate=True
            )
        assert blocks_snapshot(got) == blocks_snapshot(expected)

    @pytest.mark.parametrize("dataset", DATASETS)
    def test_cleaning_matches_oracle_cleaners(self, request, dataset):
        # cross-check the parallel pipeline against the plain object-path
        # cleaners, not just the sequential index engine
        _, _, blocks = _setup(request, dataset)
        oracle = ComparisonPropagation().process(
            BlockFiltering(0.8).process(BlockPurging().process(blocks))
        )
        with ParallelEngine(num_workers=4) as par:
            got = BlockingEngine(parallel=par).clean(
                blocks, purging=BlockPurging(), filtering=BlockFiltering(0.8), propagate=True
            )
        assert blocks_snapshot(got) == blocks_snapshot(oracle)

    def test_purge_only_and_filter_only(self, dirty_setup):
        _, _, blocks = dirty_setup
        serial = BlockingEngine()
        with ParallelEngine(num_workers=2) as par:
            parallel_engine = BlockingEngine(parallel=par)
            assert blocks_snapshot(
                parallel_engine.clean(blocks, purging=BlockPurging())
            ) == blocks_snapshot(serial.clean(blocks, purging=BlockPurging()))
            assert blocks_snapshot(
                parallel_engine.clean(blocks, filtering=BlockFiltering(0.5))
            ) == blocks_snapshot(serial.clean(blocks, filtering=BlockFiltering(0.5)))


class TestParallelPruningParameters:
    """Explicit CEP budgets and CNP ``k`` values (the scheme sweep in
    ``test_parallel_engine.py`` uses only the defaults) plus the reciprocal
    variants, against the sequential index engine."""

    @pytest.mark.parametrize("dataset", DATASETS)
    @pytest.mark.parametrize("budget", (1, 10, 100))
    def test_cep_explicit_budget(self, request, dataset, budget):
        _, _, blocks = _setup(request, dataset)
        metablocking = MetaBlocking("CBS", CardinalityEdgePruning(budget=budget))
        expected = edges_snapshot(metablocking.iter_retained(blocks))
        assert len(expected) <= budget
        with ParallelEngine(num_workers=3) as par:
            got = edges_snapshot(metablocking.iter_retained(blocks, parallel=par))
        assert metablocking.last_engine == "parallel"
        assert got == expected

    @pytest.mark.parametrize("dataset", DATASETS)
    @pytest.mark.parametrize("k", (1, 2, 5))
    def test_cnp_explicit_k(self, request, dataset, k):
        _, _, blocks = _setup(request, dataset)
        metablocking = MetaBlocking("JS", CardinalityNodePruning(k=k))
        expected = edges_snapshot(metablocking.iter_retained(blocks))
        with ParallelEngine(num_workers=3) as par:
            got = edges_snapshot(metablocking.iter_retained(blocks, parallel=par))
        assert metablocking.last_engine == "parallel"
        assert got == expected

    @pytest.mark.parametrize("dataset", DATASETS)
    @pytest.mark.parametrize(
        "pruning",
        (ReciprocalWeightedNodePruning(), ReciprocalCardinalityNodePruning(k=2)),
        ids=("ReciprocalWNP", "ReciprocalCNP(k=2)"),
    )
    def test_reciprocal_variants(self, request, dataset, pruning):
        _, _, blocks = _setup(request, dataset)
        metablocking = MetaBlocking("ECBS", pruning)
        expected = edges_snapshot(metablocking.iter_retained(blocks))
        with ParallelEngine(num_workers=3) as par:
            got = edges_snapshot(metablocking.iter_retained(blocks, parallel=par))
        assert metablocking.last_engine == "parallel"
        assert got == expected

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_worker_count_invariance_with_parameters(self, dirty_setup, workers):
        _, _, blocks = dirty_setup
        metablocking = MetaBlocking("ARCS", CardinalityNodePruning(k=3))
        expected = edges_snapshot(metablocking.iter_retained(blocks))
        with ParallelEngine(num_workers=workers) as par:
            got = edges_snapshot(metablocking.iter_retained(blocks, parallel=par))
        assert got == expected


class TestParallelWeightSort:
    @pytest.mark.parametrize("dataset", DATASETS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_sorted_columns_bit_identical(self, request, dataset, workers):
        # CBS produces heavily tied integer weights: the pooled k-way merge
        # must reproduce the sequential (weight, rank, rank) tie order exactly
        _, context, blocks = _setup(request, dataset)
        metablocking = MetaBlocking("CBS", "WNP")
        expected = metablocking.weighted_columns(blocks, context=context)
        assert expected.weight_ordered
        with ParallelEngine(num_workers=workers) as par:
            got = metablocking.weighted_columns(blocks, context=context, parallel=par)
        assert got.weight_ordered
        assert list(got.first) == list(expected.first)
        assert list(got.second) == list(expected.second)
        assert list(got.weights) == list(expected.weights)
        assert columns_snapshot(got) == columns_snapshot(expected)

    @pytest.mark.parametrize("weighting", ("ARCS", "EJS"))
    def test_fractional_weights(self, dirty_setup, weighting):
        _, context, blocks = dirty_setup
        metablocking = MetaBlocking(weighting, "CNP")
        expected = columns_snapshot(metablocking.weighted_columns(blocks, context=context))
        with ParallelEngine(num_workers=4) as par:
            got = columns_snapshot(
                metablocking.weighted_columns(blocks, context=context, parallel=par)
            )
        assert got == expected

    def test_matches_object_path_order(self, dirty_setup):
        # the pooled sort must agree with weighted_comparisons (the object
        # oracle of the ordering contract), not merely with itself
        _, context, blocks = dirty_setup
        metablocking = MetaBlocking("CBS", "WNP")
        oracle = [
            (c.first, c.second, c.weight)
            for c in metablocking.weighted_comparisons(blocks)
        ]
        with ParallelEngine(num_workers=3) as par:
            got = columns_snapshot(
                metablocking.weighted_columns(blocks, context=context, parallel=par)
            )
        assert got == oracle


def _sparse_decisions(num_ids: int, stride: int = 7) -> DecisionColumns:
    """Synthetic decisions over ``id-0 .. id-(n-1)``: a sparse ring of
    positive links (every ``stride``-th pair) interleaved with negative
    decisions, rows deliberately in non-canonical orientation."""
    ids = [f"id-{i:04d}" for i in range(num_ids)]
    first = array("q")
    second = array("q")
    similarity = array("d")
    is_match = bytearray()
    for i in range(num_ids - 1):
        a, b = i, (i * stride + 1) % num_ids
        if a == b:
            continue
        # store the larger ordinal first: the engine must canonicalise
        first.append(max(a, b))
        second.append(min(a, b))
        similarity.append(1.0 - (i % 10) / 20.0)
        is_match.append(1 if i % 3 else 0)
    return DecisionColumns(ids, first, second, similarity, is_match)


class TestParallelClustering:
    @pytest.mark.parametrize("dataset", DATASETS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_connected_components_bit_identical(self, request, dataset, workers):
        # real decisions: every retained meta-blocking edge declared a match
        _, _, blocks = _setup(request, dataset)
        pairs = [
            (edge.first, edge.second)
            for edge in MetaBlocking("CBS", "WNP").iter_retained(blocks)
        ]
        columns = DecisionColumns.from_match_pairs(pairs)
        expected = ClusteringEngine(ConnectedComponentsClustering()).cluster(columns)
        with ParallelEngine(num_workers=workers) as par:
            engine = ClusteringEngine(ConnectedComponentsClustering(), parallel=par)
            got = engine.cluster(columns)
        assert engine.last_engine == "parallel"
        # identical frozensets in the identical (first-assignment) list order
        assert got == expected

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_non_canonical_and_negative_rows(self, workers):
        columns = _sparse_decisions(200)
        serial_engine = ClusteringEngine(ConnectedComponentsClustering())
        expected = serial_engine.cluster(columns)
        oracle = ClusteringEngine(
            ConnectedComponentsClustering(), engine="object"
        ).cluster(columns)
        assert expected == oracle
        with ParallelEngine(num_workers=workers) as par:
            engine = ClusteringEngine(ConnectedComponentsClustering(), parallel=par)
            got = engine.cluster(columns)
        assert engine.last_engine == "parallel"
        assert got == expected

    def test_empty_columns(self):
        columns = DecisionColumns([])
        with ParallelEngine(num_workers=4) as par:
            engine = ClusteringEngine(ConnectedComponentsClustering(), parallel=par)
            got = engine.cluster(columns)
        assert got == []
        # nothing to shard: the pooled path declines and the array engine runs
        assert engine.last_engine == "array"

    @pytest.mark.parametrize(
        "algorithm", (CenterClustering, MergeCenterClustering),
        ids=("center", "merge-center"),
    )
    def test_center_algorithms_ignore_parallel(self, algorithm):
        # the greedy center scans are inherently sequential; a configured
        # pool must be ignored, not crash or change the clusters
        columns = _sparse_decisions(120)
        expected = ClusteringEngine(algorithm()).cluster(columns)
        with ParallelEngine(num_workers=4) as par:
            engine = ClusteringEngine(algorithm(), parallel=par)
            got = engine.cluster(columns)
        assert engine.last_engine == "array"
        assert got == expected
