"""Tests for tokenisation and normalisation."""

from repro.text.tokenize import (
    DEFAULT_STOP_WORDS,
    normalize,
    prefix,
    qgrams,
    sorted_tokens_by_rarity,
    suffixes,
    token_set,
    tokenize,
    uri_tokens,
)


def test_normalize_lowercases_strips_accents_and_punctuation():
    assert normalize("Alán  Türing!") == "alan turing"
    assert normalize("  ") == ""
    assert normalize("") == ""
    assert normalize("C3-PO, droid.") == "c3 po droid"


def test_tokenize_basic_and_min_length():
    assert tokenize("Alan M. Turing") == ["alan", "m", "turing"]
    assert tokenize("Alan M. Turing", min_length=2) == ["alan", "turing"]


def test_tokenize_stop_words():
    tokens = tokenize("The University of Crete", stop_words=DEFAULT_STOP_WORDS)
    assert "the" not in tokens and "of" not in tokens
    assert "university" in tokens and "crete" in tokens


def test_tokenize_preserves_duplicates_token_set_does_not():
    assert tokenize("data data data") == ["data", "data", "data"]
    assert token_set(["data data", "data"]) == {"data"}


def test_token_set_unions_multiple_values():
    assert token_set(["Alan Turing", "London"]) == {"alan", "turing", "london"}


def test_qgrams_with_and_without_padding():
    padded = qgrams("abc", q=3)
    assert padded[0].startswith("##")
    assert padded[-1].endswith("$$")
    assert "abc" in padded
    unpadded = qgrams("abcd", q=3, pad=False)
    assert unpadded == ["abc", "bcd"]


def test_qgrams_short_strings_and_invalid_q():
    assert qgrams("ab", q=3, pad=False) == ["ab"]
    assert qgrams("", q=3) == []
    import pytest

    with pytest.raises(ValueError):
        qgrams("abc", q=0)


def test_suffixes_respect_min_length():
    result = suffixes("turing", min_length=4)
    assert result == ["turing", "uring", "ring"]
    assert suffixes("ab", min_length=4) == ["ab"]
    assert suffixes("", min_length=3) == []


def test_prefix_is_space_free():
    assert prefix("Alan Turing", 6) == "alantu"


def test_uri_tokens_extracts_prefix_and_infix():
    uri_prefix, infix, tokens = uri_tokens("http://dbpedia.org/resource/Berlin_Wall")
    assert infix == "Berlin_Wall"
    assert "berlin" in tokens and "wall" in tokens
    assert "dbpedia" in uri_prefix

    simple_prefix, simple_infix, simple_tokens = uri_tokens("kb:person/42")
    assert simple_infix == "42"
    assert simple_tokens == ["42"]

    assert uri_tokens("") == ("", "", [])


def test_sorted_tokens_by_rarity_orders_ascending_frequency():
    document_frequency = {"common": 100, "rare": 1, "mid": 10}
    ordered = sorted_tokens_by_rarity(["common", "rare", "mid"], document_frequency)
    assert ordered == ["rare", "mid", "common"]
