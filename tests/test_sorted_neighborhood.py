"""Tests for sorted-neighbourhood blocking and the shared sorted order."""

import pytest

from repro.blocking.sorted_neighborhood import (
    ExtendedSortedNeighborhoodBlocking,
    MultiPassSortedNeighborhoodBlocking,
    SortedNeighborhoodBlocking,
    sorted_order,
    sorting_key_from_attributes,
)
from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datamodel.description import EntityDescription


def make_collection():
    return EntityCollection(
        [
            EntityDescription("e1", {"name": "aaron"}),
            EntityDescription("e2", {"name": "aaron a"}),
            EntityDescription("e3", {"name": "bella"}),
            EntityDescription("e4", {"name": "bella b"}),
            EntityDescription("e5", {"name": "zoe"}),
        ]
    )


def test_sorted_order_is_deterministic_and_key_based():
    order = sorted_order(make_collection(), sorting_key_from_attributes(["name"]))
    identifiers = [identifier for _, identifier in order]
    assert identifiers == ["e1", "e2", "e3", "e4", "e5"]


def test_sorted_order_pools_both_clean_clean_collections():
    """Clean--clean input: one sorted list over left *and* right, interleaved by key."""
    left = EntityCollection(
        [
            EntityDescription("l1", {"name": "aaron"}),
            EntityDescription("l2", {"name": "zoe"}),
        ],
        name="left",
    )
    right = EntityCollection(
        [
            EntityDescription("r1", {"name": "bella"}),
            EntityDescription("r2", {"name": "aaron"}),
        ],
        name="right",
    )
    task = CleanCleanTask(left, right)
    order = sorted_order(task, sorting_key_from_attributes(["name"]))
    identifiers = [identifier for _, identifier in order]
    # every description of both collections appears exactly once...
    assert sorted(identifiers) == ["l1", "l2", "r1", "r2"]
    # ...in one key-sorted sequence that interleaves the sources (equal keys
    # break ties by identifier, so l1 precedes r2)
    assert identifiers == ["l1", "r2", "r1", "l2"]
    # a window can therefore span the two sources
    blocks = SortedNeighborhoodBlocking(window_size=2).build(task)
    assert ("l1", "r2") in blocks.distinct_pairs()


def test_window_blocks_cover_adjacent_descriptions():
    blocks = SortedNeighborhoodBlocking(window_size=2).build(make_collection())
    pairs = blocks.distinct_pairs()
    assert ("e1", "e2") in pairs
    assert ("e3", "e4") in pairs
    # distant descriptions never co-occur with window 2
    assert ("e1", "e5") not in pairs


def test_larger_window_adds_more_pairs():
    small = SortedNeighborhoodBlocking(window_size=2).build(make_collection())
    large = SortedNeighborhoodBlocking(window_size=4).build(make_collection())
    assert large.num_distinct_comparisons() > small.num_distinct_comparisons()


def test_window_size_validation():
    with pytest.raises(ValueError):
        SortedNeighborhoodBlocking(window_size=1)
    with pytest.raises(ValueError):
        ExtendedSortedNeighborhoodBlocking(window_size=0)


def test_clean_clean_windows_only_produce_cross_pairs():
    left = EntityCollection(
        [EntityDescription("a:1", {"name": "aaron"}), EntityDescription("a:2", {"name": "zoe"})],
        name="left",
    )
    right = EntityCollection(
        [EntityDescription("b:1", {"name": "aaron b"}), EntityDescription("b:2", {"name": "zz"})],
        name="right",
    )
    task = CleanCleanTask(left, right)
    blocks = SortedNeighborhoodBlocking(window_size=2).build(task)
    for first, second in blocks.distinct_pairs():
        assert task.is_valid_pair(first, second)


def test_extended_variant_groups_by_distinct_keys():
    collection = EntityCollection(
        [
            EntityDescription("e1", {"name": "same"}),
            EntityDescription("e2", {"name": "same"}),
            EntityDescription("e3", {"name": "same"}),
            EntityDescription("e4", {"name": "other"}),
        ]
    )
    blocks = ExtendedSortedNeighborhoodBlocking(window_size=1).build(collection)
    pairs = blocks.distinct_pairs()
    # all descriptions sharing the identical key co-occur even with window 1
    assert ("e1", "e2") in pairs and ("e2", "e3") in pairs


def test_tiny_collections_produce_no_blocks():
    single = EntityCollection([EntityDescription("only", {"name": "x"})])
    assert len(SortedNeighborhoodBlocking().build(single)) == 0


class TestWindowEdgeCases:
    """Edge cases pinning the oracle behaviour the array engine reproduces."""

    def test_window_larger_than_collection_yields_one_block(self):
        collection = make_collection()  # 5 descriptions
        for window_size in (5, 6, 50):
            blocks = SortedNeighborhoodBlocking(window_size=window_size).build(collection)
            # max(1, n - w + 1) == 1: exactly one window holding everything
            assert len(blocks) == 1
            assert blocks[0].key == "window:0"
            assert set(blocks[0].members) == {"e1", "e2", "e3", "e4", "e5"}

    def test_window_equal_to_collection_yields_one_block(self):
        blocks = SortedNeighborhoodBlocking(window_size=5).build(make_collection())
        assert [block.key for block in blocks] == ["window:0"]

    def test_duplicate_keys_spanning_a_window_break_ties_by_identifier(self):
        collection = EntityCollection(
            [
                EntityDescription("e3", {"name": "same"}),
                EntityDescription("e1", {"name": "same"}),
                EntityDescription("e2", {"name": "same"}),
                EntityDescription("e4", {"name": "zz"}),
            ]
        )
        blocks = SortedNeighborhoodBlocking(window_size=2).build(collection)
        # equal keys order by identifier, not by insertion order
        assert [list(block.members) for block in blocks] == [
            ["e1", "e2"],
            ["e2", "e3"],
            ["e3", "e4"],
        ]

    def test_clean_clean_bilateral_orientation(self):
        """Window members split into left/right sides, preserving sorted order."""
        left = EntityCollection(
            [
                EntityDescription("l1", {"name": "aaron"}),
                EntityDescription("l2", {"name": "cara"}),
            ],
            name="left",
        )
        right = EntityCollection(
            [
                EntityDescription("r1", {"name": "bella"}),
                EntityDescription("r2", {"name": "aaron z"}),
            ],
            name="right",
        )
        blocks = SortedNeighborhoodBlocking(window_size=3).build(CleanCleanTask(left, right))
        for block in blocks:
            assert block.is_bilateral
            assert set(block.left_members) <= {"l1", "l2"}
            assert set(block.right_members) <= {"r1", "r2"}
        # sorted keys: aaron(l1), aaron z(r2), bella(r1), cara(l2)
        first = blocks[0]
        assert first.key == "window:0"
        assert list(first.left_members) == ["l1"]
        assert list(first.right_members) == ["r2", "r1"]

    def test_single_side_windows_are_dropped_in_clean_clean(self):
        """A window containing only one side produces no bilateral block."""
        left = EntityCollection(
            [
                EntityDescription("l1", {"name": "aa"}),
                EntityDescription("l2", {"name": "ab"}),
                EntityDescription("l3", {"name": "ac"}),
            ],
            name="left",
        )
        right = EntityCollection([EntityDescription("r1", {"name": "zz"})], name="right")
        blocks = SortedNeighborhoodBlocking(window_size=2).build(CleanCleanTask(left, right))
        # windows 0 and 1 hold only left members; only the final window survives
        assert [block.key for block in blocks] == ["window:2"]


class TestMultiPassVariant:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiPassSortedNeighborhoodBlocking(window_size=1)
        with pytest.raises(ValueError):
            MultiPassSortedNeighborhoodBlocking(sorting_keys=())

    def test_single_default_pass_mirrors_plain_sorted_neighborhood(self):
        collection = make_collection()
        single = SortedNeighborhoodBlocking(window_size=2).build(collection)
        multi = MultiPassSortedNeighborhoodBlocking(
            window_size=2, sorting_keys=(None,)
        ).build(collection)
        assert [b.key for b in multi] == [f"pass0:{b.key}" for b in single]
        assert [b.members for b in multi] == [b.members for b in single]

    def test_each_pass_emits_independent_windows(self):
        collection = EntityCollection(
            [
                EntityDescription("e1", {"name": "aaron", "city": "zurich"}),
                EntityDescription("e2", {"name": "zoe", "city": "zurich b"}),
                EntityDescription("e3", {"name": "aaron b", "city": "london"}),
            ]
        )
        multi = MultiPassSortedNeighborhoodBlocking(
            window_size=2,
            sorting_keys=(
                sorting_key_from_attributes(["name"]),
                sorting_key_from_attributes(["city"]),
            ),
        ).build(collection)
        pairs = multi.distinct_pairs()
        # the name pass neighbours the two aarons, the city pass the two zurichs
        assert ("e1", "e3") in pairs
        assert ("e1", "e2") in pairs
