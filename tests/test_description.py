"""Tests for the schema-free entity description model."""

import pytest

from repro.datamodel.description import EntityDescription, merge_descriptions, provenance


def test_requires_identifier():
    with pytest.raises(ValueError):
        EntityDescription("")


def test_single_and_multi_valued_attributes():
    description = EntityDescription("e1", {"name": "Alan Turing", "topic": ["logic", "computing"]})
    assert description.value("name") == "Alan Turing"
    assert description.values("topic") == ("logic", "computing")
    assert description.values("missing") == ()
    assert description.value("missing", default="n/a") == "n/a"


def test_add_deduplicates_values():
    description = EntityDescription("e1")
    description.add("name", "Alan")
    description.add("name", "Alan")
    description.add("name", "Turing")
    assert description.values("name") == ("Alan", "Turing")


def test_numeric_values_are_stringified():
    description = EntityDescription("e1", {"year": 1954, "price": 12.5})
    assert description.value("year") == "1954"
    assert description.value("price") == "12.5"


def test_empty_and_none_values_are_ignored():
    description = EntityDescription("e1", {"name": "", "city": None, "topic": ["", None]})
    assert len(description) == 0
    assert "name" not in description


def test_iteration_yields_attribute_value_pairs():
    description = EntityDescription("e1", {"name": "Alan", "topic": ["a", "b"]})
    pairs = list(description)
    assert ("name", "Alan") in pairs
    assert ("topic", "a") in pairs and ("topic", "b") in pairs
    assert len(pairs) == len(description) == 3


def test_text_concatenation_respects_attribute_selection():
    description = EntityDescription("e1", {"name": "Alan Turing", "city": "London"})
    assert "Alan Turing" in description.text()
    assert description.text(attributes=["city"]) == "London"
    assert description.text(attributes=["missing"]) == ""


def test_relationships_are_separate_from_attributes():
    description = EntityDescription("p1", {"title": "A Paper"}, relationships={"author": ["a1", "a2"]})
    assert description.related("author") == ("a1", "a2")
    assert description.related() == ("a1", "a2")
    assert "author" not in description.attribute_names


def test_equality_and_hash_are_identifier_and_content_based():
    first = EntityDescription("e1", {"name": "Alan"})
    second = EntityDescription("e1", {"name": "Alan"})
    third = EntityDescription("e1", {"name": "Grace"})
    assert first == second
    assert first != third
    assert hash(first) == hash(second)


def test_copy_is_deep_and_supports_renaming():
    original = EntityDescription("e1", {"name": "Alan"}, relationships={"knows": "e2"})
    clone = original.copy("e1-copy")
    clone.add("name", "Mathison")
    assert original.values("name") == ("Alan",)
    assert clone.identifier == "e1-copy"
    assert clone.related("knows") == ("e2",)


def test_unsupported_attribute_type_raises():
    description = EntityDescription("e1")
    with pytest.raises(TypeError):
        description.add("name", object())


class TestMerge:
    def test_merge_unions_attributes_and_relationships(self):
        first = EntityDescription("a", {"name": "Alan Turing"}, relationships={"field": "math"})
        second = EntityDescription("b", {"name": "A. Turing", "city": "London"})
        merged = merge_descriptions(first, second)
        assert set(merged.values("name")) == {"Alan Turing", "A. Turing"}
        assert merged.value("city") == "London"
        assert merged.related("field") == ("math",)

    def test_merge_identifier_is_order_independent(self):
        first = EntityDescription("b", {"name": "x"})
        second = EntityDescription("a", {"name": "y"})
        assert merge_descriptions(first, second).identifier == "a+b"
        assert merge_descriptions(second, first).identifier == "a+b"

    def test_provenance_recovers_original_identifiers(self):
        first = EntityDescription("a", {"name": "x"})
        second = EntityDescription("b", {"name": "y"})
        third = EntityDescription("c", {"name": "z"})
        merged = merge_descriptions(merge_descriptions(first, second), third)
        assert set(provenance(merged.identifier)) == {"a", "b", "c"}

    def test_merge_with_explicit_identifier(self):
        first = EntityDescription("a", {"name": "x"})
        second = EntityDescription("b", {"name": "y"})
        merged = merge_descriptions(first, second, identifier="merged:1")
        assert merged.identifier == "merged:1"
