"""Tests for blocks and block collections."""

import pytest

from repro.blocking.base import Block, BlockCollection
from repro.datamodel.pairs import Comparison


class TestBlock:
    def test_unilateral_block_comparisons(self):
        block = Block("token", members=["a", "b", "c"])
        assert len(block) == 3
        assert block.num_comparisons() == 3
        assert {c.pair for c in block.comparisons()} == {("a", "b"), ("a", "c"), ("b", "c")}
        assert set(block.pairs()) == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_bilateral_block_comparisons_are_cross_collection_only(self):
        block = Block("token", left_members=["a", "b"], right_members=["x"])
        assert block.is_bilateral
        assert block.num_comparisons() == 2
        assert set(block.pairs()) == {("a", "x"), ("b", "x")}

    def test_members_are_deduplicated(self):
        block = Block("token", members=["a", "a", "b"])
        assert block.members == ("a", "b")

    def test_cannot_mix_member_kinds(self):
        with pytest.raises(ValueError):
            Block("token", members=["a"], left_members=["b"])

    def test_restricted_to_drops_degenerate_blocks(self):
        block = Block("token", members=["a", "b", "c"])
        assert block.restricted_to({"a", "b"}).members == ("a", "b")
        assert block.restricted_to({"a"}) is None
        bilateral = Block("t", left_members=["a"], right_members=["x", "y"])
        assert bilateral.restricted_to({"a", "x"}).num_comparisons() == 1
        assert bilateral.restricted_to({"x", "y"}) is None

    def test_contains(self):
        block = Block("token", members=["a", "b"])
        assert "a" in block and "z" not in block


class TestBlockCollection:
    def make(self):
        return BlockCollection(
            [
                Block("t1", members=["a", "b", "c"]),
                Block("t2", members=["a", "b"]),
                Block("t3", members=["c", "d"]),
            ]
        )

    def test_degenerate_blocks_are_dropped_on_add(self):
        collection = BlockCollection()
        collection.add(Block("single", members=["a"]))
        collection.add(Block("empty", left_members=["a"], right_members=[]))
        assert len(collection) == 0

    def test_total_vs_distinct_comparisons_and_redundancy(self):
        collection = self.make()
        assert collection.total_comparisons() == 3 + 1 + 1
        # (a,b) appears twice -> 4 distinct pairs
        assert collection.num_distinct_comparisons() == 4
        assert collection.redundancy() == pytest.approx(5 / 4)

    def test_entity_index_lists_block_positions(self):
        index = self.make().entity_index()
        assert index["a"] == [0, 1]
        assert index["d"] == [2]

    def test_distinct_comparisons_yields_each_pair_once(self):
        collection = self.make()
        pairs = [c.pair for c in collection.distinct_comparisons()]
        assert len(pairs) == len(set(pairs)) == 4

    def test_placed_identifiers_and_block_sizes(self):
        collection = self.make()
        assert collection.placed_identifiers() == {"a", "b", "c", "d"}
        assert sorted(collection.block_sizes()) == [2, 2, 3]

    def test_sorted_by_cardinality(self):
        ordered = self.make().sorted_by_cardinality()
        assert [b.num_comparisons() for b in ordered] == [1, 1, 3]
        descending = self.make().sorted_by_cardinality(ascending=False)
        assert [b.num_comparisons() for b in descending] == [3, 1, 1]

    def test_empty_collection_statistics(self):
        empty = BlockCollection()
        assert empty.total_comparisons() == 0
        assert empty.redundancy() == 0.0
        assert empty.num_distinct_comparisons() == 0
