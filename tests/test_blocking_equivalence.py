"""Property-based equivalence of the oracle and index blocking engines.

For seeded random collections -- dirty and clean--clean -- every supported
builder x cleaning combination must produce the *same block collection* on
three execution paths:

* the legacy builders/cleaners (the oracle),
* the index engine with its NumPy fast path (when NumPy is present),
* the index engine's pure-Python fallback.

Equality is block for block: the same number of blocks, the same keys in the
same (deterministic) order, and the same member tuples -- including the
left/right split of bilateral blocks and the first-block-wins orientation of
propagated pair blocks.

The random collections deliberately use identifiers whose lexicographic
order differs from their insertion order (so canonical-pair handling is
exercised for real), URI-like identifiers (so prefix--infix--suffix keys
appear), accented and stop-word-heavy values, multi-valued attributes and
heterogeneous attribute names (so attribute clustering has real work to do).
"""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.blocking import BlockFiltering, BlockPurging, clean_blocks
from repro.blocking.engine import BlockingEngine
from repro.blocking.token_blocking import (
    AttributeClusteringBlocking,
    PrefixInfixSuffixBlocking,
    TokenBlocking,
)
from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datamodel.description import EntityDescription

SEEDS = (3, 11, 42, 97, 1234)

_VOCABULARY = (
    "alan turing grace hopper ada lovelace edsger dijkstra london paris "
    "new york cafe café münchen zürich the of at by a x kb mathematician "
    "scientist monument wall bridge tower 1912 1952 42 7 st ave"
).split()

_ATTRIBUTES = ("name", "label", "title", "city", "place", "venue", "note")


def _value(rng: random.Random) -> str:
    return " ".join(rng.choice(_VOCABULARY) for _ in range(rng.randint(1, 4)))


def _description(rng: random.Random, index: int, prefix: str) -> EntityDescription:
    letters = "zyxwvutsrqponmlkjihgfedcba"
    if rng.random() < 0.4:  # URI-like identifier, exercising the infix keys
        local = "_".join(rng.choice(_VOCABULARY) for _ in range(rng.randint(1, 2)))
        identifier = f"http://{prefix}kb{rng.choice(letters)}.org/resource/{local}:{index}"
    else:
        identifier = f"{prefix}{rng.choice(letters)}{rng.choice(letters)}:{index}"
    attributes = {}
    for attribute in rng.sample(_ATTRIBUTES, rng.randint(1, 4)):
        if rng.random() < 0.25:  # multi-valued attribute
            attributes[attribute] = [_value(rng), _value(rng)]
        else:
            attributes[attribute] = _value(rng)
    return EntityDescription(identifier, attributes)


def random_dirty_collection(seed: int, size: int = 40) -> EntityCollection:
    rng = random.Random(seed)
    return EntityCollection(
        [_description(rng, i, "") for i in range(size)], name=f"dirty-{seed}"
    )


def random_clean_clean_task(seed: int, per_side: int = 25) -> CleanCleanTask:
    rng = random.Random(seed)
    left = EntityCollection([_description(rng, i, "L") for i in range(per_side)], name="left")
    right = EntityCollection([_description(rng, i, "R") for i in range(per_side)], name="right")
    return CleanCleanTask(left, right)


BUILDERS = {
    "token": lambda: TokenBlocking(),
    "token-limited": lambda: TokenBlocking(max_block_fraction=0.25),
    "token-custom": lambda: TokenBlocking(stop_words=("the", "of"), min_token_length=1),
    "prefix_infix_suffix": lambda: PrefixInfixSuffixBlocking(),
    "attribute_clustering": lambda: AttributeClusteringBlocking(),
    "attribute_clustering-loose": lambda: AttributeClusteringBlocking(
        similarity_threshold=0.1, min_token_length=1
    ),
}

CLEANING = {
    "none": {},
    "purge": {"purging": BlockPurging()},
    "filter": {"filtering": BlockFiltering(0.6)},
    "propagate": {"propagate": True},
    "all": {"purging": BlockPurging(), "filtering": BlockFiltering(0.8), "propagate": True},
}


def snapshot(blocks) -> List[Tuple]:
    """Full structural snapshot: key order, member order, bilateral split."""
    return [
        (block.key, block.left_members, block.right_members)
        if block.is_bilateral
        else (block.key, block.members)
        for block in blocks
    ]


def _assert_engines_agree(data, builder_name: str, cleaning_name: str) -> None:
    oracle_builder = BUILDERS[builder_name]()
    oracle_blocks = oracle_builder.build(data)
    cleaning = CLEANING[cleaning_name]
    expected = snapshot(clean_blocks(oracle_blocks, **cleaning))

    for use_numpy, label in ((None, "numpy"), (False, "pure-python")):
        engine = BlockingEngine(BUILDERS[builder_name](), engine="index", use_numpy=use_numpy)
        built = engine.build(data)
        assert engine.last_engine == "index", (builder_name, label)
        assert snapshot(built) == snapshot(oracle_blocks), (builder_name, label)
        cleaned = engine.clean(built, **cleaning)
        if cleaning:
            assert engine.last_engine == "index", (builder_name, cleaning_name, label)
        assert snapshot(cleaned) == expected, (builder_name, cleaning_name, label)

    # the oracle engine of BlockingEngine is the legacy path verbatim
    oracle_engine = BlockingEngine(BUILDERS[builder_name](), engine="oracle")
    assert snapshot(oracle_engine.build(data)) == snapshot(oracle_blocks)
    assert oracle_engine.last_engine == "oracle"
    assert snapshot(oracle_engine.clean(oracle_blocks, **cleaning)) == expected


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("builder_name", sorted(BUILDERS))
@pytest.mark.parametrize("cleaning_name", sorted(CLEANING))
def test_dirty_equivalence(seed, builder_name, cleaning_name):
    _assert_engines_agree(random_dirty_collection(seed), builder_name, cleaning_name)


@pytest.mark.parametrize("seed", SEEDS[:3])
@pytest.mark.parametrize("builder_name", sorted(BUILDERS))
@pytest.mark.parametrize("cleaning_name", sorted(CLEANING))
def test_clean_clean_equivalence(seed, builder_name, cleaning_name):
    _assert_engines_agree(random_clean_clean_task(seed), builder_name, cleaning_name)


@pytest.mark.parametrize("seed", SEEDS[:2])
@pytest.mark.parametrize("ratio", (0.3, 0.5, 1.0))
def test_filtering_ratio_sweep(seed, ratio):
    """Tie-heavy filtering ratios: the stable ranking must match the oracle's."""
    data = random_dirty_collection(seed, size=60)
    blocks = TokenBlocking().build(data)
    expected = snapshot(BlockFiltering(ratio).process(blocks))
    for use_numpy in (None, False):
        engine = BlockingEngine(engine="index", use_numpy=use_numpy)
        assert snapshot(engine.clean(blocks, filtering=BlockFiltering(ratio))) == expected


@pytest.mark.parametrize("seed", SEEDS[:2])
@pytest.mark.parametrize("fraction", (0.05, 0.1, 0.3, 0.9))
def test_max_block_fraction_sweep(seed, fraction):
    data = random_dirty_collection(seed, size=50)
    for factory in (
        lambda: TokenBlocking(max_block_fraction=fraction),
        lambda: AttributeClusteringBlocking(max_block_fraction=fraction),
    ):
        expected = snapshot(factory().build(data))
        engine = BlockingEngine(factory(), engine="index")
        assert snapshot(engine.build(data)) == expected


def test_builder_subclass_falls_back_to_oracle():
    """A subclass may override tokens_of; the index engine must not bypass it."""

    class FirstCharBlocking(TokenBlocking):
        def tokens_of(self, description):
            return {token[0] for token in super().tokens_of(description)}

    data = random_dirty_collection(5)
    engine = BlockingEngine(FirstCharBlocking(), engine="index")
    with pytest.warns(RuntimeWarning, match="FirstCharBlocking"):
        blocks = engine.build(data)
    assert engine.last_engine == "oracle"
    assert snapshot(blocks) == snapshot(FirstCharBlocking().build(data))


def test_cleaner_subclass_falls_back_to_oracle():
    class NoisyPurging(BlockPurging):
        def process(self, blocks):
            return super().process(blocks)

    data = random_dirty_collection(6)
    blocks = TokenBlocking().build(data)
    engine = BlockingEngine(engine="index")
    cleaned = engine.clean(blocks, purging=NoisyPurging())
    assert engine.last_engine == "oracle"
    assert snapshot(cleaned) == snapshot(NoisyPurging().process(blocks))
