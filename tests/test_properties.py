"""Property-based tests on cross-cutting invariants of the library."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking.base import Block, BlockCollection
from repro.blocking.cleaning import BlockFiltering, BlockPurging, ComparisonPropagation
from repro.blocking.token_blocking import TokenBlocking
from repro.datamodel.collection import EntityCollection
from repro.datamodel.description import EntityDescription, merge_descriptions
from repro.datamodel.ground_truth import GroundTruth
from repro.evaluation.curves import ProgressiveRecallCurve
from repro.evaluation.metrics import evaluate_comparisons
from repro.metablocking.graph import BlockingGraph
from repro.metablocking.pruning import CardinalityNodePruning, WeightedEdgePruning
from repro.metablocking.weighting import ARCS, CBS, ECBS, JS


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
identifiers = st.text(alphabet="abcdefgh", min_size=1, max_size=3)


@st.composite
def block_collections(draw):
    """Random small block collections over a bounded identifier universe."""
    universe = [f"e{i}" for i in range(draw(st.integers(min_value=3, max_value=10)))]
    num_blocks = draw(st.integers(min_value=1, max_value=8))
    blocks = []
    for index in range(num_blocks):
        members = draw(
            st.lists(st.sampled_from(universe), min_size=2, max_size=len(universe), unique=True)
        )
        blocks.append(Block(f"b{index}", members=members))
    return BlockCollection(blocks)


@st.composite
def descriptions(draw):
    identifier = draw(st.uuids()).hex[:8]
    attributes = draw(
        st.dictionaries(
            st.sampled_from(["name", "city", "topic", "year"]),
            st.text(alphabet="abcdef ", min_size=1, max_size=20),
            min_size=1,
            max_size=4,
        )
    )
    return EntityDescription(identifier, attributes)


# ----------------------------------------------------------------------
# blocking invariants
# ----------------------------------------------------------------------
@given(block_collections())
@settings(max_examples=50, deadline=None)
def test_cleaning_never_adds_comparisons(blocks):
    purged = BlockPurging().process(blocks)
    filtered = BlockFiltering(0.5).process(blocks)
    propagated = ComparisonPropagation().process(blocks)
    assert purged.distinct_pairs() <= blocks.distinct_pairs()
    assert filtered.distinct_pairs() <= blocks.distinct_pairs()
    assert propagated.distinct_pairs() == blocks.distinct_pairs()
    assert propagated.total_comparisons() == blocks.num_distinct_comparisons()


@given(block_collections())
@settings(max_examples=50, deadline=None)
def test_blocking_graph_edges_equal_distinct_pairs(blocks):
    graph = BlockingGraph(blocks)
    assert graph.num_edges == blocks.num_distinct_comparisons()
    assert set(graph.edges()) == blocks.distinct_pairs()


@given(block_collections())
@settings(max_examples=40, deadline=None)
def test_weighting_schemes_are_positive_on_edges(blocks):
    graph = BlockingGraph(blocks)
    for scheme in (CBS(), ECBS(), JS(), ARCS()):
        for first, second in graph.edges():
            assert scheme.weight(graph, first, second) > 0.0


@given(block_collections())
@settings(max_examples=40, deadline=None)
def test_pruning_output_is_subset_of_edges(blocks):
    graph = BlockingGraph(blocks)
    edges = set(graph.edges())
    for scheme in (WeightedEdgePruning(), CardinalityNodePruning()):
        retained = {edge.pair for edge in scheme.prune(graph, CBS())}
        assert retained <= edges


@given(st.lists(descriptions(), min_size=2, max_size=15, unique_by=lambda d: d.identifier))
@settings(max_examples=30, deadline=None)
def test_token_blocking_pairs_share_a_token(description_list):
    collection = EntityCollection(description_list)
    builder = TokenBlocking(min_token_length=1, stop_words=None)
    blocks = builder.build(collection)
    for first, second in blocks.distinct_pairs():
        tokens_a = builder.tokens_of(collection[first])
        tokens_b = builder.tokens_of(collection[second])
        assert tokens_a & tokens_b


# ----------------------------------------------------------------------
# data model invariants
# ----------------------------------------------------------------------
@given(descriptions(), descriptions())
@settings(max_examples=50, deadline=None)
def test_merge_is_commutative_in_content(first, second):
    merged_ab = merge_descriptions(first, second)
    merged_ba = merge_descriptions(second, first)
    assert merged_ab.identifier == merged_ba.identifier
    assert {k: set(v) for k, v in merged_ab.attributes.items()} == {
        k: set(v) for k, v in merged_ba.attributes.items()
    }


@given(
    st.lists(
        st.lists(identifiers, min_size=1, max_size=4, unique=True), min_size=1, max_size=6
    )
)
@settings(max_examples=50, deadline=None)
def test_ground_truth_matching_pairs_are_symmetric_and_transitive(clusters):
    truth = GroundTruth(clusters)
    pairs = truth.matching_pairs()
    for first, second in pairs:
        assert truth.are_matches(first, second)
        assert truth.are_matches(second, first)
    # transitivity: matches of matches are matches
    for a, b in pairs:
        for c, d in pairs:
            if b == c:
                assert truth.are_matches(a, d)


# ----------------------------------------------------------------------
# evaluation invariants
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(identifiers, identifiers).filter(lambda p: p[0] != p[1]),
        min_size=0,
        max_size=20,
    ),
    st.lists(
        st.lists(identifiers, min_size=2, max_size=3, unique=True), min_size=1, max_size=5
    ),
)
@settings(max_examples=50, deadline=None)
def test_blocking_quality_bounds(candidate_pairs, clusters):
    truth = GroundTruth(clusters)
    quality = evaluate_comparisons(candidate_pairs, truth, 10_000)
    assert 0.0 <= quality.pair_completeness <= 1.0
    assert 0.0 <= quality.pairs_quality <= 1.0
    assert 0.0 <= quality.reduction_ratio <= 1.0
    assert quality.num_detected_matches <= quality.num_total_matches


@given(st.lists(st.booleans(), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_progressive_recall_curve_is_monotone(outcomes):
    truth = GroundTruth([["a", "b"], ["c", "d"], ["e", "f"]])
    curve = ProgressiveRecallCurve(truth)
    previous_recall = 0.0
    for outcome in outcomes:
        curve.record(is_match=outcome)
        recall = curve.final_recall()
        assert recall >= previous_recall
        previous_recall = recall
    assert 0.0 <= curve.auc() <= 1.0
