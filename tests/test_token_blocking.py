"""Tests for token blocking, attribute-clustering blocking and URI-aware blocking."""

import pytest

from repro.blocking.token_blocking import (
    AttributeClusteringBlocking,
    PrefixInfixSuffixBlocking,
    TokenBlocking,
    cluster_attributes,
)
from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datamodel.description import EntityDescription
from repro.evaluation.metrics import evaluate_blocks


def make_heterogeneous_pair():
    """Two descriptions of the same person using different vocabularies."""
    return EntityCollection(
        [
            EntityDescription("x1", {"name": "Alan Turing", "city": "London"}),
            EntityDescription("x2", {"foaf:name": "Alan M. Turing", "location": "London"}),
            EntityDescription("y1", {"name": "Grace Hopper", "city": "New York"}),
        ]
    )


class TestTokenBlocking:
    def test_shared_token_places_descriptions_in_same_block(self):
        blocks = TokenBlocking().build(make_heterogeneous_pair())
        assert ("x1", "x2") in blocks.distinct_pairs()

    def test_block_keys_are_tokens(self):
        blocks = TokenBlocking().build(make_heterogeneous_pair())
        keys = {block.key for block in blocks}
        assert "turing" in keys and "london" in keys

    def test_min_token_length_and_stop_words(self):
        collection = EntityCollection(
            [
                EntityDescription("a", {"name": "a of x"}),
                EntityDescription("b", {"name": "a of y"}),
            ]
        )
        blocks = TokenBlocking(min_token_length=2).build(collection)
        assert len(blocks) == 0  # 'a' too short, 'of' is a stop word, x/y too short

    def test_max_block_fraction_drops_huge_blocks(self):
        descriptions = [
            EntityDescription(f"e{i}", {"name": f"common token{i}"}) for i in range(10)
        ]
        collection = EntityCollection(descriptions)
        unlimited = TokenBlocking().build(collection)
        limited = TokenBlocking(max_block_fraction=0.5).build(collection)
        assert any(block.key == "common" for block in unlimited)
        assert all(block.key != "common" for block in limited)

    def test_clean_clean_blocks_are_bilateral(self, small_clean_clean_dataset):
        task = small_clean_clean_dataset.task
        blocks = TokenBlocking().build(task)
        assert all(block.is_bilateral for block in blocks)
        for first, second in list(blocks.distinct_pairs())[:50]:
            assert task.is_valid_pair(first, second)

    def test_full_recall_on_generated_dirty_data(self, small_dirty_dataset):
        blocks = TokenBlocking().build(small_dirty_dataset.collection)
        quality = evaluate_blocks(blocks, small_dirty_dataset.ground_truth, small_dirty_dataset.collection)
        assert quality.pair_completeness >= 0.95
        assert quality.reduction_ratio > 0.0


class TestAttributeClustering:
    def test_cluster_attributes_groups_synonymous_attributes(self):
        collection = EntityCollection(
            [
                EntityDescription("a1", {"name": "Alan Turing", "city": "London"}),
                EntityDescription("a2", {"label": "Alan Turing", "place": "London"}),
                EntityDescription("a3", {"name": "Grace Hopper", "city": "New York"}),
                EntityDescription("a4", {"label": "Grace Hopper", "place": "New York"}),
            ]
        )
        clusters = cluster_attributes(collection, similarity_threshold=0.3)
        assert clusters["name"] == clusters["label"]
        assert clusters["city"] == clusters["place"]
        assert clusters["name"] != clusters["city"]

    def test_attribute_clustering_never_loses_more_recall_than_it_saves_comparisons(
        self, small_dirty_dataset
    ):
        token = TokenBlocking().build(small_dirty_dataset.collection)
        clustered = AttributeClusteringBlocking().build(small_dirty_dataset.collection)
        token_quality = evaluate_blocks(token, small_dirty_dataset.ground_truth, small_dirty_dataset.collection)
        clustered_quality = evaluate_blocks(
            clustered, small_dirty_dataset.ground_truth, small_dirty_dataset.collection
        )
        assert clustered_quality.pair_completeness >= token_quality.pair_completeness - 0.05
        assert clustered_quality.num_comparisons <= token_quality.num_comparisons * 1.5

    def test_blocks_are_scoped_by_cluster(self):
        blocks = AttributeClusteringBlocking().build(make_heterogeneous_pair())
        assert all("#" in block.key for block in blocks)


class TestPrefixInfixSuffix:
    def test_uri_infix_tokens_create_blocks(self):
        collection = EntityCollection(
            [
                EntityDescription("http://kb1.org/resource/Berlin_Wall", {"type": "monument"}),
                EntityDescription("http://kb2.org/page/Berlin_Wall", {"kind": "landmark"}),
            ]
        )
        plain = TokenBlocking().build(collection)
        uri_aware = PrefixInfixSuffixBlocking().build(collection)
        pair = ("http://kb1.org/resource/Berlin_Wall", "http://kb2.org/page/Berlin_Wall")
        assert pair not in plain.distinct_pairs()
        assert pair in uri_aware.distinct_pairs()
