"""Tests for token blocking, attribute-clustering blocking and URI-aware blocking."""

import pytest

from repro.blocking.token_blocking import (
    AttributeClusteringBlocking,
    PrefixInfixSuffixBlocking,
    TokenBlocking,
    cluster_attributes,
)
from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datamodel.description import EntityDescription
from repro.evaluation.metrics import evaluate_blocks


def make_heterogeneous_pair():
    """Two descriptions of the same person using different vocabularies."""
    return EntityCollection(
        [
            EntityDescription("x1", {"name": "Alan Turing", "city": "London"}),
            EntityDescription("x2", {"foaf:name": "Alan M. Turing", "location": "London"}),
            EntityDescription("y1", {"name": "Grace Hopper", "city": "New York"}),
        ]
    )


class TestTokenBlocking:
    def test_shared_token_places_descriptions_in_same_block(self):
        blocks = TokenBlocking().build(make_heterogeneous_pair())
        assert ("x1", "x2") in blocks.distinct_pairs()

    def test_block_keys_are_tokens(self):
        blocks = TokenBlocking().build(make_heterogeneous_pair())
        keys = {block.key for block in blocks}
        assert "turing" in keys and "london" in keys

    def test_min_token_length_and_stop_words(self):
        collection = EntityCollection(
            [
                EntityDescription("a", {"name": "a of x"}),
                EntityDescription("b", {"name": "a of y"}),
            ]
        )
        blocks = TokenBlocking(min_token_length=2).build(collection)
        assert len(blocks) == 0  # 'a' too short, 'of' is a stop word, x/y too short

    def test_max_block_fraction_drops_huge_blocks(self):
        descriptions = [
            EntityDescription(f"e{i}", {"name": f"common token{i}"}) for i in range(10)
        ]
        collection = EntityCollection(descriptions)
        unlimited = TokenBlocking().build(collection)
        limited = TokenBlocking(max_block_fraction=0.5).build(collection)
        assert any(block.key == "common" for block in unlimited)
        assert all(block.key != "common" for block in limited)

    def test_max_block_fraction_is_not_truncated_by_float_error(self):
        # 0.3 * 10 evaluates to 2.999...96: the limit must still be 3, so a
        # block holding exactly 3 of 10 descriptions survives (the old int()
        # truncation dropped it)
        descriptions = [EntityDescription(f"t{i}", {"name": f"trio filler{i}"}) for i in range(3)]
        descriptions += [EntityDescription(f"o{i}", {"name": f"other{i}"}) for i in range(7)]
        collection = EntityCollection(descriptions)
        limited = TokenBlocking(max_block_fraction=0.3).build(collection)
        assert any(block.key == "trio" for block in limited)

    def test_max_block_fraction_tiny_collections(self):
        # total <= 3: the limit never drops below 2, so minimal pair blocks
        # always survive even under an extreme fraction
        pair = EntityCollection(
            [
                EntityDescription("a", {"name": "shared token"}),
                EntityDescription("b", {"name": "shared value"}),
            ]
        )
        blocks = TokenBlocking(max_block_fraction=0.01).build(pair)
        assert any(block.key == "shared" for block in blocks)

        trio = EntityCollection(
            [EntityDescription(f"e{i}", {"name": "shared"}) for i in range(3)]
        )
        # fraction 1.0 admits the full 3-member block; a small fraction
        # clamps the limit to 2 and drops it
        assert len(TokenBlocking(max_block_fraction=1.0).build(trio)) == 1
        assert len(TokenBlocking(max_block_fraction=0.1).build(trio)) == 0

    def test_max_block_fraction_counts_both_sides_of_bilateral_blocks(self):
        # the documented bound is a fraction of *all* descriptions: for
        # clean-clean input the member count sums both sides, so 2 left + 2
        # right members exceed a limit of 3 even though each side is below it
        left = EntityCollection(
            [EntityDescription(f"l{i}", {"name": f"shared only{i}"}) for i in range(2)],
            name="left",
        )
        right = EntityCollection(
            [
                EntityDescription("r0", {"name": "shared"}),
                EntityDescription("r1", {"name": "shared"}),
                EntityDescription("r2", {"name": "unrelated"}),
                EntityDescription("r3", {"name": "unmatched"}),
                EntityDescription("r4", {"name": "solo"}),
                EntityDescription("r5", {"name": "lonely"}),
            ],
            name="right",
        )
        task = CleanCleanTask(left, right)  # 8 descriptions in total
        unlimited = TokenBlocking().build(task)
        assert any(block.key == "shared" and len(block) == 4 for block in unlimited)
        limited = TokenBlocking(max_block_fraction=3 / 8).build(task)
        assert all(block.key != "shared" for block in limited)

    def test_clean_clean_blocks_are_bilateral(self, small_clean_clean_dataset):
        task = small_clean_clean_dataset.task
        blocks = TokenBlocking().build(task)
        assert all(block.is_bilateral for block in blocks)
        for first, second in list(blocks.distinct_pairs())[:50]:
            assert task.is_valid_pair(first, second)

    def test_full_recall_on_generated_dirty_data(self, small_dirty_dataset):
        blocks = TokenBlocking().build(small_dirty_dataset.collection)
        quality = evaluate_blocks(blocks, small_dirty_dataset.ground_truth, small_dirty_dataset.collection)
        assert quality.pair_completeness >= 0.95
        assert quality.reduction_ratio > 0.0


class TestAttributeClustering:
    def test_cluster_attributes_groups_synonymous_attributes(self):
        collection = EntityCollection(
            [
                EntityDescription("a1", {"name": "Alan Turing", "city": "London"}),
                EntityDescription("a2", {"label": "Alan Turing", "place": "London"}),
                EntityDescription("a3", {"name": "Grace Hopper", "city": "New York"}),
                EntityDescription("a4", {"label": "Grace Hopper", "place": "New York"}),
            ]
        )
        clusters = cluster_attributes(collection, similarity_threshold=0.3)
        assert clusters["name"] == clusters["label"]
        assert clusters["city"] == clusters["place"]
        assert clusters["name"] != clusters["city"]

    def test_attribute_clustering_never_loses_more_recall_than_it_saves_comparisons(
        self, small_dirty_dataset
    ):
        token = TokenBlocking().build(small_dirty_dataset.collection)
        clustered = AttributeClusteringBlocking().build(small_dirty_dataset.collection)
        token_quality = evaluate_blocks(token, small_dirty_dataset.ground_truth, small_dirty_dataset.collection)
        clustered_quality = evaluate_blocks(
            clustered, small_dirty_dataset.ground_truth, small_dirty_dataset.collection
        )
        assert clustered_quality.pair_completeness >= token_quality.pair_completeness - 0.05
        assert clustered_quality.num_comparisons <= token_quality.num_comparisons * 1.5

    def test_blocks_are_scoped_by_cluster(self):
        blocks = AttributeClusteringBlocking().build(make_heterogeneous_pair())
        assert all("#" in block.key for block in blocks)

    def test_clean_clean_profiles_are_pooled_across_both_collections(self):
        # 'name' only appears on the left, 'label' only on the right; they
        # can cluster together only if the profiles pool both collections
        left = EntityCollection(
            [
                EntityDescription("l1", {"name": "Alan Turing", "city": "London"}),
                EntityDescription("l2", {"name": "Grace Hopper", "city": "New York"}),
            ],
            name="left",
        )
        right = EntityCollection(
            [
                EntityDescription("r1", {"label": "Alan Turing", "place": "London"}),
                EntityDescription("r2", {"label": "Grace Hopper", "place": "New York"}),
            ],
            name="right",
        )
        task = CleanCleanTask(left, right)
        clusters = cluster_attributes(task, similarity_threshold=0.3)
        assert clusters["name"] == clusters["label"]
        assert clusters["city"] == clusters["place"]
        assert clusters["name"] != clusters["city"]
        # ...and the blocking built on those clusters links across collections
        blocks = AttributeClusteringBlocking(similarity_threshold=0.3).build(task)
        assert ("l1", "r1") in blocks.distinct_pairs()

    def test_clustering_profiles_honour_min_token_length(self):
        # attribute 'c' overlaps 'b' only through one-char tokens: with
        # min_token_length=1 that noise is clustering evidence and pulls 'c'
        # into the a/b cluster, with min_token_length=2 'c' has no long
        # shared token and must end up in the glue cluster instead
        collection = EntityCollection(
            [
                EntityDescription(
                    "d1", {"a": "solar panel", "b": "solar panel x y", "c": "x y lunar"}
                )
            ]
        )
        with_noise = cluster_attributes(collection, similarity_threshold=0.3, min_token_length=1)
        without_noise = cluster_attributes(collection, similarity_threshold=0.3, min_token_length=2)
        assert with_noise["c"] == with_noise["a"]
        assert without_noise["a"] == without_noise["b"]
        assert without_noise["c"] == 0  # glue cluster
        assert without_noise["c"] != without_noise["a"]

    def test_clustering_and_keys_use_the_same_tokenisation(self):
        """Regression: the builder passes min_token_length to the clustering.

        Under the old mismatched tokenisation the clustering stage saw the
        one-char tokens the key stage drops, so 'c' clustered with 'a'/'b'
        and its keys carried the wrong cluster id.
        """
        collection = EntityCollection(
            [
                EntityDescription(
                    "d1", {"a": "solar panel", "b": "solar panel x y", "c": "x y lunar"}
                ),
                EntityDescription(
                    "d2", {"a": "solar array", "b": "solar array x y", "c": "x y lunar"}
                ),
            ]
        )
        builder = AttributeClusteringBlocking(similarity_threshold=0.3, min_token_length=2)
        keys = {block.key for block in builder.build(collection)}
        expected = cluster_attributes(
            collection,
            similarity_threshold=0.3,
            stop_words=builder.stop_words,
            min_token_length=2,
        )
        # the key stage must scope 'lunar' by the same (glue) cluster the
        # clustering stage assigns to 'c'
        assert expected["c"] == 0 and expected["a"] == expected["b"] != 0
        assert f"c{expected['c']}#lunar" in keys
        assert f"c{expected['a']}#solar" in keys
        assert f"c{expected['a']}#lunar" not in keys


class TestPrefixInfixSuffix:
    def test_uri_infix_tokens_create_blocks(self):
        collection = EntityCollection(
            [
                EntityDescription("http://kb1.org/resource/Berlin_Wall", {"type": "monument"}),
                EntityDescription("http://kb2.org/page/Berlin_Wall", {"kind": "landmark"}),
            ]
        )
        plain = TokenBlocking().build(collection)
        uri_aware = PrefixInfixSuffixBlocking().build(collection)
        pair = ("http://kb1.org/resource/Berlin_Wall", "http://kb2.org/page/Berlin_Wall")
        assert pair not in plain.distinct_pairs()
        assert pair in uri_aware.distinct_pairs()
