"""Edge cases of the array-backed entity-index engine and its pipeline wiring.

Covers the degenerate shapes the weighting schemes must survive: singleton
blocks, an entity appearing in every block, empty block collections and
clean--clean inputs without cross-source co-occurrence -- plus the engine
selection / fallback behaviour of :class:`MetaBlocking`.
"""

from __future__ import annotations

import math
import types

import pytest

from repro.blocking.base import Block, BlockCollection
from repro.metablocking import (
    CBS,
    EntityIndexEngine,
    MetaBlocking,
    WeightedNodePruning,
)
from repro.metablocking.weighting import WeightingScheme

WEIGHTING_SCHEMES = ("CBS", "ECBS", "JS", "EJS", "ARCS")
PRUNING_SCHEMES = ("WEP", "CEP", "WNP", "CNP", "ReciprocalWNP", "ReciprocalCNP")


def all_combo_runs(blocks):
    for weighting in WEIGHTING_SCHEMES:
        for pruning in PRUNING_SCHEMES:
            for engine in ("graph", "index"):
                metablocking = MetaBlocking(weighting, pruning, engine=engine)
                yield metablocking, metablocking.retained_edges(blocks)


class TestEmptyAndDegenerateCollections:
    def test_empty_block_collection(self):
        blocks = BlockCollection()
        for metablocking, retained in all_combo_runs(blocks):
            assert retained == []
            assert metablocking.last_graph_edges == 0
            assert metablocking.last_retained_edges == 0
        engine = EntityIndexEngine(blocks)
        assert engine.num_entities == 0
        assert engine.count_edges() == 0

    def test_singleton_blocks_are_dropped_and_produce_no_edges(self):
        blocks = BlockCollection()
        blocks.add(Block("s1", members=["a"]))
        blocks.add(Block("s2", members=["b"]))
        assert len(blocks) == 0  # singleton blocks induce no comparison
        for metablocking, retained in all_combo_runs(blocks):
            assert retained == []

    def test_blocks_with_only_one_bilateral_side_are_dropped(self):
        blocks = BlockCollection()
        blocks.add(Block("left-only", left_members=["l1", "l2"], right_members=[]))
        assert len(blocks) == 0
        for _metablocking, retained in all_combo_runs(blocks):
            assert retained == []


class TestEntityInEveryBlock:
    def make_blocks(self) -> BlockCollection:
        # "hub" co-occurs with everyone in every block
        return BlockCollection(
            [
                Block("b0", members=["hub", "a"]),
                Block("b1", members=["hub", "a", "b"]),
                Block("b2", members=["hub", "b", "c"]),
                Block("b3", members=["hub", "c"]),
            ]
        )

    def test_cbs_and_js_weights(self):
        blocks = self.make_blocks()
        engine = EntityIndexEngine(blocks)
        assert engine.node_blocks_count("hub") == len(blocks)
        retained = {
            (e.first, e.second): e.weight
            for e in engine.iter_retained("JS", "WNP")
        }
        # (hub, a): 2 shared blocks, hub in 4, a in 2 -> 2 / (4 + 2 - 2)
        assert retained[("a", "hub")] == pytest.approx(0.5)

    @pytest.mark.parametrize("weighting", WEIGHTING_SCHEMES)
    @pytest.mark.parametrize("pruning", PRUNING_SCHEMES)
    def test_engines_agree_on_hub_topology(self, weighting, pruning):
        blocks = self.make_blocks()
        expected = {
            (e.first, e.second): e.weight
            for e in MetaBlocking(weighting, pruning, engine="graph").retained_edges(blocks)
        }
        actual = {
            (e.first, e.second): e.weight
            for e in MetaBlocking(weighting, pruning, engine="index").retained_edges(blocks)
        }
        assert expected.keys() == actual.keys()
        for pair, weight in expected.items():
            assert actual[pair] == pytest.approx(weight, abs=1e-9)


class TestCleanCleanWithoutCrossCoOccurrence:
    def test_same_side_members_never_form_edges(self):
        blocks = BlockCollection(
            [Block("t", left_members=["l1", "l2"], right_members=["r1"])]
        )
        engine = EntityIndexEngine(blocks)
        retained = {(e.first, e.second) for e in engine.iter_retained("CBS", "WNP")}
        assert retained == {("l1", "r1"), ("l2", "r1")}
        assert ("l1", "l2") not in retained
        assert engine.count_edges() == 2

    def test_disjoint_sources_yield_no_comparisons(self):
        # every block holds members of one source only -> dropped on add()
        blocks = BlockCollection()
        blocks.add(Block("a-only", left_members=["a1", "a2"], right_members=[]))
        blocks.add(Block("b-only", left_members=[], right_members=["b1", "b2"]))
        assert len(blocks) == 0
        for metablocking, retained in all_combo_runs(blocks):
            assert retained == []
            assert metablocking.last_graph_edges == 0

    def test_mixed_unilateral_and_bilateral_blocks(self):
        blocks = BlockCollection(
            [
                Block("bi", left_members=["a", "b"], right_members=["c"]),
                Block("uni", members=["a", "b"]),
            ]
        )
        engine = EntityIndexEngine(blocks)
        retained = {
            (e.first, e.second): e.weight for e in engine.iter_retained("CBS", "WNP")
        }
        # (a, b) co-occur same-side in "bi" (no edge) but share "uni" (1 block)
        assert retained.get(("a", "b")) == pytest.approx(1.0)
        assert retained.get(("a", "c")) == pytest.approx(1.0)


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            MetaBlocking("CBS", "WNP", engine="quantum")

    def test_unknown_schemes_rejected_by_index_engine(self):
        engine = EntityIndexEngine(BlockCollection([Block("b", members=["a", "b"])]))
        with pytest.raises(KeyError):
            list(engine.iter_retained("nope", "WNP"))
        with pytest.raises(KeyError):
            list(engine.iter_retained("CBS", "nope"))

    def test_negative_cep_budget_rejected_everywhere(self):
        # a silently clamped/sliced negative budget would make the engines
        # diverge; both reject it instead
        from repro.metablocking.pruning import CardinalityEdgePruning

        with pytest.raises(ValueError):
            CardinalityEdgePruning(budget=-1)
        engine = EntityIndexEngine(BlockCollection([Block("b", members=["a", "b"])]))
        with pytest.raises(ValueError):
            engine.iter_retained("CBS", "CEP", budget=-1)

    def test_bilateral_self_pair_raises_like_graph_engine(self):
        # same identifier on both sides of a bilateral block: the graph engine
        # raises via canonical_pair, so the index engine must raise too
        blocks = BlockCollection(
            [Block("t", left_members=["x", "a"], right_members=["x", "b"])]
        )
        with pytest.raises(ValueError, match="'x' twice"):
            MetaBlocking("CBS", "WNP", engine="graph").retained_edges(blocks)
        with pytest.raises(ValueError, match="'x' twice"):
            MetaBlocking("CBS", "WNP", engine="index").retained_edges(blocks)

    def test_custom_weighting_scheme_falls_back_to_graph(self):
        class Constant(WeightingScheme):
            name = "constant"

            def weight(self, graph, first, second):
                return 1.0

        blocks = BlockCollection([Block("b", members=["a", "b", "c"])])
        metablocking = MetaBlocking(Constant(), WeightedNodePruning(), engine="index")
        retained = metablocking.retained_edges(blocks)
        assert metablocking.last_engine == "graph"
        assert len(retained) == 3
        assert all(edge.weight == 1.0 for edge in retained)

    def test_standard_schemes_run_on_index_engine(self):
        blocks = BlockCollection([Block("b", members=["a", "b", "c"])])
        metablocking = MetaBlocking(CBS(), WeightedNodePruning(), engine="index")
        metablocking.retained_edges(blocks)
        assert metablocking.last_engine == "index"

    def test_iter_retained_is_lazy(self):
        blocks = BlockCollection([Block("b", members=["a", "b", "c", "d"])])
        metablocking = MetaBlocking("CBS", "WNP", engine="index")
        iterator = metablocking.iter_retained(blocks)
        assert isinstance(iterator, types.GeneratorType)
        first = next(iterator)
        assert first.weight > 0
        remaining = list(iterator)
        assert metablocking.last_retained_edges == 1 + len(remaining)


class TestNumpyFallbackPath:
    def test_forced_pure_python_path_matches(self):
        blocks = BlockCollection(
            [
                Block("b0", members=["n3", "n1", "n2"]),
                Block("b1", left_members=["n1"], right_members=["n4"]),
                Block("b2", members=["n4", "n2"]),
            ]
        )
        fast = EntityIndexEngine(blocks)
        slow = EntityIndexEngine(blocks, use_numpy=False)
        for weighting in WEIGHTING_SCHEMES:
            for pruning in PRUNING_SCHEMES:
                expected = {
                    (e.first, e.second): e.weight
                    for e in fast.iter_retained(weighting, pruning)
                }
                actual = {
                    (e.first, e.second): e.weight
                    for e in slow.iter_retained(weighting, pruning)
                }
                assert expected == actual


class TestWeightingEdgeCaseValues:
    def test_two_member_universe(self):
        blocks = BlockCollection([Block("only", members=["x", "y"])])
        for weighting in WEIGHTING_SCHEMES:
            edges = list(EntityIndexEngine(blocks).iter_retained(weighting, "WEP"))
            assert len(edges) == 1
            assert edges[0].pair == ("x", "y")
            assert edges[0].weight > 0
            assert math.isfinite(edges[0].weight)

    def test_arcs_uses_block_cardinality(self):
        blocks = BlockCollection(
            [
                Block("small", members=["x", "y"]),  # 1 comparison
                Block("big", members=["x", "y", "z", "w"]),  # 6 comparisons
            ]
        )
        retained = {
            (e.first, e.second): e.weight
            for e in EntityIndexEngine(blocks).iter_retained("ARCS", "CNP")
        }
        assert retained[("x", "y")] == pytest.approx(1.0 + 1.0 / 6.0)
