"""Tests for MinHash signatures and LSH blocking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking.minhash import MinHashLSHBlocking, MinHashSignature
from repro.datamodel.collection import EntityCollection
from repro.datamodel.description import EntityDescription
from repro.evaluation.metrics import evaluate_blocks
from repro.text.similarity import jaccard_similarity


class TestMinHashSignature:
    def test_validation(self):
        with pytest.raises(ValueError):
            MinHashSignature(num_hashes=0)
        with pytest.raises(ValueError):
            MinHashSignature.estimate_jaccard([], [])
        with pytest.raises(ValueError):
            MinHashSignature.estimate_jaccard([1, 2], [1])

    def test_identical_sets_have_identical_signatures(self):
        minhash = MinHashSignature(num_hashes=32)
        tokens = {"alan", "turing", "london"}
        assert minhash.signature(tokens) == minhash.signature(set(tokens))
        assert MinHashSignature.estimate_jaccard(
            minhash.signature(tokens), minhash.signature(tokens)
        ) == 1.0

    def test_empty_set_signature(self):
        minhash = MinHashSignature(num_hashes=8)
        assert len(minhash.signature([])) == 8

    def test_signatures_are_deterministic_for_a_seed(self):
        first = MinHashSignature(num_hashes=16, seed=3)
        second = MinHashSignature(num_hashes=16, seed=3)
        different = MinHashSignature(num_hashes=16, seed=4)
        tokens = {"a", "b", "c"}
        assert first.signature(tokens) == second.signature(tokens)
        assert first.signature(tokens) != different.signature(tokens)

    @given(
        st.sets(st.sampled_from("abcdefghijklmnop"), min_size=3, max_size=12),
        st.sets(st.sampled_from("abcdefghijklmnop"), min_size=3, max_size=12),
    )
    @settings(max_examples=30, deadline=None)
    def test_estimate_tracks_true_jaccard(self, first, second):
        minhash = MinHashSignature(num_hashes=256, seed=11)
        estimate = MinHashSignature.estimate_jaccard(
            minhash.signature(first), minhash.signature(second)
        )
        true_value = jaccard_similarity(first, second)
        assert abs(estimate - true_value) < 0.25  # 256 hashes -> ~0.06 std dev


class TestSeedScheme:
    """Regression pins for the documented single-seed coefficient scheme.

    All per-permutation hash coefficients derive from one
    ``random.Random(seed)`` stream with interleaved draws (``a`` then ``b``
    per permutation), so signatures are reproducible across processes,
    platforms and the NumPy / pure-Python execution paths.  These exact
    values freeze that scheme: any change to the coefficient derivation or
    the hash formula fails here.
    """

    PINNED_SEED1 = (1434420979, 299719476, 2515576889, 415895635, 336185130, 481492652)
    PINNED_SEED1_LIST = (862546453, 279635279, 2252660844, 1890348927, 3875282939, 1726461862)
    PINNED_SEED2 = (1166568483, 1821668160, 2252152919, 907176, 901517740, 1180670238)

    def test_signatures_pinned_for_default_seed(self):
        minhash = MinHashSignature(num_hashes=6, seed=1)
        assert minhash.signature({"alan", "turing", "london"}) == self.PINNED_SEED1
        # iteration order of the input is irrelevant: tokens are hashed
        assert minhash.signature(["grace", "hopper"]) == self.PINNED_SEED1_LIST

    def test_signatures_pinned_for_other_seed(self):
        minhash = MinHashSignature(num_hashes=6, seed=2)
        assert minhash.signature({"alan", "turing", "london"}) == self.PINNED_SEED2

    def test_prefix_stability(self):
        """Interleaved draws: the first permutations never depend on num_hashes."""
        longer = MinHashSignature(num_hashes=12, seed=1)
        assert longer.signature({"alan", "turing", "london"})[:6] == self.PINNED_SEED1

    def test_array_engine_reproduces_pinned_band_keys(self):
        from repro.blocking.engine import BlockingEngine

        collection = EntityCollection(
            [
                EntityDescription("a1", {"name": "alan mathison turing"}),
                EntityDescription("a2", {"label": "alan mathison turing"}),
            ]
        )
        oracle = MinHashLSHBlocking(num_bands=3, rows_per_band=2, seed=1).build(collection)
        for use_numpy in (None, False):
            engine = BlockingEngine(
                MinHashLSHBlocking(num_bands=3, rows_per_band=2, seed=1),
                engine="index",
                use_numpy=use_numpy,
            )
            built = engine.build(collection)
            assert [b.key for b in built] == [b.key for b in oracle]


class TestMinHashLSHBlocking:
    def make_collection(self):
        return EntityCollection(
            [
                EntityDescription("a1", {"name": "alan mathison turing", "city": "london uk"}),
                EntityDescription("a2", {"label": "alan mathison turing", "place": "london"}),
                EntityDescription("b1", {"name": "grace brewster murray hopper", "city": "new york"}),
                EntityDescription("b2", {"full_name": "grace brewster murray hopper", "city": "new york city"}),
                EntityDescription("c1", {"name": "completely unrelated description entirely"}),
            ]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            MinHashLSHBlocking(num_bands=0)
        with pytest.raises(ValueError):
            MinHashLSHBlocking(rows_per_band=0)

    def test_approximate_threshold_formula(self):
        builder = MinHashLSHBlocking(num_bands=16, rows_per_band=4)
        assert builder.approximate_threshold == pytest.approx((1 / 16) ** 0.25)

    def test_highly_similar_descriptions_co_occur(self):
        blocks = MinHashLSHBlocking(num_bands=16, rows_per_band=2, seed=2).build(self.make_collection())
        pairs = blocks.distinct_pairs()
        assert ("a1", "a2") in pairs
        assert ("b1", "b2") in pairs
        assert ("a1", "c1") not in pairs

    def test_quality_on_generated_data(self, small_dirty_dataset):
        builder = MinHashLSHBlocking(num_bands=24, rows_per_band=2, seed=5)
        blocks = builder.build(small_dirty_dataset.collection)
        quality = evaluate_blocks(blocks, small_dirty_dataset.ground_truth, small_dirty_dataset.collection)
        assert quality.pair_completeness > 0.75
        assert quality.reduction_ratio > 0.5

    def test_clean_clean_blocks_are_bilateral(self, small_clean_clean_dataset):
        task = small_clean_clean_dataset.task
        blocks = MinHashLSHBlocking(num_bands=16, rows_per_band=2).build(task)
        assert all(block.is_bilateral for block in blocks)
