"""Tests for the comparison queue and the queue-driven iterative framework."""

import pytest

from repro.datamodel.collection import EntityCollection
from repro.datamodel.description import EntityDescription
from repro.datamodel.ground_truth import GroundTruth
from repro.iterative.queue import ComparisonQueue, IterativeResult, QueueBasedResolver
from repro.matching.oracle import OracleMatcher


class TestComparisonQueue:
    def test_pop_returns_highest_priority_first(self):
        queue = ComparisonQueue()
        queue.push("a", "b", priority=0.5)
        queue.push("c", "d", priority=0.9)
        queue.push("e", "f", priority=0.1)
        assert queue.pop() == ("c", "d")
        assert queue.pop() == ("a", "b")
        assert queue.pop() == ("e", "f")
        assert queue.pop() is None

    def test_push_same_pair_updates_priority(self):
        queue = ComparisonQueue()
        queue.push("a", "b", priority=0.1)
        queue.push("c", "d", priority=0.5)
        queue.push("b", "a", priority=0.9)  # same canonical pair, higher priority
        assert len(queue) == 2
        assert queue.pop() == ("a", "b")

    def test_remove_is_lazy_but_effective(self):
        queue = ComparisonQueue()
        queue.push("a", "b", priority=0.9)
        queue.push("c", "d", priority=0.5)
        queue.remove("a", "b")
        assert ("a", "b") not in queue
        assert queue.pop() == ("c", "d")
        assert queue.pop() is None

    def test_priority_of_and_contains(self):
        queue = ComparisonQueue()
        queue.push("a", "b", priority=0.3)
        assert queue.priority_of("b", "a") == 0.3
        assert ("b", "a") in queue
        assert queue.priority_of("x", "y") is None


class SimpleResolver(QueueBasedResolver):
    """Fills the queue with every candidate pair of a fixed list (for testing)."""

    def __init__(self, matcher, pairs, budget=None):
        super().__init__(matcher, budget=budget)
        self.pairs = pairs
        self.match_events = []
        self.non_match_events = []

    def initialize(self, data, queue):
        for first, second in self.pairs:
            queue.push(first, second, priority=1.0)

    def on_match(self, data, queue, decision, result):
        self.match_events.append(decision.pair)

    def on_non_match(self, data, queue, decision, result):
        self.non_match_events.append(decision.pair)


@pytest.fixture()
def collection():
    return EntityCollection(
        [EntityDescription(identifier, {"name": identifier}) for identifier in ["a", "b", "c", "d"]]
    )


def test_queue_based_resolver_runs_until_queue_empty(collection):
    truth = GroundTruth([["a", "b"], ["c", "d"]])
    resolver = SimpleResolver(OracleMatcher(truth), [("a", "b"), ("a", "c"), ("c", "d")])
    result = resolver.resolve(collection)
    assert result.comparisons_executed == 3
    assert set(result.matches) == {("a", "b"), ("c", "d")}
    assert resolver.match_events == [("a", "b"), ("c", "d")]
    assert resolver.non_match_events == [("a", "c")]


def test_queue_based_resolver_respects_budget(collection):
    truth = GroundTruth([["a", "b"], ["c", "d"]])
    resolver = SimpleResolver(
        OracleMatcher(truth), [("a", "b"), ("a", "c"), ("c", "d")], budget=1
    )
    result = resolver.resolve(collection)
    assert result.comparisons_executed == 1


def test_queue_based_resolver_skips_missing_descriptions(collection):
    truth = GroundTruth([["a", "b"]])
    resolver = SimpleResolver(OracleMatcher(truth), [("a", "missing"), ("a", "b")])
    result = resolver.resolve(collection)
    assert result.comparisons_executed == 1
    assert result.matches == [("a", "b")]
