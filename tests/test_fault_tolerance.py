"""Chaos suite: the parallel engine under worker kills, hangs and stragglers.

The fault-tolerance contract (see :mod:`repro.mapreduce.supervisor`) is that a
worker failure never changes a result and never leaks a shared-memory
segment -- the supervisor retries lost shards on a rebuilt pool and, when the
retries run out, either recomputes them serially on the driver
(``"degrade"``) or aborts loudly (``"raise"``).  This module proves it the
only way that can be proven: by killing, hanging and delaying workers at
exact (stage, shard, attempt) coordinates via :mod:`repro.mapreduce.faults`
and asserting bit-identity against the serial baseline, the expected
``fault_events`` bookkeeping, and an orphan-free ``/dev/shm`` afterwards.

The kill matrix covers every workflow-reachable supervisor stage label; the
two labels only reachable through direct engine calls (``propagation``,
``weights``) get dedicated tests.  Set ``REPRO_TEST_START_METHOD=spawn`` to
re-run the whole module over spawned pools (the CI chaos job does both).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings

import pytest

from repro.blocking.cleaning import BlockFiltering, BlockPurging
from repro.blocking.engine import BlockingEngine
from repro.blocking.token_blocking import TokenBlocking
from repro.core.config import WorkflowConfig
from repro.core.context import PipelineContext
from repro.core.results import WorkflowResult
from repro.core.workflow import ERWorkflow
from repro.mapreduce import faults, shm
from repro.mapreduce.faults import FaultSpec
from repro.mapreduce.parallel import ParallelEngine
from repro.mapreduce.supervisor import (
    DegradedExecutionWarning,
    Supervisor,
    WorkerFailureError,
    shutdown_pool,
)
from repro.metablocking.entity_index import EntityIndexEngine
from repro import cli

#: honoured by the autouse fixture below; the CI chaos job sets "spawn"
START_METHOD = os.environ.get("REPRO_TEST_START_METHOD") or None


@pytest.fixture(autouse=True)
def _forced_start_method(monkeypatch):
    """Run every engine in this module under ``REPRO_TEST_START_METHOD``."""
    if START_METHOD is None:
        yield
        return
    original = ParallelEngine.__init__

    def patched(self, *args, **kwargs):
        kwargs.setdefault("start_method", START_METHOD)
        original(self, *args, **kwargs)

    monkeypatch.setattr(ParallelEngine, "__init__", patched)
    yield


@pytest.fixture(autouse=True)
def _no_armed_fault():
    """No test may leak an armed fault spec into its successors."""
    yield
    faults.clear()


def assert_no_orphans():
    assert shm.orphaned_segments() == []


# ---------------------------------------------------------------------------
# workflow-level chaos matrix
# ---------------------------------------------------------------------------

#: pipeline configurations and the supervisor stage labels each one reaches
CONFIG_OVERRIDES = {
    "default": {},
    "wep": {"weighting_scheme": "ARCS", "pruning_scheme": "WEP"},
    "cnp": {"pruning_scheme": "CNP"},
    "cep": {"weighting_scheme": "EJS", "pruning_scheme": "CEP"},
}

STAGE_TO_CONFIG = {
    "interning": "default",
    "postings": "default",
    "cardinalities": "default",
    "filtering": "default",
    "wnp_stats": "default",
    "wnp_emit": "default",
    "weight_sort": "default",
    "clustering": "default",
    "scoring": "default",
    "wep_stats": "wep",
    "wep_emit": "wep",
    "cnp": "cnp",
    "cep": "cep",
    "degrees": "cep",
}

WORKFLOW_STAGES = sorted(STAGE_TO_CONFIG)


def _make_config(config_key: str, **overrides) -> WorkflowConfig:
    fields = dict(CONFIG_OVERRIDES[config_key])
    fields.update(overrides)
    return WorkflowConfig(**fields)


def _result_fingerprint(result: WorkflowResult):
    return (result.clusters, result.matches, result.comparisons_executed)


@pytest.fixture(scope="module")
def baselines(small_dirty_dataset):
    """Serial (``num_workers=1``) oracle results, one per configuration."""
    out = {}
    for key in CONFIG_OVERRIDES:
        result = ERWorkflow(_make_config(key)).run(small_dirty_dataset.collection)
        assert result.fault_events == {}
        out[key] = _result_fingerprint(result)
    return out


def _run_faulted(dataset, config_key, spec, **config_overrides):
    config_overrides.setdefault("num_workers", 2)
    config = _make_config(config_key, **config_overrides)
    with faults.injected(spec):
        return ERWorkflow(config).run(dataset.collection)


class TestWorkflowKillMatrix:
    @pytest.mark.parametrize("stage", WORKFLOW_STAGES)
    def test_kill_worker_once_per_stage(self, small_dirty_dataset, baselines, stage):
        config_key = STAGE_TO_CONFIG[stage]
        result = _run_faulted(
            small_dirty_dataset, config_key, FaultSpec(stage=stage, mode="kill")
        )
        # not vacuous: the fault must actually have fired at this stage
        assert stage in result.fault_events
        assert result.fault_events[stage]["retries"] >= 1
        assert result.fault_events[stage]["pool_rebuilds"] >= 1
        assert result.fault_events[stage]["degraded"] == 0
        assert _result_fingerprint(result) == baselines[config_key]
        assert_no_orphans()

    @pytest.mark.parametrize("stage", ("postings", "clustering"))
    def test_hung_worker_recovered_by_timeout(self, small_dirty_dataset, baselines, stage):
        result = _run_faulted(
            small_dirty_dataset,
            "default",
            FaultSpec(stage=stage, mode="hang"),
            worker_timeout=1.0,
        )
        assert result.fault_events[stage]["retries"] >= 1
        assert _result_fingerprint(result) == baselines["default"]
        assert_no_orphans()

    @pytest.mark.parametrize("stage", ("interning", "wnp_emit"))
    def test_straggler_worker_changes_nothing(self, small_dirty_dataset, baselines, stage):
        # a delayed worker needs no recovery at all -- and must not get any
        result = _run_faulted(
            small_dirty_dataset,
            "default",
            FaultSpec(stage=stage, mode="delay", seconds=0.3),
        )
        assert result.fault_events == {}
        assert _result_fingerprint(result) == baselines["default"]
        assert_no_orphans()

    @pytest.mark.parametrize("stage", ("postings", "scoring"))
    def test_kill_at_four_workers(self, small_dirty_dataset, baselines, stage):
        result = _run_faulted(
            small_dirty_dataset,
            "default",
            FaultSpec(stage=stage, mode="kill", shard=1),
            num_workers=4,
        )
        assert result.fault_events[stage]["retries"] >= 1
        assert _result_fingerprint(result) == baselines["default"]
        assert_no_orphans()

    def test_persistent_kill_degrades_serially(self, small_dirty_dataset, baselines):
        # the shard dies on every pool attempt: retries exhaust, the driver
        # recomputes it inline, and the run still matches the oracle
        with pytest.warns(DegradedExecutionWarning):
            result = _run_faulted(
                small_dirty_dataset,
                "default",
                FaultSpec(stage="postings", mode="kill", attempts=99),
                max_shard_retries=1,
            )
        counts = result.fault_events["postings"]
        assert counts["degraded"] >= 1
        assert counts["retries"] >= 1
        assert result.degraded_shards >= 1
        assert _result_fingerprint(result) == baselines["default"]
        assert_no_orphans()

    def test_raise_policy_aborts_the_run(self, small_dirty_dataset):
        with pytest.raises(WorkerFailureError) as excinfo:
            _run_faulted(
                small_dirty_dataset,
                "default",
                FaultSpec(stage="postings", mode="kill", attempts=99),
                max_shard_retries=1,
                on_worker_failure="raise",
            )
        assert excinfo.value.stage == "postings"
        assert excinfo.value.attempts == 2  # initial dispatch + 1 retry
        assert_no_orphans()

    def test_fault_events_reach_the_stage_report(self, small_dirty_dataset):
        result = _run_faulted(
            small_dirty_dataset, "default", FaultSpec(stage="postings", mode="kill")
        )
        stages = [stage.stage for stage in result.report]
        assert "fault_recovery[postings]" in stages
        assert "worker faults survived" in result.summary()


# ---------------------------------------------------------------------------
# direct-engine stages the workflow cannot reach
# ---------------------------------------------------------------------------


class TestDirectEngineStages:
    @pytest.fixture(scope="class")
    def dirty_blocks(self, small_dirty_dataset):
        data = small_dirty_dataset.collection
        context = PipelineContext(data)
        blocks = BlockingEngine(
            TokenBlocking(max_block_fraction=0.5), context=context
        ).build(data)
        return blocks

    def test_kill_during_propagation(self, dirty_blocks):
        purging, filtering = BlockPurging(), BlockFiltering(0.8)
        expected = BlockingEngine().clean(
            dirty_blocks, purging=purging, filtering=filtering, propagate=True
        )
        with faults.injected(FaultSpec(stage="propagation", mode="kill")):
            with ParallelEngine(num_workers=2) as par:
                got = BlockingEngine(parallel=par).clean(
                    dirty_blocks, purging=purging, filtering=filtering, propagate=True
                )
                assert par.fault_stats["propagation"]["retries"] >= 1
        snap = lambda blocks: [(b.key, tuple(b.members)) for b in blocks]
        assert snap(got) == snap(expected)
        assert_no_orphans()

    def test_kill_during_node_weights(self, dirty_blocks):
        sequential = EntityIndexEngine(dirty_blocks)
        expected = [
            (e.first, e.second, e.weight)
            for e in sequential.iter_retained("CBS", "WNP")
        ]
        sharded = EntityIndexEngine(dirty_blocks)
        with faults.injected(FaultSpec(stage="weights", mode="kill")):
            with ParallelEngine(num_workers=2) as par:
                assert par.install_node_weights(sharded)
                # the pooled source is lazy: the fault fires (and recovery
                # happens) while the pruning pass drains the weight rounds
                got = [
                    (e.first, e.second, e.weight)
                    for e in sharded.iter_retained("CBS", "WNP")
                ]
                assert par.fault_stats["weights"]["retries"] >= 1
        assert got == expected
        assert_no_orphans()


# ---------------------------------------------------------------------------
# supervisor unit behaviour
# ---------------------------------------------------------------------------


def _square_job(task):
    return task[0] * task[0]


def _failing_job(task):
    raise ValueError(f"deterministic data error on {task[0]}")


def _pool_factory():
    context = (
        multiprocessing.get_context(START_METHOD)
        if START_METHOD is not None
        else multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
    )
    return context.Pool(processes=2, initializer=faults.mark_worker)


class TestSupervisorUnit:
    def test_results_arrive_in_task_order(self):
        supervisor = Supervisor(_pool_factory)
        try:
            got = supervisor.run(_square_job, [(i,) for i in range(8)], "unit")
        finally:
            supervisor.shutdown()
        assert got == [i * i for i in range(8)]
        assert supervisor.stats == {}

    def test_deterministic_job_exception_is_not_retried(self):
        # a job that raises on its own data would raise on every retry:
        # the exception must propagate unchanged, exactly like pool.map
        supervisor = Supervisor(_pool_factory)
        try:
            with pytest.raises(ValueError, match="deterministic data error"):
                supervisor.run(_failing_job, [(1,)], "unit")
        finally:
            supervisor.shutdown()
        assert supervisor.stats == {}

    def test_kill_mid_batch_recovers_other_shards_too(self):
        supervisor = Supervisor(_pool_factory, max_retries=3)
        try:
            with faults.injected(FaultSpec(stage="unit", mode="kill", shard=2)):
                got = supervisor.run(_square_job, [(i,) for i in range(6)], "unit")
        finally:
            supervisor.shutdown()
        assert got == [i * i for i in range(6)]
        assert supervisor.stats["unit"]["pool_rebuilds"] >= 1

    def test_invalid_policy_and_retries_rejected(self):
        with pytest.raises(ValueError, match="on_failure"):
            Supervisor(_pool_factory, on_failure="shrug")
        with pytest.raises(ValueError, match="non-negative"):
            Supervisor(_pool_factory, max_retries=-1)

    def test_shutdown_is_idempotent(self):
        supervisor = Supervisor(_pool_factory)
        supervisor.run(_square_job, [(3,)], "unit")
        supervisor.shutdown()
        supervisor.shutdown()

    def test_shutdown_pool_never_hangs_on_wedged_worker(self):
        # the satellite regression: close()+join() on a pool whose worker is
        # stuck in an hour-long sleep must return within the watchdog window
        pool = _pool_factory()
        pool.apply_async(time.sleep, (3600,))
        time.sleep(0.2)  # let the sleep actually start in a worker
        started = time.monotonic()
        shutdown_pool(pool, graceful=True, join_timeout=2.0)
        assert time.monotonic() - started < 10.0


# ---------------------------------------------------------------------------
# fault spec plumbing
# ---------------------------------------------------------------------------


class TestFaultSpec:
    def test_encode_decode_roundtrip(self):
        spec = FaultSpec(stage="wnp_stats", mode="delay", shard=3, attempts=2, seconds=0.5)
        assert FaultSpec.decode(spec.encode()) == spec

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultSpec(stage="postings", mode="explode")

    def test_malformed_env_value_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            FaultSpec.decode("stage=postings")  # no mode
        with pytest.raises(ValueError, match="malformed"):
            FaultSpec.decode("stage=postings;mode=kill;shard=three")

    def test_injected_context_arms_and_disarms(self):
        assert faults.active() is None
        with faults.injected(FaultSpec(stage="postings", mode="kill")) as spec:
            assert faults.active() == spec
        assert faults.active() is None

    def test_driver_process_never_triggers(self):
        # maybe_trigger on the driver is inert even with a matching armed
        # spec -- otherwise the degraded serial recomputation would re-die
        with faults.injected(FaultSpec(stage="anywhere", mode="kill")):
            faults.maybe_trigger("anywhere", 0, 0)  # must not SIGKILL us


# ---------------------------------------------------------------------------
# shared-memory janitor
# ---------------------------------------------------------------------------


@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="no /dev/shm")
class TestShmJanitor:
    def test_dead_pid_segment_is_orphaned_and_swept(self):
        # fabricate a segment whose encoded owner pid cannot be alive
        dead_pid = 2**22 + 12345  # beyond any default pid_max namespace
        try:
            os.kill(dead_pid, 0)
            pytest.skip("improbable: fabricated pid is alive")
        except (ProcessLookupError, OverflowError):
            pass
        name = f"repro-{dead_pid}-deadbee-0"
        path = os.path.join("/dev/shm", name)
        with open(path, "wb") as handle:
            handle.write(b"\0" * 64)
        try:
            assert name in shm.orphaned_segments()
            swept = shm.sweep()
            assert name in swept
            assert not os.path.exists(path)
        finally:
            if os.path.exists(path):
                os.unlink(path)

    def test_own_pid_unregistered_segment_is_orphaned(self):
        # same pid as us but never registered: created-and-lost, reclaimable
        name = f"repro-{os.getpid()}-l0st00-0"
        path = os.path.join("/dev/shm", name)
        with open(path, "wb") as handle:
            handle.write(b"\0" * 64)
        try:
            assert name in shm.orphaned_segments()
        finally:
            os.unlink(path)

    def test_live_engine_segments_are_never_orphans(self, small_dirty_dataset):
        data = small_dirty_dataset.collection
        context = PipelineContext(data)
        with ParallelEngine(num_workers=2) as par:
            blocks = BlockingEngine(
                TokenBlocking(max_block_fraction=0.5), context=context, parallel=par
            ).build(data)
            assert blocks
            # the engine's own segments are registered and must be invisible
            # to the janitor while the engine lives
            live = [s._shm.name for s in par._segments]
            assert live  # the postings pass shipped at least one segment
            orphans = shm.orphaned_segments()
            assert not set(live) & set(orphans)
        assert_no_orphans()

    def test_foreign_shm_names_are_ignored(self):
        # multiprocessing's own psm_* segments and arbitrary files must
        # never be touched by the janitor
        assert shm._owner_pid("psm_deadbeef") is None
        assert shm._owner_pid("not-ours") is None
        assert shm._owner_pid("repro-notapid-xyz-0") is None


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCliFaultReporting:
    def _result(self, degraded: int) -> WorkflowResult:
        result = WorkflowResult()
        result.fault_events = {
            "postings": {"retries": 2, "degraded": degraded, "pool_rebuilds": 2}
        }
        return result

    def test_counts_are_printed(self, capsys):
        code = cli._report_faults(self._result(degraded=0), strict=False)
        out = capsys.readouterr().out
        assert code == 0
        assert "worker faults survived in postings" in out
        assert "retries=2" in out

    def test_strict_exit_on_degradation(self, capsys):
        assert cli._report_faults(self._result(degraded=1), strict=False) == 0
        assert (
            cli._report_faults(self._result(degraded=1), strict=True)
            == cli.EXIT_DEGRADED
        )
        assert "--strict" in capsys.readouterr().out

    def test_strict_tolerates_clean_recovery(self):
        # retries without degradation are a success story, not a failure
        assert cli._report_faults(self._result(degraded=0), strict=True) == 0

    def test_parser_accepts_fault_knobs(self):
        parser = cli.build_parser()
        args = parser.parse_args(
            [
                "resolve",
                "input.csv",
                "--num-workers",
                "2",
                "--worker-timeout",
                "5",
                "--max-shard-retries",
                "1",
                "--on-worker-failure",
                "raise",
                "--strict",
            ]
        )
        assert args.worker_timeout == 5.0
        assert args.max_shard_retries == 1
        assert args.on_worker_failure == "raise"
        assert args.strict
