"""Tests for relationship-based (collective) iterative ER."""

import pytest

from repro.datamodel.collection import EntityCollection
from repro.datamodel.description import EntityDescription
from repro.evaluation.metrics import evaluate_matches
from repro.iterative.collective import AttributeOnlyER, CollectiveER
from repro.matching.matchers import ProfileSimilarityMatcher


def make_relational_collection():
    """Two ambiguous author descriptions disambiguated only by their papers.

    The 'j smith' author descriptions a1/a2 describe the same person (they
    authored the two copies of the same paper) but share few attribute tokens,
    while a3 is a *different* 'j smith' who authored an unrelated paper and is
    attribute-wise at least as similar to a1 as a2 is.  Attribute similarity
    alone therefore cannot both unite a1-a2 and separate a3; the authored
    publications can.
    """
    return EntityCollection(
        [
            EntityDescription("p1", {"title": "entity resolution on big data"}, relationships={"author": ["a1"]}),
            EntityDescription("p2", {"title": "entity resolution for big data"}, relationships={"author": ["a2"]}),
            EntityDescription("p3", {"title": "quantum chromodynamics on lattices"}, relationships={"author": ["a3"]}),
            EntityDescription("a1", {"name": "j smith", "affiliation": "mit"}),
            EntityDescription("a2", {"name": "j smith", "office": "cambridge ma"}),
            EntityDescription("a3", {"name": "j smith"}),
        ]
    )


class TestCollectiveER:
    def test_relationship_weight_validation(self):
        with pytest.raises(ValueError):
            CollectiveER(relationship_weight=1.5)

    def test_relational_evidence_separates_ambiguous_pairs(self):
        collection = make_relational_collection()
        resolver = CollectiveER(
            match_threshold=0.6, relationship_weight=0.5, candidate_threshold=0.0
        )
        result = resolver.resolve(collection)
        clusters = {frozenset(c) for c in result.clusters}
        # papers p1/p2 match on attributes; that merge raises the relational
        # similarity of (a1, a2) above the threshold, while (a1, a3) stays below
        assert any({"a1", "a2"} <= cluster for cluster in clusters)
        assert not any({"a1", "a3"} <= cluster or {"a2", "a3"} <= cluster for cluster in clusters)
        assert result.relational_rescues >= 1
        assert result.requeue_events >= 1

    def test_budget_limits_similarity_evaluations(self):
        collection = make_relational_collection()
        resolver = CollectiveER(budget=3, candidate_threshold=0.0)
        result = resolver.resolve(collection)
        assert result.comparisons_executed <= 3 + len(list(collection)) ** 2  # init phase included

    def test_explicit_candidates_are_respected(self):
        from repro.datamodel.pairs import Comparison

        collection = make_relational_collection()
        resolver = CollectiveER(match_threshold=0.4, candidate_threshold=0.0)
        result = resolver.resolve(collection, candidates=[Comparison("p1", "p2")])
        assert set(result.matches) == {("p1", "p2")}


class TestAttributeOnlyBaseline:
    def test_attribute_only_cannot_separate_ambiguous_authors(self):
        collection = make_relational_collection()
        # permissive threshold: the distinct author a3 is absorbed (over-merge)
        permissive = AttributeOnlyER(match_threshold=0.3).resolve(collection)
        permissive_clusters = {frozenset(c) for c in permissive.clusters}
        assert any({"a1", "a2", "a3"} <= cluster for cluster in permissive_clusters)
        # strict threshold: the true duplicate pair a1-a2 is missed (under-merge)
        strict = AttributeOnlyER(match_threshold=0.6).resolve(collection)
        strict_clusters = {frozenset(c) for c in strict.clusters}
        assert not any({"a1", "a2"} <= cluster for cluster in strict_clusters)

    def test_collective_beats_attribute_only_on_bibliographic_data(self, small_bibliographic_dataset):
        collection = small_bibliographic_dataset.collection
        truth = small_bibliographic_dataset.ground_truth
        threshold = 0.65  # strict: attribute similarity alone misses many noisy duplicates
        collective = CollectiveER(
            match_threshold=threshold, relationship_weight=0.4, candidate_threshold=0.05
        ).resolve(collection)
        attribute_only = AttributeOnlyER(match_threshold=threshold).resolve(collection)
        collective_quality = evaluate_matches(collective.matched_pairs(), truth)
        attribute_quality = evaluate_matches(attribute_only.matched_pairs(), truth)
        # relational evidence rescues matches the attribute matcher misses,
        # without sacrificing precision
        assert collective.relational_rescues > 0
        assert collective_quality.recall > attribute_quality.recall
        assert collective_quality.f1 > attribute_quality.f1
        assert collective_quality.precision >= attribute_quality.precision - 0.05
