"""Tests for the versioned columnar snapshot format (:mod:`repro.core.snapshot`).

The format is a service interface: the pure-Python writer must emit bytes
that NumPy's own loader accepts, both readers (``np.load`` memmap and
``mmap`` + ``memoryview``) must see identical values, and version or
inventory mismatches must fail loudly instead of misreading state.
"""

from __future__ import annotations

import json
import subprocess
import sys
from array import array
from pathlib import Path

import pytest

from repro.core.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    SnapshotReader,
    SnapshotWriter,
    read_npy,
    write_npy,
)

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

requires_numpy = pytest.mark.skipif(np is None, reason="requires numpy")


def test_npy_round_trip_pure_python(tmp_path):
    values = array("q", [0, 1, -1, 2**62, -(2**62), 42])
    path = tmp_path / "col.npy"
    write_npy(path, [values], len(values))
    loaded = read_npy(path, use_numpy=False)
    assert list(loaded) == list(values)
    # slicing and indexing work on the memoryview reader
    assert loaded[2] == -1
    assert list(loaded[1:3]) == [1, -1]


def test_npy_streams_multiple_chunks(tmp_path):
    path = tmp_path / "col.npy"
    write_npy(path, [array("q", [1, 2]), array("q", []), array("q", [3])], 3)
    assert list(read_npy(path, use_numpy=False)) == [1, 2, 3]


def test_npy_count_mismatch_is_an_error(tmp_path):
    with pytest.raises(ValueError):
        write_npy(tmp_path / "col.npy", [array("q", [1, 2])], 3)


def test_npy_data_section_is_64_byte_aligned(tmp_path):
    # alignment is what makes memoryview.cast('q') legal on the mapped file
    path = tmp_path / "col.npy"
    write_npy(path, [array("q", [7])], 1)
    raw = path.read_bytes()
    header_size = len(raw) - 8  # one int64 of payload
    assert header_size % 64 == 0


@requires_numpy
def test_numpy_reads_pure_python_bytes(tmp_path):
    values = array("q", range(-5, 100))
    path = tmp_path / "col.npy"
    write_npy(path, [values], len(values))
    loaded = np.load(str(path))
    assert loaded.dtype == np.int64
    assert loaded.ndim == 1
    assert loaded.tolist() == list(values)
    # and the memmap reader of this module agrees with the pure one
    assert list(read_npy(path, use_numpy=True)) == list(read_npy(path, use_numpy=False))


@requires_numpy
def test_pure_python_reads_numpy_bytes(tmp_path):
    path = tmp_path / "col.npy"
    np.save(str(path), np.arange(17, dtype=np.int64))
    assert list(read_npy(path, use_numpy=False)) == list(range(17))


def test_snapshot_directory_round_trip(tmp_path):
    writer = SnapshotWriter(tmp_path / "snap")
    writer.column("numbers", array("q", [3, 1, 4, 1, 5]))
    writer.column("empty", array("q"))
    writer.strings("names", ["alpha", "", "βήτα", "gamma"])
    writer.meta(kind="unit-test", threshold=0.5)
    writer.close()

    reader = SnapshotReader(tmp_path / "snap")
    assert list(reader.column("numbers")) == [3, 1, 4, 1, 5]
    assert list(reader.column("empty")) == []
    assert reader.strings("names") == ["alpha", "", "βήτα", "gamma"]
    assert reader.meta == {"kind": "unit-test", "threshold": 0.5}
    with pytest.raises(KeyError):
        reader.column("missing")
    with pytest.raises(KeyError):
        reader.strings("numbers")


def test_snapshot_rejects_duplicate_columns(tmp_path):
    writer = SnapshotWriter(tmp_path / "snap")
    writer.column("col", array("q", [1]))
    with pytest.raises(ValueError):
        writer.column("col", array("q", [2]))
    with pytest.raises(ValueError):
        writer.strings("col", ["x"])


def test_snapshot_requires_manifest(tmp_path):
    (tmp_path / "snap").mkdir()
    with pytest.raises(FileNotFoundError):
        SnapshotReader(tmp_path / "snap")


def test_snapshot_rejects_unknown_format_version(tmp_path):
    writer = SnapshotWriter(tmp_path / "snap")
    writer.column("col", array("q", [1]))
    writer.close()
    manifest_path = tmp_path / "snap" / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["format_version"] = SNAPSHOT_FORMAT_VERSION + 1
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(ValueError, match="format version"):
        SnapshotReader(tmp_path / "snap")


def test_snapshot_validates_column_lengths(tmp_path):
    writer = SnapshotWriter(tmp_path / "snap")
    writer.column("col", array("q", [1, 2, 3]))
    writer.close()
    # truncate the column behind the manifest's back
    write_npy(tmp_path / "snap" / "col.npy", [array("q", [1, 2])], 2)
    with pytest.raises(ValueError, match="manifest declares"):
        SnapshotReader(tmp_path / "snap").column("col")


# ----------------------------------------------------------------------
# integrity: every corruption must fail loudly, never misread
# ----------------------------------------------------------------------
def _write_sample_snapshot(target) -> None:
    with SnapshotWriter(target) as writer:
        writer.column("numbers", array("q", [3, 1, 4, 1, 5, 9, 2, 6]))
        writer.strings("names", ["alpha", "beta", "gamma"])
        writer.meta(kind="integrity-test")


def test_flipped_byte_fails_crc(tmp_path):
    target = tmp_path / "snap"
    _write_sample_snapshot(target)
    payload = bytearray((target / "numbers.npy").read_bytes())
    payload[-1] ^= 0xFF  # corrupt the last data byte; length is unchanged
    (target / "numbers.npy").write_bytes(payload)
    with pytest.raises(SnapshotError, match="CRC32"):
        SnapshotReader(target).column("numbers")


def test_truncated_blob_is_detected(tmp_path):
    target = tmp_path / "snap"
    _write_sample_snapshot(target)
    blob = (target / "names.blob").read_bytes()
    (target / "names.blob").write_bytes(blob[:-3])
    with pytest.raises(SnapshotError, match="truncated or overwritten"):
        SnapshotReader(target).strings("names")


def test_wrong_recorded_checksum_is_detected(tmp_path):
    target = tmp_path / "snap"
    _write_sample_snapshot(target)
    manifest_path = target / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["checksums"]["numbers.npy"][0] ^= 0xDEAD
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(SnapshotError, match="CRC32"):
        SnapshotReader(target).column("numbers")


def test_missing_checksum_entry_is_detected(tmp_path):
    target = tmp_path / "snap"
    _write_sample_snapshot(target)
    manifest_path = target / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    del manifest["checksums"]["numbers.npy"]
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(SnapshotError, match="no checksum"):
        SnapshotReader(target).column("numbers")


def test_garbage_manifest_is_a_snapshot_error(tmp_path):
    target = tmp_path / "snap"
    _write_sample_snapshot(target)
    (target / "manifest.json").write_text("{not json")
    with pytest.raises(SnapshotError, match="not valid JSON"):
        SnapshotReader(target)


def test_missing_data_file_is_partial(tmp_path):
    target = tmp_path / "snap"
    _write_sample_snapshot(target)
    (target / "numbers.npy").unlink()
    with pytest.raises(SnapshotError, match="partial"):
        SnapshotReader(target).column("numbers")


def test_legacy_manifest_loads_with_warning(tmp_path):
    # snapshots written before format 1.1 carry no checksums: they must
    # still load, but say so
    target = tmp_path / "snap"
    _write_sample_snapshot(target)
    manifest_path = target / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    del manifest["checksums"]
    manifest_path.write_text(json.dumps(manifest))
    with pytest.warns(RuntimeWarning, match="integrity cannot be verified"):
        reader = SnapshotReader(target)
    assert list(reader.column("numbers")) == [3, 1, 4, 1, 5, 9, 2, 6]
    assert reader.strings("names") == ["alpha", "beta", "gamma"]


# ----------------------------------------------------------------------
# crash safety: the target is always the old snapshot or the new one
# ----------------------------------------------------------------------
def _snapshot_bytes(target) -> dict:
    return {entry.name: entry.read_bytes() for entry in sorted(Path(target).iterdir())}


def test_overwrite_is_atomic_and_leaves_no_leftovers(tmp_path):
    target = tmp_path / "snap"
    _write_sample_snapshot(target)
    with SnapshotWriter(target) as writer:
        writer.column("numbers", array("q", [42]))
        writer.strings("names", ["delta"])
    reader = SnapshotReader(target)
    assert list(reader.column("numbers")) == [42]
    assert reader.strings("names") == ["delta"]
    # no staging or displaced directories survive the swap
    assert [entry.name for entry in tmp_path.iterdir()] == ["snap"]


def test_abort_leaves_previous_snapshot_intact(tmp_path):
    target = tmp_path / "snap"
    _write_sample_snapshot(target)
    before = _snapshot_bytes(target)
    writer = SnapshotWriter(target)
    writer.column("numbers", array("q", [7, 7, 7]))
    writer.abort()
    assert _snapshot_bytes(target) == before
    assert [entry.name for entry in tmp_path.iterdir()] == ["snap"]


def test_writer_exception_aborts_not_publishes(tmp_path):
    target = tmp_path / "snap"
    _write_sample_snapshot(target)
    before = _snapshot_bytes(target)
    with pytest.raises(RuntimeError, match="boom"):
        with SnapshotWriter(target) as writer:
            writer.column("numbers", array("q", [9]))
            raise RuntimeError("boom")
    assert _snapshot_bytes(target) == before
    assert [entry.name for entry in tmp_path.iterdir()] == ["snap"]


def test_unfinished_writer_never_touches_target(tmp_path):
    target = tmp_path / "snap"
    writer = SnapshotWriter(target)
    writer.column("numbers", array("q", [1, 2, 3]))
    # no close(): the target must not exist at all
    assert not target.exists()
    writer.abort()


def test_save_killed_mid_write_leaves_old_snapshot_loadable(tmp_path):
    """The satellite regression: SIGKILL during ``IncrementalIndex.save``
    over an existing snapshot must leave the old snapshot byte-identical
    and loadable -- the all-or-nothing overwrite contract."""
    from repro.datasets import DatasetConfig, generate_dirty_dataset
    from repro.iterative.index import IncrementalIndex
    from repro.matching import ProfileSimilarityMatcher

    dataset = generate_dirty_dataset(DatasetConfig(num_entities=15, seed=3))
    index = IncrementalIndex(ProfileSimilarityMatcher(threshold=0.5))
    for description in dataset.collection:
        index.add(description)
    target = tmp_path / "snap"
    index.save(target)
    before = _snapshot_bytes(target)

    src_dir = str(Path(__file__).resolve().parent.parent / "src")
    script = f"""
import os, signal, sys
sys.path.insert(0, {src_dir!r})
from repro.core import snapshot
from repro.datasets import DatasetConfig, generate_dirty_dataset
from repro.iterative.index import IncrementalIndex
from repro.matching import ProfileSimilarityMatcher

calls = [0]
original = snapshot.SnapshotWriter.column
def dying(self, name, values):
    calls[0] += 1
    if calls[0] > 2:
        os.kill(os.getpid(), signal.SIGKILL)
    return original(self, name, values)
snapshot.SnapshotWriter.column = dying

dataset = generate_dirty_dataset(DatasetConfig(num_entities=25, seed=7))
index = IncrementalIndex(ProfileSimilarityMatcher(threshold=0.5))
for description in dataset.collection:
    index.add(description)
index.save({str(target)!r})
"""
    completed = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True, timeout=120
    )
    assert completed.returncode == -9, completed.stderr  # died by SIGKILL mid-save
    # the target is byte-identical to the pre-crash snapshot and loads
    assert _snapshot_bytes(target) == before
    restored = IncrementalIndex.load(target)
    assert restored.clusters() == index.clusters()
    # the crashed child's staging directory is the only debris; the target
    # itself was never touched
    debris = [e.name for e in tmp_path.iterdir() if e.name != "snap"]
    assert all(name.startswith(".snap.tmp-") for name in debris)


@requires_numpy
def test_snapshot_bytes_identical_across_numpy_modes(tmp_path):
    """The writer never uses NumPy, so the on-disk bytes cannot depend on it.

    This pins the cross-environment compatibility story: a snapshot written
    on a NumPy machine restores bit-identically on a pure-Python one and
    vice versa.
    """
    from repro.datasets import DatasetConfig, generate_dirty_dataset
    from repro.iterative.index import IncrementalIndex
    from repro.matching import ProfileSimilarityMatcher

    dataset = generate_dirty_dataset(DatasetConfig(num_entities=15, seed=3))
    digests = {}
    for use_numpy in (True, False):
        index = IncrementalIndex(
            ProfileSimilarityMatcher(threshold=0.5), use_numpy=use_numpy
        )
        for description in dataset.collection:
            index.add(description)
        target = tmp_path / f"snap-{use_numpy}"
        index.save(target)
        digests[use_numpy] = {
            entry.name: entry.read_bytes() for entry in sorted(target.iterdir())
        }
    assert digests[True] == digests[False]
