"""Tests for pairwise matchers and the oracle."""

import pytest

from repro.datamodel.description import EntityDescription
from repro.datamodel.ground_truth import GroundTruth
from repro.datamodel.pairs import Comparison
from repro.matching.matchers import (
    AttributeWeightedMatcher,
    ProfileSimilarityMatcher,
    RuleBasedMatcher,
    ThresholdRule,
)
from repro.matching.oracle import OracleMatcher
from repro.text.vectorizer import TfIdfVectorizer


def alan_a():
    return EntityDescription("a1", {"name": "Alan Turing", "city": "London"})


def alan_b():
    return EntityDescription("a2", {"label": "Alan M Turing", "place": "London"})


def grace():
    return EntityDescription("g1", {"name": "Grace Hopper", "city": "New York"})


class TestProfileSimilarityMatcher:
    def test_jaccard_mode_scores_and_decides(self):
        matcher = ProfileSimilarityMatcher(threshold=0.4)
        assert matcher.similarity(alan_a(), alan_b()) > matcher.similarity(alan_a(), grace())
        assert matcher.match(alan_a(), alan_b())
        assert not matcher.match(alan_a(), grace())

    def test_tfidf_mode_uses_vectorizer(self):
        corpus = [alan_a(), alan_b(), grace()]
        vectorizer = TfIdfVectorizer().fit(corpus)
        matcher = ProfileSimilarityMatcher(threshold=0.3, vectorizer=vectorizer)
        assert matcher.similarity(alan_a(), alan_b()) > matcher.similarity(alan_a(), grace())

    def test_decision_carries_cost_and_comparison(self):
        matcher = ProfileSimilarityMatcher(threshold=0.4, cost=2.5)
        decision = matcher.decide(alan_a(), alan_b())
        decision_pair = decision.pair
        assert decision_pair == ("a1", "a2")
        assert decision.cost == 2.5
        assert 0.0 <= decision.similarity <= 1.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ProfileSimilarityMatcher(threshold=1.5)

    def test_decide_all_resolves_identifiers(self, tiny_collection):
        matcher = ProfileSimilarityMatcher(threshold=0.3)
        comparisons = [Comparison("a1", "a2"), Comparison("a1", "missing")]
        with pytest.warns(RuntimeWarning, match="skipped 1 comparison"):
            decisions = matcher.decide_all(comparisons, tiny_collection)
        assert len(decisions) == 1  # the pair with a missing description is skipped
        assert decisions[0].comparison.pair == ("a1", "a2")
        # ... but the skip is counted and surfaced, not silent
        assert decisions.skipped == 1
        assert decisions.skipped_examples == [("a1", "missing")]

    def test_decide_all_without_skips_is_quiet(self, tiny_collection, recwarn):
        matcher = ProfileSimilarityMatcher(threshold=0.3)
        decisions = matcher.decide_all([Comparison("a1", "a2")], tiny_collection)
        assert decisions.skipped == 0
        assert decisions.skipped_examples == []
        assert not [w for w in recwarn.list if issubclass(w.category, RuntimeWarning)]


class TestAttributeWeightedMatcher:
    def test_weight_normalisation_and_scoring(self):
        matcher = AttributeWeightedMatcher({"name": 2.0, "city": 1.0}, threshold=0.7)
        assert sum(matcher.attribute_weights.values()) == pytest.approx(1.0)
        assert matcher.match(
            EntityDescription("x", {"name": "Alan Turing", "city": "London"}),
            EntityDescription("y", {"name": "Alan Turing", "city": "London"}),
        )

    def test_missing_attribute_on_both_sides_redistributes_weight(self):
        matcher = AttributeWeightedMatcher({"name": 1.0, "city": 1.0}, threshold=0.9)
        first = EntityDescription("x", {"name": "Alan Turing"})
        second = EntityDescription("y", {"name": "Alan Turing"})
        assert matcher.similarity(first, second) == pytest.approx(1.0)

    def test_missing_attribute_on_one_side_scores_zero_for_it(self):
        matcher = AttributeWeightedMatcher({"name": 1.0, "city": 1.0}, threshold=0.9)
        first = EntityDescription("x", {"name": "Alan Turing", "city": "London"})
        second = EntityDescription("y", {"name": "Alan Turing"})
        assert matcher.similarity(first, second) == pytest.approx(0.5)

    def test_set_similarity_option(self):
        matcher = AttributeWeightedMatcher({"name": 1.0}, similarity_name="jaccard", threshold=0.5)
        assert matcher.similarity(
            EntityDescription("x", {"name": "alan turing"}),
            EntityDescription("y", {"name": "turing alan"}),
        ) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AttributeWeightedMatcher({})
        with pytest.raises(ValueError):
            AttributeWeightedMatcher({"name": 0.0})

    def test_empty_descriptions_score_zero(self):
        matcher = AttributeWeightedMatcher({"name": 1.0})
        assert matcher.similarity(EntityDescription("x"), EntityDescription("y")) == 0.0


class TestRuleBasedMatcher:
    def test_conjunction_and_disjunction(self):
        rules = [
            ThresholdRule("name", 0.9, "jaro_winkler"),
            ThresholdRule("city", 0.9, "jaro_winkler"),
        ]
        same = (
            EntityDescription("x", {"name": "Alan Turing", "city": "London"}),
            EntityDescription("y", {"name": "Alan Turing", "city": "Londn"}),
        )
        conjunction = RuleBasedMatcher(rules, require_all=True)
        disjunction = RuleBasedMatcher(rules, require_all=False)
        assert disjunction.match(*same)
        # the typo in the city may or may not pass 0.9; conjunction is at most as permissive
        assert conjunction.match(*same) <= disjunction.match(*same)

    def test_requires_rules(self):
        with pytest.raises(ValueError):
            RuleBasedMatcher([])

    def test_missing_attribute_fails_rule(self):
        matcher = RuleBasedMatcher([ThresholdRule("city", 0.5)])
        assert not matcher.match(
            EntityDescription("x", {"name": "Alan"}), EntityDescription("y", {"city": "London"})
        )


class TestOracleMatcher:
    def test_perfect_oracle_answers_from_ground_truth(self):
        truth = GroundTruth([["a1", "a2"]])
        oracle = OracleMatcher(truth)
        assert oracle.match(alan_a(), alan_b())
        assert not oracle.match(alan_a(), grace())
        assert oracle.calls == 2

    def test_noisy_oracle_rates(self):
        truth = GroundTruth([["a1", "a2"]])
        always_wrong = OracleMatcher(truth, false_negative_rate=0.999, seed=1)
        assert not always_wrong.match(alan_a(), alan_b())
        false_positive = OracleMatcher(truth, false_positive_rate=0.999, seed=2)
        assert false_positive.match(alan_a(), grace())

    def test_rate_validation(self):
        truth = GroundTruth()
        with pytest.raises(ValueError):
            OracleMatcher(truth, false_negative_rate=1.0)
        with pytest.raises(ValueError):
            OracleMatcher(truth, false_positive_rate=-0.1)

    def test_merged_identifiers_are_resolved(self):
        truth = GroundTruth([["a1", "a2", "a3"]])
        oracle = OracleMatcher(truth)
        merged = EntityDescription("a1+a2", {"name": "Alan"})
        other = EntityDescription("a3", {"name": "Alan T"})
        assert oracle.match(merged, other)

    def test_reset_clears_call_counter(self):
        truth = GroundTruth([["a1", "a2"]])
        oracle = OracleMatcher(truth)
        oracle.match(alan_a(), alan_b())
        oracle.reset()
        assert oracle.calls == 0


class TestAttributeValueCache:
    def test_repeated_values_are_normalised_once(self):
        matcher = AttributeWeightedMatcher({"name": 1.0}, similarity_name="jaccard", threshold=0.5)
        first = EntityDescription("x", {"name": "Alan Turing"})
        second = EntityDescription("y", {"name": "Alan Turing"})
        score = matcher.similarity(first, second)
        assert score == pytest.approx(1.0)
        # both sides share one raw value, so the cache holds a single entry...
        assert set(matcher._value_cache) == {"Alan Turing"}
        cached = matcher._value_cache["Alan Turing"]
        matcher.similarity(first, second)
        # ...and re-scoring reuses the very same normalised object
        assert matcher._value_cache["Alan Turing"] is cached

    def test_cache_does_not_change_scores(self):
        for name in ("jaccard", "jaro_winkler"):
            matcher = AttributeWeightedMatcher({"name": 1.0}, similarity_name=name)
            fresh = AttributeWeightedMatcher({"name": 1.0}, similarity_name=name)
            a = EntityDescription("x", {"name": "Alan M. Turing"})
            b = EntityDescription("y", {"name": "alan turing"})
            warmed = matcher.similarity(a, b)
            assert matcher.similarity(a, b) == warmed  # cache hit path
            assert fresh.similarity(a, b) == warmed  # cold path agrees
