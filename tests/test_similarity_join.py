"""Tests for the prefix-filtering similarity-join blocking, including the
property that the join finds exactly the pairs a brute-force scan finds."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking.similarity_join import SimilarityJoinBlocking, _prefix_length, _required_overlap
from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datamodel.description import EntityDescription
from repro.text.similarity import jaccard_similarity
from repro.text.tokenize import token_set


def brute_force_pairs(collection, threshold, builder):
    """All pairs whose Jaccard similarity over the builder's tokens reaches the threshold."""
    tokens = {d.identifier: builder._record_tokens(d) for d in collection}
    result = set()
    for first, second in itertools.combinations(sorted(tokens), 2):
        if jaccard_similarity(tokens[first], tokens[second]) >= threshold:
            result.add((first, second))
    return result


def test_prefix_length_and_required_overlap_formulas():
    assert _prefix_length(10, 0.5) == 6
    assert _prefix_length(4, 1.0) == 1
    assert _required_overlap(4, 4, 0.5) == pytest.approx(8 / 3)


def test_threshold_validation():
    with pytest.raises(ValueError):
        SimilarityJoinBlocking(threshold=0.0)
    with pytest.raises(ValueError):
        SimilarityJoinBlocking(threshold=1.5)


def test_join_finds_expected_pairs_on_small_example():
    collection = EntityCollection(
        [
            EntityDescription("a", {"name": "alan mathison turing bletchley"}),
            EntityDescription("b", {"name": "alan turing bletchley park"}),
            EntityDescription("c", {"name": "grace brewster murray hopper"}),
            EntityDescription("d", {"name": "completely unrelated words here"}),
        ]
    )
    builder = SimilarityJoinBlocking(threshold=0.4)
    blocks = builder.build(collection)
    pairs = blocks.distinct_pairs()
    assert ("a", "b") in pairs
    assert ("c", "d") not in pairs
    assert builder.last_verified_count == len(pairs)
    assert builder.last_candidate_count >= builder.last_verified_count


def test_join_matches_brute_force_on_generated_data(small_dirty_dataset):
    collection = small_dirty_dataset.collection.sample(60, seed=1)
    builder = SimilarityJoinBlocking(threshold=0.5)
    join_pairs = builder.build(collection).distinct_pairs()
    expected = brute_force_pairs(collection, 0.5, builder)
    assert join_pairs == expected


def test_positional_filter_does_not_change_results(small_dirty_dataset):
    collection = small_dirty_dataset.collection.sample(50, seed=2)
    with_filter = SimilarityJoinBlocking(threshold=0.4, use_positional_filter=True)
    without_filter = SimilarityJoinBlocking(threshold=0.4, use_positional_filter=False)
    assert with_filter.build(collection).distinct_pairs() == without_filter.build(collection).distinct_pairs()
    assert with_filter.last_candidate_count <= without_filter.last_candidate_count


def test_clean_clean_join_only_returns_cross_pairs(small_clean_clean_dataset):
    task = small_clean_clean_dataset.task
    left = EntityCollection(list(task.left)[:30], name="l")
    right = EntityCollection(list(task.right)[:30], name="r")
    small_task = CleanCleanTask(left, right)
    blocks = SimilarityJoinBlocking(threshold=0.3).build(small_task)
    for first, second in blocks.distinct_pairs():
        assert small_task.is_valid_pair(first, second)


def test_join_pairs_returns_similarities():
    collection = EntityCollection(
        [
            EntityDescription("a", {"name": "alan turing"}),
            EntityDescription("b", {"name": "alan turing"}),
        ]
    )
    results = SimilarityJoinBlocking(threshold=0.5).join_pairs(collection)
    assert results == [("a", "b", 1.0)]


token_strategy = st.lists(
    st.sampled_from(["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]),
    min_size=1,
    max_size=5,
    unique=True,
)


@given(st.lists(token_strategy, min_size=2, max_size=12), st.sampled_from([0.3, 0.5, 0.7]))
@settings(max_examples=40, deadline=None)
def test_join_equals_brute_force_property(token_lists, threshold):
    collection = EntityCollection(
        [
            EntityDescription(f"r{i}", {"value": " ".join(tokens)})
            for i, tokens in enumerate(token_lists)
        ]
    )
    builder = SimilarityJoinBlocking(threshold=threshold, min_token_length=1, stop_words=None)
    join_pairs = builder.build(collection).distinct_pairs()
    expected = brute_force_pairs(collection, threshold, builder)
    assert join_pairs == expected
