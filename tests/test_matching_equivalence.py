"""Batch-vs-pairwise equivalence suite for the matching engines.

The per-pair matchers of :mod:`repro.matching.matchers` are the oracle;
``MatchingEngine("batch")`` must reproduce their decisions *bit for bit* --
exact float equality on every similarity, identical match booleans, identical
order, identical skip accounting -- across every matcher family, at exact
threshold ties, on merged (iterative) descriptions and on degenerate
profiles, with the NumPy and pure-Python scoring passes agreeing with each
other as well.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datamodel.description import EntityDescription, merge_descriptions
from repro.datamodel.pairs import Comparison
from repro.matching import (
    AttributeWeightedMatcher,
    MatchingEngine,
    ProfileSimilarityMatcher,
    RuleBasedMatcher,
    ThresholdRule,
)
from repro.progressive.runner import run_progressive
from repro.progressive.scheduler import CostBenefitScheduler
from repro.progressive.schedulers import WeightOrderScheduler
from repro.text.vectorizer import TfIdfVectorizer

try:
    import numpy  # noqa: F401

    HAS_NUMPY = True
except ImportError:
    HAS_NUMPY = False

NUMPY_MODES = (True, False) if HAS_NUMPY else (False,)

VOCABULARY = [
    "alan", "turing", "grace", "hopper", "ada", "lovelace", "london", "york",
    "mathematician", "scientist", "computing", "machine", "enigma", "compiler",
    "navy", "analytical", "bombe", "cambridge", "princeton", "logic",
    # deliberately include stop words and sub-minimum-length tokens
    "the", "of", "and", "a", "b", "42",
]


def _random_collection(seed: int, size: int = 48) -> EntityCollection:
    """A seeded collection with heavy token overlap plus degenerate profiles."""
    rng = random.Random(seed)
    descriptions = []
    for index in range(size):
        attributes = {}
        for attribute in ("name", "city", "occupation")[: rng.randint(1, 3)]:
            attributes[attribute] = " ".join(
                rng.choice(VOCABULARY) for _ in range(rng.randint(1, 6))
            )
        descriptions.append(EntityDescription(f"e{index:03d}", attributes))
    descriptions.append(EntityDescription("empty", {}))
    descriptions.append(EntityDescription("blank", {"name": ""}))
    # stop-word-only: empty profile in set mode, non-empty under TF-IDF
    descriptions.append(EntityDescription("stopwords", {"name": "the of and"}))
    # every token shorter than the default min_token_length of 2
    descriptions.append(EntityDescription("short", {"name": "a b a b"}))
    return EntityCollection(descriptions, name=f"equivalence-{seed}")


def _random_comparisons(collection: EntityCollection, seed: int, count: int = 400):
    identifiers = list(collection.identifiers)
    rng = random.Random(seed + 1)
    comparisons = []
    seen = set()
    while len(comparisons) < count:
        first, second = rng.sample(identifiers, 2)
        comparison = Comparison(first, second)
        if comparison.pair not in seen:
            seen.add(comparison.pair)
            comparisons.append(comparison)
    return comparisons


def _matchers(collection: EntityCollection):
    """One configured matcher per family (batch-native and fallback alike)."""
    vectorizer = TfIdfVectorizer().fit(iter(collection))
    return {
        "profile-jaccard": ProfileSimilarityMatcher(threshold=0.3),
        "profile-dice": ProfileSimilarityMatcher(threshold=0.4, similarity_name="dice"),
        "profile-overlap": ProfileSimilarityMatcher(threshold=0.5, similarity_name="overlap"),
        "profile-cosine": ProfileSimilarityMatcher(threshold=0.35, similarity_name="cosine"),
        "profile-nostop": ProfileSimilarityMatcher(
            threshold=0.3, stop_words=None, min_token_length=1
        ),
        "profile-tfidf": ProfileSimilarityMatcher(threshold=0.25, vectorizer=vectorizer),
        "attribute-weighted": AttributeWeightedMatcher(
            {"name": 2.0, "city": 1.0}, threshold=0.7
        ),
        "rule-based": RuleBasedMatcher([ThresholdRule("name", 0.7)]),
    }


def assert_bit_identical(oracle_decisions, engine_decisions):
    assert len(oracle_decisions) == len(engine_decisions)
    for expected, actual in zip(oracle_decisions, engine_decisions):
        assert actual.comparison.pair == expected.comparison.pair
        # exact float equality: the engines must agree bit for bit
        assert actual.similarity == expected.similarity, expected.comparison.pair
        assert actual.is_match == expected.is_match
        assert actual.cost == expected.cost
    assert engine_decisions.skipped == oracle_decisions.skipped
    assert engine_decisions.skipped_examples == oracle_decisions.skipped_examples


class TestBatchMatchesOracle:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "matcher_name",
        [
            "profile-jaccard",
            "profile-dice",
            "profile-overlap",
            "profile-cosine",
            "profile-nostop",
            "profile-tfidf",
            "attribute-weighted",
            "rule-based",
        ],
    )
    @pytest.mark.parametrize("use_numpy", NUMPY_MODES)
    def test_all_matcher_families(self, seed, matcher_name, use_numpy):
        collection = _random_collection(seed)
        comparisons = _random_comparisons(collection, seed)
        matcher = _matchers(collection)[matcher_name]
        oracle = matcher.decide_all(comparisons, collection)
        engine = MatchingEngine(matcher, engine="batch", use_numpy=use_numpy)
        assert_bit_identical(oracle, engine.decide_all(comparisons, collection))
        expected_engine = "batch" if matcher_name.startswith("profile") else "pairwise"
        assert engine.last_engine == expected_engine

    @pytest.mark.parametrize("use_numpy", NUMPY_MODES)
    def test_clean_clean_task(self, use_numpy):
        left = _random_collection(5, size=20)
        right = EntityCollection(
            [
                EntityDescription(f"r{i}", dict(description.attributes))
                for i, description in enumerate(_random_collection(6, size=20))
            ],
            name="right",
        )
        task = CleanCleanTask(left, right)
        comparisons = [
            Comparison(a, b)
            for a in list(left.identifiers)[:10]
            for b in list(right.identifiers)[:10]
        ]
        matcher = ProfileSimilarityMatcher(threshold=0.3)
        engine = MatchingEngine(matcher, engine="batch", use_numpy=use_numpy)
        assert_bit_identical(
            matcher.decide_all(comparisons, task), engine.decide_all(comparisons, task)
        )

    def test_numpy_and_python_paths_identical(self):
        if not HAS_NUMPY:
            pytest.skip("numpy not installed")
        collection = _random_collection(3)
        comparisons = _random_comparisons(collection, 3)
        for matcher in (
            ProfileSimilarityMatcher(threshold=0.3),
            ProfileSimilarityMatcher(
                threshold=0.25, vectorizer=TfIdfVectorizer().fit(iter(collection))
            ),
        ):
            with_numpy = MatchingEngine(matcher, use_numpy=True).decide_all(
                comparisons, collection
            )
            without = MatchingEngine(matcher, use_numpy=False).decide_all(
                comparisons, collection
            )
            for a, b in zip(with_numpy, without):
                assert a.similarity == b.similarity
                assert a.is_match == b.is_match


class TestThresholdTies:
    """At an exact tie the decision is >= on both engines, bit for bit."""

    @pytest.mark.parametrize("use_tfidf", [False, True])
    @pytest.mark.parametrize("use_numpy", NUMPY_MODES)
    def test_exact_tie_is_a_match_on_both_engines(self, use_tfidf, use_numpy):
        collection = _random_collection(4)
        comparisons = _random_comparisons(collection, 4, count=50)
        vectorizer = TfIdfVectorizer().fit(iter(collection)) if use_tfidf else None
        probe = ProfileSimilarityMatcher(threshold=0.0, vectorizer=vectorizer)
        scores = [
            d.similarity
            for d in probe.decide_all(comparisons, collection)
            if 0.0 < d.similarity < 1.0
        ]
        assert scores, "expected at least one non-trivial similarity"
        tie = scores[len(scores) // 2]

        for threshold in (tie, min(1.0, math.nextafter(tie, 2.0))):
            matcher = ProfileSimilarityMatcher(threshold=threshold, vectorizer=vectorizer)
            oracle = matcher.decide_all(comparisons, collection)
            engine = MatchingEngine(matcher, use_numpy=use_numpy)
            assert_bit_identical(oracle, engine.decide_all(comparisons, collection))
        # sanity: the tie itself flips exactly at nextafter(threshold)
        at_tie = ProfileSimilarityMatcher(threshold=tie, vectorizer=vectorizer)
        above = ProfileSimilarityMatcher(
            threshold=math.nextafter(tie, 2.0), vectorizer=vectorizer
        )
        tie_engine = MatchingEngine(at_tie, use_numpy=use_numpy)
        above_engine = MatchingEngine(above, use_numpy=use_numpy)
        tie_decisions = tie_engine.decide_all(comparisons, collection)
        above_decisions = above_engine.decide_all(comparisons, collection)
        flipped = [
            (a.is_match, b.is_match)
            for a, b in zip(tie_decisions, above_decisions)
            if a.similarity == tie
        ]
        assert flipped and all(a and not b for a, b in flipped)


class TestMergedDescriptions:
    """The iterative phase compares freshly merged descriptions through the engine."""

    @pytest.mark.parametrize("use_tfidf", [False, True])
    @pytest.mark.parametrize("use_numpy", NUMPY_MODES)
    def test_decide_pairs_on_merged_descriptions(self, use_tfidf, use_numpy):
        collection = _random_collection(7)
        descriptions = list(collection)
        vectorizer = TfIdfVectorizer().fit(iter(collection)) if use_tfidf else None
        matcher = ProfileSimilarityMatcher(threshold=0.3, vectorizer=vectorizer)
        engine = MatchingEngine(matcher, use_numpy=use_numpy)
        pairs = []
        for i in range(0, 16, 2):
            merged = merge_descriptions(descriptions[i], descriptions[i + 1])
            pairs.append((merged, descriptions[i + 2]))
        decisions = engine.decide_pairs(pairs)
        assert engine.last_engine == "batch"
        for (first, second), decision in zip(pairs, decisions):
            expected = matcher.decide(first, second)
            assert decision.similarity == expected.similarity
            assert decision.is_match == expected.is_match
            assert decision.comparison.pair == expected.comparison.pair

    def test_reused_identifier_is_recomputed_not_served_stale(self):
        matcher = ProfileSimilarityMatcher(threshold=0.3)
        engine = MatchingEngine(matcher)
        other = EntityDescription("z", {"name": "alan turing london"})
        version_one = EntityDescription("m", {"name": "alan turing london"})
        version_two = EntityDescription("m", {"name": "grace hopper navy"})
        score_one = engine.decide_pairs([(version_one, other)])[0].similarity
        # same identifier, different object and content: must not serve the
        # stale cached profile
        score_two = engine.decide_pairs([(version_two, other)])[0].similarity
        assert score_one == matcher.similarity(version_one, other) == 1.0
        assert score_two == matcher.similarity(version_two, other) == 0.0

    def test_invalidate_drops_a_single_entry(self):
        matcher = ProfileSimilarityMatcher(threshold=0.3)
        engine = MatchingEngine(matcher)
        a = EntityDescription("a", {"name": "alan turing"})
        b = EntityDescription("b", {"name": "grace hopper"})
        engine.decide_pairs([(a, b)])
        store = engine.store
        assert len(store) == 2
        assert engine.invalidate("a")
        assert len(store) == 1
        assert not engine.invalidate("a")  # already gone
        assert store.profile(b) is not None  # the other entry survived


class TestDegenerateProfiles:
    @pytest.mark.parametrize("use_numpy", NUMPY_MODES)
    def test_empty_and_stopword_only_profiles(self, use_numpy):
        collection = _random_collection(8)
        degenerate = ["empty", "blank", "stopwords", "short"]
        regular = ["e000", "e001"]
        comparisons = [
            Comparison(a, b)
            for a in degenerate
            for b in degenerate + regular
            if a != b
        ]
        for matcher in (
            ProfileSimilarityMatcher(threshold=0.5),
            ProfileSimilarityMatcher(
                threshold=0.5, vectorizer=TfIdfVectorizer().fit(iter(collection))
            ),
        ):
            oracle = matcher.decide_all(comparisons, collection)
            engine = MatchingEngine(matcher, use_numpy=use_numpy)
            assert_bit_identical(oracle, engine.decide_all(comparisons, collection))
        # two empty set-profiles are identical (similarity 1), empty vs
        # non-empty scores 0; both engines agree on the conventions
        set_engine = MatchingEngine(ProfileSimilarityMatcher(threshold=0.5), use_numpy=use_numpy)
        decisions = {
            d.comparison.pair: d.similarity
            for d in set_engine.decide_all(comparisons, collection)
        }
        assert decisions[Comparison("empty", "stopwords").pair] == 1.0
        assert decisions[Comparison("empty", "e000").pair] == 0.0


class TestSkipAccounting:
    """Satellite: unresolvable comparisons are counted and warned, not dropped silently."""

    @pytest.mark.parametrize("engine_name", ["batch", "pairwise"])
    def test_skips_are_counted_and_warned(self, tiny_collection, engine_name):
        matcher = ProfileSimilarityMatcher(threshold=0.3)
        engine = MatchingEngine(matcher, engine=engine_name)
        comparisons = [
            Comparison("a1", "a2"),
            Comparison("a1", "ghost"),
            Comparison("ghost", "phantom"),
        ]
        with pytest.warns(RuntimeWarning, match="skipped 2 comparison"):
            decisions = engine.decide_all(comparisons, tiny_collection)
        assert len(decisions) == 1
        assert decisions.skipped == 2
        assert decisions.skipped_examples == [("a1", "ghost"), ("ghost", "phantom")]
        assert engine.last_skipped == 2

    def test_no_warning_when_everything_resolves(self, tiny_collection, recwarn):
        matcher = ProfileSimilarityMatcher(threshold=0.3)
        decisions = MatchingEngine(matcher).decide_all(
            [Comparison("a1", "a2")], tiny_collection
        )
        assert decisions.skipped == 0
        assert not [w for w in recwarn.list if issubclass(w.category, RuntimeWarning)]


class TestEngineDispatch:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            MatchingEngine(ProfileSimilarityMatcher(), engine="sparkles")

    def test_profile_matcher_subclass_falls_back_to_oracle(self, tiny_collection):
        class Spiced(ProfileSimilarityMatcher):
            def similarity(self, first, second):
                return min(1.0, super().similarity(first, second) + 0.1)

        matcher = Spiced(threshold=0.3)
        engine = MatchingEngine(matcher, engine="batch")
        assert not engine.batch_applicable
        comparisons = [Comparison("a1", "a2")]
        decisions = engine.decide_all(comparisons, tiny_collection)
        assert engine.last_engine == "pairwise"
        assert decisions[0].similarity == matcher.decide_all(comparisons, tiny_collection)[0].similarity


class TestRunnerEquivalence:
    """run_progressive produces identical results whatever the engine."""

    @pytest.mark.parametrize("scheduler_factory", [WeightOrderScheduler, CostBenefitScheduler])
    @pytest.mark.parametrize("budget", [None, 150])
    def test_batch_and_pairwise_runs_agree(self, scheduler_factory, budget):
        collection = _random_collection(9)
        comparisons = _random_comparisons(collection, 9, count=300)
        matcher = ProfileSimilarityMatcher(threshold=0.35)
        results = {}
        for engine in ("batch", "pairwise"):
            results[engine] = run_progressive(
                scheduler=scheduler_factory(),
                matcher=matcher,
                data=collection,
                candidates=comparisons,
                budget=budget,
                keep_decisions=True,
                engine=engine,
            )
        batch, pairwise = results["batch"], results["pairwise"]
        assert batch.comparisons_executed == pairwise.comparisons_executed
        assert batch.declared_matches == pairwise.declared_matches
        assert batch.budget_spent == pairwise.budget_spent
        assert [d.similarity for d in batch.decisions] == [
            d.similarity for d in pairwise.decisions
        ]

    def test_small_batch_size_changes_nothing(self):
        collection = _random_collection(10)
        comparisons = _random_comparisons(collection, 10, count=120)
        matcher = ProfileSimilarityMatcher(threshold=0.35)
        baseline = run_progressive(
            scheduler=WeightOrderScheduler(),
            matcher=matcher,
            data=collection,
            candidates=comparisons,
            engine="pairwise",
            keep_decisions=True,
        )
        for batch_size in (1, 7, 1000):
            result = run_progressive(
                scheduler=WeightOrderScheduler(),
                matcher=matcher,
                data=collection,
                candidates=comparisons,
                engine="batch",
                batch_size=batch_size,
                keep_decisions=True,
            )
            assert [d.similarity for d in result.decisions] == [
                d.similarity for d in baseline.decisions
            ]
            assert result.declared_matches == baseline.declared_matches


class TestWorkflowEquivalence:
    """ERWorkflow output is engine-independent, including the iterate phase."""

    def test_workflow_engines_agree_with_iteration(self, small_dirty_dataset):
        from repro.core.config import WorkflowConfig
        from repro.core.workflow import ERWorkflow

        results = {}
        for engine in ("batch", "pairwise"):
            config = WorkflowConfig(iterate_merges=True, matching_engine=engine)
            results[engine] = ERWorkflow(config).run(
                small_dirty_dataset.collection, small_dirty_dataset.ground_truth
            )
        batch, pairwise = results["batch"], results["pairwise"]
        assert batch.matches == pairwise.matches
        assert batch.comparisons_executed == pairwise.comparisons_executed
        assert sorted(map(sorted, batch.clusters)) == sorted(map(sorted, pairwise.clusters))

    def test_stateful_fallback_matcher_sees_identical_call_sequence(
        self, small_dirty_dataset
    ):
        """A noisy oracle draws from a seeded RNG per decide() call: if the
        batch path issued extra or reordered calls in the iterate phase, the
        RNG stream -- and hence the declared matches -- would diverge."""
        from repro.core.config import WorkflowConfig
        from repro.core.workflow import ERWorkflow
        from repro.matching.oracle import OracleMatcher

        results = {}
        calls = {}
        for engine in ("batch", "pairwise"):
            oracle = OracleMatcher(
                small_dirty_dataset.ground_truth,
                false_negative_rate=0.3,
                false_positive_rate=0.05,
                seed=42,
            )
            config = WorkflowConfig(iterate_merges=True, matching_engine=engine)
            results[engine] = ERWorkflow(config, matcher=oracle).run(
                small_dirty_dataset.collection
            )
            calls[engine] = oracle.calls
        assert results["batch"].matches == results["pairwise"].matches
        assert calls["batch"] == calls["pairwise"]
        assert results["batch"].comparisons_executed == results["pairwise"].comparisons_executed


class TestGuards:
    def test_runner_rejects_engine_wrapping_a_different_matcher(self, tiny_collection):
        matcher_a = ProfileSimilarityMatcher(threshold=0.3)
        matcher_b = ProfileSimilarityMatcher(threshold=0.9)
        engine = MatchingEngine(matcher_a)
        with pytest.raises(ValueError, match="different matcher"):
            run_progressive(
                scheduler=WeightOrderScheduler(),
                matcher=matcher_b,
                data=tiny_collection,
                candidates=[Comparison("a1", "a2")],
                engine=engine,
            )

    def test_forcing_numpy_without_numpy_raises(self, monkeypatch):
        import repro.matching.engine as engine_module

        monkeypatch.setattr(engine_module, "_np", None)
        with pytest.raises(ValueError, match="use_numpy=True"):
            MatchingEngine(ProfileSimilarityMatcher(), use_numpy=True)
        # the automatic and forbidden modes still work without numpy
        for use_numpy in (None, False):
            MatchingEngine(ProfileSimilarityMatcher(), use_numpy=use_numpy)

    @pytest.mark.parametrize("engine_name", ["batch", "pairwise"])
    def test_runner_counts_and_warns_on_unresolvable_comparisons(
        self, tiny_collection, engine_name
    ):
        comparisons = [
            Comparison("a1", "a2"),
            Comparison("a1", "ghost"),
            Comparison("b1", "b2"),
        ]
        with pytest.warns(RuntimeWarning, match="skipped 1 comparison"):
            result = run_progressive(
                scheduler=WeightOrderScheduler(),
                matcher=ProfileSimilarityMatcher(threshold=0.3),
                data=tiny_collection,
                candidates=comparisons,
                engine=engine_name,
            )
        assert result.skipped_comparisons == 1
        assert result.comparisons_executed == 2
