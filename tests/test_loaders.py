"""Tests for CSV/JSON loading and saving of collections."""

from repro.datamodel.collection import EntityCollection
from repro.datamodel.description import EntityDescription
from repro.datasets.loaders import (
    collection_from_records,
    load_collection_csv,
    load_collection_json,
    save_collection_csv,
    save_collection_json,
)


def make_collection() -> EntityCollection:
    return EntityCollection(
        [
            EntityDescription("e1", {"name": "Alan Turing", "topic": ["logic", "computing"]}),
            EntityDescription("e2", {"name": "Grace Hopper", "city": "New York"}),
        ],
        name="people",
    )


def test_collection_from_records_splits_multi_values_and_skips_empties():
    records = [
        {"id": "r1", "name": "Alan", "topic": "logic|computing", "empty": ""},
        {"id": "r2", "name": "Grace", "topic": None},
        {"name": "NoId"},
    ]
    collection = collection_from_records(records, name="rec")
    assert len(collection) == 3
    assert collection["r1"].values("topic") == ("logic", "computing")
    assert "empty" not in collection["r1"]
    assert collection[2].identifier == "rec:2"


def test_csv_round_trip(tmp_path):
    collection = make_collection()
    path = tmp_path / "people.csv"
    save_collection_csv(collection, path)
    loaded = load_collection_csv(path)
    assert len(loaded) == 2
    assert loaded["e1"].values("topic") == ("logic", "computing")
    assert loaded["e2"].value("city") == "New York"
    # attributes absent for a description stay absent
    assert "city" not in loaded["e1"]


def test_json_round_trip_preserves_relationships(tmp_path):
    collection = EntityCollection(
        [
            EntityDescription(
                "p1", {"title": "A Paper"}, source="kb", relationships={"author": ["a1", "a2"]}
            ),
            EntityDescription("a1", {"name": "Alan"}),
            EntityDescription("a2", {"name": "Grace"}),
        ],
        name="papers",
    )
    path = tmp_path / "papers.json"
    save_collection_json(collection, path)
    loaded = load_collection_json(path)
    assert loaded.name == "papers"
    assert loaded["p1"].related("author") == ("a1", "a2")
    assert loaded["p1"].source == "kb"
    assert loaded["a1"].value("name") == "Alan"


def test_csv_load_uses_custom_id_field(tmp_path):
    path = tmp_path / "custom.csv"
    path.write_text("uri,name\nx:1,Alan\nx:2,Grace\n", encoding="utf-8")
    loaded = load_collection_csv(path, id_field="uri")
    assert set(loaded.identifiers) == {"x:1", "x:2"}
