"""Tests for the shared columnar pipeline context.

Covers three guarantees: the derived token views (blocking keys, TF-IDF fit,
matching profiles) are bit-identical to the per-stage tokenising paths; a
full ``ERWorkflow.run`` with the shared context produces exactly the output
of the per-stage-store run; and -- the single-interning guarantee -- a
default workflow run tokenises every attribute value exactly once.
"""

import importlib

import pytest

# ``import repro.text.tokenize as ...`` would resolve to the *function* the
# package __init__ re-exports under the same name; fetch the module itself
tokenize_module = importlib.import_module("repro.text.tokenize")
from repro.blocking.engine import BlockingEngine
from repro.blocking.token_blocking import (
    AttributeClusteringBlocking,
    PrefixInfixSuffixBlocking,
    TokenBlocking,
)
from repro.core.config import WorkflowConfig
from repro.core.context import PipelineContext
from repro.core.workflow import ERWorkflow, default_workflow
from repro.datasets import (
    DatasetConfig,
    generate_clean_clean_task,
    generate_dirty_dataset,
)
from repro.matching.engine import MatchingEngine
from repro.matching.matchers import ProfileSimilarityMatcher
from repro.text.profile_store import ProfileStore
from repro.text.tokenize import DEFAULT_STOP_WORDS
from repro.text.vectorizer import TfIdfVectorizer


@pytest.fixture(scope="module")
def dirty():
    return generate_dirty_dataset(
        DatasetConfig(num_entities=70, duplicates_per_entity=1.4, domain="person", seed=41)
    )


@pytest.fixture(scope="module")
def clean_clean():
    return generate_clean_clean_task(
        DatasetConfig(num_entities=50, domain="person", seed=43)
    )


def _block_tuples(blocks):
    return [
        (block.key, block.members, block.left_members, block.right_members)
        for block in blocks
    ]


class TestContextStructure:
    def test_ordinals_follow_iteration_order(self, clean_clean):
        task = clean_clean.task
        context = PipelineContext(task)
        expected = [d.identifier for d in task.left] + [d.identifier for d in task.right]
        assert context.ids == expected
        assert context.left_count == len(task.left)
        for ordinal, identifier in enumerate(expected):
            assert context.ordinal(identifier) == ordinal
            assert context.description(ordinal).identifier == identifier

    def test_ownership_is_identity(self, dirty):
        context = PipelineContext(dirty.collection)
        assert context.owns(dirty.collection)
        assert not context.owns(
            generate_dirty_dataset(DatasetConfig(num_entities=5, seed=1)).collection
        )

    def test_token_counts_match_transform_counts(self, dirty):
        context = PipelineContext(dirty.collection)
        from repro.text.tokenize import tokenize

        for ordinal, description in enumerate(context.descriptions):
            expected = {}
            for value in description.values():
                for token in tokenize(value):
                    expected[token] = expected.get(token, 0) + 1
            ids, counts = context.token_counts(ordinal)
            got = {context.token(t): c for t, c in zip(ids, counts)}
            assert got == expected


class TestDerivedViews:
    def test_fit_vectorizer_equals_full_fit(self, dirty, clean_clean):
        for data in (dirty.collection, clean_clean.task):
            fitted = TfIdfVectorizer().fit(iter(data))
            derived = PipelineContext(data).fit_vectorizer()
            assert derived._num_documents == fitted._num_documents
            assert derived._document_frequency == fitted._document_frequency
            for token in fitted._document_frequency:
                assert derived.idf(token) == fitted.idf(token)

    def test_fit_vectorizer_respects_min_token_length(self, dirty):
        data = dirty.collection
        fitted = TfIdfVectorizer(min_token_length=3).fit(iter(data))
        derived = PipelineContext(data).fit_vectorizer(min_token_length=3)
        assert derived._document_frequency == fitted._document_frequency

    @pytest.mark.parametrize(
        "builder_factory",
        [
            TokenBlocking,
            PrefixInfixSuffixBlocking,
            AttributeClusteringBlocking,
            lambda: TokenBlocking(max_block_fraction=0.3),
            lambda: TokenBlocking(stop_words=None, min_token_length=1),
        ],
    )
    def test_context_blocking_equals_per_engine_blocking(
        self, dirty, clean_clean, builder_factory
    ):
        for data in (dirty.collection, clean_clean.task):
            context = PipelineContext(data)
            plain = BlockingEngine(builder_factory()).build(data)
            shared = BlockingEngine(builder_factory(), context=context).build(data)
            assert _block_tuples(shared) == _block_tuples(plain)

    def test_foreign_data_ignores_context(self, dirty):
        other = generate_dirty_dataset(DatasetConfig(num_entities=20, seed=2)).collection
        context = PipelineContext(dirty.collection)
        engine = BlockingEngine(TokenBlocking(), context=context)
        blocks = engine.build(other)  # falls back to per-engine interning
        assert _block_tuples(blocks) == _block_tuples(BlockingEngine(TokenBlocking()).build(other))

    def test_profiles_bit_identical(self, dirty):
        data = dirty.collection
        context = PipelineContext(data)
        vectorizer = TfIdfVectorizer().fit(iter(data))
        plain_store = ProfileStore(vectorizer=vectorizer)
        shared_store = ProfileStore(vectorizer=context.fit_vectorizer(), context=context)
        for description in data:
            plain = plain_store.profile(description)
            shared = shared_store.profile(description)
            assert plain.norm == shared.norm
            plain_weights = {
                plain_store.token(t): w
                for t, w in zip(plain.token_ids, plain.weights or ())
            }
            shared_weights = {
                shared_store.token(t): w
                for t, w in zip(shared.token_ids, shared.weights or ())
            }
            assert plain_weights == shared_weights

    def test_set_mode_profiles_bit_identical(self, dirty):
        data = dirty.collection
        context = PipelineContext(data)
        plain_store = ProfileStore(stop_words=DEFAULT_STOP_WORDS, min_token_length=2)
        shared_store = ProfileStore(
            stop_words=DEFAULT_STOP_WORDS, min_token_length=2, context=context
        )
        for description in data:
            plain = {plain_store.token(t) for t in plain_store.profile(description).token_ids}
            shared = {shared_store.token(t) for t in shared_store.profile(description).token_ids}
            assert plain == shared

    def test_replaced_description_bypasses_context_columns(self, dirty):
        """A new object under a known identifier must not serve stale columns."""
        data = dirty.collection
        context = PipelineContext(data)
        store = ProfileStore(stop_words=None, min_token_length=1, context=context)
        original = next(iter(data))
        replacement = original.copy()
        replacement.add("extra", "zzzuniquetoken")
        profile = store.profile(replacement)
        token_strings = {store.token(t) for t in profile.token_ids}
        assert "zzzuniquetoken" in token_strings

    def test_matching_engine_decisions_identical_with_context(self, dirty):
        data = dirty.collection
        context = PipelineContext(data)
        comparisons = list(
            BlockingEngine(TokenBlocking()).build(data).distinct_comparisons()
        )[:300]
        matcher = ProfileSimilarityMatcher(
            threshold=0.55, vectorizer=TfIdfVectorizer().fit(iter(data))
        )
        matcher_shared = ProfileSimilarityMatcher(
            threshold=0.55, vectorizer=context.fit_vectorizer()
        )
        plain = MatchingEngine(matcher).decide_all(comparisons, data)
        shared = MatchingEngine(matcher_shared, context=context).decide_all(
            comparisons, data
        )
        assert [(d.pair, d.similarity, d.is_match) for d in plain] == [
            (d.pair, d.similarity, d.is_match) for d in shared
        ]


class TestWorkflowEquivalence:
    @pytest.mark.parametrize("kind", ["dirty", "clean_clean"])
    def test_shared_context_run_is_bit_identical(self, dirty, clean_clean, kind):
        dataset = dirty if kind == "dirty" else clean_clean
        data = dataset.collection if kind == "dirty" else dataset.task
        results = {}
        for shared in (True, False):
            workflow = ERWorkflow(
                WorkflowConfig(shared_context=shared, iterate_merges=True)
            )
            results[shared] = workflow.run(data, dataset.ground_truth)
        assert results[True].matches == results[False].matches
        assert (
            results[True].comparisons_executed == results[False].comparisons_executed
        )
        assert results[True].curve.history() == results[False].curve.history()
        assert results[True].clusters == results[False].clusters


class TestSingleInterning:
    def _count_normalize_calls(self, monkeypatch):
        calls = []
        original = tokenize_module.normalize

        def counting(value):
            calls.append(value)
            return original(value)

        # ``tokenize`` resolves ``normalize`` through its module globals, so
        # patching the module attribute intercepts every tokenisation no
        # matter which module called it
        monkeypatch.setattr(tokenize_module, "normalize", counting)
        return calls

    def test_default_workflow_tokenises_each_value_exactly_once(
        self, dirty, monkeypatch
    ):
        data = dirty.collection
        num_values = sum(len(description.values()) for description in data)
        calls = self._count_normalize_calls(monkeypatch)
        default_workflow().run(data, dirty.ground_truth)
        assert len(calls) == num_values

    def test_merge_iteration_only_tokenises_merged_descriptions(
        self, dirty, monkeypatch
    ):
        """With merging enabled, extra tokenisation is only for merge products."""
        data = dirty.collection
        num_values = sum(len(description.values()) for description in data)
        calls = self._count_normalize_calls(monkeypatch)
        result = default_workflow(iterate_merges=True).run(data, dirty.ground_truth)
        extra = len(calls) - num_values
        assert extra >= 0
        # every original value was tokenised exactly once; anything beyond
        # that belongs to transient merged descriptions ("a+b" identifiers)
        if result.iterations == 0:
            assert extra == 0

    def test_per_stage_stores_tokenise_several_times(self, dirty, monkeypatch):
        """The fallback path (no context) pays one pass per stage, as before."""
        data = dirty.collection
        num_values = sum(len(description.values()) for description in data)
        calls = self._count_normalize_calls(monkeypatch)
        default_workflow(shared_context=False).run(data, dirty.ground_truth)
        assert len(calls) >= 2 * num_values

    @pytest.mark.parametrize(
        "blocking",
        (
            "minhash_lsh",
            "canopy",
            "sorted_neighborhood",
            "extended_sorted_neighborhood",
            "similarity_join",
        ),
    )
    def test_ported_schemes_tokenise_each_value_exactly_once(
        self, dirty, monkeypatch, blocking
    ):
        """Every newly ported family rides the context: zero extra tokenisation."""
        data = dirty.collection
        num_values = sum(len(description.values()) for description in data)
        calls = self._count_normalize_calls(monkeypatch)
        default_workflow(blocking=blocking).run(data, dirty.ground_truth)
        assert len(calls) == num_values
