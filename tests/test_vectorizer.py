"""Tests for TF-IDF vectorisation of descriptions."""

import pytest

from repro.datamodel.description import EntityDescription
from repro.text.vectorizer import TfIdfVectorizer, weighted_cosine


def make_corpus():
    return [
        EntityDescription("e1", {"name": "Alan Turing", "city": "London"}),
        EntityDescription("e2", {"name": "Alan M Turing", "city": "London"}),
        EntityDescription("e3", {"name": "Grace Hopper", "city": "New York"}),
        EntityDescription("e4", {"name": "Ada Lovelace", "city": "London"}),
    ]


def test_weighted_cosine_basics():
    assert weighted_cosine({}, {"a": 1.0}) == 0.0
    assert weighted_cosine({"a": 1.0}, {"a": 1.0}) == pytest.approx(1.0)
    assert weighted_cosine({"a": 1.0}, {"b": 1.0}) == 0.0
    assert weighted_cosine({"a": 1.0, "b": 1.0}, {"a": 1.0}) == pytest.approx(1 / 2**0.5)


def test_fit_counts_document_frequencies():
    corpus = make_corpus()
    vectorizer = TfIdfVectorizer().fit(corpus)
    assert vectorizer.num_documents == 4
    assert vectorizer.document_frequency("london") == 3
    assert vectorizer.document_frequency("hopper") == 1
    assert vectorizer.document_frequency("missing") == 0
    assert vectorizer.vocabulary_size > 0


def test_idf_is_higher_for_rarer_tokens():
    vectorizer = TfIdfVectorizer().fit(make_corpus())
    assert vectorizer.idf("hopper") > vectorizer.idf("london")
    assert vectorizer.idf("anything") >= 0.0


def test_transform_returns_sparse_vector_restricted_to_attributes():
    vectorizer = TfIdfVectorizer().fit(make_corpus())
    description = make_corpus()[0]
    full = vectorizer.transform(description)
    assert "alan" in full and "london" in full
    only_city = vectorizer.transform(description, attributes=["city"])
    assert "london" in only_city and "alan" not in only_city
    assert vectorizer.transform(EntityDescription("empty")) == {}


def test_similarity_favours_shared_rare_tokens():
    corpus = make_corpus()
    vectorizer = TfIdfVectorizer().fit(corpus)
    same_person = vectorizer.similarity(corpus[0], corpus[1])
    different_person = vectorizer.similarity(corpus[0], corpus[3])
    assert same_person > different_person
    assert 0.0 <= different_person <= 1.0


def test_unfitted_vectorizer_idf_is_zero():
    vectorizer = TfIdfVectorizer()
    assert vectorizer.idf("anything") == 0.0
