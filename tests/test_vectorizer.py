"""Tests for TF-IDF vectorisation of descriptions."""

import pytest

from repro.datamodel.description import EntityDescription
from repro.text.vectorizer import TfIdfVectorizer, weighted_cosine


def make_corpus():
    return [
        EntityDescription("e1", {"name": "Alan Turing", "city": "London"}),
        EntityDescription("e2", {"name": "Alan M Turing", "city": "London"}),
        EntityDescription("e3", {"name": "Grace Hopper", "city": "New York"}),
        EntityDescription("e4", {"name": "Ada Lovelace", "city": "London"}),
    ]


def test_weighted_cosine_basics():
    assert weighted_cosine({}, {"a": 1.0}) == 0.0
    assert weighted_cosine({"a": 1.0}, {"a": 1.0}) == pytest.approx(1.0)
    assert weighted_cosine({"a": 1.0}, {"b": 1.0}) == 0.0
    assert weighted_cosine({"a": 1.0, "b": 1.0}, {"a": 1.0}) == pytest.approx(1 / 2**0.5)


def test_fit_counts_document_frequencies():
    corpus = make_corpus()
    vectorizer = TfIdfVectorizer().fit(corpus)
    assert vectorizer.num_documents == 4
    assert vectorizer.document_frequency("london") == 3
    assert vectorizer.document_frequency("hopper") == 1
    assert vectorizer.document_frequency("missing") == 0
    assert vectorizer.vocabulary_size > 0


def test_idf_is_higher_for_rarer_tokens():
    vectorizer = TfIdfVectorizer().fit(make_corpus())
    assert vectorizer.idf("hopper") > vectorizer.idf("london")
    assert vectorizer.idf("anything") >= 0.0


def test_transform_returns_sparse_vector_restricted_to_attributes():
    vectorizer = TfIdfVectorizer().fit(make_corpus())
    description = make_corpus()[0]
    full = vectorizer.transform(description)
    assert "alan" in full and "london" in full
    only_city = vectorizer.transform(description, attributes=["city"])
    assert "london" in only_city and "alan" not in only_city
    assert vectorizer.transform(EntityDescription("empty")) == {}


def test_similarity_favours_shared_rare_tokens():
    corpus = make_corpus()
    vectorizer = TfIdfVectorizer().fit(corpus)
    same_person = vectorizer.similarity(corpus[0], corpus[1])
    different_person = vectorizer.similarity(corpus[0], corpus[3])
    assert same_person > different_person
    assert 0.0 <= different_person <= 1.0


def test_unfitted_vectorizer_idf_is_zero():
    vectorizer = TfIdfVectorizer()
    assert vectorizer.idf("anything") == 0.0


def test_transform_precomputes_the_l2_norm():
    import math

    from repro.text.vectorizer import SparseVector, l2_norm

    vectorizer = TfIdfVectorizer().fit(make_corpus())
    vector = vectorizer.transform(make_corpus()[0])
    assert isinstance(vector, SparseVector)
    assert vector.norm == l2_norm(vector)
    assert vector.norm == math.sqrt(math.fsum(w * w for w in vector.values()))
    assert vectorizer.transform(EntityDescription("empty")).norm == 0.0


def test_weighted_cosine_reuses_precomputed_norms():
    from repro.text.vectorizer import SparseVector

    first = SparseVector({"a": 1.0, "b": 1.0})
    second = SparseVector({"a": 1.0})
    baseline = weighted_cosine(first, second)
    assert baseline == pytest.approx(1 / 2**0.5)
    # tampering with the carried norm changes the result: proof the
    # precomputed norm is what the function uses (no silent recomputation)
    tampered = SparseVector({"a": 1.0, "b": 1.0}, norm=2 * first.norm)
    assert weighted_cosine(tampered, second) == pytest.approx(baseline / 2)


def test_weighted_cosine_accepts_plain_dicts():
    from repro.text.vectorizer import SparseVector

    assert weighted_cosine({"a": 2.0}, SparseVector({"a": 0.5})) == pytest.approx(1.0)


def test_sparse_vector_norm_invalidated_on_mutation():
    from repro.text.vectorizer import SparseVector, l2_norm

    vector = SparseVector({"a": 3.0, "b": 4.0})
    assert vector.norm == 5.0
    vector.pop("b")
    assert vector.norm == 3.0  # recomputed, not stale
    vector["c"] = 4.0
    assert vector.norm == 5.0
    vector.update({"d": 12.0})
    assert vector.norm == l2_norm(vector) == 13.0
    del vector["d"]
    vector.clear()
    assert vector.norm == 0.0
