"""Tests for entity collections and clean--clean tasks."""

import pytest

from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datamodel.description import EntityDescription


def make_collection(prefix: str, size: int) -> EntityCollection:
    return EntityCollection(
        (EntityDescription(f"{prefix}:{i}", {"name": f"entity {i}"}) for i in range(size)),
        name=prefix,
    )


class TestEntityCollection:
    def test_add_and_lookup_by_position_and_identifier(self):
        collection = make_collection("kb", 3)
        assert len(collection) == 3
        assert collection[0].identifier == "kb:0"
        assert collection["kb:2"].identifier == "kb:2"
        assert collection.position("kb:1") == 1
        assert collection.get("missing") is None

    def test_duplicate_identifiers_rejected(self):
        collection = make_collection("kb", 2)
        with pytest.raises(ValueError):
            collection.add(EntityDescription("kb:0", {"name": "dup"}))

    def test_invalid_index_type_raises(self):
        collection = make_collection("kb", 1)
        with pytest.raises(TypeError):
            collection[1.5]

    def test_attribute_names_are_union_over_descriptions(self):
        collection = EntityCollection(
            [
                EntityDescription("a", {"name": "x"}),
                EntityDescription("b", {"label": "y", "city": "z"}),
            ]
        )
        assert collection.attribute_names() == ("city", "label", "name")

    def test_filter_returns_new_collection(self):
        collection = make_collection("kb", 5)
        filtered = collection.filter(lambda d: d.identifier.endswith(("0", "1")))
        assert len(filtered) == 2
        assert len(collection) == 5

    def test_sample_is_deterministic_and_bounded(self):
        collection = make_collection("kb", 20)
        sample_a = collection.sample(5, seed=3)
        sample_b = collection.sample(5, seed=3)
        assert sample_a.identifiers == sample_b.identifiers
        assert len(sample_a) == 5
        assert len(collection.sample(100)) == 20

    def test_total_comparisons_is_quadratic(self):
        assert make_collection("kb", 10).total_comparisons() == 45
        assert make_collection("kb", 1).total_comparisons() == 0


class TestCleanCleanTask:
    def test_requires_disjoint_identifier_spaces(self):
        left = make_collection("kb", 3)
        right = make_collection("kb", 3)
        with pytest.raises(ValueError):
            CleanCleanTask(left, right)

    def test_membership_and_sides(self):
        task = CleanCleanTask(make_collection("a", 3), make_collection("b", 4))
        assert len(task) == 7
        assert task.side_of("a:0") == "left"
        assert task.side_of("b:0") == "right"
        with pytest.raises(KeyError):
            task.side_of("c:0")

    def test_valid_pairs_are_cross_collection_only(self):
        task = CleanCleanTask(make_collection("a", 2), make_collection("b", 2))
        assert task.is_valid_pair("a:0", "b:1")
        assert task.is_valid_pair("b:0", "a:1")
        assert not task.is_valid_pair("a:0", "a:1")
        assert not task.is_valid_pair("b:0", "b:1")

    def test_total_comparisons_is_product(self):
        task = CleanCleanTask(make_collection("a", 3), make_collection("b", 5))
        assert task.total_comparisons() == 15

    def test_union_collection_contains_both_sides(self):
        task = CleanCleanTask(make_collection("a", 2), make_collection("b", 2))
        union = task.as_single_collection()
        assert len(union) == 4
        assert "a:0" in union and "b:1" in union

    def test_get_resolves_either_side(self):
        task = CleanCleanTask(make_collection("a", 2), make_collection("b", 2))
        assert task.get("a:1").identifier == "a:1"
        assert task.get("b:0").identifier == "b:0"
        assert task.get("zzz") is None
