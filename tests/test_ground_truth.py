"""Tests for the ground truth container."""

from repro.datamodel.ground_truth import GroundTruth


def test_clusters_induce_matching_pairs():
    truth = GroundTruth([["a", "b", "c"], ["d", "e"]])
    assert truth.num_matches() == 4  # 3 pairs from the triple, 1 from the pair
    assert ("a", "b") in truth.matching_pairs()
    assert ("a", "c") in truth.matching_pairs()
    assert ("d", "e") in truth.matching_pairs()


def test_add_match_is_transitive():
    truth = GroundTruth()
    truth.add_match("a", "b")
    truth.add_match("b", "c")
    assert truth.are_matches("a", "c")
    assert truth.num_matches() == 3


def test_overlapping_clusters_are_merged():
    truth = GroundTruth([["a", "b"], ["c", "d"]])
    truth.add_cluster(["b", "c"])
    assert truth.are_matches("a", "d")
    assert len(truth.clusters) == 1


def test_non_matches_and_unknown_identifiers():
    truth = GroundTruth([["a", "b"]])
    assert not truth.are_matches("a", "c")
    assert not truth.are_matches("x", "y")
    assert truth.are_matches("z", "z")  # identity is always a match
    assert truth.cluster_of("unknown") == frozenset({"unknown"})


def test_merged_identifiers_resolve_through_provenance():
    truth = GroundTruth([["a", "b"], ["c", "d"]])
    assert truth.are_matches("a+b", "b")
    assert truth.are_matches("a+c", "d")  # c matches d
    assert not truth.are_matches("a+b", "c+d", resolve_merged=False)
    assert not truth.are_matches("a+b", "c")


def test_from_pairs_builds_transitive_closure():
    truth = GroundTruth.from_pairs([("a", "b"), ("b", "c"), ("x", "y")])
    assert truth.are_matches("a", "c")
    assert truth.num_matches() == 4


def test_restricted_to_subset():
    truth = GroundTruth([["a", "b", "c"], ["d", "e"]])
    restricted = truth.restricted_to(["a", "b", "d"])
    assert restricted.are_matches("a", "b")
    assert not restricted.are_matches("a", "c")
    assert restricted.num_matches() == 1


def test_singleton_clusters_do_not_create_pairs():
    truth = GroundTruth([["a"], ["b"]])
    assert truth.num_matches() == 0
    assert len(truth.clusters) == 2


def test_len_and_repr():
    truth = GroundTruth([["a", "b"]])
    assert len(truth) == 1
    assert "clusters=1" in repr(truth)
