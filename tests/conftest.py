"""Shared fixtures: small deterministic datasets and hand-built collections."""

from __future__ import annotations

import pytest

from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datamodel.description import EntityDescription
from repro.datamodel.ground_truth import GroundTruth
from repro.datasets import (
    DatasetConfig,
    generate_bibliographic_dataset,
    generate_clean_clean_task,
    generate_dirty_dataset,
)
from repro.datasets.corruption import CorruptionConfig


@pytest.fixture(scope="session")
def tiny_collection() -> EntityCollection:
    """A hand-built collection with two obvious duplicate pairs and two singletons."""
    descriptions = [
        EntityDescription(
            "a1",
            {"name": "Alan Turing", "city": "London", "occupation": "mathematician"},
        ),
        EntityDescription(
            "a2",
            {"label": "Alan M. Turing", "location": "London", "field": "mathematician"},
        ),
        EntityDescription(
            "b1",
            {"name": "Grace Hopper", "city": "New York", "occupation": "computer scientist"},
        ),
        EntityDescription(
            "b2",
            {"full_name": "Grace M. Hopper", "place": "New York", "job": "computer scientist"},
        ),
        EntityDescription(
            "c1",
            {"name": "Ada Lovelace", "city": "London", "occupation": "mathematician"},
        ),
        EntityDescription(
            "d1",
            {"name": "Edsger Dijkstra", "city": "Nuenen", "occupation": "computer scientist"},
        ),
    ]
    return EntityCollection(descriptions, name="tiny")


@pytest.fixture(scope="session")
def tiny_ground_truth() -> GroundTruth:
    return GroundTruth([["a1", "a2"], ["b1", "b2"], ["c1"], ["d1"]])


@pytest.fixture(scope="session")
def small_dirty_dataset():
    """A seeded small dirty dataset (~200 descriptions)."""
    return generate_dirty_dataset(
        DatasetConfig(num_entities=100, duplicates_per_entity=1.0, seed=11)
    )


@pytest.fixture(scope="session")
def small_clean_clean_dataset():
    """A seeded small clean--clean task."""
    return generate_clean_clean_task(
        DatasetConfig(num_entities=100, missing_in_right=0.2, seed=13)
    )


@pytest.fixture(scope="session")
def small_bibliographic_dataset():
    """A seeded small two-type (publications + authors) dataset."""
    return generate_bibliographic_dataset(
        num_authors=15, num_publications=30, duplicates_per_publication=1.0, seed=17
    )


@pytest.fixture(scope="session")
def noisy_dirty_dataset():
    """A dirty dataset with the high-noise 'somehow similar' corruption profile."""
    return generate_dirty_dataset(
        DatasetConfig(
            num_entities=80,
            duplicates_per_entity=1.5,
            noise=CorruptionConfig.somehow_similar(),
            seed=19,
        )
    )
