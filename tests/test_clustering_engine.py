"""Array-vs-object clustering-engine equivalence, tie-breaking and goldens.

The object algorithms of :mod:`repro.matching.clustering` are the oracle;
:class:`~repro.matching.cluster_engine.ClusteringEngine` must reproduce their
clusters bit for bit -- same frozensets, same list order, same behaviour at
equal-similarity ties -- on both its NumPy and pure-Python edge-sort paths.

``tests/fixtures/clustering/*.json`` freezes the oracle's clusters on the
builtin datasets at two thresholds; every engine configuration must keep
reproducing them exactly.  Regenerating the fixtures (only when the
clustering semantics change on purpose): run this module as a script::

    PYTHONPATH=src python tests/test_clustering_engine.py
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.datamodel.pairs import Comparison, DecisionColumns
from repro.matching.cluster_engine import CLUSTERING_ENGINES, ClusteringEngine
from repro.matching.clustering import (
    CenterClustering,
    ConnectedComponentsClustering,
    MergeCenterClustering,
)
from repro.matching.matchers import MatchDecision, ProfileSimilarityMatcher

try:
    import numpy
except ImportError:
    numpy = None

FIXTURES_DIR = Path(__file__).parent / "fixtures" / "clustering"

ALGORITHMS = {
    "connected_components": ConnectedComponentsClustering,
    "center": CenterClustering,
    "merge_center": MergeCenterClustering,
}

#: NumPy toggles that must all be bit-identical (None = auto).
NUMPY_MODES = (None, False) if numpy is None else (True, False)


def decision(first, second, similarity=1.0, is_match=True):
    return MatchDecision(
        Comparison(first, second), similarity=similarity, is_match=is_match
    )


def _seeded_decisions(seed: int, kind: str, variant: str):
    """A reproducible decision log of the given shape.

    ``kind`` controls the identifier structure (dirty: one namespace;
    clean_clean: two source prefixes, as clean--clean matching emits);
    ``variant`` stresses a specific regime: quantised similarities full of
    ties, a dense match graph, mostly negatives, or degenerate logs.
    """
    rng = random.Random(seed)
    if variant == "empty":
        return []
    if variant == "singleton":
        return [decision("solo:a", "solo:b", 0.75)]
    if kind == "dirty":
        universe = [f"d{i}" for i in range(40)]
        pair = lambda: rng.sample(universe, 2)
    else:
        left = [f"a{i}" for i in range(25)]
        right = [f"b{i}" for i in range(25)]
        pair = lambda: (rng.choice(left), rng.choice(right))
    decisions = []
    for _ in range(160):
        first, second = pair()
        if first == second:
            continue
        if variant == "ties":
            # a five-step similarity grid: most edges tie with many others
            similarity = rng.randrange(1, 6) / 5.0
        else:
            similarity = rng.random()
        is_match = rng.random() < (0.7 if variant == "dense" else 0.35)
        decisions.append(decision(first, second, similarity, is_match))
    return decisions


def _cluster_lists(clusters):
    """Serialise preserving both membership and cluster order."""
    return [sorted(cluster) for cluster in clusters]


class TestSeededEquivalence:
    @pytest.mark.parametrize("kind", ["dirty", "clean_clean"])
    @pytest.mark.parametrize("variant", ["plain", "ties", "dense", "empty", "singleton"])
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    @pytest.mark.parametrize("use_numpy", NUMPY_MODES)
    def test_array_equals_oracle(self, kind, variant, algorithm, use_numpy):
        """Identical clusters -- content *and* list order -- on every path."""
        for seed in (3, 11, 27):
            decisions = _seeded_decisions(seed, kind, variant)
            oracle = ALGORITHMS[algorithm]().cluster(decisions)
            engine = ClusteringEngine(
                ALGORITHMS[algorithm](), engine="array", use_numpy=use_numpy
            )
            columns = DecisionColumns.from_decisions(decisions)
            assert engine.cluster(columns) == oracle
            assert engine.last_engine == "array"
            # decision-object input is interned and clustered identically
            assert engine.cluster(decisions) == oracle

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_object_engine_runs_the_oracle(self, algorithm):
        decisions = _seeded_decisions(5, "dirty", "plain")
        engine = ClusteringEngine(ALGORITHMS[algorithm](), engine="object")
        assert engine.cluster(decisions) == ALGORITHMS[algorithm]().cluster(decisions)
        assert engine.last_engine == "object"

    def test_columns_bridge_feeds_the_object_engine(self):
        """DecisionColumns input works on the object path via lazy decisions."""
        decisions = _seeded_decisions(9, "dirty", "ties")
        columns = DecisionColumns.from_decisions(decisions)
        engine = ClusteringEngine(CenterClustering(), engine="object")
        assert engine.cluster(columns) == CenterClustering().cluster(decisions)


class TestTieBreaking:
    """Equal-similarity edges are scanned in canonical identifier-pair order
    -- the ``ComparisonColumns.weight_sorted`` rule -- on both engines."""

    TIED = [
        # all similarities equal: the scan order is purely the pair order
        decision("c", "d", 0.8),
        decision("a", "b", 0.8),
        decision("b", "c", 0.8),
    ]

    @pytest.mark.parametrize("engine_name", CLUSTERING_ENGINES)
    @pytest.mark.parametrize("use_numpy", NUMPY_MODES)
    def test_center_processes_tied_edges_in_pair_order(self, engine_name, use_numpy):
        # order (a,b), (b,c), (c,d): a centers b; b is no center, so c starts
        # its own cluster; then (c,d) attaches d to center c
        engine = ClusteringEngine(
            CenterClustering(), engine=engine_name, use_numpy=use_numpy
        )
        clusters = engine.cluster(DecisionColumns.from_decisions(self.TIED))
        assert clusters == [frozenset({"a", "b"}), frozenset({"c", "d"})]

    @pytest.mark.parametrize("engine_name", CLUSTERING_ENGINES)
    @pytest.mark.parametrize("use_numpy", NUMPY_MODES)
    def test_merge_center_processes_tied_edges_in_pair_order(
        self, engine_name, use_numpy
    ):
        # order (a,b), (b,c), (c,d): a centers b; (b,c) attaches c to a's
        # cluster; (c,d) attaches d as well -- one cluster, deterministically
        engine = ClusteringEngine(
            MergeCenterClustering(), engine=engine_name, use_numpy=use_numpy
        )
        clusters = engine.cluster(DecisionColumns.from_decisions(self.TIED))
        assert clusters == [frozenset({"a", "b", "c", "d"})]

    def test_heavier_edge_beats_pair_order(self):
        decisions = [
            decision("b", "c", 0.9),  # heaviest first: b centers c...
            decision("a", "c", 0.8),
        ]
        for engine_name in CLUSTERING_ENGINES:
            engine = ClusteringEngine(CenterClustering(), engine=engine_name)
            clusters = engine.cluster(DecisionColumns.from_decisions(decisions))
            # ...so a arrives at assigned non-center c and centers itself;
            # under pair order (a,c) first, a would instead have centered c
            assert clusters == [frozenset({"b", "c"}), frozenset({"a"})]


class TestEngineDispatch:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            ClusteringEngine(CenterClustering(), engine="bogus")

    @pytest.mark.skipif(numpy is not None, reason="numpy importable")
    def test_use_numpy_requires_numpy(self):
        with pytest.raises(ValueError, match="numpy is not importable"):
            ClusteringEngine(CenterClustering(), use_numpy=True)

    def test_custom_subclass_falls_back_to_object(self):
        class LoudCenter(CenterClustering):
            def cluster(self, decisions):
                return [frozenset({"overridden"})]

        engine = ClusteringEngine(LoudCenter(), engine="array")
        assert not engine.array_applicable
        clusters = engine.cluster(DecisionColumns.from_decisions([decision("a", "b")]))
        assert clusters == [frozenset({"overridden"})]
        assert engine.last_engine == "object"

    def test_custom_algorithm_receives_lazy_decisions(self):
        from repro.matching.clustering import ClusteringAlgorithm

        seen = []

        class Recorder(ClusteringAlgorithm):
            def cluster(self, decisions):
                seen.extend(decisions)
                return []

        original = [decision("a", "b", 0.5), decision("b", "c", 0.25, is_match=False)]
        ClusteringEngine(Recorder()).cluster(DecisionColumns.from_decisions(original))
        assert seen == original


# ----------------------------------------------------------------------
# golden fixtures
# ----------------------------------------------------------------------

def _builtin_datasets():
    from repro.datasets.builtin import load_census, load_restaurants

    return {"restaurants": load_restaurants(), "census": load_census()}


THRESHOLDS = {"strict": 0.5, "permissive": 0.25}


def _dataset_decisions(dataset, threshold):
    """Deterministic decision log: token blocking + jaccard profile matcher."""
    from repro.blocking.token_blocking import TokenBlocking

    blocks = TokenBlocking().build(dataset.collection)
    comparisons = list(blocks.distinct_comparisons())
    matcher = ProfileSimilarityMatcher(threshold=threshold)
    return matcher.decide_all(comparisons, dataset.collection)


def _freeze_fixtures() -> None:
    FIXTURES_DIR.mkdir(parents=True, exist_ok=True)
    for dataset_name, dataset in _builtin_datasets().items():
        fixture = {"combos": []}
        for threshold_name, threshold in THRESHOLDS.items():
            decisions = _dataset_decisions(dataset, threshold)
            for algorithm_name, algorithm in ALGORITHMS.items():
                combo = f"{algorithm_name}+{threshold_name}"
                fixture["combos"].append(combo)
                fixture[combo] = _cluster_lists(algorithm().cluster(decisions))
        path = FIXTURES_DIR / f"{dataset_name}.json"
        path.write_text(
            json.dumps(fixture, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"froze {len(fixture['combos'])} combos to {path}")


def _fixture(dataset_name: str) -> dict:
    path = FIXTURES_DIR / f"{dataset_name}.json"
    return json.loads(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("dataset_name", ["restaurants", "census"])
def test_fixture_covers_all_combos(dataset_name):
    fixture = _fixture(dataset_name)
    expected = {f"{a}+{t}" for a in ALGORITHMS for t in THRESHOLDS}
    assert set(fixture["combos"]) == expected


@pytest.mark.parametrize(
    "engine_config",
    [("object", None)] + [("array", mode) for mode in NUMPY_MODES],
    ids=lambda c: f"{c[0]}-numpy={c[1]}",
)
@pytest.mark.parametrize("dataset_name", ["restaurants", "census"])
def test_engines_reproduce_golden_clusters(dataset_name, engine_config):
    engine_name, use_numpy = engine_config
    dataset = _builtin_datasets()[dataset_name]
    fixture = _fixture(dataset_name)
    for threshold_name, threshold in THRESHOLDS.items():
        decisions = _dataset_decisions(dataset, threshold)
        columns = DecisionColumns.from_decisions(decisions)
        for algorithm_name, algorithm in ALGORITHMS.items():
            engine = ClusteringEngine(
                algorithm(), engine=engine_name, use_numpy=use_numpy
            )
            clusters = engine.cluster(columns)
            assert (
                _cluster_lists(clusters) == fixture[f"{algorithm_name}+{threshold_name}"]
            ), f"{dataset_name}/{algorithm_name}+{threshold_name} diverged on {engine_config}"


if __name__ == "__main__":
    _freeze_fixtures()


class TestExecutionOrientation:
    """Columns may store rows in execution orientation (the runner's
    keep_decisions drain, ``decide_columns``); the array engine must
    canonicalise exactly like the oracle's ``decision.pair`` does."""

    def _reversed_columns(self, decisions):
        """Columns with every row deliberately in reverse-canonical order."""
        from repro.datamodel.pairs import OrdinalInterner

        intern = OrdinalInterner()
        columns = DecisionColumns(intern.ids)
        for d in decisions:
            first, second = d.pair
            columns.append(intern(second), intern(first), d.similarity, d.is_match)
        return columns

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    @pytest.mark.parametrize("use_numpy", NUMPY_MODES)
    def test_reversed_rows_cluster_like_the_oracle(self, algorithm, use_numpy):
        for seed in (3, 27):
            for variant in ("plain", "ties"):
                decisions = _seeded_decisions(seed, "dirty", variant)
                oracle = ALGORITHMS[algorithm]().cluster(decisions)
                engine = ClusteringEngine(
                    ALGORITHMS[algorithm](), engine="array", use_numpy=use_numpy
                )
                assert engine.cluster(self._reversed_columns(decisions)) == oracle

    def test_mixed_orientation_tie_break(self):
        """A reversed tied edge must still break ties on the canonical pair."""
        from repro.datamodel.pairs import OrdinalInterner

        intern = OrdinalInterner()
        columns = DecisionColumns(intern.ids)
        columns.append(intern("d"), intern("c"), 0.8, True)  # stored as (d, c)
        columns.append(intern("a"), intern("b"), 0.8, True)
        columns.append(intern("c"), intern("b"), 0.8, True)  # stored as (c, b)
        for engine_name in CLUSTERING_ENGINES:
            clusters = ClusteringEngine(CenterClustering(), engine=engine_name).cluster(
                columns
            )
            # canonical scan order (a,b), (b,c), (c,d) -- see TestTieBreaking
            assert clusters == [frozenset({"a", "b"}), frozenset({"c", "d"})]


class TestDecideColumns:
    """MatchingEngine.decide_columns emits the same decisions as decide_pairs
    -- as columns on the batch path, interned oracle decisions on fallback --
    and its output feeds the array clustering engine correctly."""

    def _collection(self):
        from repro.datamodel.collection import EntityCollection
        from repro.datamodel.description import EntityDescription

        return EntityCollection(
            [
                EntityDescription("z1", {"name": "maria santos lima"}),
                EntityDescription("a1", {"name": "maria santos lima"}),
                EntityDescription("m1", {"name": "maria santos"}),
                EntityDescription("q1", {"name": "entirely different person"}),
            ]
        )

    def _pairs(self, collection):
        # deliberately reverse-canonical explicit pairs (z1 > a1 etc.)
        return [
            (collection["z1"], collection["a1"]),
            (collection["z1"], collection["m1"]),
            (collection["m1"], collection["q1"]),
        ]

    def test_batch_columns_equal_decide_pairs(self):
        from repro.matching.engine import MatchingEngine

        collection = self._collection()
        pairs = self._pairs(collection)
        engine = MatchingEngine(ProfileSimilarityMatcher(threshold=0.5))
        columns = engine.decide_columns(pairs)
        assert engine.last_engine == "batch"
        assert list(columns) == engine.decide_pairs(pairs)
        assert columns.cost == engine.matcher.cost

    def test_fallback_columns_equal_decide_pairs(self):
        from repro.matching.engine import MatchingEngine

        class Sub(ProfileSimilarityMatcher):
            pass  # subclass: batch path must not replicate it

        collection = self._collection()
        pairs = self._pairs(collection)
        engine = MatchingEngine(Sub(threshold=0.5))
        columns = engine.decide_columns(pairs)
        assert engine.last_engine == "pairwise"
        assert list(columns) == engine.decide_pairs(pairs)

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_decide_columns_cluster_identically_on_both_engines(self, algorithm):
        from repro.matching.engine import MatchingEngine

        collection = self._collection()
        pairs = self._pairs(collection)
        columns = MatchingEngine(ProfileSimilarityMatcher(threshold=0.5)).decide_columns(
            pairs
        )
        clusters = {
            engine_name: ClusteringEngine(
                ALGORITHMS[algorithm](), engine=engine_name
            ).cluster(columns)
            for engine_name in CLUSTERING_ENGINES
        }
        assert clusters["array"] == clusters["object"]
