"""Tests for comparisons and the comparison counter."""

import pytest

from repro.datamodel.pairs import Comparison, ComparisonCounter, canonical_pair


def test_canonical_pair_orders_lexicographically():
    assert canonical_pair("b", "a") == ("a", "b")
    assert canonical_pair("a", "b") == ("a", "b")


def test_canonical_pair_rejects_self_pairs():
    with pytest.raises(ValueError):
        canonical_pair("a", "a")


def test_comparison_is_canonicalised_and_hashable():
    first = Comparison("b", "a")
    second = Comparison("a", "b")
    assert first.pair == ("a", "b")
    assert first == second
    assert len({first, second}) == 1


def test_comparison_weight_and_block_do_not_affect_equality():
    assert Comparison("a", "b", weight=0.3) == Comparison("a", "b", weight=0.9, block_id="t")


def test_comparison_other_and_involves():
    comparison = Comparison("a", "b")
    assert comparison.involves("a") and comparison.involves("b")
    assert not comparison.involves("c")
    assert comparison.other("a") == "b"
    with pytest.raises(KeyError):
        comparison.other("c")


def test_with_weight_preserves_pair_and_block():
    comparison = Comparison("a", "b", block_id="blk")
    weighted = comparison.with_weight(0.7)
    assert weighted.pair == ("a", "b")
    assert weighted.weight == 0.7
    assert weighted.block_id == "blk"


class TestComparisonCounter:
    def test_counts_per_stage_and_total(self):
        counter = ComparisonCounter()
        counter.record("blocking", 10)
        counter.record("matching")
        counter.record("matching", 4)
        assert counter.count("blocking") == 10
        assert counter.count("matching") == 5
        assert counter.total == 15
        assert counter.per_stage() == {"blocking": 10, "matching": 5}

    def test_reset(self):
        counter = ComparisonCounter()
        counter.record()
        counter.reset()
        assert counter.total == 0


class TestDecisionColumns:
    def _columns(self):
        from repro.datamodel.pairs import DecisionColumns, OrdinalInterner

        intern = OrdinalInterner()
        columns = DecisionColumns(intern.ids, cost=2.0)
        columns.append(intern("b"), intern("a"), 0.9, True)
        columns.append(intern("a"), intern("c"), 0.2, False)
        return columns

    def test_lazy_decisions_bridge(self):
        from repro.matching.matchers import MatchDecision

        columns = self._columns()
        assert len(columns) == 2
        first = columns[0]
        assert isinstance(first, MatchDecision)
        assert first.pair == ("a", "b")  # canonicalised like Comparison
        assert first.similarity == 0.9
        assert first.is_match is True
        assert first.cost == 2.0
        assert [d.is_match for d in columns] == [True, False]
        with pytest.raises(TypeError):
            columns[0:1]

    def test_pairs_and_matched_pairs(self):
        columns = self._columns()
        assert columns.pair(0) == ("a", "b")
        assert columns.pairs() == {("a", "b"), ("a", "c")}
        assert columns.matched_pairs() == [("a", "b")]
        assert columns.num_matches == 1

    def test_from_decisions_round_trip(self):
        from repro.datamodel.pairs import Comparison, DecisionColumns
        from repro.matching.matchers import MatchDecision

        decisions = [
            MatchDecision(Comparison("x", "m"), 0.7, True),
            MatchDecision(Comparison("m", "n"), 0.1, False),
        ]
        columns = DecisionColumns.from_decisions(decisions)
        assert list(columns) == decisions

    def test_from_match_pairs_canonicalises_and_rejects_self_pairs(self):
        from repro.datamodel.pairs import DecisionColumns

        columns = DecisionColumns.from_match_pairs([("b", "a"), ("a", "c")])
        assert [columns.pair(i) for i in range(len(columns))] == [("a", "b"), ("a", "c")]
        assert all(columns.is_match)
        assert all(s == 1.0 for s in columns.similarity)
        with pytest.raises(ValueError):
            DecisionColumns.from_match_pairs([("a", "a")])

    def test_misaligned_columns_rejected(self):
        from array import array

        from repro.datamodel.pairs import DecisionColumns

        with pytest.raises(ValueError):
            DecisionColumns(["a", "b"], first=array("q", [0]), second=array("q", []))
