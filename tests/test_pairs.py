"""Tests for comparisons and the comparison counter."""

import pytest

from repro.datamodel.pairs import Comparison, ComparisonCounter, canonical_pair


def test_canonical_pair_orders_lexicographically():
    assert canonical_pair("b", "a") == ("a", "b")
    assert canonical_pair("a", "b") == ("a", "b")


def test_canonical_pair_rejects_self_pairs():
    with pytest.raises(ValueError):
        canonical_pair("a", "a")


def test_comparison_is_canonicalised_and_hashable():
    first = Comparison("b", "a")
    second = Comparison("a", "b")
    assert first.pair == ("a", "b")
    assert first == second
    assert len({first, second}) == 1


def test_comparison_weight_and_block_do_not_affect_equality():
    assert Comparison("a", "b", weight=0.3) == Comparison("a", "b", weight=0.9, block_id="t")


def test_comparison_other_and_involves():
    comparison = Comparison("a", "b")
    assert comparison.involves("a") and comparison.involves("b")
    assert not comparison.involves("c")
    assert comparison.other("a") == "b"
    with pytest.raises(KeyError):
        comparison.other("c")


def test_with_weight_preserves_pair_and_block():
    comparison = Comparison("a", "b", block_id="blk")
    weighted = comparison.with_weight(0.7)
    assert weighted.pair == ("a", "b")
    assert weighted.weight == 0.7
    assert weighted.block_id == "blk"


class TestComparisonCounter:
    def test_counts_per_stage_and_total(self):
        counter = ComparisonCounter()
        counter.record("blocking", 10)
        counter.record("matching")
        counter.record("matching", 4)
        assert counter.count("blocking") == 10
        assert counter.count("matching") == 5
        assert counter.total == 15
        assert counter.per_stage() == {"blocking": 10, "matching": 5}

    def test_reset(self):
        counter = ComparisonCounter()
        counter.record()
        counter.reset()
        assert counter.total == 0
