"""Array-vs-object equivalence for the iterative resolvers.

The four resolvers of :mod:`repro.iterative` -- R-Swoosh, the naive
pairwise fixpoint, collective ER and the attribute-only baseline -- carry
an ``engine="array"|"object"`` switch.  The array engines batch similarity
scoring and keep cluster state in integer union--find structures; these
tests pin that every observable output (resolution order, matches, cluster
lists, comparison counts, rescue/requeue statistics, budget cutoffs) is
bit-identical to the per-pair object oracles, and that custom matcher
subclasses fall back to the object path automatically.
"""

from __future__ import annotations

import pytest

from repro.blocking.token_blocking import TokenBlocking
from repro.datamodel.collection import EntityCollection
from repro.datamodel.description import EntityDescription
from repro.datasets import DatasetConfig, generate_bibliographic_dataset, generate_dirty_dataset
from repro.iterative import ITERATIVE_ENGINES, AttributeOnlyER, CollectiveER, NaivePairwiseER, RSwoosh
from repro.matching.matchers import ProfileSimilarityMatcher


@pytest.fixture(scope="module")
def dirty_collection():
    return generate_dirty_dataset(
        DatasetConfig(num_entities=50, duplicates_per_entity=1.5, seed=7)
    ).collection


@pytest.fixture(scope="module")
def small_collection():
    return generate_dirty_dataset(
        DatasetConfig(num_entities=20, duplicates_per_entity=1.5, seed=11)
    ).collection


@pytest.fixture(scope="module")
def bibliographic_collection():
    return generate_bibliographic_dataset(
        num_authors=10, num_publications=20, duplicates_per_publication=1.0, seed=17
    ).collection


def relational_collection():
    return EntityCollection(
        [
            EntityDescription(
                "p1", {"title": "entity resolution on big data"}, relationships={"author": ["a1"]}
            ),
            EntityDescription(
                "p2", {"title": "entity resolution for big data"}, relationships={"author": ["a2"]}
            ),
            EntityDescription(
                "p3", {"title": "quantum chromodynamics on lattices"}, relationships={"author": ["a3"]}
            ),
            EntityDescription("a1", {"name": "j smith", "affiliation": "mit"}),
            EntityDescription("a2", {"name": "j smith", "office": "cambridge ma"}),
            EntityDescription("a3", {"name": "j smith"}),
        ]
    )


def _assert_swoosh_identical(cls, collection, **kwargs):
    matcher = ProfileSimilarityMatcher(threshold=0.55)
    array = cls(matcher, engine="array", **kwargs)
    oracle = cls(matcher, engine="object", **kwargs)
    array_result = array.resolve(collection)
    oracle_result = oracle.resolve(collection)
    assert array.last_engine == "array"
    assert oracle.last_engine == "object"
    assert [d.identifier for d in array_result.resolved] == [
        d.identifier for d in oracle_result.resolved
    ]
    assert array_result.comparisons_executed == oracle_result.comparisons_executed
    assert array_result.merges == oracle_result.merges
    assert array_result.clusters == oracle_result.clusters


class TestMergingResolvers:
    @pytest.mark.parametrize("budget", (None, 0, 1, 17, 200, 10**9))
    def test_rswoosh_bit_identity(self, dirty_collection, budget):
        _assert_swoosh_identical(RSwoosh, dirty_collection, budget=budget)

    @pytest.mark.parametrize("budget", (None, 0, 1, 17, 300))
    def test_naive_pairwise_bit_identity(self, small_collection, budget):
        _assert_swoosh_identical(NaivePairwiseER, small_collection, budget=budget)

    @pytest.mark.parametrize("cls", (RSwoosh, NaivePairwiseER))
    def test_empty_and_single_collections(self, cls):
        _assert_swoosh_identical(cls, EntityCollection(name="empty"))
        _assert_swoosh_identical(
            cls, EntityCollection([EntityDescription("only", {"name": "alan"})])
        )

    @pytest.mark.parametrize("cls", (RSwoosh, NaivePairwiseER))
    def test_custom_matcher_falls_back_to_object(self, cls, small_collection):
        class CustomMatcher(ProfileSimilarityMatcher):
            pass

        resolver = cls(CustomMatcher(threshold=0.55))
        resolver.resolve(small_collection)
        assert resolver.last_engine == "object"

    @pytest.mark.parametrize("cls", (RSwoosh, NaivePairwiseER))
    def test_unknown_engine_rejected(self, cls):
        with pytest.raises(ValueError, match="turbo"):
            cls(ProfileSimilarityMatcher(threshold=0.5), engine="turbo")

    def test_engine_names_exported(self):
        assert ITERATIVE_ENGINES == ("array", "object")


def _assert_collective_identical(cls, collection, candidates=None, **kwargs):
    matcher = ProfileSimilarityMatcher(threshold=1.0)
    array = cls(attribute_matcher=matcher, engine="array", **kwargs)
    oracle = cls(attribute_matcher=matcher, engine="object", **kwargs)
    array_result = array.resolve(collection, candidates)
    oracle_result = oracle.resolve(collection, candidates)
    assert array.last_engine == "array"
    assert oracle.last_engine == "object"
    for attribute in (
        "matches",
        "comparisons_executed",
        "relational_rescues",
        "requeue_events",
        "clusters",
    ):
        assert getattr(array_result, attribute) == getattr(oracle_result, attribute), attribute
    return array_result


class TestCollectiveResolvers:
    @pytest.mark.parametrize("budget", (None, 0, 5, 100, 10**9))
    @pytest.mark.parametrize("cls", (CollectiveER, AttributeOnlyER))
    def test_bit_identity_with_blocked_candidates(self, dirty_collection, cls, budget):
        blocks = TokenBlocking().build(dirty_collection)
        _assert_collective_identical(cls, dirty_collection, blocks, budget=budget)

    @pytest.mark.parametrize("cls", (CollectiveER, AttributeOnlyER))
    def test_bit_identity_with_default_candidates(self, small_collection, cls):
        _assert_collective_identical(cls, small_collection)

    @pytest.mark.parametrize("combination", ("boost", "weighted"))
    def test_relational_paths_bit_identity(self, combination):
        result = _assert_collective_identical(
            CollectiveER,
            relational_collection(),
            match_threshold=0.6,
            relationship_weight=0.5,
            candidate_threshold=0.0,
            combination=combination,
        )
        if combination == "boost":
            assert result.relational_rescues >= 1
            assert result.requeue_events >= 1

    def test_heavy_requeue_traffic_bit_identity(self, bibliographic_collection):
        result = _assert_collective_identical(
            CollectiveER,
            bibliographic_collection,
            match_threshold=0.65,
            relationship_weight=0.4,
            candidate_threshold=0.05,
        )
        assert result.requeue_events > 0

    @pytest.mark.parametrize("cls", (CollectiveER, AttributeOnlyER))
    def test_empty_collection(self, cls):
        result = _assert_collective_identical(cls, EntityCollection(name="empty"))
        assert result.matches == [] and result.clusters == []

    @pytest.mark.parametrize("cls", (CollectiveER, AttributeOnlyER))
    def test_custom_matcher_falls_back_to_object(self, cls, small_collection):
        class CustomMatcher(ProfileSimilarityMatcher):
            pass

        resolver = cls(attribute_matcher=CustomMatcher(threshold=1.0))
        resolver.resolve(small_collection)
        assert resolver.last_engine == "object"

    @pytest.mark.parametrize("cls", (CollectiveER, AttributeOnlyER))
    def test_unknown_engine_rejected(self, cls):
        with pytest.raises(ValueError, match="turbo"):
            cls(engine="turbo")
