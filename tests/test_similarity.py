"""Tests (including property-based) for the string/set similarity measures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.similarity import (
    SET_SIMILARITIES,
    STRING_SIMILARITIES,
    cosine_similarity,
    dice_similarity,
    get_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan_similarity,
    overlap_coefficient,
    symmetric_monge_elkan,
)

words = st.text(alphabet="abcdefg", min_size=0, max_size=12)
token_lists = st.lists(st.text(alphabet="abc", min_size=1, max_size=4), min_size=0, max_size=8)


class TestSetSimilarities:
    def test_jaccard_known_values(self):
        assert jaccard_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)
        assert jaccard_similarity(set(), set()) == 1.0
        assert jaccard_similarity({"a"}, set()) == 0.0

    def test_dice_and_overlap_and_cosine_known_values(self):
        assert dice_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)
        assert overlap_coefficient({"a", "b", "c"}, {"a"}) == 1.0
        assert cosine_similarity({"a", "b"}, {"a", "b"}) == pytest.approx(1.0)

    @given(token_lists, token_lists)
    def test_set_measures_are_symmetric_and_bounded(self, first, second):
        for measure in SET_SIMILARITIES.values():
            value = measure(first, second)
            assert 0.0 <= value <= 1.0
            assert value == pytest.approx(measure(second, first))

    @given(token_lists)
    def test_identity_gives_one(self, tokens):
        for measure in SET_SIMILARITIES.values():
            assert measure(tokens, tokens) == pytest.approx(1.0)


class TestLevenshtein:
    def test_known_distances(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "abc") == 0

    def test_similarity_normalisation(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0

    @given(words, words)
    def test_distance_is_symmetric_and_triangle_bounded(self, first, second):
        distance = levenshtein_distance(first, second)
        assert distance == levenshtein_distance(second, first)
        assert distance <= max(len(first), len(second))
        assert (distance == 0) == (first == second)

    @given(words, words, words)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= levenshtein_distance(a, b) + levenshtein_distance(b, c)


class TestJaro:
    def test_identical_and_disjoint(self):
        assert jaro_similarity("martha", "martha") == 1.0
        assert jaro_similarity("abc", "xyz") == 0.0
        assert jaro_similarity("", "abc") == 0.0

    def test_known_value(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_jaro_winkler_boosts_common_prefix(self):
        plain = jaro_similarity("dixon", "dickson")
        winkler = jaro_winkler_similarity("dixon", "dickson")
        assert winkler >= plain

    @given(words, words)
    def test_bounded_and_symmetric(self, first, second):
        value = jaro_winkler_similarity(first, second)
        assert 0.0 <= value <= 1.0 + 1e-9
        assert value == pytest.approx(jaro_winkler_similarity(second, first))


class TestMongeElkan:
    def test_empty_inputs(self):
        assert monge_elkan_similarity([], []) == 1.0
        assert monge_elkan_similarity(["a"], []) == 0.0

    def test_identical_token_lists(self):
        assert monge_elkan_similarity(["alan", "turing"], ["turing", "alan"]) == pytest.approx(1.0)

    def test_symmetric_variant_is_symmetric(self):
        first, second = ["alan", "turing"], ["alan"]
        assert symmetric_monge_elkan(first, second) == pytest.approx(
            symmetric_monge_elkan(second, first)
        )


def test_get_similarity_lookup_and_error():
    assert get_similarity("jaccard") is jaccard_similarity
    assert get_similarity("jaro_winkler") is jaro_winkler_similarity
    with pytest.raises(KeyError):
        get_similarity("unknown")
    assert set(STRING_SIMILARITIES) == {"levenshtein", "jaro", "jaro_winkler"}
