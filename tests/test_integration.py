"""Integration tests: end-to-end scenarios across modules.

These tests exercise realistic combinations of the public API (generator ->
blocking -> meta-blocking -> scheduling -> matching -> evaluation) rather than
single modules, and pin down cross-cutting guarantees such as determinism and
budget-monotonicity.
"""

import pytest

from repro import DatasetConfig, default_workflow, generate_dirty_dataset
from repro.blocking import BlockFiltering, BlockPurging, TokenBlocking
from repro.core import ERWorkflow, WorkflowConfig
from repro.datasets.corruption import CorruptionConfig
from repro.evaluation import evaluate_matches
from repro.matching import OracleMatcher
from repro.metablocking import MetaBlocking
from repro.progressive import (
    ProgressiveSortedNeighborhood,
    SortedListScheduler,
    WeightOrderScheduler,
    run_progressive,
)


@pytest.mark.parametrize("domain", ["person", "product", "publication"])
def test_default_workflow_across_domains(domain):
    dataset = generate_dirty_dataset(
        DatasetConfig(num_entities=80, duplicates_per_entity=1.0, domain=domain, seed=31)
    )
    result = default_workflow(match_threshold=0.5).run(dataset.collection, dataset.ground_truth)
    assert result.blocking_quality.pair_completeness > 0.85
    assert result.matching_quality.f1 > 0.6


def test_workflow_is_deterministic():
    dataset = generate_dirty_dataset(DatasetConfig(num_entities=60, seed=32))
    first = default_workflow().run(dataset.collection, dataset.ground_truth)
    second = default_workflow().run(dataset.collection, dataset.ground_truth)
    assert sorted(map(sorted, first.clusters)) == sorted(map(sorted, second.clusters))
    assert first.comparisons_executed == second.comparisons_executed


def test_budget_monotonicity_of_progressive_runs():
    """A larger budget never finds fewer true matches with the same scheduler."""
    dataset = generate_dirty_dataset(DatasetConfig(num_entities=80, duplicates_per_entity=1.5, seed=33))
    collection, truth = dataset.collection, dataset.ground_truth
    blocks = BlockFiltering(0.8).process(BlockPurging().process(TokenBlocking().build(collection)))
    found = []
    for budget in (100, 400, 1600):
        result = run_progressive(
            SortedListScheduler(restrict_to_candidates=False),
            OracleMatcher(truth),
            collection,
            blocks,
            budget=budget,
            ground_truth=truth,
        )
        found.append(result.true_matches_found)
    assert found == sorted(found)


def test_metablocking_then_scheduling_is_consistent_with_workflow():
    """Hand-wiring the stages gives the same candidate set as the packaged workflow."""
    dataset = generate_dirty_dataset(DatasetConfig(num_entities=60, seed=34))
    collection = dataset.collection

    config = WorkflowConfig(enable_purging=False, enable_filtering=False, use_tfidf=False)
    workflow_result = ERWorkflow(config).run(collection, dataset.ground_truth)

    blocks = TokenBlocking().build(collection)
    weighted = MetaBlocking(config.weighting_scheme, config.pruning_scheme).weighted_comparisons(blocks)
    assert workflow_result.comparisons_executed == len(weighted)


def test_noise_profile_degrades_quality_monotonically():
    """The 'somehow similar' profile is strictly harder than the 'highly similar' one."""
    easy = generate_dirty_dataset(
        DatasetConfig(num_entities=80, noise=CorruptionConfig.highly_similar(), seed=35)
    )
    hard = generate_dirty_dataset(
        DatasetConfig(num_entities=80, noise=CorruptionConfig.somehow_similar(), seed=35)
    )
    easy_result = default_workflow(match_threshold=0.5).run(easy.collection, easy.ground_truth)
    hard_result = default_workflow(match_threshold=0.5).run(hard.collection, hard.ground_truth)
    assert easy_result.matching_quality.f1 >= hard_result.matching_quality.f1


def test_scheduler_choice_does_not_change_final_result_without_budget():
    """With an unlimited budget the scheduler only affects the order, not the outcome."""
    dataset = generate_dirty_dataset(DatasetConfig(num_entities=50, seed=36))
    collection, truth = dataset.collection, dataset.ground_truth
    blocks = TokenBlocking().build(collection)

    def declared(scheduler):
        result = run_progressive(
            scheduler, OracleMatcher(truth), collection, blocks, budget=None, ground_truth=truth
        )
        return set(result.declared_matches)

    weight_order = declared(WeightOrderScheduler())
    sorted_list = declared(SortedListScheduler(restrict_to_candidates=True))
    psnm = declared(ProgressiveSortedNeighborhood(restrict_to_candidates=True))
    assert weight_order == sorted_list == psnm


def test_oracle_noise_degrades_matching_quality():
    dataset = generate_dirty_dataset(DatasetConfig(num_entities=60, duplicates_per_entity=1.5, seed=37))
    collection, truth = dataset.collection, dataset.ground_truth
    blocks = TokenBlocking().build(collection)

    def quality(matcher):
        result = run_progressive(
            WeightOrderScheduler(),
            matcher,
            collection,
            MetaBlocking("CBS", "CNP").weighted_comparisons(blocks),
            budget=None,
            ground_truth=truth,
        )
        return evaluate_matches(result.declared_matches, truth)

    perfect = quality(OracleMatcher(truth))
    noisy = quality(OracleMatcher(truth, false_negative_rate=0.3, false_positive_rate=0.05, seed=1))
    assert perfect.f1 >= noisy.f1
    assert perfect.precision == 1.0
