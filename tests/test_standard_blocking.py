"""Tests for standard, q-gram, suffix-array blocking and key functions."""

import pytest

from repro.blocking.standard import (
    QGramsBlocking,
    StandardBlocking,
    SuffixArrayBlocking,
    attribute_key,
    soundex,
    soundex_key,
)
from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datamodel.description import EntityDescription


def make_people():
    return EntityCollection(
        [
            EntityDescription("p1", {"name": "Alan Turing", "family_name": "Turing"}),
            EntityDescription("p2", {"name": "Alan M Turing", "family_name": "Turing"}),
            EntityDescription("p3", {"name": "Grace Hopper", "family_name": "Hopper"}),
            EntityDescription("p4", {"name": "Grace M Hopper", "family_name": "Hopper"}),
            EntityDescription("p5", {"name": "Ada Lovelace", "family_name": "Lovelace"}),
        ]
    )


def test_attribute_key_concatenation_and_prefix():
    key = attribute_key(["family_name"], length=4)
    assert key(EntityDescription("x", {"family_name": "Turing"})) == ["turi"]
    assert key(EntityDescription("x", {"name": "no surname"})) == []
    multi = attribute_key(["family_name", "name"])
    assert multi(EntityDescription("x", {"family_name": "Turing", "name": "Alan"})) == ["turing alan"]


def test_soundex_known_codes():
    assert soundex("Robert") == soundex("Rupert") == "R163"
    assert soundex("Turing") == soundex("Tuering")
    assert soundex("") == ""


def test_standard_blocking_groups_equal_keys():
    blocks = StandardBlocking([attribute_key(["family_name"])]).build(make_people())
    keys = {block.key: set(block.members) for block in blocks}
    assert keys["turing"] == {"p1", "p2"}
    assert keys["hopper"] == {"p3", "p4"}
    assert "lovelace" not in keys  # singleton blocks induce no comparison


def test_standard_blocking_requires_key_functions():
    with pytest.raises(ValueError):
        StandardBlocking([])


def test_standard_blocking_multi_pass_union():
    blocks = StandardBlocking(
        [attribute_key(["family_name"]), soundex_key("name")]
    ).build(make_people())
    pairs = set()
    for block in blocks:
        pairs.update(block.pairs())
    assert ("p1", "p2") in pairs and ("p3", "p4") in pairs


def test_standard_blocking_clean_clean_is_bilateral():
    left = EntityCollection(
        [EntityDescription("a:1", {"family_name": "Turing"})], name="left"
    )
    right = EntityCollection(
        [
            EntityDescription("b:1", {"family_name": "Turing"}),
            EntityDescription("b:2", {"family_name": "Turing"}),
        ],
        name="right",
    )
    blocks = StandardBlocking([attribute_key(["family_name"])]).build(CleanCleanTask(left, right))
    assert len(blocks) == 1
    assert blocks[0].is_bilateral
    assert blocks[0].num_comparisons() == 2  # only cross-collection pairs


def test_qgram_blocking_is_robust_to_typos():
    collection = EntityCollection(
        [
            EntityDescription("x1", {"name": "Turing"}),
            EntityDescription("x2", {"name": "Turng"}),  # deletion typo
        ]
    )
    standard = StandardBlocking([attribute_key(["name"])]).build(collection)
    qgram = QGramsBlocking(q=3, attributes=["name"]).build(collection)
    assert standard.num_distinct_comparisons() == 0
    assert ("x1", "x2") in qgram.distinct_pairs()


def test_qgram_blocking_rejects_tiny_q():
    with pytest.raises(ValueError):
        QGramsBlocking(q=1)


def test_suffix_blocking_groups_shared_suffixes_and_prunes_frequent_ones():
    collection = make_people()
    blocks = SuffixArrayBlocking(attributes=["family_name"], min_suffix_length=4).build(collection)
    pairs = blocks.distinct_pairs()
    assert ("p1", "p2") in pairs
    assert ("p3", "p4") in pairs
    # frequency pruning: with a tiny max size every block disappears
    pruned = SuffixArrayBlocking(
        attributes=["family_name"], min_suffix_length=4, max_block_size=1
    ).build(collection)
    assert len(pruned) == 0
