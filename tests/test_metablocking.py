"""Tests for the blocking graph, weighting schemes and pruning schemes."""

import math

import pytest

from repro.blocking.base import Block, BlockCollection
from repro.blocking.token_blocking import TokenBlocking
from repro.evaluation.metrics import evaluate_comparisons
from repro.metablocking.graph import BlockingGraph, WeightedEdge
from repro.metablocking.pipeline import MetaBlocking
from repro.metablocking.pruning import (
    CardinalityEdgePruning,
    CardinalityNodePruning,
    ReciprocalCardinalityNodePruning,
    ReciprocalWeightedNodePruning,
    WeightedEdgePruning,
    WeightedNodePruning,
    get_pruning_scheme,
)
from repro.metablocking.weighting import ARCS, CBS, ECBS, EJS, JS, get_weighting_scheme


def make_blocks() -> BlockCollection:
    """Small hand-built collection: (a,b) share 2 blocks, (a,c) and (b,c) share 1."""
    return BlockCollection(
        [
            Block("t1", members=["a", "b"]),
            Block("t2", members=["a", "b", "c"]),
            Block("t3", members=["c", "d"]),
            Block("t4", members=["d", "e"]),
        ]
    )


class TestBlockingGraph:
    def test_structure(self):
        graph = BlockingGraph(make_blocks())
        assert graph.num_nodes == 5
        # distinct co-occurring pairs: ab, ac, bc, cd, de
        assert graph.num_edges == 5
        assert graph.neighbors("a") == {"b", "c"}
        assert graph.neighbors("e") == {"d"}

    def test_shared_and_node_blocks(self):
        graph = BlockingGraph(make_blocks())
        assert graph.num_shared_blocks("a", "b") == 2
        assert graph.num_shared_blocks("b", "a") == 2  # order-insensitive
        assert graph.num_shared_blocks("a", "e") == 0
        assert graph.num_node_blocks("a") == 2
        assert graph.num_node_blocks("d") == 2
        assert graph.node_degree("c") == 3

    def test_bilateral_blocks_only_create_cross_edges(self):
        blocks = BlockCollection([Block("t", left_members=["l1", "l2"], right_members=["r1"])])
        graph = BlockingGraph(blocks)
        assert graph.num_edges == 2
        assert graph.neighbors("l1") == {"r1"}
        assert "l2" not in graph.neighbors("l1")


class TestWeightingSchemes:
    def test_cbs_counts_shared_blocks(self):
        graph = BlockingGraph(make_blocks())
        assert CBS().weight(graph, "a", "b") == 2.0
        assert CBS().weight(graph, "a", "c") == 1.0

    def test_ecbs_discounts_prolific_nodes(self):
        graph = BlockingGraph(make_blocks())
        ecbs = ECBS()
        # same number of shared blocks, but 'c' is in 2 blocks while 'b' is in 2 as well;
        # compare a pair with low-degree nodes against one with the same shared count
        weight_ab = ecbs.weight(graph, "a", "b")
        weight_de = ecbs.weight(graph, "d", "e")
        assert weight_ab > 0 and weight_de > 0
        # (a, b) share twice as many blocks, so even after discounting they rank higher
        assert weight_ab > weight_de

    def test_js_is_jaccard_of_block_sets(self):
        graph = BlockingGraph(make_blocks())
        assert JS().weight(graph, "a", "b") == pytest.approx(1.0)  # identical block sets
        assert JS().weight(graph, "a", "c") == pytest.approx(1 / 3)

    def test_ejs_requires_prepare_and_discounts_high_degree(self):
        graph = BlockingGraph(make_blocks())
        ejs = EJS()
        ejs.prepare(graph)
        weight_ab = ejs.weight(graph, "a", "b")
        weight_ac = ejs.weight(graph, "a", "c")
        assert weight_ab > weight_ac

    def test_arcs_prefers_small_blocks(self):
        graph = BlockingGraph(make_blocks())
        arcs = ARCS()
        # (a,b): blocks t1 (1 comparison) and t2 (3 comparisons) -> 1 + 1/3
        assert arcs.weight(graph, "a", "b") == pytest.approx(1 + 1 / 3)
        assert arcs.weight(graph, "d", "e") == pytest.approx(1.0)

    def test_scheme_lookup(self):
        assert isinstance(get_weighting_scheme("cbs"), CBS)
        assert isinstance(get_weighting_scheme("ARCS"), ARCS)
        with pytest.raises(KeyError):
            get_weighting_scheme("nope")


class TestPruningSchemes:
    def test_wep_keeps_above_average_edges(self):
        graph = BlockingGraph(make_blocks())
        retained = WeightedEdgePruning().prune(graph, CBS())
        pairs = {edge.pair for edge in retained}
        assert ("a", "b") in pairs  # the heaviest edge always survives
        assert len(retained) < graph.num_edges

    def test_cep_respects_budget(self):
        graph = BlockingGraph(make_blocks())
        retained = CardinalityEdgePruning(budget=2).prune(graph, CBS())
        assert len(retained) == 2
        assert retained[0].weight >= retained[1].weight

    def test_cnp_keeps_top_k_per_node(self):
        graph = BlockingGraph(make_blocks())
        retained = CardinalityNodePruning(k=1).prune(graph, CBS())
        pairs = {edge.pair for edge in retained}
        # every node keeps its best edge, so every node is covered
        covered = {node for pair in pairs for node in pair}
        assert covered == {"a", "b", "c", "d", "e"}

    def test_reciprocal_variants_are_subsets(self):
        graph = BlockingGraph(make_blocks())
        wnp = {e.pair for e in WeightedNodePruning().prune(graph, CBS())}
        reciprocal_wnp = {e.pair for e in ReciprocalWeightedNodePruning().prune(graph, CBS())}
        cnp = {e.pair for e in CardinalityNodePruning(k=1).prune(graph, CBS())}
        reciprocal_cnp = {e.pair for e in ReciprocalCardinalityNodePruning(k=1).prune(graph, CBS())}
        assert reciprocal_wnp <= wnp
        assert reciprocal_cnp <= cnp

    def test_empty_graph(self):
        graph = BlockingGraph(BlockCollection())
        assert WeightedEdgePruning().prune(graph, CBS()) == []
        assert CardinalityEdgePruning().prune(graph, CBS()) == []

    def test_pruning_lookup(self):
        assert isinstance(get_pruning_scheme("wep"), WeightedEdgePruning)
        assert isinstance(get_pruning_scheme("ReciprocalCNP"), ReciprocalCardinalityNodePruning)
        with pytest.raises(KeyError):
            get_pruning_scheme("nope")


class TestMetaBlockingPipeline:
    def test_by_name_construction_and_statistics(self):
        blocks = make_blocks()
        metablocking = MetaBlocking("JS", "WEP")
        comparisons = metablocking.weighted_comparisons(blocks)
        assert metablocking.last_graph_edges == 5
        assert metablocking.last_retained_edges == len(comparisons)
        assert all(c.weight is not None for c in comparisons)
        # heaviest first
        weights = [c.weight for c in comparisons]
        assert weights == sorted(weights, reverse=True)

    def test_process_returns_block_per_edge(self):
        blocks = make_blocks()
        restructured = MetaBlocking("CBS", "CEP").process(blocks)
        assert all(block.num_comparisons() == 1 for block in restructured)

    def test_pruning_reduces_comparisons_but_keeps_most_matches(self, small_dirty_dataset):
        blocks = TokenBlocking().build(small_dirty_dataset.collection)
        baseline = blocks.num_distinct_comparisons()
        for weighting in ("CBS", "ARCS"):
            metablocking = MetaBlocking(weighting, "WNP")
            comparisons = metablocking.weighted_comparisons(blocks)
            assert len(comparisons) < baseline
            quality = evaluate_comparisons(
                comparisons, small_dirty_dataset.ground_truth, small_dirty_dataset.collection
            )
            assert quality.pair_completeness >= 0.85

    @pytest.mark.parametrize("engine", ["graph", "index"])
    def test_last_run_statistics_populated_by_both_engines(self, engine):
        blocks = make_blocks()
        metablocking = MetaBlocking("CBS", "CEP", engine=engine)
        assert metablocking.last_input_comparisons == 0  # nothing ran yet
        retained = metablocking.retained_edges(blocks)
        assert metablocking.last_engine == engine
        assert metablocking.last_input_comparisons == blocks.total_comparisons()
        assert metablocking.last_graph_edges == 5
        assert metablocking.last_retained_edges == len(retained)
        # a fresh run on an empty collection resets the statistics
        metablocking.retained_edges(BlockCollection())
        assert metablocking.last_input_comparisons == 0
        assert metablocking.last_graph_edges == 0
        assert metablocking.last_retained_edges == 0

    @pytest.mark.parametrize("engine", ["graph", "index"])
    def test_weighted_comparisons_ordering_is_deterministic_under_ties(self, engine):
        # every pair shares exactly one block -> all CBS weights tie at 1.0
        blocks = BlockCollection(
            [
                Block("t1", members=["d", "c"]),
                Block("t2", members=["b", "a"]),
                Block("t3", members=["c", "b"]),
                Block("t4", members=["a", "d"]),
            ]
        )
        metablocking = MetaBlocking("CBS", "CNP", engine=engine)
        comparisons = metablocking.weighted_comparisons(blocks)
        assert all(c.weight == 1.0 for c in comparisons)
        # with k=1 each node endorses its (weight, first, second)-largest edge:
        # (a,b) is endorsed by neither endpoint and is pruned; the surviving
        # ties are ordered by the canonical pair, stable across runs and engines
        assert [c.pair for c in comparisons] == [
            ("a", "d"),
            ("b", "c"),
            ("c", "d"),
        ]
        rerun = MetaBlocking("CBS", "CNP", engine=engine).weighted_comparisons(blocks)
        assert [c.pair for c in rerun] == [c.pair for c in comparisons]

    def test_node_centric_keeps_more_recall_than_edge_centric(self, small_dirty_dataset):
        blocks = TokenBlocking().build(small_dirty_dataset.collection)
        node_centric = MetaBlocking("CBS", "CNP").weighted_comparisons(blocks)
        edge_centric = MetaBlocking("CBS", "CEP").weighted_comparisons(blocks)
        node_quality = evaluate_comparisons(
            node_centric, small_dirty_dataset.ground_truth, small_dirty_dataset.collection
        )
        edge_quality = evaluate_comparisons(
            edge_centric, small_dirty_dataset.ground_truth, small_dirty_dataset.collection
        )
        assert node_quality.pair_completeness >= edge_quality.pair_completeness
