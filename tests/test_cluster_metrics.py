"""Tests for cluster-level evaluation metrics."""

import pytest

from repro.datamodel.ground_truth import GroundTruth
from repro.evaluation.clusters import (
    closest_cluster_score,
    evaluate_clusters,
    variation_of_information,
)


@pytest.fixture()
def truth():
    return GroundTruth([["a", "b"], ["c", "d", "e"], ["f"]])


UNIVERSE = ["a", "b", "c", "d", "e", "f"]


def test_perfect_partition(truth):
    quality = evaluate_clusters([["a", "b"], ["c", "d", "e"], ["f"]], truth, UNIVERSE)
    assert quality.cluster_precision == 1.0
    assert quality.cluster_recall == 1.0
    assert quality.cluster_f1 == 1.0
    assert quality.closest_cluster_f1 == pytest.approx(1.0)
    assert quality.variation_of_information == pytest.approx(0.0, abs=1e-12)


def test_singletons_are_added_for_uncovered_identifiers(truth):
    # output only covers a and b: c, d, e, f become singletons
    quality = evaluate_clusters([["a", "b"]], truth, UNIVERSE)
    assert quality.num_output_clusters == 5
    assert 0.0 < quality.cluster_precision <= 1.0
    assert quality.cluster_recall < 1.0


def test_over_merged_partition_scores_worse_than_perfect(truth):
    perfect = evaluate_clusters([["a", "b"], ["c", "d", "e"], ["f"]], truth, UNIVERSE)
    over_merged = evaluate_clusters([["a", "b", "c", "d", "e", "f"]], truth, UNIVERSE)
    assert over_merged.cluster_f1 < perfect.cluster_f1
    assert over_merged.closest_cluster_f1 < perfect.closest_cluster_f1
    assert over_merged.variation_of_information > perfect.variation_of_information


def test_under_merged_partition_scores_worse_than_perfect(truth):
    perfect = evaluate_clusters([["a", "b"], ["c", "d", "e"], ["f"]], truth, UNIVERSE)
    singletons = evaluate_clusters([], truth, UNIVERSE)
    assert singletons.cluster_recall < perfect.cluster_recall
    assert singletons.variation_of_information > 0.0


def test_identifiers_outside_universe_are_ignored(truth):
    quality = evaluate_clusters([["a", "b", "zzz"]], truth, UNIVERSE)
    # the stray identifier does not break exact-match counting
    assert quality.cluster_precision > 0.0


def test_closest_cluster_score_and_vi_edge_cases():
    assert closest_cluster_score([], [frozenset({"a"})]) == 0.0
    assert variation_of_information([], [], 0) == 0.0
    same = [frozenset({"a", "b"})]
    assert variation_of_information(same, same, 2) == pytest.approx(0.0, abs=1e-12)


def test_workflow_clusters_can_be_evaluated(small_dirty_dataset):
    from repro import default_workflow

    result = default_workflow().run(small_dirty_dataset.collection, small_dirty_dataset.ground_truth)
    quality = evaluate_clusters(
        result.clusters, small_dirty_dataset.ground_truth, small_dirty_dataset.collection.identifiers
    )
    assert quality.closest_cluster_f1 > 0.8
    assert quality.variation_of_information < 1.0
