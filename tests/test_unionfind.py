"""Tests for the shared union--find structures and their consumers.

Besides the unit behaviour of :class:`UnionFind` / :class:`IntUnionFind`,
this module pins the cluster output of every call site that used to carry a
hand-rolled ``parent``-dict union--find (clustering, evaluation, iterative
blocking, collective ER, incremental ER, attribute clustering), so the
deduplication onto :mod:`repro.core.unionfind` provably kept the public
behaviour of each module.
"""

import pytest

from repro.core.unionfind import IntUnionFind, UnionFind


class TestUnionFind:
    def test_find_registers_singletons(self):
        links = UnionFind()
        assert links.find("a") == "a"
        assert "a" in links
        assert "b" not in links
        assert len(links) == 1

    def test_union_first_root_wins(self):
        links = UnionFind()
        assert links.union("a", "b") is True
        assert links.find("b") == "a"
        assert links.union("a", "b") is False  # already joined

    def test_transitive_union_keeps_winner_root(self):
        links = UnionFind()
        links.union("a", "b")
        links.union("c", "d")
        links.union("b", "d")  # joins {a,b} and {c,d}; a's root wins
        assert {links.find(x) for x in "abcd"} == {"a"}
        assert links.connected("b", "c")
        assert not links.connected("a", "z")  # registers z as a singleton
        assert "z" in links

    def test_groups_preserve_first_touch_order(self):
        links = UnionFind()
        links.union("m", "n")
        links.union("x", "y")
        links.union("m", "x")
        groups = links.groups()
        assert list(groups) == ["m"]
        assert groups["m"] == ["m", "n", "x", "y"]

    def test_pre_seeded_keys_enumerate_in_seed_order(self):
        links = UnionFind(["c", "a", "b"])
        links.union("b", "a")
        assert [sorted(cluster) for cluster in links.clusters()] == [["c"], ["a", "b"]]
        assert links.clusters(min_size=2) == [frozenset({"a", "b"})]

    def test_deterministic_across_runs(self):
        """Insertion-ordered groups do not depend on string hashing."""
        links = UnionFind()
        for first, second in [("u2", "u9"), ("u5", "u2"), ("u7", "u8")]:
            links.union(first, second)
        assert links.clusters() == [
            frozenset({"u2", "u9", "u5"}),
            frozenset({"u7", "u8"}),
        ]


class TestIntUnionFind:
    def test_union_and_find(self):
        links = IntUnionFind(5)
        assert links.union(0, 3)
        assert links.union(3, 4)
        assert links.find(4) == 0
        assert not links.union(0, 4)
        assert links.connected(3, 4)
        assert not links.connected(1, 2)

    def test_grow_adds_singletons(self):
        links = IntUnionFind(2)
        links.union(0, 1)
        links.grow(4)
        assert len(links) == 4
        assert links.find(3) == 3
        assert links.find(1) == 0

    def test_mirrors_keyed_union_find(self):
        """Same union sequence => same set representatives as UnionFind."""
        import random

        rng = random.Random(41)
        keyed = UnionFind(str(i) for i in range(50))
        coded = IntUnionFind(50)
        for _ in range(80):
            a, b = rng.randrange(50), rng.randrange(50)
            if a == b:
                continue
            keyed.union(str(a), str(b))
            coded.union(a, b)
        for i in range(50):
            assert keyed.find(str(i)) == str(coded.find(i))


class TestConsumerRegressions:
    """Pin the cluster output of every module that migrated to UnionFind."""

    def test_connected_components_cluster_order(self):
        from repro.datamodel.pairs import Comparison
        from repro.matching.clustering import ConnectedComponentsClustering
        from repro.matching.matchers import MatchDecision

        decisions = [
            MatchDecision(Comparison("d", "e"), 0.9, True),
            MatchDecision(Comparison("a", "b"), 0.8, True),
            MatchDecision(Comparison("b", "e"), 0.7, True),
            MatchDecision(Comparison("x", "y"), 0.6, True),
        ]
        # clusters enumerate in first-touch order of their first member
        assert ConnectedComponentsClustering().cluster(decisions) == [
            frozenset({"d", "e", "a", "b"}),
            frozenset({"x", "y"}),
        ]

    def test_merge_center_cluster_order_is_deterministic(self):
        from repro.datamodel.pairs import Comparison
        from repro.matching.clustering import MergeCenterClustering
        from repro.matching.matchers import MatchDecision

        decisions = [
            MatchDecision(Comparison("c", "d"), 0.8, True),
            MatchDecision(Comparison("a", "b"), 0.9, True),
            MatchDecision(Comparison("a", "c"), 0.7, True),
            MatchDecision(Comparison("x", "y"), 0.5, True),
        ]
        # heaviest-first scan assigns a,b then c,d then merges both centers
        assert MergeCenterClustering().cluster(decisions) == [
            frozenset({"a", "b", "c", "d"}),
            frozenset({"x", "y"}),
        ]

    def test_evaluate_matches_counts_as_pair_sets_did(self):
        from repro.datamodel.ground_truth import GroundTruth
        from repro.evaluation.metrics import evaluate_matches

        truth = GroundTruth([["a", "b", "c"], ["d", "e"]])
        quality = evaluate_matches([("a", "b"), ("b", "c"), ("d", "x")], truth)
        # closure declares {a,b,c} (3 pairs, all correct) and {d,x} (1 pair, wrong)
        assert quality.num_declared == 4
        assert quality.num_correct == 3
        assert quality.precision == pytest.approx(3 / 4)
        assert quality.recall == pytest.approx(3 / 4)

    def test_independent_block_processing_clusters(self):
        from repro.blocking.base import Block, BlockCollection
        from repro.datamodel.collection import EntityCollection
        from repro.datamodel.description import EntityDescription
        from repro.iterative.iterative_blocking import IndependentBlockProcessing
        from repro.matching.matchers import ProfileSimilarityMatcher

        collection = EntityCollection(
            [
                EntityDescription("1", {"name": "anna lee"}),
                EntityDescription("2", {"name": "anna lee"}),
                EntityDescription("3", {"name": "bob ray"}),
            ]
        )
        blocks = BlockCollection([Block("anna", members=["1", "2"]), Block("ray", members=["3"])])
        result = IndependentBlockProcessing(
            ProfileSimilarityMatcher(threshold=0.9)
        ).resolve(collection, blocks)
        assert result.clusters == [frozenset({"1", "2"})]

    def test_collective_resolver_cluster_order(self):
        from repro.datamodel.collection import EntityCollection
        from repro.datamodel.description import EntityDescription
        from repro.iterative.collective import AttributeOnlyER

        collection = EntityCollection(
            [
                EntityDescription("p1", {"name": "carla jones", "city": "athens"}),
                EntityDescription("p2", {"name": "carla jones", "city": "athens"}),
                EntityDescription("p3", {"name": "mia wong", "city": "oslo"}),
                EntityDescription("p4", {"name": "mia wong", "city": "oslo"}),
            ]
        )
        result = AttributeOnlyER(match_threshold=0.9).resolve(collection)
        assert sorted(sorted(c) for c in result.clusters) == [["p1", "p2"], ["p3", "p4"]]

    def test_incremental_resolver_clusters_via_shared_links(self):
        from repro.datamodel.description import EntityDescription
        from repro.iterative.incremental import IncrementalResolver
        from repro.matching.matchers import ProfileSimilarityMatcher

        resolver = IncrementalResolver(ProfileSimilarityMatcher(threshold=0.8))
        resolver.add(EntityDescription("a", {"name": "john maynard keynes"}))
        resolver.add(EntityDescription("b", {"name": "ludwig mies rohe"}))
        arrival = resolver.add(EntityDescription("c", {"name": "john maynard keynes"}))
        assert arrival.matched_clusters == ["a"]
        assert resolver.cluster_of("a") == frozenset({"a", "c"})
        assert resolver.cluster_of("c") == frozenset({"a", "c"})
        assert resolver.cluster_of("unknown") == frozenset()
        assert resolver.representation_of("unknown") is None
        assert resolver.non_trivial_clusters() == [frozenset({"a", "c"})]

    def test_cluster_attribute_profiles_ids(self):
        from repro.blocking.token_blocking import cluster_attribute_profiles

        profiles = {
            "name": {"anna", "bob", "carla"},
            "full_name": {"anna", "bob", "carla", "dan"},
            "year": {"1999", "2001"},
            "date": {"1999", "2001", "2003"},
            "isolated": {"zzz"},
        }
        clusters = cluster_attribute_profiles(profiles, similarity_threshold=0.5)
        assert clusters["name"] == clusters["full_name"]
        assert clusters["year"] == clusters["date"]
        assert clusters["name"] != clusters["year"]
        assert clusters["isolated"] == 0  # glue cluster
