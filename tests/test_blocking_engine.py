"""Edge cases of the array-backed blocking engine (`repro.blocking.engine`)."""

import pytest

from repro.blocking import (
    Block,
    BlockCollection,
    BlockFiltering,
    BlockPurging,
    BlockingEngine,
    SortedNeighborhoodBlocking,
    TokenBlocking,
)
from repro.blocking.engine import _index_propagate
from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datamodel.description import EntityDescription


def _collection(*pairs):
    return EntityCollection(
        [EntityDescription(identifier, {"name": value}) for identifier, value in pairs]
    )


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            BlockingEngine(engine="turbo")

    def test_default_builder_is_token_blocking(self):
        assert isinstance(BlockingEngine().builder, TokenBlocking)

    def test_sorted_neighborhood_runs_on_the_index_engine(self):
        data = _collection(("a", "alan turing"), ("b", "alan hopper"), ("c", "grace hopper"))
        engine = BlockingEngine(SortedNeighborhoodBlocking(window_size=2), engine="index")
        blocks = engine.build(data)
        assert engine.last_engine == "index"
        engine.clean(blocks, purging=BlockPurging())
        assert engine.last_engine == "index"

    def test_custom_builder_falls_back_for_build_only(self):
        class CustomBuilder(SortedNeighborhoodBlocking):
            pass

        data = _collection(("a", "alan turing"), ("b", "alan hopper"), ("c", "grace hopper"))
        engine = BlockingEngine(CustomBuilder(window_size=2), engine="index")
        with pytest.warns(RuntimeWarning):
            blocks = engine.build(data)
        assert engine.last_engine == "oracle"
        # ...but cleaning a foreign builder's blocks still runs on the index
        engine.clean(blocks, purging=BlockPurging())
        assert engine.last_engine == "index"

    def test_run_reports_oracle_when_build_fell_back(self):
        class CustomBuilder(SortedNeighborhoodBlocking):
            pass

        data = _collection(("a", "alan turing"), ("b", "alan hopper"))
        engine = BlockingEngine(CustomBuilder(window_size=2), engine="index")
        with pytest.warns(RuntimeWarning):
            engine.run(data, purging=BlockPurging())
        assert engine.last_engine == "oracle"

    def test_clean_without_steps_reports_configured_engine(self):
        engine = BlockingEngine(engine="index")
        blocks = BlockCollection([Block("t", members=["a", "b"])])
        assert engine.clean(blocks) is blocks
        assert engine.last_engine == "index"

    def test_mixed_native_and_custom_cleaners_report_oracle(self):
        class CustomFiltering(BlockFiltering):
            pass

        data = _collection(("a", "alan turing"), ("b", "alan hopper"), ("c", "grace hopper"))
        engine = BlockingEngine(engine="index")
        blocks = engine.build(data)
        cleaned = engine.clean(blocks, purging=BlockPurging(), filtering=CustomFiltering(0.8))
        assert engine.last_engine == "oracle"
        oracle = CustomFiltering(0.8).process(BlockPurging().process(blocks))
        assert [b.key for b in cleaned] == [b.key for b in oracle]


class TestEmptyInputs:
    def test_empty_dirty_collection(self):
        engine = BlockingEngine(engine="index")
        assert len(engine.build(EntityCollection())) == 0

    def test_empty_clean_clean_task(self):
        task = CleanCleanTask(EntityCollection(name="l"), EntityCollection(name="r"))
        engine = BlockingEngine(engine="index")
        assert len(engine.build(task)) == 0

    def test_cleaning_empty_collection(self):
        engine = BlockingEngine(engine="index")
        empty = BlockCollection(name="empty")
        for kwargs in (
            {"purging": BlockPurging()},
            {"filtering": BlockFiltering(0.5)},
            {"propagate": True},
        ):
            assert len(engine.clean(empty, **kwargs)) == 0


class TestIndexCleaningDetails:
    def test_fixed_purging_threshold_matches_oracle(self):
        blocks = BlockCollection(
            [
                Block("small", members=["a", "b"]),
                Block("large", members=[f"x{i}" for i in range(10)]),
            ]
        )
        purging = BlockPurging(max_comparisons=5)
        engine = BlockingEngine(engine="index")
        assert [b.key for b in engine.clean(blocks, purging=purging)] == [
            b.key for b in purging.process(blocks)
        ]

    def test_filtering_always_keeps_at_least_one_block_per_entity(self):
        blocks = BlockCollection(
            [
                Block("only", members=["a", "b"]),
                Block("big", members=["a", "b", "c", "d", "e"]),
            ]
        )
        engine = BlockingEngine(engine="index")
        filtered = engine.clean(blocks, filtering=BlockFiltering(0.1))
        assert "a" in filtered.placed_identifiers()

    @pytest.mark.parametrize("use_numpy", (None, False))
    def test_propagation_first_block_wins_orientation(self, use_numpy):
        blocks = BlockCollection(
            [
                Block("first", left_members=["l1"], right_members=["r1"]),
                Block("second", left_members=["r1"], right_members=["l1"]),
            ]
        )
        propagated = _index_propagate(blocks, use_numpy is None)
        assert len(propagated) == 1
        block = propagated[0]
        assert block.left_members == ("l1",)
        assert block.right_members == ("r1",)

    @pytest.mark.parametrize("use_numpy", (None, False))
    def test_propagation_self_pair_raises_like_the_oracle(self, use_numpy):
        blocks = BlockCollection(
            [Block("bad", left_members=["dup", "l2"], right_members=["dup"])]
        )
        with pytest.raises(ValueError, match="two distinct descriptions"):
            _index_propagate(blocks, use_numpy is None)


class TestPairFastPaths:
    def test_pair_equivalent_to_constructor(self):
        fast = Block.pair("pair:a|b", "a", "b")
        slow = Block("pair:a|b", members=["a", "b"])
        assert fast.key == slow.key
        assert fast.members == slow.members
        assert not fast.is_bilateral
        assert fast.num_comparisons() == 1

    def test_bilateral_pair_equivalent_to_constructor(self):
        fast = Block.bilateral_pair("pair:a|b", "a", "b")
        slow = Block("pair:a|b", left_members=["a"], right_members=["b"])
        assert fast.key == slow.key
        assert fast.left_members == slow.left_members
        assert fast.right_members == slow.right_members
        assert fast.is_bilateral
        assert fast.num_comparisons() == 1


class TestMemberLimit:
    def test_no_limit_configured(self):
        assert TokenBlocking().member_limit(100) is None

    def test_empty_collection_has_no_limit(self):
        assert TokenBlocking(max_block_fraction=0.5).member_limit(0) is None

    def test_floating_point_truncation_fixed(self):
        # 0.3 * 10 == 2.999...96 in binary floating point; the old int()
        # truncation yielded 2 where the intended bound is 3
        assert TokenBlocking(max_block_fraction=0.3).member_limit(10) == 3

    def test_limit_never_below_two(self):
        assert TokenBlocking(max_block_fraction=0.01).member_limit(2) == 2
        assert TokenBlocking(max_block_fraction=0.01).member_limit(3) == 2

    def test_full_fraction_keeps_everything(self):
        assert TokenBlocking(max_block_fraction=1.0).member_limit(3) == 3
