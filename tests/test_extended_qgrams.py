"""Tests for extended q-gram blocking."""

import pytest

from repro.blocking.standard import ExtendedQGramsBlocking, QGramsBlocking
from repro.datamodel.collection import EntityCollection
from repro.datamodel.description import EntityDescription
from repro.evaluation.metrics import evaluate_blocks


def make_collection():
    return EntityCollection(
        [
            EntityDescription("x1", {"name": "turing"}),
            EntityDescription("x2", {"name": "turinng"}),  # insertion typo
            EntityDescription("y1", {"name": "hopper"}),
            EntityDescription("y2", {"name": "popper"}),  # different entity, 1 char apart
        ]
    )


def test_threshold_validation():
    with pytest.raises(ValueError):
        ExtendedQGramsBlocking(threshold=0.0)
    with pytest.raises(ValueError):
        ExtendedQGramsBlocking(threshold=1.2)


def test_extended_keys_require_large_qgram_overlap():
    collection = make_collection()
    plain = QGramsBlocking(q=3, attributes=["name"]).build(collection)
    extended = ExtendedQGramsBlocking(q=3, threshold=0.75, attributes=["name"]).build(collection)
    # plain q-grams put the near-identical names together but also hopper/popper
    assert ("x1", "x2") in plain.distinct_pairs()
    assert ("y1", "y2") in plain.distinct_pairs()
    # the extended variant keeps the true near-duplicate but drops the low-overlap pair
    assert ("x1", "x2") in extended.distinct_pairs()
    assert ("y1", "y2") not in extended.distinct_pairs()
    assert extended.num_distinct_comparisons() <= plain.num_distinct_comparisons()


def test_extended_qgrams_reduce_comparisons_on_generated_data(small_dirty_dataset):
    collection = small_dirty_dataset.collection.sample(80, seed=2)
    truth = small_dirty_dataset.ground_truth.restricted_to(collection.identifiers)
    plain = QGramsBlocking(q=3).build(collection)
    extended = ExtendedQGramsBlocking(q=3, threshold=0.9).build(collection)
    plain_quality = evaluate_blocks(plain, truth, collection)
    extended_quality = evaluate_blocks(extended, truth, collection)
    assert extended_quality.num_comparisons < plain_quality.num_comparisons
    assert extended_quality.reduction_ratio > plain_quality.reduction_ratio


def test_threshold_one_degenerates_to_full_key():
    collection = make_collection()
    blocks = ExtendedQGramsBlocking(q=3, threshold=1.0, attributes=["name"]).build(collection)
    # with threshold 1.0 the key is the concatenation of all q-grams: only exact
    # (normalised) duplicates co-occur, so no block forms here
    assert blocks.num_distinct_comparisons() == 0
