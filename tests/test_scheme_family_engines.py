"""Array-vs-oracle equivalence for the long-tail blocking families.

Every scheme ported to the index engine in the scheme-family PR -- minhash/
LSH, canopy, the three sorted-neighbourhood variants and the similarity
self-join -- must produce *bit-identical* block collections on four
execution paths: the legacy oracle, the index engine with NumPy, the index
engine's pure-Python fallback, and the index engine fed a shared
:class:`~repro.core.context.PipelineContext`.  Equality is structural:
key order, member order, bilateral splits and ties.

The golden half of the suite freezes the oracle's output on the builtin
datasets into ``tests/fixtures/blocking/families_*.json``; regenerate (only
on intentional semantic changes) with::

    PYTHONPATH=src python tests/test_scheme_family_engines.py
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import pytest

from repro.blocking import (
    CanopyClusteringBlocking,
    ExtendedSortedNeighborhoodBlocking,
    MinHashLSHBlocking,
    MultiPassSortedNeighborhoodBlocking,
    SimilarityJoinBlocking,
    SortedNeighborhoodBlocking,
)
from repro.blocking.engine import BlockingEngine
from repro.blocking.sorted_neighborhood import sorting_key_from_attributes
from repro.core.context import PipelineContext
from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datamodel.description import EntityDescription
from repro.datasets.builtin import load_census, load_restaurants
from test_blocking_equivalence import (
    random_clean_clean_task,
    random_dirty_collection,
    snapshot,
)

FIXTURES_DIR = Path(__file__).parent / "fixtures" / "blocking"

FAMILY_BUILDERS = {
    "minhash_lsh": lambda: MinHashLSHBlocking(num_bands=8, rows_per_band=2),
    "minhash_lsh-default": lambda: MinHashLSHBlocking(),
    "canopy": lambda: CanopyClusteringBlocking(),
    "canopy-tight": lambda: CanopyClusteringBlocking(
        loose_threshold=0.1, tight_threshold=0.3, seed=5
    ),
    "sorted_neighborhood": lambda: SortedNeighborhoodBlocking(window_size=3),
    "extended_sorted_neighborhood": lambda: ExtendedSortedNeighborhoodBlocking(
        window_size=2
    ),
    "multipass_sorted_neighborhood": lambda: MultiPassSortedNeighborhoodBlocking(
        window_size=3,
        sorting_keys=(None, sorting_key_from_attributes(["name", "city"])),
    ),
    "similarity_join": lambda: SimilarityJoinBlocking(threshold=0.4),
    "similarity_join-no-positional": lambda: SimilarityJoinBlocking(
        threshold=0.6, use_positional_filter=False
    ),
}

SEEDS = (3, 42, 97)


def _assert_all_paths_agree(data, factory, label=""):
    """Oracle vs index x {numpy, pure-python} x {context, none}."""
    expected = snapshot(factory().build(data))
    for use_numpy, numpy_label in ((None, "numpy"), (False, "pure-python")):
        for with_context in (False, True):
            context = PipelineContext(data) if with_context else None
            engine = BlockingEngine(
                factory(), engine="index", context=context, use_numpy=use_numpy
            )
            built = engine.build(data)
            assert engine.last_engine == "index", (label, numpy_label, with_context)
            assert snapshot(built) == expected, (label, numpy_label, with_context)


@pytest.mark.parametrize("builder_name", sorted(FAMILY_BUILDERS))
@pytest.mark.parametrize("seed", SEEDS)
def test_dirty_bit_identity(seed, builder_name):
    data = random_dirty_collection(seed, size=40)
    _assert_all_paths_agree(data, FAMILY_BUILDERS[builder_name], builder_name)


@pytest.mark.parametrize("builder_name", sorted(FAMILY_BUILDERS))
@pytest.mark.parametrize("seed", SEEDS[:2])
def test_clean_clean_bit_identity(seed, builder_name):
    task = random_clean_clean_task(seed, per_side=25)
    _assert_all_paths_agree(task, FAMILY_BUILDERS[builder_name], builder_name)


@pytest.mark.parametrize("builder_name", sorted(FAMILY_BUILDERS))
def test_degenerate_inputs_bit_identity(builder_name):
    factory = FAMILY_BUILDERS[builder_name]
    empty = EntityCollection(name="empty")
    single = EntityCollection([EntityDescription("only", {"name": "alan turing"})])
    # stop words and sub-minimum tokens only: every token column is empty
    blank = EntityCollection(
        [
            EntityDescription("b1", {"name": "the of a"}),
            EntityDescription("b2", {"name": "x y z"}),
            EntityDescription("b3", {}),
        ]
    )
    # identical values: every sort key, signature and similarity ties
    ties = EntityCollection(
        [EntityDescription(f"t{i}", {"name": "grace hopper"}) for i in range(5)]
    )
    empty_task = CleanCleanTask(EntityCollection(name="l"), EntityCollection(name="r"))
    one_sided = CleanCleanTask(
        EntityCollection([EntityDescription("L1", {"name": "alan"})], name="l"),
        EntityCollection(name="r"),
    )
    for label, data in (
        ("empty", empty),
        ("single", single),
        ("blank-tokens", blank),
        ("all-ties", ties),
        ("empty-task", empty_task),
        ("one-sided-task", one_sided),
    ):
        _assert_all_paths_agree(data, factory, f"{builder_name}/{label}")


def test_similarity_join_statistics_match_oracle():
    data = random_dirty_collection(11, size=40)
    oracle = SimilarityJoinBlocking(threshold=0.4)
    oracle.build(data)
    for use_numpy in (None, False):
        ported = SimilarityJoinBlocking(threshold=0.4)
        BlockingEngine(ported, engine="index", use_numpy=use_numpy).build(data)
        assert ported.last_candidate_count == oracle.last_candidate_count
        assert ported.last_verified_count == oracle.last_verified_count


# ----------------------------------------------------------------------
# fallback warning (satellite: one-time RuntimeWarning naming the scheme)
# ----------------------------------------------------------------------
class TestFallbackWarning:
    def test_custom_builder_warns_once_with_scheme_name(self):
        class MyCustomScheme(SortedNeighborhoodBlocking):
            pass

        data = random_dirty_collection(3, size=10)
        engine = BlockingEngine(MyCustomScheme(window_size=2), engine="index")
        with pytest.warns(RuntimeWarning, match="MyCustomScheme") as record:
            engine.build(data)
        assert engine.last_engine == "oracle"
        fallback_warnings = [
            w for w in record if "index-engine implementation" in str(w.message)
        ]
        assert len(fallback_warnings) == 1
        # second build: the warning already fired for this engine instance
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine.build(data)

    @pytest.mark.parametrize("builder_name", sorted(FAMILY_BUILDERS))
    def test_supported_builders_do_not_warn(self, builder_name):
        data = random_dirty_collection(3, size=10)
        engine = BlockingEngine(FAMILY_BUILDERS[builder_name](), engine="index")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine.build(data)
        assert engine.last_engine == "index"

    def test_oracle_engine_never_warns(self):
        class MyCustomScheme(SortedNeighborhoodBlocking):
            pass

        data = random_dirty_collection(3, size=10)
        engine = BlockingEngine(MyCustomScheme(window_size=2), engine="oracle")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine.build(data)
        assert engine.last_engine == "oracle"


# ----------------------------------------------------------------------
# golden fixtures (frozen from the oracle on the builtin datasets)
# ----------------------------------------------------------------------
DATASETS = {"census": load_census, "restaurants": load_restaurants}

GOLDEN_BUILDERS = {
    "minhash_lsh": lambda: MinHashLSHBlocking(num_bands=8, rows_per_band=2),
    "canopy": lambda: CanopyClusteringBlocking(),
    "sorted_neighborhood": lambda: SortedNeighborhoodBlocking(window_size=3),
    "extended_sorted_neighborhood": lambda: ExtendedSortedNeighborhoodBlocking(
        window_size=2
    ),
    "multipass_sorted_neighborhood": lambda: MultiPassSortedNeighborhoodBlocking(
        window_size=3, sorting_keys=(None, sorting_key_from_attributes(["city"]))
    ),
    "similarity_join": lambda: SimilarityJoinBlocking(threshold=0.4),
}


def _serialise(blocks) -> list:
    return [
        [block.key, list(block.left_members), list(block.right_members)]
        if block.is_bilateral
        else [block.key, list(block.members)]
        for block in blocks
    ]


def _fixture(dataset_name: str) -> dict:
    path = FIXTURES_DIR / f"families_{dataset_name}.json"
    return json.loads(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("dataset_name", sorted(DATASETS))
def test_golden_fixture_covers_all_families(dataset_name):
    assert set(_fixture(dataset_name)["builders"]) == set(GOLDEN_BUILDERS)


@pytest.mark.parametrize("engine", ("oracle", "index", "index-pure-python"))
@pytest.mark.parametrize("dataset_name", sorted(DATASETS))
def test_engines_reproduce_family_golden_output(dataset_name, engine):
    collection = DATASETS[dataset_name]().collection
    fixture = _fixture(dataset_name)
    use_numpy = False if engine == "index-pure-python" else None
    engine_name = "oracle" if engine == "oracle" else "index"
    for builder_name, frozen in fixture["builders"].items():
        blocking = BlockingEngine(
            GOLDEN_BUILDERS[builder_name](), engine=engine_name, use_numpy=use_numpy
        )
        blocks = blocking.build(collection)
        assert _serialise(blocks) == frozen["blocks"], (
            f"{dataset_name}/{builder_name}/{engine}: block collection changed"
        )


def _regenerate() -> None:
    FIXTURES_DIR.mkdir(parents=True, exist_ok=True)
    for dataset_name, loader in DATASETS.items():
        collection = loader().collection
        builders = {}
        for builder_name, factory in GOLDEN_BUILDERS.items():
            builders[builder_name] = {"blocks": _serialise(factory().build(collection))}
        payload = {
            "dataset": dataset_name,
            "note": (
                "frozen output of the legacy (oracle) long-tail builders; "
                "regenerate only if the blocking semantics intentionally change"
            ),
            "builders": builders,
        }
        path = FIXTURES_DIR / f"families_{dataset_name}.json"
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8")
        print(f"wrote {path}")


if __name__ == "__main__":
    _regenerate()
