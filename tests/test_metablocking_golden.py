"""Golden regression fixtures for meta-blocking.

``tests/fixtures/metablocking/*.json`` freezes the retained-edge output of the
legacy graph engine on the builtin datasets (token blocking, every weighting x
pruning combination).  Both engines must keep reproducing these exact results,
so future optimisations of either engine cannot silently change what
meta-blocking retains.

Regenerating the fixtures (only when the meta-blocking semantics change on
purpose): run this module as a script::

    PYTHONPATH=src python tests/test_metablocking_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.blocking.token_blocking import TokenBlocking
from repro.datasets.builtin import load_census, load_restaurants
from repro.metablocking import MetaBlocking

FIXTURES_DIR = Path(__file__).parent / "fixtures" / "metablocking"

WEIGHTING_SCHEMES = ("CBS", "ECBS", "JS", "EJS", "ARCS")
PRUNING_SCHEMES = ("WEP", "CEP", "WNP", "CNP", "ReciprocalWNP", "ReciprocalCNP")
DATASETS = {"restaurants": load_restaurants, "census": load_census}


def _blocks(dataset_name: str):
    return TokenBlocking().build(DATASETS[dataset_name]().collection)


def _fixture(dataset_name: str) -> dict:
    path = FIXTURES_DIR / f"{dataset_name}.json"
    return json.loads(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("dataset_name", sorted(DATASETS))
def test_fixture_covers_all_combos(dataset_name):
    fixture = _fixture(dataset_name)
    expected = {f"{w}+{p}" for w in WEIGHTING_SCHEMES for p in PRUNING_SCHEMES}
    assert set(fixture["combos"]) == expected


@pytest.mark.parametrize("engine", ("graph", "index"))
@pytest.mark.parametrize("dataset_name", sorted(DATASETS))
def test_engines_reproduce_golden_output(dataset_name, engine):
    blocks = _blocks(dataset_name)
    fixture = _fixture(dataset_name)
    for combo, frozen in fixture["combos"].items():
        weighting, pruning = combo.split("+")
        metablocking = MetaBlocking(weighting, pruning, engine=engine)
        edges = metablocking.retained_edges(blocks)
        assert metablocking.last_graph_edges == frozen["graph_edges"], combo
        actual = sorted([edge.first, edge.second, edge.weight] for edge in edges)
        expected = frozen["retained"]
        assert [row[:2] for row in actual] == [row[:2] for row in expected], (
            f"{dataset_name}/{combo}/{engine}: retained pair set changed"
        )
        for (first, second, weight), (_, _, frozen_weight) in zip(actual, expected):
            assert weight == pytest.approx(frozen_weight, abs=1e-9), (
                f"{dataset_name}/{combo}/{engine}: weight of ({first}, {second}) changed"
            )


def _regenerate() -> None:
    FIXTURES_DIR.mkdir(parents=True, exist_ok=True)
    for dataset_name in DATASETS:
        blocks = _blocks(dataset_name)
        combos = {}
        for weighting in WEIGHTING_SCHEMES:
            for pruning in PRUNING_SCHEMES:
                metablocking = MetaBlocking(weighting, pruning, engine="graph")
                edges = metablocking.retained_edges(blocks)
                combos[f"{weighting}+{pruning}"] = {
                    "graph_edges": metablocking.last_graph_edges,
                    "retained": sorted([e.first, e.second, e.weight] for e in edges),
                }
        payload = {
            "dataset": dataset_name,
            "blocking": "token",
            "note": (
                "frozen output of the legacy graph engine; regenerate only if "
                "the meta-blocking semantics intentionally change"
            ),
            "combos": combos,
        }
        path = FIXTURES_DIR / f"{dataset_name}.json"
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8")
        print(f"wrote {path}")


if __name__ == "__main__":
    _regenerate()
