"""Tests for iterative blocking vs independent block processing."""

import pytest

from repro.blocking.base import Block, BlockCollection
from repro.blocking.token_blocking import TokenBlocking
from repro.datamodel.collection import EntityCollection
from repro.datamodel.description import EntityDescription
from repro.datamodel.ground_truth import GroundTruth
from repro.evaluation.metrics import evaluate_matches
from repro.iterative.iterative_blocking import IndependentBlockProcessing, IterativeBlocking
from repro.matching.matchers import ProfileSimilarityMatcher
from repro.matching.oracle import OracleMatcher


def make_split_cluster_collection():
    """A 3-description cluster whose members are split across two blocks.

    a and b share block "left"; b and c share block "right".  c alone is not
    similar enough to b (one shared token out of four), but the a+b merge
    accumulates enough evidence to match c -- so only merge propagation across
    blocks can bring the three together.
    """
    collection = EntityCollection(
        [
            EntityDescription("a", {"name": "alan turing", "city": "london"}),
            EntityDescription("b", {"name": "alan turing", "project": "enigma"}),
            EntityDescription("c", {"city": "london", "project": "enigma"}),
            EntityDescription("x", {"name": "grace hopper"}),
        ]
    )
    blocks = BlockCollection(
        [
            Block("left", members=["a", "b", "x"]),
            Block("right", members=["b", "c"]),
        ]
    )
    return collection, blocks


class TestIterativeBlocking:
    def test_merge_propagation_finds_cross_block_matches(self):
        collection, blocks = make_split_cluster_collection()
        matcher = ProfileSimilarityMatcher(threshold=0.5)
        result = IterativeBlocking(matcher).resolve(collection, blocks)
        clusters = {frozenset(c) for c in result.clusters}
        assert any({"a", "b", "c"} <= cluster for cluster in clusters)

    def test_independent_processing_misses_the_same_match(self):
        collection, blocks = make_split_cluster_collection()
        matcher = ProfileSimilarityMatcher(threshold=0.5)
        result = IndependentBlockProcessing(matcher).resolve(collection, blocks)
        clusters = {frozenset(c) for c in result.clusters}
        # a-c requires merged evidence propagated across blocks, which the
        # independent baseline cannot produce
        assert not any({"a", "c"} <= cluster for cluster in clusters)

    def test_no_pair_is_compared_twice(self, small_dirty_dataset):
        sample = small_dirty_dataset.collection.sample(60, seed=7)
        truth = small_dirty_dataset.ground_truth.restricted_to(sample.identifiers)
        blocks = TokenBlocking().build(sample)
        oracle = OracleMatcher(truth)
        result = IterativeBlocking(oracle).resolve(sample, blocks)
        # with a global comparison cache, the comparisons cannot exceed the
        # number of distinct co-occurring pairs (merged representatives may add some,
        # but never the redundancy of the raw blocks)
        assert result.comparisons_executed <= blocks.total_comparisons()
        assert result.comparisons_executed <= blocks.num_distinct_comparisons() + 3 * len(truth.clusters)

    def test_saves_comparisons_and_keeps_recall_vs_independent(self, small_dirty_dataset):
        sample = small_dirty_dataset.collection.sample(80, seed=8)
        truth = small_dirty_dataset.ground_truth.restricted_to(sample.identifiers)
        blocks = TokenBlocking().build(sample)
        iterative = IterativeBlocking(OracleMatcher(truth)).resolve(sample, blocks)
        independent = IndependentBlockProcessing(OracleMatcher(truth)).resolve(sample, blocks)
        assert iterative.comparisons_executed < independent.comparisons_executed
        iterative_quality = evaluate_matches(iterative.matched_pairs(), truth)
        independent_quality = evaluate_matches(independent.matched_pairs(), truth)
        assert iterative_quality.recall >= independent_quality.recall

    def test_empty_blocks(self):
        collection = EntityCollection([EntityDescription("a", {"name": "x"})])
        result = IterativeBlocking(ProfileSimilarityMatcher()).resolve(collection, BlockCollection())
        assert result.comparisons_executed == 0
        assert result.clusters == []
