"""Tests for merging-based iterative ER (R-Swoosh and the naive baseline)."""

import pytest

from repro.datamodel.collection import EntityCollection
from repro.datamodel.description import EntityDescription
from repro.datamodel.ground_truth import GroundTruth
from repro.evaluation.metrics import evaluate_matches
from repro.iterative.swoosh import NaivePairwiseER, RSwoosh
from repro.matching.matchers import ProfileSimilarityMatcher
from repro.matching.oracle import OracleMatcher


def make_collection_with_bridge():
    """b is similar to both a and c, but a and c only match via the merged evidence."""
    return EntityCollection(
        [
            EntityDescription("a", {"name": "alan turing", "city": "london"}),
            EntityDescription("b", {"name": "alan m turing", "city": "london", "born": "1912"}),
            EntityDescription("c", {"label": "a m turing", "born": "1912"}),
            EntityDescription("x", {"name": "grace hopper", "city": "new york"}),
        ]
    )


class TestRSwoosh:
    def test_resolves_simple_duplicates(self, small_dirty_dataset):
        sample = small_dirty_dataset.collection.sample(60, seed=3)
        truth = small_dirty_dataset.ground_truth.restricted_to(sample.identifiers)
        result = RSwoosh(OracleMatcher(truth)).resolve(sample)
        quality = evaluate_matches(result.matched_pairs(), truth)
        assert quality.recall == 1.0
        assert quality.precision == 1.0
        assert result.merges == sum(len(c) - 1 for c in truth.clusters)

    def test_fewer_comparisons_than_naive(self, small_dirty_dataset):
        sample = small_dirty_dataset.collection.sample(50, seed=4)
        truth = small_dirty_dataset.ground_truth.restricted_to(sample.identifiers)
        swoosh = RSwoosh(OracleMatcher(truth)).resolve(sample)
        naive = NaivePairwiseER(OracleMatcher(truth)).resolve(sample)
        assert swoosh.comparisons_executed < naive.comparisons_executed
        # both reach the same partition
        assert set(map(frozenset, swoosh.clusters)) == set(map(frozenset, naive.clusters))

    def test_merged_descriptions_enable_new_matches(self):
        collection = make_collection_with_bridge()
        matcher = ProfileSimilarityMatcher(threshold=0.5)
        result = RSwoosh(matcher).resolve(collection)
        clusters = {frozenset(c) for c in result.clusters}
        # a, b and c end up together only because the a+b merge matches c
        assert any({"a", "b", "c"} <= cluster for cluster in clusters)
        # x stays alone
        assert frozenset({"x"}) in clusters

    def test_budget_stops_early(self, small_dirty_dataset):
        sample = small_dirty_dataset.collection.sample(40, seed=5)
        truth = small_dirty_dataset.ground_truth.restricted_to(sample.identifiers)
        result = RSwoosh(OracleMatcher(truth), budget=10).resolve(sample)
        assert result.comparisons_executed <= 10
        # every input description is still accounted for in the output
        covered = {identifier for cluster in result.clusters for identifier in cluster}
        assert covered == set(sample.identifiers)

    def test_empty_collection(self):
        result = RSwoosh(OracleMatcher(GroundTruth())).resolve(EntityCollection([]))
        assert result.resolved == []
        assert result.comparisons_executed == 0


class TestNaivePairwise:
    def test_reaches_fixpoint(self):
        collection = make_collection_with_bridge()
        matcher = ProfileSimilarityMatcher(threshold=0.5)
        result = NaivePairwiseER(matcher).resolve(collection)
        clusters = {frozenset(c) for c in result.clusters}
        assert any({"a", "b", "c"} <= cluster for cluster in clusters)

    def test_budget_is_respected(self, small_dirty_dataset):
        sample = small_dirty_dataset.collection.sample(30, seed=6)
        truth = small_dirty_dataset.ground_truth.restricted_to(sample.identifiers)
        result = NaivePairwiseER(OracleMatcher(truth), budget=20).resolve(sample)
        assert result.comparisons_executed <= 20
