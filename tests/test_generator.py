"""Tests for the synthetic dataset generators."""

import pytest

from repro.datamodel.collection import CleanCleanTask
from repro.datasets import DatasetConfig, generate_bibliographic_dataset, generate_clean_clean_task, generate_dirty_dataset
from repro.datasets.corruption import CorruptionConfig


class TestDirtyDataset:
    def test_size_and_ground_truth_consistency(self):
        config = DatasetConfig(num_entities=50, duplicates_per_entity=1.0, seed=1)
        dataset = generate_dirty_dataset(config)
        # at least one description per entity, identifiers unique
        assert len(dataset.collection) >= 50
        assert len(set(dataset.collection.identifiers)) == len(dataset.collection)
        # every ground-truth identifier is in the collection
        for cluster in dataset.ground_truth.clusters:
            for identifier in cluster:
                assert identifier in dataset.collection

    def test_determinism(self):
        config = DatasetConfig(num_entities=30, seed=9)
        first = generate_dirty_dataset(config)
        second = generate_dirty_dataset(config)
        assert first.collection.identifiers == second.collection.identifiers
        assert first.ground_truth.matching_pairs() == second.ground_truth.matching_pairs()

    def test_zero_duplicates_means_no_matches(self):
        dataset = generate_dirty_dataset(
            DatasetConfig(num_entities=20, duplicates_per_entity=0.0, seed=2)
        )
        assert dataset.ground_truth.num_matches() == 0
        assert len(dataset.collection) == 20

    @pytest.mark.parametrize("domain", ["person", "product", "publication"])
    def test_all_domains_generate(self, domain):
        dataset = generate_dirty_dataset(DatasetConfig(num_entities=10, domain=domain, seed=3))
        assert len(dataset.collection) >= 10
        assert all(len(d.attribute_names) > 0 for d in dataset.collection)

    def test_unknown_domain_raises(self):
        with pytest.raises(ValueError):
            generate_dirty_dataset(DatasetConfig(num_entities=5, domain="spaceship"))

    def test_descriptions_property_returns_collection(self):
        dataset = generate_dirty_dataset(DatasetConfig(num_entities=5, seed=4))
        assert dataset.descriptions is dataset.collection


class TestCleanCleanTask:
    def test_structure_and_disjointness(self):
        dataset = generate_clean_clean_task(DatasetConfig(num_entities=40, seed=5))
        task = dataset.task
        assert isinstance(task, CleanCleanTask)
        assert len(task.left) == 40
        assert len(task.right) <= 40
        assert set(task.left.identifiers).isdisjoint(task.right.identifiers)

    def test_ground_truth_pairs_span_both_sides(self):
        dataset = generate_clean_clean_task(DatasetConfig(num_entities=40, seed=5))
        for first, second in dataset.ground_truth.matching_pairs():
            assert dataset.task.is_valid_pair(first, second)

    def test_missing_fraction_reduces_right_side(self):
        full = generate_clean_clean_task(DatasetConfig(num_entities=60, missing_in_right=0.0, seed=6))
        partial = generate_clean_clean_task(DatasetConfig(num_entities=60, missing_in_right=0.5, seed=6))
        assert len(partial.task.right) < len(full.task.right)
        assert len(full.task.right) == 60

    def test_vocabulary_styles_differ_across_sides(self):
        dataset = generate_clean_clean_task(DatasetConfig(num_entities=40, seed=7))
        left_attributes = set(dataset.task.left.attribute_names())
        right_attributes = set(dataset.task.right.attribute_names())
        # heterogeneous vocabularies: the two sides should not use an identical attribute set
        assert left_attributes != right_attributes

    def test_descriptions_property_unions_both_sides(self):
        dataset = generate_clean_clean_task(DatasetConfig(num_entities=10, seed=8))
        union = dataset.descriptions
        assert len(union) == len(dataset.task.left) + len(dataset.task.right)


class TestBibliographicDataset:
    def test_contains_both_entity_types_with_relationships(self):
        dataset = generate_bibliographic_dataset(num_authors=10, num_publications=20, seed=1)
        authors = [d for d in dataset.collection if "author/" in d.identifier]
        publications = [d for d in dataset.collection if "publication/" in d.identifier]
        assert authors and publications
        # every publication links to at least one author present in the collection
        for publication in publications:
            related = publication.related("author")
            assert related
            for author_id in related:
                assert author_id in dataset.collection

    def test_ground_truth_covers_both_types(self):
        dataset = generate_bibliographic_dataset(num_authors=10, num_publications=20, seed=2)
        pairs = dataset.ground_truth.matching_pairs()
        assert any("author/" in a for a, _ in pairs)
        assert any("publication/" in a for a, _ in pairs)

    def test_ambiguity_controls_surname_pool(self):
        ambiguous = generate_bibliographic_dataset(num_authors=30, num_publications=10, ambiguity=0.9, seed=3)
        surnames = {
            d.value("family_name")
            for d in ambiguous.collection
            if "author/" in d.identifier and d.value("family_name")
        }
        distinct = generate_bibliographic_dataset(num_authors=30, num_publications=10, ambiguity=0.0, seed=3)
        surnames_distinct = {
            d.value("family_name")
            for d in distinct.collection
            if "author/" in d.identifier and d.value("family_name")
        }
        assert len(surnames) <= len(surnames_distinct) + 5  # high ambiguity -> fewer distinct surnames
