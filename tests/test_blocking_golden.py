"""Golden regression fixtures for blocking and block cleaning.

``tests/fixtures/blocking/*.json`` freezes the exact block collections the
legacy (oracle) builders and cleaners produce on the builtin datasets --
every supported builder, raw and after purging + filtering and after full
cleaning with comparison propagation.  Both engines must keep reproducing
these byte-identical block lists, so future optimisations of either engine
cannot silently change what blocking emits.

The fixtures were frozen *after* the attribute-clustering tokenisation fix
(clustering profiles now honour ``min_token_length``) and the
``max_block_fraction`` truncation fix, so they also pin those repaired
semantics.

Regenerating the fixtures (only when the blocking semantics change on
purpose): run this module as a script::

    PYTHONPATH=src python tests/test_blocking_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.blocking import BlockFiltering, BlockPurging, clean_blocks
from repro.blocking.engine import BlockingEngine
from repro.blocking.token_blocking import (
    AttributeClusteringBlocking,
    PrefixInfixSuffixBlocking,
    TokenBlocking,
)
from repro.datasets.builtin import load_census, load_restaurants

FIXTURES_DIR = Path(__file__).parent / "fixtures" / "blocking"

DATASETS = {"restaurants": load_restaurants, "census": load_census}
BUILDERS = {
    "token": lambda: TokenBlocking(),
    "token-limited": lambda: TokenBlocking(max_block_fraction=0.3),
    "prefix_infix_suffix": lambda: PrefixInfixSuffixBlocking(),
    "attribute_clustering": lambda: AttributeClusteringBlocking(),
}
CLEANING = {
    "raw": {},
    "cleaned": {"purging": BlockPurging(), "filtering": BlockFiltering(0.8)},
    "propagated": {
        "purging": BlockPurging(),
        "filtering": BlockFiltering(0.8),
        "propagate": True,
    },
}


def _serialise(blocks) -> list:
    return [
        [block.key, list(block.left_members), list(block.right_members)]
        if block.is_bilateral
        else [block.key, list(block.members)]
        for block in blocks
    ]


def _fixture(dataset_name: str) -> dict:
    path = FIXTURES_DIR / f"{dataset_name}.json"
    return json.loads(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("dataset_name", sorted(DATASETS))
def test_fixture_covers_all_combos(dataset_name):
    fixture = _fixture(dataset_name)
    expected = {f"{b}+{c}" for b in BUILDERS for c in CLEANING}
    assert set(fixture["combos"]) == expected


@pytest.mark.parametrize("engine", ("oracle", "index", "index-pure-python"))
@pytest.mark.parametrize("dataset_name", sorted(DATASETS))
def test_engines_reproduce_golden_output(dataset_name, engine):
    collection = DATASETS[dataset_name]().collection
    fixture = _fixture(dataset_name)
    use_numpy = False if engine == "index-pure-python" else None
    engine_name = "oracle" if engine == "oracle" else "index"
    for combo, frozen in fixture["combos"].items():
        builder_name, cleaning_name = combo.split("+")
        blocking = BlockingEngine(
            BUILDERS[builder_name](), engine=engine_name, use_numpy=use_numpy
        )
        blocks = blocking.clean(blocking.build(collection), **CLEANING[cleaning_name])
        assert _serialise(blocks) == frozen["blocks"], (
            f"{dataset_name}/{combo}/{engine}: block collection changed"
        )


def _regenerate() -> None:
    FIXTURES_DIR.mkdir(parents=True, exist_ok=True)
    for dataset_name, loader in DATASETS.items():
        collection = loader().collection
        combos = {}
        for builder_name, factory in BUILDERS.items():
            built = factory().build(collection)
            for cleaning_name, cleaning in CLEANING.items():
                blocks = clean_blocks(built, **cleaning)
                combos[f"{builder_name}+{cleaning_name}"] = {"blocks": _serialise(blocks)}
        payload = {
            "dataset": dataset_name,
            "note": (
                "frozen output of the legacy (oracle) builders and cleaners; "
                "regenerate only if the blocking semantics intentionally change"
            ),
            "combos": combos,
        }
        path = FIXTURES_DIR / f"{dataset_name}.json"
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8")
        print(f"wrote {path}")


if __name__ == "__main__":
    _regenerate()
