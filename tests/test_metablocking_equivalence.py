"""Property-based equivalence of the graph and entity-index meta-blocking engines.

For seeded random block collections -- dirty, clean--clean and mixed -- every
(weighting x pruning) combination must retain the *same comparison set* with
the *same weights* (within 1e-9) on three execution paths:

* the legacy object-graph engine (the oracle),
* the entity-index engine with its NumPy fast path (when NumPy is present),
* the entity-index engine's pure-Python fallback.

The two index paths must agree bit-for-bit.  The graph engine is compared
with a 1e-9 weight tolerance, but in practice it also matches exactly: both
engines compute per-edge weights with the same operand order and compute the
WEP/WNP thresholds with :func:`math.fsum`, whose exactly rounded result is
independent of accumulation order -- so even edges lying mathematically *on* a
threshold (common with ARCS on bilateral blocks) are resolved identically.

The random collections deliberately use identifiers whose lexicographic order
differs from their insertion order, so the canonical-pair handling of the
index engine (tie-breaks, ECBS/EJS factor ordering) is exercised for real.
"""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.blocking.base import Block, BlockCollection
from repro.metablocking import MetaBlocking
from repro.metablocking.entity_index import EntityIndexEngine
from repro.metablocking.pruning import CardinalityEdgePruning, CardinalityNodePruning

WEIGHTING_SCHEMES = ("CBS", "ECBS", "JS", "EJS", "ARCS")
PRUNING_SCHEMES = ("WEP", "CEP", "WNP", "CNP", "ReciprocalWNP", "ReciprocalCNP")
SEEDS = (3, 11, 42, 97, 1234)


def _identifiers(rng: random.Random, count: int, prefix: str = "") -> List[str]:
    """Identifiers whose lexicographic order is decoupled from creation order."""
    letters = "zyxwvutsrqponmlkjihgfedcba"
    return [f"{prefix}{rng.choice(letters)}{rng.choice(letters)}:{i}" for i in range(count)]


def random_dirty_blocks(seed: int, num_entities: int = 40, num_blocks: int = 30) -> BlockCollection:
    rng = random.Random(seed)
    ids = _identifiers(rng, num_entities)
    collection = BlockCollection(name=f"dirty-{seed}")
    for b in range(num_blocks):
        size = rng.randint(1, 8)  # size-1 blocks are dropped by add(); intended
        collection.add(Block(f"b{b}", members=rng.sample(ids, min(size, len(ids)))))
    return collection


def random_bilateral_blocks(seed: int, per_side: int = 25, num_blocks: int = 25) -> BlockCollection:
    rng = random.Random(seed)
    left = _identifiers(rng, per_side, prefix="l")
    right = _identifiers(rng, per_side, prefix="r")
    collection = BlockCollection(name=f"clean-clean-{seed}")
    for b in range(num_blocks):
        left_members = rng.sample(left, rng.randint(0, 5))
        right_members = rng.sample(right, rng.randint(0, 5))
        if left_members or right_members:
            collection.add(Block(f"b{b}", left_members=left_members, right_members=right_members))
    return collection


def random_mixed_blocks(seed: int) -> BlockCollection:
    """Unilateral and bilateral blocks over an overlapping identifier pool."""
    rng = random.Random(seed)
    ids = _identifiers(rng, 30)
    collection = BlockCollection(name=f"mixed-{seed}")
    for b in range(24):
        if rng.random() < 0.5:
            collection.add(Block(f"b{b}", members=rng.sample(ids, rng.randint(2, 7))))
        else:
            shuffled = rng.sample(ids, rng.randint(2, 8))
            split = rng.randint(1, len(shuffled) - 1) if len(shuffled) > 1 else 1
            collection.add(
                Block(f"b{b}", left_members=shuffled[:split], right_members=shuffled[split:])
            )
    return collection


def _retained(metablocking: MetaBlocking, blocks: BlockCollection):
    return {(edge.first, edge.second): edge.weight for edge in metablocking.retained_edges(blocks)}


def _assert_engines_agree(blocks: BlockCollection, weighting: str, pruning) -> None:
    graph_mb = MetaBlocking(weighting, pruning, engine="graph")
    index_mb = MetaBlocking(weighting, pruning, engine="index")
    expected = _retained(graph_mb, blocks)
    actual = _retained(index_mb, blocks)
    assert graph_mb.last_engine == "graph"
    assert index_mb.last_engine == "index"
    assert expected.keys() == actual.keys(), (
        f"{weighting}+{pruning}: retained sets differ "
        f"(only graph: {sorted(set(expected) - set(actual))[:5]}, "
        f"only index: {sorted(set(actual) - set(expected))[:5]})"
    )
    for pair, weight in expected.items():
        assert actual[pair] == pytest.approx(weight, abs=1e-9), (weighting, pruning, pair)
    # the engines must also report identical statistics
    assert graph_mb.last_graph_edges == index_mb.last_graph_edges
    assert graph_mb.last_retained_edges == index_mb.last_retained_edges == len(actual)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("weighting", WEIGHTING_SCHEMES)
@pytest.mark.parametrize("pruning", PRUNING_SCHEMES)
def test_dirty_equivalence(seed, weighting, pruning):
    _assert_engines_agree(random_dirty_blocks(seed), weighting, pruning)


@pytest.mark.parametrize("seed", SEEDS[:3])
@pytest.mark.parametrize("weighting", WEIGHTING_SCHEMES)
@pytest.mark.parametrize("pruning", PRUNING_SCHEMES)
def test_clean_clean_equivalence(seed, weighting, pruning):
    _assert_engines_agree(random_bilateral_blocks(seed), weighting, pruning)


@pytest.mark.parametrize("seed", SEEDS[:3])
@pytest.mark.parametrize("weighting", WEIGHTING_SCHEMES)
@pytest.mark.parametrize("pruning", PRUNING_SCHEMES)
def test_mixed_equivalence(seed, weighting, pruning):
    _assert_engines_agree(random_mixed_blocks(seed), weighting, pruning)


@pytest.mark.parametrize("seed", SEEDS[:2])
@pytest.mark.parametrize("weighting", ("CBS", "ARCS"))
@pytest.mark.parametrize("budget", (1, 5, 40, 10_000))
def test_custom_cep_budget_equivalence(seed, weighting, budget):
    blocks = random_dirty_blocks(seed)
    _assert_engines_agree(blocks, weighting, CardinalityEdgePruning(budget=budget))


@pytest.mark.parametrize("seed", SEEDS[:2])
@pytest.mark.parametrize("weighting", ("ECBS", "EJS"))
@pytest.mark.parametrize("k", (1, 2, 7))
def test_custom_cnp_k_equivalence(seed, weighting, k):
    blocks = random_dirty_blocks(seed)
    _assert_engines_agree(blocks, weighting, CardinalityNodePruning(k=k))


@pytest.mark.parametrize("seed", SEEDS[:3])
@pytest.mark.parametrize("weighting", WEIGHTING_SCHEMES)
@pytest.mark.parametrize("pruning", PRUNING_SCHEMES)
def test_numpy_and_pure_python_paths_are_bit_identical(seed, weighting, pruning):
    """The vectorised and fallback paths of the index engine agree exactly."""
    blocks = random_mixed_blocks(seed)
    vectorised = EntityIndexEngine(blocks)
    fallback = EntityIndexEngine(blocks, use_numpy=False)
    assert fallback._use_numpy is False
    expected = {
        (edge.first, edge.second): edge.weight
        for edge in vectorised.iter_retained(weighting, pruning)
    }
    actual = {
        (edge.first, edge.second): edge.weight
        for edge in fallback.iter_retained(weighting, pruning)
    }
    assert expected == actual  # bit-for-bit, no tolerance
    assert vectorised.last_num_edges == fallback.last_num_edges
    assert vectorised.last_retained == fallback.last_retained
