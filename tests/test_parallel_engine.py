"""Bit-identity of the multi-process parallel engine vs the sequential engines.

The contract of :class:`~repro.mapreduce.parallel.ParallelEngine` is that
enabling it never changes a result: the blocks, the retained meta-blocking
edges (weights *and* order, i.e. tie order), and the matching scores must be
bit-identical to the single-process array engines for every worker count.
These tests sweep dirty and clean--clean collections across 1/2/4/8 workers,
every weighting x pruning scheme pair, both matcher modes (TF-IDF cosine and
set similarity), the pure-Python index replica, and the degenerate shapes
(empty collection, single entity, more workers than entities).

The lifecycle tests assert the driver-owns-everything rule observably: after
``close`` no shared-memory segment created by the engine is left behind in
``/dev/shm``, and further work on the engine is refused.
"""

from __future__ import annotations

import os

import pytest

from repro.blocking.engine import BlockingEngine
from repro.blocking.token_blocking import TokenBlocking
from repro.core import ERWorkflow, WorkflowConfig
from repro.core.context import PipelineContext
from repro.datamodel.collection import EntityCollection
from repro.datamodel.description import EntityDescription
from repro.mapreduce.balancing import contiguous_partitions
from repro.mapreduce.parallel import ParallelEngine
from repro.matching.engine import MatchingEngine
from repro.matching.matchers import ProfileSimilarityMatcher
from repro.metablocking.entity_index import EntityIndexEngine
from repro.metablocking.pipeline import MetaBlocking

DATASETS = ("dirty", "clean")
WORKER_COUNTS = (1, 2, 4, 8)
WEIGHTINGS = ("CBS", "JS", "ARCS", "ECBS", "EJS")
PRUNINGS = ("WEP", "CEP", "WNP", "CNP")


def blocks_snapshot(blocks):
    """Full structural snapshot: key order, member order, bilateral split."""
    return [
        (block.key, tuple(block.members), tuple(block.left_members), tuple(block.right_members))
        for block in blocks
    ]


def edges_snapshot(edge_iterable):
    """Retained edges in stream order, weights compared exactly."""
    return [(edge.first, edge.second, edge.weight) for edge in edge_iterable]


def shm_segments():
    """The POSIX shared-memory segments currently alive (None if unobservable)."""
    if not os.path.isdir("/dev/shm"):
        return None
    return sorted(
        name
        for name in os.listdir("/dev/shm")
        if name.startswith("psm_") or name.startswith("repro-")
    )


@pytest.fixture(scope="module")
def dirty_setup(small_dirty_dataset):
    data = small_dirty_dataset.collection
    context = PipelineContext(data)
    blocks = BlockingEngine(TokenBlocking(max_block_fraction=0.5), context=context).build(data)
    return data, context, blocks


@pytest.fixture(scope="module")
def clean_setup(small_clean_clean_dataset):
    data = small_clean_clean_dataset.task
    context = PipelineContext(data)
    blocks = BlockingEngine(TokenBlocking(max_block_fraction=0.5), context=context).build(data)
    return data, context, blocks


def _setup(request, dataset):
    return request.getfixturevalue(f"{dataset}_setup")


class TestContiguousPartitions:
    def test_exactly_num_workers_ranges_in_order(self):
        parts = contiguous_partitions([1.0] * 10, 3)
        assert len(parts) == 3
        assert parts[0][0] == 0 and parts[-1][1] == 10
        for (_, stop), (next_start, _) in zip(parts, parts[1:]):
            assert stop == next_start

    def test_more_workers_than_items_yields_empty_tails(self):
        parts = contiguous_partitions([1.0, 1.0], 5)
        assert len(parts) == 5
        assert parts[0][0] == 0 and parts[-1][1] == 2
        covered = sum(stop - start for start, stop in parts)
        assert covered == 2

    def test_empty_input(self):
        parts = contiguous_partitions([], 4)
        assert len(parts) == 4
        assert all(start == stop for start, stop in parts)

    def test_skew_is_balanced(self):
        costs = [100.0] + [1.0] * 99
        parts = contiguous_partitions(costs, 4)
        loads = [sum(costs[start:stop]) for start, stop in parts]
        # the huge item sits alone-ish; no worker gets everything
        assert max(loads) < sum(costs)
        assert all(stop > start for start, stop in parts)

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            contiguous_partitions([1.0], 0)


class TestParallelBlocking:
    @pytest.mark.parametrize("dataset", DATASETS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_blocks_bit_identical(self, request, dataset, workers):
        data, context, seq_blocks = _setup(request, dataset)
        with ParallelEngine(num_workers=workers) as par:
            engine = BlockingEngine(
                TokenBlocking(max_block_fraction=0.5), context=context, parallel=par
            )
            built = engine.build(data)
        # sharding the postings pass does not change the algorithm reported
        assert engine.last_engine == "index"
        assert blocks_snapshot(built) == blocks_snapshot(seq_blocks)

    @pytest.mark.parametrize("dataset", DATASETS)
    def test_member_limit_matches_sequential(self, request, dataset):
        # max_block_fraction exercises the member-limit admission mask
        data, context, _ = _setup(request, dataset)
        builder = TokenBlocking(max_block_fraction=0.3)
        seq_blocks = BlockingEngine(builder, context=context).build(data)
        with ParallelEngine(num_workers=3) as par:
            built = BlockingEngine(
                TokenBlocking(max_block_fraction=0.3), context=context, parallel=par
            ).build(data)
        assert blocks_snapshot(built) == blocks_snapshot(seq_blocks)


class TestParallelMetaBlocking:
    @pytest.mark.parametrize("dataset", DATASETS)
    @pytest.mark.parametrize("weighting", WEIGHTINGS)
    @pytest.mark.parametrize("pruning", PRUNINGS)
    def test_edges_bit_identical(self, request, dataset, weighting, pruning):
        _, _, blocks = _setup(request, dataset)
        metablocking = MetaBlocking(weighting, pruning)
        expected = edges_snapshot(metablocking.iter_retained(blocks))
        with ParallelEngine(num_workers=3) as par:
            got = edges_snapshot(metablocking.iter_retained(blocks, parallel=par))
        assert metablocking.last_engine == "parallel"
        assert got == expected

    @pytest.mark.parametrize("dataset", DATASETS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_worker_count_invariance(self, request, dataset, workers):
        # EJS/WNP exercises both support rounds: pooled degrees + node weights
        _, _, blocks = _setup(request, dataset)
        metablocking = MetaBlocking("EJS", "WNP")
        expected = edges_snapshot(metablocking.iter_retained(blocks))
        with ParallelEngine(num_workers=workers) as par:
            got = edges_snapshot(metablocking.iter_retained(blocks, parallel=par))
        assert metablocking.last_engine == "parallel"
        assert got == expected

    @pytest.mark.parametrize("weighting", ("CBS", "EJS"))
    def test_pure_python_replica(self, dirty_setup, weighting):
        # a pure-Python driver index must get pure-Python worker replicas
        _, _, blocks = dirty_setup
        sequential = EntityIndexEngine(blocks, use_numpy=False)
        expected = edges_snapshot(sequential.iter_retained(weighting, "WNP"))
        sharded = EntityIndexEngine(blocks, use_numpy=False)
        with ParallelEngine(num_workers=3) as par:
            assert par.install_node_weights(sharded)
            got = edges_snapshot(sharded.iter_retained(weighting, "WNP"))
        assert got == expected


class TestParallelMatching:
    @pytest.mark.parametrize("dataset", DATASETS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("mode", ("tfidf", "jaccard"))
    def test_scores_bit_identical(self, request, dataset, workers, mode):
        _, context, _ = _setup(request, dataset)
        if mode == "tfidf":
            matcher = ProfileSimilarityMatcher(
                threshold=0.5, vectorizer=context.fit_vectorizer()
            )
        else:
            matcher = ProfileSimilarityMatcher(threshold=0.5, similarity_name="jaccard")
        descriptions = context.descriptions
        pairs = [
            (descriptions[i], descriptions[i + 1])
            for i in range(min(len(descriptions), 60) - 1)
        ]
        expected = MatchingEngine(matcher, context=context).similarity_scores(pairs)
        with ParallelEngine(num_workers=workers) as par:
            engine = MatchingEngine(matcher, context=context, parallel=par)
            got = engine.similarity_scores(pairs)
        assert engine.last_engine == "parallel"
        assert got == expected

    def test_foreign_description_falls_back(self, dirty_setup):
        # a pair outside the shared context cannot be resolved to ordinals:
        # the whole batch must take the sequential path, not crash or drift
        _, context, _ = dirty_setup
        matcher = ProfileSimilarityMatcher(threshold=0.5, similarity_name="jaccard")
        descriptions = context.descriptions
        foreign = EntityDescription("not-in-context", {"name": "A Stranger Here"})
        pairs = [(descriptions[0], descriptions[1]), (descriptions[2], foreign)]
        expected = MatchingEngine(matcher, context=context).similarity_scores(pairs)
        with ParallelEngine(num_workers=2) as par:
            engine = MatchingEngine(matcher, context=context, parallel=par)
            got = engine.similarity_scores(pairs)
        assert engine.last_engine == "batch"
        assert got == expected


class TestEdgeCasesAndLifecycle:
    def test_empty_collection(self):
        data = EntityCollection([], name="empty")
        context = PipelineContext(data)
        with ParallelEngine(num_workers=4) as par:
            blocks = BlockingEngine(TokenBlocking(), context=context, parallel=par).build(data)
            assert len(blocks) == 0
            assert not par.install_node_weights(EntityIndexEngine(blocks))

    def test_single_entity_with_more_workers_than_input(self):
        data = EntityCollection(
            [EntityDescription("x1", {"name": "Lonely Entity"})], name="single"
        )
        context = PipelineContext(data)
        sequential = BlockingEngine(TokenBlocking(), context=context).build(data)
        with ParallelEngine(num_workers=8) as par:
            built = BlockingEngine(TokenBlocking(), context=context, parallel=par).build(data)
            assert blocks_snapshot(built) == blocks_snapshot(sequential)
            metablocking = MetaBlocking("CBS", "WNP")
            assert edges_snapshot(metablocking.iter_retained(built, parallel=par)) == []

    def test_tiny_collection_more_workers_than_entities(self, tiny_collection):
        context = PipelineContext(tiny_collection)
        sequential = BlockingEngine(TokenBlocking(), context=context).build(tiny_collection)
        metablocking = MetaBlocking("JS", "CNP")
        expected = edges_snapshot(metablocking.iter_retained(sequential))
        with ParallelEngine(num_workers=16) as par:
            built = BlockingEngine(TokenBlocking(), context=context, parallel=par).build(
                tiny_collection
            )
            got = edges_snapshot(metablocking.iter_retained(built, parallel=par))
        assert blocks_snapshot(built) == blocks_snapshot(sequential)
        assert got == expected

    def test_segments_destroyed_on_close(self, dirty_setup):
        before = shm_segments()
        if before is None:
            pytest.skip("/dev/shm not observable on this platform")
        data, context, blocks = dirty_setup
        par = ParallelEngine(num_workers=2)
        try:
            BlockingEngine(TokenBlocking(), context=context, parallel=par).build(data)
            metablocking = MetaBlocking("EJS", "WNP")
            edges_snapshot(metablocking.iter_retained(blocks, parallel=par))
        finally:
            par.close()
        leaked = sorted(set(shm_segments()) - set(before))
        assert leaked == []

    def test_close_is_idempotent_and_final(self, dirty_setup):
        data, context, _ = dirty_setup
        par = ParallelEngine(num_workers=2)
        BlockingEngine(TokenBlocking(), context=context, parallel=par).build(data)
        par.close()
        par.close()
        with pytest.raises(RuntimeError):
            BlockingEngine(TokenBlocking(), context=context, parallel=par).build(data)

    @pytest.mark.parametrize("dataset", DATASETS)
    def test_workflow_end_to_end_equivalence(self, request, dataset):
        data, _, _ = _setup(request, dataset)
        signatures = []
        for workers in (1, 4):
            config = WorkflowConfig(num_workers=workers, iterate_merges=True)
            result = ERWorkflow(config).run(data)
            signatures.append(
                (
                    sorted(tuple(sorted(match)) for match in result.matches),
                    sorted(frozenset(cluster) for cluster in result.clusters),
                    result.comparisons_executed,
                )
            )
        assert signatures[0] == signatures[1]
