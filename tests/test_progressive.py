"""Tests for budgets, progressive schedulers and the progressive runner."""

import pytest

from repro.blocking.token_blocking import TokenBlocking
from repro.datamodel.collection import EntityCollection
from repro.datamodel.description import EntityDescription
from repro.datamodel.pairs import Comparison
from repro.matching.matchers import MatchDecision, ProfileSimilarityMatcher
from repro.matching.oracle import OracleMatcher
from repro.metablocking.pipeline import MetaBlocking
from repro.progressive.budget import Budget
from repro.progressive.hierarchy import PartitionHierarchyScheduler
from repro.progressive.psnm import ProgressiveBlockScheduler, ProgressiveSortedNeighborhood
from repro.progressive.runner import run_progressive
from repro.progressive.scheduler import CostBenefitScheduler
from repro.progressive.schedulers import (
    RandomOrderScheduler,
    StaticOrderScheduler,
    WeightOrderScheduler,
    candidate_comparisons,
)
from repro.progressive.sorted_list import SortedListScheduler


class TestBudget:
    def test_charge_and_exhaustion(self):
        budget = Budget(3)
        assert budget.charge() and budget.charge() and budget.charge()
        assert not budget.charge()
        assert budget.exhausted
        assert budget.remaining == 0.0
        assert budget.fraction_used() == 1.0

    def test_unlimited_budget(self):
        budget = Budget(None)
        for _ in range(100):
            assert budget.charge(5.0)
        assert not budget.exhausted
        assert budget.remaining is None
        assert budget.fraction_used() == 0.0

    def test_validation_and_reset(self):
        with pytest.raises(ValueError):
            Budget(-1)
        budget = Budget(10)
        budget.charge(4)
        with pytest.raises(ValueError):
            budget.charge(-1)
        budget.reset()
        assert budget.spent == 0.0

    def test_cannot_overcharge_partially(self):
        budget = Budget(5)
        assert budget.charge(4)
        assert not budget.charge(2)  # would exceed: nothing is charged
        assert budget.spent == 4


class TestBaselineSchedulers:
    def test_candidate_comparisons_deduplicates(self):
        comparisons = [Comparison("a", "b"), Comparison("b", "a"), Comparison("a", "c")]
        assert len(candidate_comparisons(comparisons)) == 2

    def test_random_order_is_seeded_permutation(self, small_dirty_dataset):
        blocks = TokenBlocking().build(small_dirty_dataset.collection)
        first = list(RandomOrderScheduler(seed=1).schedule(small_dirty_dataset.collection, blocks))
        second = list(RandomOrderScheduler(seed=1).schedule(small_dirty_dataset.collection, blocks))
        assert [c.pair for c in first] == [c.pair for c in second]
        assert {c.pair for c in first} == blocks.distinct_pairs()

    def test_weight_order_descending(self):
        comparisons = [
            Comparison("a", "b", weight=0.2),
            Comparison("c", "d", weight=0.9),
            Comparison("e", "f"),
        ]
        ordered = list(WeightOrderScheduler().schedule(None, comparisons))
        assert ordered[0].pair == ("c", "d")
        assert ordered[-1].pair == ("e", "f")  # unweighted last

    def test_static_order(self):
        order = [Comparison("a", "b"), Comparison("c", "d")]
        assert list(StaticOrderScheduler(order).schedule(None, [])) == order


class TestOrderedSchedulers:
    def make_sorted_collection(self):
        return EntityCollection(
            [
                EntityDescription("e1", {"name": "alpha one"}),
                EntityDescription("e2", {"name": "alpha one extra"}),
                EntityDescription("e3", {"name": "beta two"}),
                EntityDescription("e4", {"name": "beta two extra"}),
                EntityDescription("e5", {"name": "omega"}),
            ]
        )

    def test_sorted_list_emits_adjacent_pairs_first(self):
        collection = self.make_sorted_collection()
        scheduler = SortedListScheduler(restrict_to_candidates=False)
        ordered = [c.pair for c in scheduler.schedule(collection, None)]
        assert ordered[0] == ("e1", "e2")
        # distance-1 pairs come before any distance-2 pair
        assert ordered.index(("e1", "e2")) < ordered.index(("e1", "e3"))
        # no duplicates
        assert len(ordered) == len(set(ordered))

    def test_sorted_list_respects_candidate_restriction(self):
        collection = self.make_sorted_collection()
        allowed = [Comparison("e1", "e2")]
        scheduler = SortedListScheduler(restrict_to_candidates=True)
        ordered = [c.pair for c in scheduler.schedule(collection, allowed)]
        assert ordered == [("e1", "e2")]

    def test_sorted_list_max_distance(self):
        collection = self.make_sorted_collection()
        scheduler = SortedListScheduler(max_distance=1, restrict_to_candidates=False)
        ordered = [c.pair for c in scheduler.schedule(collection, None)]
        assert len(ordered) == 4  # only adjacent pairs

    def test_hierarchy_validation(self):
        with pytest.raises(ValueError):
            PartitionHierarchyScheduler(max_prefix=0)
        with pytest.raises(ValueError):
            PartitionHierarchyScheduler(step=0)

    def test_hierarchy_emits_tight_partitions_first(self):
        collection = EntityCollection(
            [
                EntityDescription("e1", {"name": "alpha one"}),
                EntityDescription("e2", {"name": "alpha one extra"}),
                EntityDescription("e3", {"name": "alpha zeta"}),
                EntityDescription("e4", {"name": "beta two"}),
            ]
        )
        scheduler = PartitionHierarchyScheduler(max_prefix=8, step=4, restrict_to_candidates=False)
        ordered = [c.pair for c in scheduler.schedule(collection, None)]
        # (e1, e2) share an 8-character prefix and are emitted at the deepest level,
        # before (e1, e3) which only share the 4-character prefix "alph"
        assert ordered.index(("e1", "e2")) < ordered.index(("e1", "e3"))
        # descriptions that share no prefix at any level are never emitted
        assert ("e1", "e4") not in ordered
        assert len(ordered) == len(set(ordered))

    def test_psnm_lookahead_promotes_neighbouring_pairs(self):
        collection = self.make_sorted_collection()
        scheduler = ProgressiveSortedNeighborhood(lookahead=True)
        generator = scheduler.schedule(collection, None)
        first = next(generator)
        assert first.pair == ("e1", "e2")
        # report a match: the lookahead should enqueue (e2, e3) next-ish
        scheduler.feedback(MatchDecision(first, similarity=1.0, is_match=True))
        second = next(generator)
        assert second.pair in {("e2", "e3"), ("e1", "e3")}

    def test_psnm_without_lookahead_matches_sorted_list_order(self):
        collection = self.make_sorted_collection()
        no_lookahead = ProgressiveSortedNeighborhood(lookahead=False)
        sorted_list = SortedListScheduler(restrict_to_candidates=False)
        assert [c.pair for c in no_lookahead.schedule(collection, None)] == [
            c.pair for c in sorted_list.schedule(collection, None)
        ]

    def test_progressive_block_scheduler_promotes_matching_blocks(self, small_dirty_dataset):
        blocks = TokenBlocking().build(small_dirty_dataset.collection)
        scheduler = ProgressiveBlockScheduler()
        generator = scheduler.schedule(small_dirty_dataset.collection, blocks)
        emitted = []
        for _ in range(20):
            comparison = next(generator)
            emitted.append(comparison.pair)
            is_match = small_dirty_dataset.ground_truth.are_matches(*comparison.pair)
            scheduler.feedback(MatchDecision(comparison, similarity=1.0, is_match=is_match))
        assert len(emitted) == len(set(emitted))


class TestCostBenefitScheduler:
    def test_validation(self):
        with pytest.raises(ValueError):
            CostBenefitScheduler(window_size=0)
        with pytest.raises(ValueError):
            CostBenefitScheduler(influence_weight=-1)

    def test_emits_every_candidate_exactly_once(self, small_dirty_dataset):
        blocks = TokenBlocking().build(small_dirty_dataset.collection.sample(50, seed=1))
        weighted = MetaBlocking("CBS", "CNP").weighted_comparisons(blocks)
        scheduler = CostBenefitScheduler(window_size=10)
        emitted = [c.pair for c in scheduler.schedule(small_dirty_dataset.collection, weighted)]
        assert len(emitted) == len(set(emitted)) == len(weighted)
        assert scheduler.windows_executed >= 1

    def test_influence_promotes_related_pairs(self):
        # three descriptions of the same entity: once (a,b) matches, (a,c) and (b,c)
        # should be scheduled before the unrelated pair (x,y)
        comparisons = [
            Comparison("a", "b", weight=1.0),
            Comparison("a", "c", weight=0.1),
            Comparison("b", "c", weight=0.1),
            Comparison("x", "y", weight=0.5),
        ]
        collection = EntityCollection(
            [EntityDescription(i, {"name": i}) for i in ["a", "b", "c", "x", "y"]]
        )
        scheduler = CostBenefitScheduler(window_size=1, influence_weight=1.0)
        generator = scheduler.schedule(collection, comparisons)
        first = next(generator)
        assert first.pair == ("a", "b")
        scheduler.feedback(MatchDecision(first, similarity=1.0, is_match=True))
        second = next(generator)
        assert second.pair in {("a", "c"), ("b", "c")}


class TestRunner:
    def test_budget_and_curve(self, small_dirty_dataset):
        blocks = TokenBlocking().build(small_dirty_dataset.collection)
        oracle = OracleMatcher(small_dirty_dataset.ground_truth)
        result = run_progressive(
            SortedListScheduler(),
            oracle,
            small_dirty_dataset.collection,
            blocks,
            budget=200,
            ground_truth=small_dirty_dataset.ground_truth,
        )
        assert result.comparisons_executed <= 200
        assert result.curve is not None
        assert 0.0 <= result.auc <= 1.0
        assert result.true_matches_found == len(result.declared_matches)  # perfect oracle

    def test_unlimited_budget_exhausts_candidates(self, tiny_collection, tiny_ground_truth):
        blocks = TokenBlocking().build(tiny_collection)
        result = run_progressive(
            RandomOrderScheduler(),
            ProfileSimilarityMatcher(threshold=0.3),
            tiny_collection,
            blocks,
            budget=None,
            ground_truth=tiny_ground_truth,
            keep_decisions=True,
        )
        assert result.comparisons_executed == blocks.num_distinct_comparisons()
        assert len(result.decisions) == result.comparisons_executed

    def test_progressive_schedulers_beat_random_order(self, small_dirty_dataset):
        collection = small_dirty_dataset.collection
        truth = small_dirty_dataset.ground_truth
        blocks = TokenBlocking().build(collection)
        budget = 1500

        def auc_of(scheduler):
            return run_progressive(
                scheduler, OracleMatcher(truth), collection, blocks, budget=budget, ground_truth=truth
            ).auc

        random_auc = auc_of(RandomOrderScheduler(seed=2))
        assert auc_of(SortedListScheduler()) > random_auc
        assert auc_of(ProgressiveSortedNeighborhood()) > random_auc
        assert auc_of(ProgressiveBlockScheduler()) > random_auc
