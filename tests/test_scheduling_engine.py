"""Seeded equivalence suite: array vs object scheduling engines.

The object engine (every scheduler's own ``schedule`` generator) is the
oracle.  For each seeded dataset, candidate shape, scheduler, budget and
NumPy mode, the array engine must reproduce the oracle *bit for bit*: the
same comparisons in the same order (including order under weight ties), the
same declared matches, the same progressive recall curve and the same budget
accounting.
"""

import random

import pytest

import repro.datamodel.pairs as pairs_module
from repro.blocking.cleaning import BlockFiltering, BlockPurging
from repro.blocking.engine import BlockingEngine
from repro.blocking.token_blocking import TokenBlocking
from repro.datamodel.pairs import Comparison, ComparisonColumns
from repro.datasets import (
    DatasetConfig,
    generate_clean_clean_task,
    generate_dirty_dataset,
)
from repro.matching.matchers import ProfileSimilarityMatcher
from repro.metablocking.pipeline import MetaBlocking
from repro.progressive.engine import SCHEDULING_ENGINES, SchedulingEngine
from repro.progressive.psnm import (
    ProgressiveBlockScheduler,
    ProgressiveSortedNeighborhood,
)
from repro.progressive.runner import run_progressive
from repro.progressive.schedulers import (
    RandomOrderScheduler,
    StaticOrderScheduler,
    WeightOrderScheduler,
)
from repro.progressive.sorted_list import SortedListScheduler
from repro.progressive.hierarchy import PartitionHierarchyScheduler
from repro.text.vectorizer import TfIdfVectorizer

HAS_NUMPY = pairs_module._np is not None


def _dataset(kind: str, seed: int):
    config = DatasetConfig(
        num_entities=60, duplicates_per_entity=1.4, domain="person", seed=seed
    )
    if kind == "dirty":
        dataset = generate_dirty_dataset(config)
        return dataset.collection, dataset.ground_truth
    dataset = generate_clean_clean_task(config)
    return dataset.task, dataset.ground_truth


def _blocks(data):
    engine = BlockingEngine(TokenBlocking())
    return engine.clean(
        engine.build(data), purging=BlockPurging(), filtering=BlockFiltering(0.8)
    )


def _candidates(data, shape: str):
    blocks = _blocks(data)
    if shape == "blocks":
        return blocks
    return MetaBlocking("CBS", "WNP").weighted_columns(blocks)


def _matcher(data, mode: str):
    if mode == "tfidf":
        return ProfileSimilarityMatcher(
            threshold=0.55, vectorizer=TfIdfVectorizer().fit(iter(data))
        )
    return ProfileSimilarityMatcher(threshold=0.3)


def _schedulers():
    return [
        WeightOrderScheduler(),
        RandomOrderScheduler(seed=5),
        SortedListScheduler(),
        SortedListScheduler(restrict_to_candidates=False, max_distance=7),
        ProgressiveBlockScheduler(promote_on_match=False),
    ]


def _trace(result):
    return (
        [(d.pair, d.similarity, d.is_match) for d in result.decisions],
        result.declared_matches,
        result.comparisons_executed,
        result.budget_spent,
        result.skipped_comparisons,
        result.curve.history() if result.curve is not None else None,
    )


def _run(scheduler, matcher, data, candidates, scheduling, **kwargs):
    return run_progressive(
        scheduler=scheduler,
        matcher=matcher,
        data=data,
        candidates=candidates,
        keep_decisions=True,
        scheduling=scheduling,
        **kwargs,
    )


class TestSeededEquivalence:
    @pytest.mark.parametrize("kind", ["dirty", "clean_clean"])
    @pytest.mark.parametrize("shape", ["columns", "blocks"])
    @pytest.mark.parametrize("budget", [None, 40])
    def test_all_feedback_free_schedulers(self, kind, shape, budget):
        """Array and object engines execute identical schedules end to end."""
        data, ground_truth = _dataset(kind, seed=11)
        candidates = _candidates(data, shape)
        matcher = _matcher(data, "tfidf")
        for scheduler in _schedulers():
            if (
                isinstance(scheduler, ProgressiveBlockScheduler)
                and shape != "blocks"
            ):
                continue  # its array path only exists for block input
            results = {}
            for engine in SCHEDULING_ENGINES:
                results[engine] = _trace(
                    _run(
                        scheduler,
                        matcher,
                        data,
                        candidates,
                        SchedulingEngine(scheduler, engine=engine),
                        budget=budget,
                        ground_truth=ground_truth,
                    )
                )
            assert results["array"] == results["object"], (
                kind,
                shape,
                budget,
                scheduler.name,
            )

    @pytest.mark.parametrize("kind", ["dirty", "clean_clean"])
    def test_matches_historical_runner_path(self, kind):
        """`scheduling=None` (the pre-engine runner) is the same oracle."""
        data, ground_truth = _dataset(kind, seed=23)
        candidates = _candidates(data, "columns")
        matcher = _matcher(data, "set")
        for scheduler in (WeightOrderScheduler(), RandomOrderScheduler(seed=2)):
            baseline = _trace(
                _run(scheduler, matcher, data, candidates, None, ground_truth=ground_truth)
            )
            arrayed = _trace(
                _run(
                    scheduler,
                    matcher,
                    data,
                    candidates,
                    SchedulingEngine(scheduler, engine="array"),
                    ground_truth=ground_truth,
                )
            )
            assert arrayed == baseline

    def test_pairwise_matching_engine_consumes_array_schedule(self):
        """The array schedule also feeds the per-pair matching path unchanged."""
        data, ground_truth = _dataset("dirty", seed=31)
        candidates = _candidates(data, "columns")
        matcher = _matcher(data, "set")
        scheduler = WeightOrderScheduler()
        results = [
            _trace(
                _run(
                    scheduler,
                    matcher,
                    data,
                    candidates,
                    SchedulingEngine(scheduler, engine=engine),
                    engine=matching_engine,
                    ground_truth=ground_truth,
                )
            )
            for engine in SCHEDULING_ENGINES
            for matching_engine in ("batch", "pairwise")
        ]
        assert all(result == results[0] for result in results[1:])

    @pytest.mark.parametrize("engine", SCHEDULING_ENGINES)
    def test_static_order_runs_verbatim(self, engine):
        data, _ = _dataset("dirty", seed=7)
        candidates = _candidates(data, "columns")
        order = list(candidates)[:50]
        random.Random(3).shuffle(order)
        order = order + order[:5]  # duplicates must be preserved verbatim
        scheduler = StaticOrderScheduler(order)
        result = _run(
            scheduler,
            _matcher(data, "set"),
            data,
            candidates,
            SchedulingEngine(scheduler, engine=engine),
        )
        assert [d.pair for d in result.decisions] == [c.pair for c in order]


class TestWeightTies:
    def test_tie_order_matches_object_sort(self):
        """At equal weights the array order breaks ties on the identifier pair."""
        identifiers = [f"id{i:02d}" for i in range(12)]
        rng = random.Random(9)
        rows = []
        for i in range(len(identifiers)):
            for j in range(i + 1, len(identifiers)):
                rows.append((identifiers[i], identifiers[j], rng.choice([0.25, 0.5])))
        rng.shuffle(rows)
        comparisons = [Comparison(a, b, weight=w) for a, b, w in rows]

        from array import array

        ids = sorted({x for a, b, _ in rows for x in (a, b)}, key=lambda x: rng.random())
        ordinal = {identifier: o for o, identifier in enumerate(ids)}
        columns = ComparisonColumns(
            ids,
            array("q", (ordinal[min(a, b)] for a, b, _ in rows)),
            array("q", (ordinal[max(a, b)] for a, b, _ in rows)),
            array("d", (w for _, _, w in rows)),
        )
        scheduler = WeightOrderScheduler()
        expected = list(scheduler.schedule(None, comparisons))
        got = list(SchedulingEngine(scheduler, engine="array").schedule(None, columns))
        assert [(c.pair, c.weight) for c in got] == [
            (c.pair, c.weight) for c in expected
        ]

    @pytest.mark.skipif(not HAS_NUMPY, reason="needs both NumPy and fallback paths")
    def test_weight_sorted_numpy_and_python_agree(self, monkeypatch):
        data, _ = _dataset("dirty", seed=13)
        columns = _candidates(data, "columns")
        # rebuild from a shuffled row list (drops the pre-sorted marker, so
        # both paths actually sort)
        rng = random.Random(1)
        order = list(range(len(columns)))
        rng.shuffle(order)
        from array import array

        shuffled = ComparisonColumns(
            columns.ids,
            array("q", (columns.first[i] for i in order)),
            array("q", (columns.second[i] for i in order)),
            array("d", (columns.weights[i] for i in order)),
        )
        with_numpy = list(shuffled.weight_sorted())
        monkeypatch.setattr(pairs_module, "_np", None)
        without_numpy = list(shuffled.weight_sorted())
        assert [(c.pair, c.weight) for c in with_numpy] == [
            (c.pair, c.weight) for c in without_numpy
        ]
        # and both equal the object sort
        expected = sorted(
            list(shuffled), key=lambda c: (-c.weight, c.first, c.second)
        )
        assert [(c.pair, c.weight) for c in with_numpy] == [
            (c.pair, c.weight) for c in expected
        ]


class TestFallback:
    def test_adaptive_schedulers_fall_back(self):
        data, ground_truth = _dataset("dirty", seed=17)
        candidates = _candidates(data, "blocks")
        for scheduler in (
            ProgressiveSortedNeighborhood(),
            ProgressiveBlockScheduler(),  # promotion enabled => adaptive
        ):
            engine = SchedulingEngine(scheduler, engine="array")
            assert not engine.array_applicable(candidates)
            assert engine.schedule_rows(data, candidates) is None
            assert engine.last_engine == "object"
            assert not SchedulingEngine(
                ProgressiveBlockScheduler(), engine="array"
            ).feedback_free
            # and the run still matches the plain runner
            matcher = _matcher(data, "set")
            via_engine = _trace(
                _run(scheduler, matcher, data, candidates, engine, ground_truth=ground_truth)
            )
            plain = _trace(
                _run(scheduler, matcher, data, candidates, None, ground_truth=ground_truth)
            )
            assert via_engine == plain

    def test_feedback_free_non_native_scheduler_falls_back(self):
        data, _ = _dataset("dirty", seed=19)
        candidates = _candidates(data, "columns")
        scheduler = PartitionHierarchyScheduler()
        engine = SchedulingEngine(scheduler, engine="array")
        assert engine.feedback_free
        assert engine.schedule_rows(data, candidates) is None
        assert engine.last_engine == "object"

    def test_subclasses_fall_back(self):
        class TweakedWeightOrder(WeightOrderScheduler):
            def schedule(self, data, candidates):
                yield from reversed(list(super().schedule(data, candidates)))

        data, _ = _dataset("dirty", seed=3)
        candidates = _candidates(data, "columns")
        engine = SchedulingEngine(TweakedWeightOrder(), engine="array")
        assert engine.schedule_rows(data, candidates) is None
        scheduled = list(engine.schedule(data, candidates))
        assert engine.last_engine == "object"
        expected = list(TweakedWeightOrder().schedule(data, candidates))
        assert [c.pair for c in scheduled] == [c.pair for c in expected]

    def test_object_engine_forces_fallback(self):
        data, _ = _dataset("dirty", seed=3)
        candidates = _candidates(data, "columns")
        engine = SchedulingEngine(WeightOrderScheduler(), engine="object")
        assert engine.schedule_rows(data, candidates) is None
        assert engine.last_engine == "object"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            SchedulingEngine(WeightOrderScheduler(), engine="bogus")

    def test_mismatched_engine_wrapper_rejected(self):
        data, _ = _dataset("dirty", seed=3)
        candidates = _candidates(data, "columns")
        with pytest.raises(ValueError):
            run_progressive(
                scheduler=WeightOrderScheduler(),
                matcher=_matcher(data, "set"),
                data=data,
                candidates=candidates,
                scheduling=SchedulingEngine(WeightOrderScheduler(), engine="array"),
            )


class TestBudgetSlicing:
    def test_budget_draws_only_the_affordable_prefix(self):
        """The array path never schedules past the budget slice."""
        data, ground_truth = _dataset("dirty", seed=29)
        candidates = _candidates(data, "columns")
        drawn = []
        scheduler = WeightOrderScheduler()
        engine = SchedulingEngine(scheduler, engine="array")
        rows = engine.schedule_rows(data, candidates)
        original = rows.rows

        def counting_rows():
            for row in original:
                drawn.append(row)
                yield row

        rows.rows = counting_rows()
        matcher = _matcher(data, "tfidf")
        result = run_progressive(
            scheduler=scheduler,
            matcher=matcher,
            data=data,
            candidates=candidates,
            budget=25,
            ground_truth=ground_truth,
            engine="batch",
            scheduling=engine_with_rows(engine, rows),
        )
        assert result.comparisons_executed == 25
        assert result.budget_spent == 25
        # one batched draw: budget + 1 rows at most (the draw-size guard)
        assert len(drawn) <= 26


def engine_with_rows(engine, rows):
    """A SchedulingEngine stub returning a pre-built (instrumented) schedule."""

    class _Stub(SchedulingEngine):
        def schedule_rows(self, data, candidates):
            self.last_engine = "array"
            return rows

    stub = _Stub(engine.scheduler, engine="array")
    return stub
