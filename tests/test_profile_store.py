"""Unit tests for the columnar profile store behind the batch matching engine."""

from __future__ import annotations

import math

import pytest

from repro.datamodel.description import EntityDescription
from repro.text.profile_store import ProfileStore
from repro.text.tokenize import DEFAULT_STOP_WORDS, token_set
from repro.text.vectorizer import TfIdfVectorizer

try:
    import numpy

    HAS_NUMPY = True
except ImportError:
    HAS_NUMPY = False


def alan() -> EntityDescription:
    return EntityDescription("a1", {"name": "Alan Turing", "city": "London"})


def grace() -> EntityDescription:
    return EntityDescription("b1", {"name": "Grace Hopper", "city": "New York"})


class TestInterning:
    def test_ids_are_dense_and_stable(self):
        store = ProfileStore()
        first = store.intern("alan")
        second = store.intern("turing")
        assert (first, second) == (0, 1)
        assert store.intern("alan") == first  # idempotent
        assert store.token(first) == "alan"
        assert store.vocabulary_size == 2

    def test_vocabulary_is_shared_across_profiles(self):
        store = ProfileStore(stop_words=None, min_token_length=1)
        profile_a = store.profile(EntityDescription("x", {"name": "alan turing"}))
        profile_b = store.profile(EntityDescription("y", {"name": "turing machine"}))
        shared = set(profile_a.token_ids) & set(profile_b.token_ids)
        assert len(shared) == 1  # "turing" got the same id in both profiles


class TestSetModeProfiles:
    def test_profile_matches_token_set(self):
        store = ProfileStore(stop_words=DEFAULT_STOP_WORDS, min_token_length=2)
        description = alan()
        profile = store.profile(description)
        expected = token_set(description.values(), stop_words=DEFAULT_STOP_WORDS, min_length=2)
        assert {store.token(i) for i in profile.token_ids} == expected
        assert list(profile.token_ids) == sorted(profile.token_ids)
        assert profile.weights is None and profile.norm == 0.0

    def test_cache_hits_and_misses(self):
        store = ProfileStore()
        description = alan()
        first = store.profile(description)
        second = store.profile(description)
        assert first is second
        assert (store.hits, store.misses) == (1, 1)

    def test_stale_object_under_same_identifier_is_rebuilt(self):
        store = ProfileStore(stop_words=None, min_token_length=1)
        old = EntityDescription("a1", {"name": "alan"})
        new = EntityDescription("a1", {"name": "grace"})
        old_profile = store.profile(old)
        new_profile = store.profile(new)
        assert new_profile is not old_profile
        assert {store.token(i) for i in new_profile.token_ids} == {"grace"}

    def test_invalidate_and_clear(self):
        store = ProfileStore()
        store.profile(alan())
        store.profile(grace())
        assert len(store) == 2
        assert store.invalidate("a1") and not store.invalidate("a1")
        assert len(store) == 1
        vocabulary = store.vocabulary_size
        store.clear()
        assert len(store) == 0
        assert store.vocabulary_size == vocabulary  # interned tokens survive


class TestTfIdfModeProfiles:
    def test_columns_are_bit_identical_to_transform(self):
        descriptions = [alan(), grace()]
        vectorizer = TfIdfVectorizer().fit(iter(descriptions))
        store = ProfileStore(vectorizer=vectorizer)
        assert store.mode == "tfidf"
        for description in descriptions:
            profile = store.profile(description)
            vector = vectorizer.transform(description)
            rebuilt = {
                store.token(i): weight
                for i, weight in zip(profile.token_ids, profile.weights)
            }
            assert rebuilt == vector  # exact float equality, key by key
            assert profile.norm == vector.norm
            assert profile.norm == math.sqrt(math.fsum(w * w for w in vector.values()))

    def test_empty_description_has_empty_profile(self):
        vectorizer = TfIdfVectorizer().fit(iter([alan()]))
        store = ProfileStore(vectorizer=vectorizer)
        profile = store.profile(EntityDescription("void", {}))
        assert len(profile) == 0
        assert profile.norm == 0.0


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
class TestNumpyViews:
    def test_views_share_memory_with_columns(self):
        vectorizer = TfIdfVectorizer().fit(iter([alan(), grace()]))
        store = ProfileStore(vectorizer=vectorizer)
        profile = store.profile(alan())
        assert profile.np_ids.dtype == numpy.int64
        assert profile.np_weights.dtype == numpy.float64
        assert profile.np_ids.tolist() == list(profile.token_ids)
        assert profile.np_weights.tolist() == list(profile.weights)

    def test_empty_profile_views(self):
        store = ProfileStore()
        profile = store.profile(EntityDescription("void", {}))
        assert profile.np_ids.shape == (0,)
        assert profile.np_weights.shape == (0,)
