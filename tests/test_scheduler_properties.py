"""Property-based tests on progressive schedulers.

Invariants every scheduler must satisfy regardless of the data:

* it never emits a pair that is not in the candidate set (when restricted to
  candidates) and never emits the same pair twice;
* feeding back arbitrary decisions never breaks those guarantees;
* the weight-ordered scheduler emits weights in non-increasing order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datamodel.collection import EntityCollection
from repro.datamodel.description import EntityDescription
from repro.datamodel.pairs import Comparison
from repro.matching.matchers import MatchDecision
from repro.progressive.hierarchy import PartitionHierarchyScheduler
from repro.progressive.psnm import ProgressiveBlockScheduler, ProgressiveSortedNeighborhood
from repro.progressive.scheduler import CostBenefitScheduler
from repro.progressive.schedulers import RandomOrderScheduler, WeightOrderScheduler
from repro.progressive.sorted_list import SortedListScheduler


@st.composite
def small_er_input(draw):
    """A small collection plus a candidate comparison list over it."""
    size = draw(st.integers(min_value=2, max_value=8))
    words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]
    descriptions = []
    for index in range(size):
        tokens = draw(st.lists(st.sampled_from(words), min_size=1, max_size=3, unique=True))
        descriptions.append(EntityDescription(f"e{index}", {"name": " ".join(tokens)}))
    collection = EntityCollection(descriptions)
    identifiers = list(collection.identifiers)
    pair_indices = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=size - 1),
                st.integers(min_value=0, max_value=size - 1),
            ).filter(lambda p: p[0] != p[1]),
            min_size=0,
            max_size=12,
        )
    )
    weights = draw(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=len(pair_indices), max_size=len(pair_indices))
    )
    candidates = [
        Comparison(identifiers[i], identifiers[j], weight=w)
        for (i, j), w in zip(pair_indices, weights)
    ]
    return collection, candidates


ALL_SCHEDULERS = [
    lambda: RandomOrderScheduler(seed=1),
    lambda: WeightOrderScheduler(),
    lambda: SortedListScheduler(restrict_to_candidates=True),
    lambda: PartitionHierarchyScheduler(restrict_to_candidates=True),
    lambda: ProgressiveSortedNeighborhood(restrict_to_candidates=True),
    lambda: ProgressiveBlockScheduler(),
    lambda: CostBenefitScheduler(window_size=3),
]


@given(small_er_input())
@settings(max_examples=40, deadline=None)
def test_schedulers_emit_unique_candidate_pairs(er_input):
    collection, candidates = er_input
    candidate_pairs = {c.pair for c in candidates}
    for factory in ALL_SCHEDULERS:
        scheduler = factory()
        emitted = []
        for comparison in scheduler.schedule(collection, candidates):
            emitted.append(comparison.pair)
            # arbitrary feedback must not break the iteration
            scheduler.feedback(
                MatchDecision(comparison, similarity=0.5, is_match=len(emitted) % 2 == 0)
            )
        assert len(emitted) == len(set(emitted)), factory
        assert set(emitted) <= candidate_pairs, factory


@given(small_er_input())
@settings(max_examples=40, deadline=None)
def test_weight_order_is_non_increasing(er_input):
    collection, candidates = er_input
    ordered = list(WeightOrderScheduler().schedule(collection, candidates))
    weights = [c.weight if c.weight is not None else float("-inf") for c in ordered]
    assert all(a >= b for a, b in zip(weights, weights[1:]))


@given(small_er_input())
@settings(max_examples=30, deadline=None)
def test_random_order_is_a_permutation_of_candidates(er_input):
    collection, candidates = er_input
    distinct = {c.pair for c in candidates}
    emitted = [c.pair for c in RandomOrderScheduler(seed=7).schedule(collection, candidates)]
    assert sorted(emitted) == sorted(distinct)
