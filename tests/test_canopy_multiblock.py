"""Tests for canopy clustering blocking and multidimensional blocking."""

import pytest

from repro.blocking.canopy import CanopyClusteringBlocking
from repro.blocking.multiblock import MultidimensionalBlocking
from repro.blocking.standard import QGramsBlocking
from repro.blocking.token_blocking import TokenBlocking
from repro.datamodel.collection import EntityCollection
from repro.datamodel.description import EntityDescription
from repro.evaluation.metrics import evaluate_blocks


def make_collection():
    return EntityCollection(
        [
            EntityDescription("a1", {"name": "alan mathison turing", "city": "london"}),
            EntityDescription("a2", {"name": "alan turing", "city": "london"}),
            EntityDescription("b1", {"name": "grace brewster hopper", "city": "new york"}),
            EntityDescription("b2", {"name": "grace hopper", "city": "new york"}),
            EntityDescription("c1", {"name": "ada lovelace", "city": "london"}),
        ]
    )


class TestCanopy:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CanopyClusteringBlocking(loose_threshold=0.7, tight_threshold=0.3)

    def test_similar_descriptions_share_a_canopy(self):
        blocks = CanopyClusteringBlocking(loose_threshold=0.3, tight_threshold=0.8, seed=1).build(
            make_collection()
        )
        pairs = blocks.distinct_pairs()
        assert ("a1", "a2") in pairs
        assert ("b1", "b2") in pairs

    def test_canopies_are_deterministic_given_seed(self):
        first = CanopyClusteringBlocking(seed=3).build(make_collection())
        second = CanopyClusteringBlocking(seed=3).build(make_collection())
        assert first.distinct_pairs() == second.distinct_pairs()

    def test_reasonable_quality_on_generated_data(self, small_dirty_dataset):
        blocks = CanopyClusteringBlocking(loose_threshold=0.2, tight_threshold=0.7).build(
            small_dirty_dataset.collection
        )
        quality = evaluate_blocks(blocks, small_dirty_dataset.ground_truth, small_dirty_dataset.collection)
        assert quality.pair_completeness > 0.7
        assert quality.reduction_ratio > 0.8


class TestMultidimensional:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultidimensionalBlocking([])
        with pytest.raises(ValueError):
            MultidimensionalBlocking([TokenBlocking()], min_shared_dimensions=2)
        with pytest.raises(ValueError):
            MultidimensionalBlocking([TokenBlocking()], min_shared_dimensions=0)

    def test_aggregation_requires_co_occurrence_in_enough_dimensions(self):
        collection = make_collection()
        dimensions = [TokenBlocking(), QGramsBlocking(q=3)]
        union = MultidimensionalBlocking(dimensions, min_shared_dimensions=1).build(collection)
        intersection = MultidimensionalBlocking(dimensions, min_shared_dimensions=2).build(collection)
        assert intersection.num_distinct_comparisons() <= union.num_distinct_comparisons()
        assert ("a1", "a2") in intersection.distinct_pairs()

    def test_per_dimension_blocks_are_recorded(self):
        builder = MultidimensionalBlocking([TokenBlocking(), QGramsBlocking(q=3)], min_shared_dimensions=1)
        builder.build(make_collection())
        assert len(builder.last_dimension_blocks) == 2
