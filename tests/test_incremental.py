"""Tests for incremental (arrival-at-a-time) entity resolution."""

import pytest

from repro.datamodel.description import EntityDescription
from repro.datasets import DatasetConfig, generate_dirty_dataset
from repro.evaluation import evaluate_matches
from repro.iterative import IncrementalResolver
from repro.matching import OracleMatcher, ProfileSimilarityMatcher


def test_validation():
    with pytest.raises(ValueError):
        IncrementalResolver(ProfileSimilarityMatcher(), max_candidates=0)


def test_duplicate_identifiers_are_rejected():
    resolver = IncrementalResolver(ProfileSimilarityMatcher(threshold=0.5))
    resolver.add(EntityDescription("a", {"name": "alan turing"}))
    with pytest.raises(ValueError):
        resolver.add(EntityDescription("a", {"name": "alan turing"}))


def test_arrivals_join_existing_clusters():
    resolver = IncrementalResolver(ProfileSimilarityMatcher(threshold=0.5))
    first = resolver.add(EntityDescription("a1", {"name": "alan turing", "city": "london"}))
    assert first.is_new_entity
    second = resolver.add(EntityDescription("a2", {"label": "alan m turing", "place": "london"}))
    assert not second.is_new_entity
    assert resolver.cluster_of("a1") == {"a1", "a2"}
    assert resolver.num_clusters == 1
    # the merged representation accumulates both descriptions' values
    representation = resolver.representation_of("a1")
    assert "m" in representation.text() or "alan" in representation.text()


def test_bridging_arrival_joins_two_clusters():
    resolver = IncrementalResolver(ProfileSimilarityMatcher(threshold=0.5))
    resolver.add(EntityDescription("a", {"name": "alan turing", "city": "london"}))
    resolver.add(EntityDescription("b", {"name": "alan turing", "project": "enigma"}))
    # unrelated third entity
    resolver.add(EntityDescription("x", {"name": "grace hopper", "city": "new york"}))
    assert resolver.cluster_of("a") == {"a", "b"}
    # a later arrival that matches both existing clusters merges them transitively
    # (the overlap coefficient is robust to the bridge description being richer)
    resolver_2 = IncrementalResolver(
        ProfileSimilarityMatcher(threshold=0.6, similarity_name="overlap")
    )
    resolver_2.add(EntityDescription("a", {"name": "alan turing"}))
    resolver_2.add(EntityDescription("c", {"label": "enigma codebreaker bletchley"}))
    assert resolver_2.num_clusters == 2
    bridge = resolver_2.add(
        EntityDescription("b", {"name": "alan turing", "label": "enigma codebreaker bletchley"})
    )
    assert len(bridge.matched_clusters) == 2
    assert resolver_2.cluster_of("a") == {"a", "b", "c"}
    assert resolver_2.num_clusters == 1


def test_incremental_matches_batch_ground_truth():
    dataset = generate_dirty_dataset(DatasetConfig(num_entities=60, duplicates_per_entity=1.5, seed=41))
    truth = dataset.ground_truth
    resolver = IncrementalResolver(OracleMatcher(truth), max_candidates=30)
    results = resolver.add_all(dataset.collection)
    assert len(resolver) == len(dataset.collection)
    quality = evaluate_matches(
        [pair for cluster in resolver.non_trivial_clusters() for pair in _pairs(cluster)], truth
    )
    assert quality.precision == 1.0
    assert quality.recall > 0.95
    # the incremental process is far cheaper than the quadratic batch
    assert resolver.comparisons_executed < dataset.collection.total_comparisons() / 3
    # every arrival charged at most max_candidates comparisons
    assert all(result.comparisons <= 30 for result in results)


def test_as_collection_preserves_descriptions():
    resolver = IncrementalResolver(ProfileSimilarityMatcher(threshold=0.5))
    resolver.add(EntityDescription("a", {"name": "alan"}))
    resolver.add(EntityDescription("b", {"name": "grace"}))
    collection = resolver.as_collection()
    assert set(collection.identifiers) == {"a", "b"}


def _pairs(cluster):
    members = sorted(cluster)
    for i, first in enumerate(members):
        for second in members[i + 1 :]:
            yield (first, second)


# ----------------------------------------------------------------------
# oracle internals: merge re-pointing and comparison accounting
# ----------------------------------------------------------------------
def _expected_token_state(resolver):
    """Token index + reverse map recomputed from scratch (the slow way)."""
    token_index = {}
    root_tokens = {}
    for root, members in resolver._cluster_members.items():
        tokens = set()
        for member in members:
            tokens |= resolver._tokens_of(resolver._descriptions[member])
        root_tokens[root] = tokens
        for token in tokens:
            token_index.setdefault(token, set()).add(root)
    return token_index, root_tokens


def test_merge_repoints_only_absorbed_postings():
    """Regression: ``_merge_into`` walks the reverse map, not the whole index.

    The surgical re-pointing must leave the token index in exactly the state
    a full rebuild would produce -- after every arrival, remove and update
    of a seeded stream with plenty of merges.
    """
    dataset = generate_dirty_dataset(
        DatasetConfig(num_entities=25, duplicates_per_entity=2.0, seed=47)
    )
    resolver = IncrementalResolver(
        ProfileSimilarityMatcher(threshold=0.45), engine="object"
    )
    descriptions = list(dataset.collection)
    for position, description in enumerate(descriptions):
        resolver.add(description)
        assert (resolver._token_index, resolver._root_tokens) == _expected_token_state(
            resolver
        )
        if position >= 8 and position % 6 == 0:
            resolver.remove(descriptions[position - 7].identifier)
            assert (
                resolver._token_index,
                resolver._root_tokens,
            ) == _expected_token_state(resolver)
        if position >= 9 and position % 9 == 0:
            resolver.update(descriptions[position - 3])
            assert (
                resolver._token_index,
                resolver._root_tokens,
            ) == _expected_token_state(resolver)


class _CountingMatcher(ProfileSimilarityMatcher):
    """Counts executed ``match`` calls (subclassing also forces the oracle)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = 0

    def match(self, first, second):
        self.calls += 1
        return super().match(first, second)


def test_comparisons_executed_counts_matcher_calls():
    """``comparisons_executed`` equals executed matcher calls on both engines.

    The oracle is pinned directly against an instrumented matcher; the array
    engine (which scores through the batch engine, not ``match``) is pinned
    by producing the same count on the same stream -- closing the chain from
    the columnar counter to actual matcher invocations.
    """
    dataset = generate_dirty_dataset(
        DatasetConfig(num_entities=30, duplicates_per_entity=1.5, seed=53)
    )
    descriptions = list(dataset.collection)

    counting = _CountingMatcher(threshold=0.5)
    oracle = IncrementalResolver(counting)
    for description in descriptions:
        result = oracle.add(description)
        assert oracle.comparisons_executed == counting.calls
        assert result.comparisons <= oracle.max_candidates
    assert oracle.last_engine == "object"  # subclass type falls back
    replays = oracle.remove(descriptions[4].identifier)
    assert oracle.comparisons_executed == counting.calls
    assert sum(r.comparisons for r in replays) >= 0
    oracle.update(descriptions[9])
    assert oracle.comparisons_executed == counting.calls
    oracle.resolve(descriptions[12])  # read-only: must not move the counter
    total_calls = counting.calls
    assert oracle.comparisons_executed == total_calls

    array = IncrementalResolver(ProfileSimilarityMatcher(threshold=0.5))
    array.add_all(descriptions)
    assert array.last_engine == "array"
    array.remove(descriptions[4].identifier)
    array.update(descriptions[9])
    array.resolve(descriptions[12])
    assert array.comparisons_executed == total_calls


def test_oracle_remove_dissolves_and_reresolves():
    resolver = IncrementalResolver(
        ProfileSimilarityMatcher(threshold=0.5), engine="object"
    )
    resolver.add(EntityDescription("a1", {"name": "alan turing", "city": "london"}))
    resolver.add(EntityDescription("a2", {"label": "alan m turing", "place": "london"}))
    resolver.add(EntityDescription("x", {"name": "grace hopper"}))
    assert resolver.cluster_of("a1") == {"a1", "a2"}
    replays = resolver.remove("a1")
    # the co-member re-resolves (as a singleton here: nothing else matches)
    assert [r.identifier for r in replays] == ["a2"]
    assert resolver.cluster_of("a1") == frozenset()
    assert resolver.cluster_of("a2") == {"a2"}
    assert len(resolver) == 2
    with pytest.raises(KeyError):
        resolver.remove("a1")


def test_oracle_update_changes_cluster_membership():
    resolver = IncrementalResolver(
        ProfileSimilarityMatcher(threshold=0.5), engine="object"
    )
    resolver.add(EntityDescription("a1", {"name": "alan turing", "city": "london"}))
    resolver.add(EntityDescription("b1", {"name": "grace hopper", "city": "arlington"}))
    resolver.add(EntityDescription("m", {"name": "alan turing", "city": "london"}))
    assert resolver.cluster_of("m") == {"a1", "m"}
    result = resolver.update(
        EntityDescription("m", {"name": "grace hopper", "city": "arlington"})
    )
    assert not result.is_new_entity
    assert resolver.cluster_of("m") == {"b1", "m"}
    assert resolver.cluster_of("a1") == {"a1"}


def test_resolve_is_a_pure_query():
    resolver = IncrementalResolver(
        ProfileSimilarityMatcher(threshold=0.5), engine="object"
    )
    resolver.add(EntityDescription("a1", {"name": "alan turing", "city": "london"}))
    before = resolver.comparisons_executed
    joined = resolver.resolve(
        EntityDescription("probe", {"label": "alan m turing", "place": "london"})
    )
    assert joined == {"a1"}
    assert resolver.resolve(EntityDescription("q", {"name": "unrelated zzz"})) == frozenset()
    # probing with a stored identifier is legal (e.g. just before an update)
    assert resolver.resolve(
        EntityDescription("a1", {"name": "alan turing", "city": "london"})
    ) == {"a1"}
    assert resolver.comparisons_executed == before
    assert len(resolver) == 1
