"""Tests for incremental (arrival-at-a-time) entity resolution."""

import pytest

from repro.datamodel.description import EntityDescription
from repro.datasets import DatasetConfig, generate_dirty_dataset
from repro.evaluation import evaluate_matches
from repro.iterative import IncrementalResolver
from repro.matching import OracleMatcher, ProfileSimilarityMatcher


def test_validation():
    with pytest.raises(ValueError):
        IncrementalResolver(ProfileSimilarityMatcher(), max_candidates=0)


def test_duplicate_identifiers_are_rejected():
    resolver = IncrementalResolver(ProfileSimilarityMatcher(threshold=0.5))
    resolver.add(EntityDescription("a", {"name": "alan turing"}))
    with pytest.raises(ValueError):
        resolver.add(EntityDescription("a", {"name": "alan turing"}))


def test_arrivals_join_existing_clusters():
    resolver = IncrementalResolver(ProfileSimilarityMatcher(threshold=0.5))
    first = resolver.add(EntityDescription("a1", {"name": "alan turing", "city": "london"}))
    assert first.is_new_entity
    second = resolver.add(EntityDescription("a2", {"label": "alan m turing", "place": "london"}))
    assert not second.is_new_entity
    assert resolver.cluster_of("a1") == {"a1", "a2"}
    assert resolver.num_clusters == 1
    # the merged representation accumulates both descriptions' values
    representation = resolver.representation_of("a1")
    assert "m" in representation.text() or "alan" in representation.text()


def test_bridging_arrival_joins_two_clusters():
    resolver = IncrementalResolver(ProfileSimilarityMatcher(threshold=0.5))
    resolver.add(EntityDescription("a", {"name": "alan turing", "city": "london"}))
    resolver.add(EntityDescription("b", {"name": "alan turing", "project": "enigma"}))
    # unrelated third entity
    resolver.add(EntityDescription("x", {"name": "grace hopper", "city": "new york"}))
    assert resolver.cluster_of("a") == {"a", "b"}
    # a later arrival that matches both existing clusters merges them transitively
    # (the overlap coefficient is robust to the bridge description being richer)
    resolver_2 = IncrementalResolver(
        ProfileSimilarityMatcher(threshold=0.6, similarity_name="overlap")
    )
    resolver_2.add(EntityDescription("a", {"name": "alan turing"}))
    resolver_2.add(EntityDescription("c", {"label": "enigma codebreaker bletchley"}))
    assert resolver_2.num_clusters == 2
    bridge = resolver_2.add(
        EntityDescription("b", {"name": "alan turing", "label": "enigma codebreaker bletchley"})
    )
    assert len(bridge.matched_clusters) == 2
    assert resolver_2.cluster_of("a") == {"a", "b", "c"}
    assert resolver_2.num_clusters == 1


def test_incremental_matches_batch_ground_truth():
    dataset = generate_dirty_dataset(DatasetConfig(num_entities=60, duplicates_per_entity=1.5, seed=41))
    truth = dataset.ground_truth
    resolver = IncrementalResolver(OracleMatcher(truth), max_candidates=30)
    results = resolver.add_all(dataset.collection)
    assert len(resolver) == len(dataset.collection)
    quality = evaluate_matches(
        [pair for cluster in resolver.non_trivial_clusters() for pair in _pairs(cluster)], truth
    )
    assert quality.precision == 1.0
    assert quality.recall > 0.95
    # the incremental process is far cheaper than the quadratic batch
    assert resolver.comparisons_executed < dataset.collection.total_comparisons() / 3
    # every arrival charged at most max_candidates comparisons
    assert all(result.comparisons <= 30 for result in results)


def test_as_collection_preserves_descriptions():
    resolver = IncrementalResolver(ProfileSimilarityMatcher(threshold=0.5))
    resolver.add(EntityDescription("a", {"name": "alan"}))
    resolver.add(EntityDescription("b", {"name": "grace"}))
    collection = resolver.as_collection()
    assert set(collection.identifiers) == {"a", "b"}


def _pairs(cluster):
    members = sorted(cluster)
    for i, first in enumerate(members):
        for second in members[i + 1 :]:
            yield (first, second)
