"""Tests for the MapReduce engine, partitioners and parallel jobs."""

import pytest

from repro.blocking.token_blocking import TokenBlocking
from repro.mapreduce.balancing import GreedyBalancedPartitioner, HashPartitioner, load_imbalance, stable_hash
from repro.mapreduce.engine import MapReduceEngine, MapReduceJob
from repro.mapreduce.jobs import ParallelMetaBlocking, ParallelTokenBlocking
from repro.metablocking.pipeline import MetaBlocking


class WordCountJob(MapReduceJob):
    name = "wordcount"

    def map(self, record):
        for word in record.split():
            yield word, 1

    def reduce(self, key, values):
        yield key, sum(values)

    def combine(self, key, values):
        return [sum(values)]


class TestPartitioners:
    def test_stable_hash_is_deterministic(self):
        assert stable_hash("token") == stable_hash("token")
        assert stable_hash("a") != stable_hash("b")

    def test_hash_partitioner_assigns_all_keys(self):
        assignment = HashPartitioner().assign({"a": 1.0, "b": 2.0, "c": 3.0}, 2)
        assert set(assignment) == {"a", "b", "c"}
        assert all(0 <= worker < 2 for worker in assignment.values())

    def test_greedy_partitioner_balances_skewed_costs(self):
        costs = {"huge": 100.0, **{f"k{i}": 1.0 for i in range(20)}}
        workers = 4
        greedy = GreedyBalancedPartitioner().assign(costs, workers)
        loads = [0.0] * workers
        for key, worker in greedy.items():
            loads[worker] += costs[key]
        # the huge group sits alone-ish: imbalance is dominated by it but small keys spread out
        assert load_imbalance(loads) <= load_imbalance(
            [sum(costs[k] for k, w in HashPartitioner().assign(costs, workers).items() if w == i) for i in range(workers)]
        ) + 1e-9

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            HashPartitioner().assign({"a": 1.0}, 0)
        with pytest.raises(ValueError):
            GreedyBalancedPartitioner().assign({"a": 1.0}, 0)

    def test_load_imbalance_edge_cases(self):
        assert load_imbalance([]) == 1.0
        assert load_imbalance([0.0, 0.0]) == 1.0
        assert load_imbalance([2.0, 2.0]) == 1.0
        assert load_imbalance([4.0, 0.0]) == 2.0


class TestEngine:
    def test_wordcount_results_independent_of_worker_count(self):
        records = ["a b b", "c a", "b c c"]
        expected = {("a", 2), ("b", 3), ("c", 3)}
        for workers in (1, 2, 5):
            outputs, stats = MapReduceEngine(num_workers=workers).run(WordCountJob(), records)
            assert set(outputs) == expected
            assert stats.num_input_records == 3
            assert stats.num_output_records == 3

    def test_statistics_speedup_and_makespan(self):
        records = [f"word{i}" for i in range(100)]
        _, sequential = MapReduceEngine(num_workers=1).run(WordCountJob(), records)
        _, parallel = MapReduceEngine(num_workers=4).run(WordCountJob(), records)
        assert sequential.speedup == pytest.approx(1.0)
        assert parallel.speedup > 1.5
        assert parallel.makespan < sequential.makespan
        assert parallel.sequential_cost == pytest.approx(sequential.sequential_cost)

    def test_empty_input(self):
        outputs, stats = MapReduceEngine(num_workers=3).run(WordCountJob(), [])
        assert outputs == []
        assert stats.makespan == 0.0
        assert stats.speedup == 1.0

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            MapReduceEngine(num_workers=0)

    def test_combiner_reduces_intermediate_volume(self):
        records = ["a a a a", "a a a a"]
        _, with_combiner = MapReduceEngine(num_workers=2, use_combiner=True).run(WordCountJob(), records)
        # results identical without combiner
        outputs, without_combiner = MapReduceEngine(num_workers=2, use_combiner=False).run(
            WordCountJob(), records
        )
        assert set(outputs) == {("a", 8)}

    def test_pair_statistics_separate_map_and_shuffle_volume(self):
        # each record maps to 4 ("a", 1) pairs; a collapsing combiner sends
        # exactly one pair per worker across the shuffle
        records = ["a a a a", "a a a a"]
        _, with_combiner = MapReduceEngine(num_workers=2, use_combiner=True).run(
            WordCountJob(), records
        )
        assert with_combiner.num_intermediate_pairs == 8
        assert with_combiner.num_combined_pairs == 2
        _, without_combiner = MapReduceEngine(num_workers=2, use_combiner=False).run(
            WordCountJob(), records
        )
        assert without_combiner.num_intermediate_pairs == 8
        assert without_combiner.num_combined_pairs == 8


class TestParallelTokenBlocking:
    def test_blocks_match_sequential_token_blocking(self, small_dirty_dataset):
        collection = small_dirty_dataset.collection
        sequential = TokenBlocking().build(collection)
        parallel, stats = ParallelTokenBlocking().build(collection, MapReduceEngine(num_workers=4))
        assert parallel.distinct_pairs() == sequential.distinct_pairs()
        assert stats.num_input_records == len(collection)

    def test_clean_clean_blocks_match(self, small_clean_clean_dataset):
        task = small_clean_clean_dataset.task
        sequential = TokenBlocking().build(task)
        parallel, _ = ParallelTokenBlocking().build(task, MapReduceEngine(num_workers=3))
        assert parallel.distinct_pairs() == sequential.distinct_pairs()

    def test_speedup_grows_with_workers(self, small_dirty_dataset):
        collection = small_dirty_dataset.collection
        _, one = ParallelTokenBlocking().build(collection, MapReduceEngine(num_workers=1))
        _, eight = ParallelTokenBlocking().build(collection, MapReduceEngine(num_workers=8))
        assert eight.speedup > one.speedup

    def test_member_limit_matches_sequential_builder(self):
        # 0.3 * 10 evaluates to 2.999...96 in binary floating point: the
        # limit must still admit the 3-member block, exactly like the
        # sequential builder's tolerant floor
        from repro.datamodel.collection import EntityCollection
        from repro.datamodel.description import EntityDescription

        descriptions = [
            EntityDescription(f"s{i}", {"name": f"shared unique{i}"}) for i in range(3)
        ] + [EntityDescription(f"f{i}", {"name": f"filler{i}"}) for i in range(7)]
        collection = EntityCollection(descriptions, name="limit")
        sequential = TokenBlocking(max_block_fraction=0.3).build(collection)
        parallel, _ = ParallelTokenBlocking(max_block_fraction=0.3).build(
            collection, MapReduceEngine(num_workers=4)
        )
        assert any(len(block) == 3 for block in sequential)
        assert parallel.distinct_pairs() == sequential.distinct_pairs()


class TestParallelMetaBlocking:
    @pytest.mark.parametrize("pruning", ["WEP", "CEP", "WNP", "CNP"])
    def test_runs_all_pruning_modes(self, small_dirty_dataset, pruning):
        blocks = TokenBlocking().build(small_dirty_dataset.collection)
        edges, stats = ParallelMetaBlocking("CBS", pruning).run(blocks, MapReduceEngine(num_workers=4))
        assert edges
        assert len(stats) >= 2
        assert len({edge.pair for edge in edges}) == len(edges)

    def test_wep_matches_sequential_metablocking(self, small_dirty_dataset):
        blocks = TokenBlocking().build(small_dirty_dataset.collection)
        parallel_edges, _ = ParallelMetaBlocking("CBS", "WEP").run(blocks, MapReduceEngine(num_workers=4))
        sequential = MetaBlocking("CBS", "WEP").retained_edges(blocks)
        assert {e.pair for e in parallel_edges} == {e.pair for e in sequential}

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            ParallelMetaBlocking("CBS", "nope")
        blocks = TokenBlocking().build
        with pytest.raises(ValueError):
            # EJS is not supported by the distributed weighting stage
            from repro.blocking.base import Block, BlockCollection

            ParallelMetaBlocking("EJS", "WEP").run(
                BlockCollection([Block("t", members=["a", "b"])]), MapReduceEngine(1)
            )
