"""Tests for the end-to-end ER workflow (tutorial Figure 1)."""

import pytest

from repro.core.config import WorkflowConfig
from repro.core.workflow import ERWorkflow, default_workflow
from repro.datasets import DatasetConfig, generate_clean_clean_task, generate_dirty_dataset
from repro.matching.oracle import OracleMatcher
from repro.progressive.schedulers import RandomOrderScheduler


class TestWorkflowConfig:
    def test_describe_mentions_all_enabled_stages(self):
        config = WorkflowConfig(iterate_merges=True, budget=100)
        description = config.describe()
        assert "token" in description
        assert "metablocking" in description
        assert "budget=100" in description
        assert "iterative-merging" in description

    def test_default_workflow_rejects_unknown_overrides(self):
        with pytest.raises(AttributeError):
            default_workflow(nonexistent_option=True)


class TestWorkflowExecution:
    def test_default_workflow_resolves_dirty_collection(self, small_dirty_dataset):
        workflow = default_workflow()
        result = workflow.run(small_dirty_dataset.collection, small_dirty_dataset.ground_truth)
        assert result.matching_quality is not None
        assert result.matching_quality.f1 > 0.7
        assert result.blocking_quality.pair_completeness > 0.9
        assert result.comparisons_executed < small_dirty_dataset.collection.total_comparisons()
        assert len(result.report) >= 4
        assert "clusters" in result.summary()

    def test_blocking_engines_produce_identical_results(self, small_dirty_dataset):
        """Swapping the blocking engine changes stage labels, not the outcome."""
        results = {}
        for engine in ("index", "oracle"):
            workflow = default_workflow(blocking_engine=engine)
            result = workflow.run(small_dirty_dataset.collection, small_dirty_dataset.ground_truth)
            results[engine] = result
            stage_names = [stage.stage for stage in result.report]
            assert f"blocking[token_blocking@{engine}]" in stage_names
            assert f"block_purging@{engine}" in stage_names
            assert f"block_filtering@{engine}" in stage_names
        assert sorted(results["index"].matches) == sorted(results["oracle"].matches)
        assert (
            results["index"].comparisons_executed == results["oracle"].comparisons_executed
        )

    def test_workflow_without_ground_truth_still_runs(self, small_dirty_dataset):
        result = default_workflow().run(small_dirty_dataset.collection)
        assert result.matching_quality is None
        assert result.blocking_quality is None
        assert result.clusters

    def test_clean_clean_workflow(self, small_clean_clean_dataset):
        workflow = default_workflow()
        result = workflow.run(small_clean_clean_dataset.task, small_clean_clean_dataset.ground_truth)
        assert result.matching_quality.f1 > 0.5
        # all declared matches must be cross-collection pairs
        task = small_clean_clean_dataset.task
        for first, second in result.matches:
            assert task.is_valid_pair(first, second)

    def test_budget_limits_comparisons(self, small_dirty_dataset):
        limited = default_workflow(budget=100).run(
            small_dirty_dataset.collection, small_dirty_dataset.ground_truth
        )
        assert limited.comparisons_executed <= 100

    def test_component_overrides_take_precedence(self, small_dirty_dataset):
        oracle = OracleMatcher(small_dirty_dataset.ground_truth)
        workflow = ERWorkflow(
            WorkflowConfig(enable_metablocking=False),
            matcher=oracle,
            scheduler=RandomOrderScheduler(seed=1),
        )
        result = workflow.run(small_dirty_dataset.collection, small_dirty_dataset.ground_truth)
        assert result.matching_quality.precision == 1.0  # the oracle never errs
        assert oracle.calls == result.comparisons_executed

    def test_unknown_component_names_raise(self, small_dirty_dataset):
        with pytest.raises(KeyError):
            ERWorkflow(WorkflowConfig(blocking="bogus")).run(small_dirty_dataset.collection)
        with pytest.raises(KeyError):
            ERWorkflow(WorkflowConfig(scheduler="bogus")).run(small_dirty_dataset.collection)
        with pytest.raises(KeyError):
            ERWorkflow(WorkflowConfig(clustering="bogus")).run(small_dirty_dataset.collection)

    def test_iterative_merging_finds_at_least_as_many_matches(self):
        dataset = generate_dirty_dataset(
            DatasetConfig(num_entities=60, duplicates_per_entity=2.0, seed=23)
        )
        plain = default_workflow(iterate_merges=False, use_tfidf=False, match_threshold=0.6).run(
            dataset.collection, dataset.ground_truth
        )
        iterative = default_workflow(iterate_merges=True, use_tfidf=False, match_threshold=0.6).run(
            dataset.collection, dataset.ground_truth
        )
        assert iterative.matching_quality.recall >= plain.matching_quality.recall
        assert iterative.iterations >= 1

    @pytest.mark.parametrize("blocking", ["token", "attribute_clustering", "sorted_neighborhood"])
    def test_alternative_blocking_schemes(self, small_dirty_dataset, blocking):
        workflow = default_workflow(blocking=blocking, enable_metablocking=blocking == "token")
        result = workflow.run(small_dirty_dataset.collection, small_dirty_dataset.ground_truth)
        assert result.matching_quality is not None

    @pytest.mark.parametrize("scheduler", ["random", "sorted_list", "psnm", "progressive_blocks"])
    def test_alternative_schedulers(self, small_dirty_dataset, scheduler):
        workflow = default_workflow(scheduler=scheduler, budget=500)
        result = workflow.run(small_dirty_dataset.collection, small_dirty_dataset.ground_truth)
        assert result.comparisons_executed <= 500


class TestBudgetedWorkflowRuns:
    """Progressive-curve and comparison accounting through budgeted runs.

    Exercises the full ``ERWorkflow.run`` path -- budget, ground truth and
    merge iteration together -- on both scheduling engines, which must agree
    on every number they report.
    """

    BUDGET = 120

    @pytest.fixture(scope="class")
    def budget_dataset(self):
        return generate_dirty_dataset(
            DatasetConfig(num_entities=80, duplicates_per_entity=1.6, seed=77)
        )

    @pytest.mark.parametrize("engine", ["array", "object"])
    def test_budget_curve_and_accounting(self, budget_dataset, engine):
        workflow = default_workflow(
            budget=self.BUDGET,
            scheduling_engine=engine,
            iterate_merges=True,
            match_threshold=0.5,
        )
        result = workflow.run(budget_dataset.collection, budget_dataset.ground_truth)

        # the budget caps the scheduling+matching phase; merge iteration runs
        # on top of it and its extra comparisons are accounted separately
        matching = next(s for s in result.report if s.stage.startswith("matching["))
        assert f"@{engine}+" in matching.stage
        assert matching.metrics["comparisons"] <= self.BUDGET
        extra = result.comparisons_executed - matching.metrics["comparisons"]
        assert extra >= 0
        if result.iterations:
            update = next(s for s in result.report if s.stage == "update_iterate")
            assert update.metrics["comparisons"] == extra

        # the curve records exactly the budgeted comparisons, monotonically
        curve = result.curve
        assert curve is not None
        assert curve.num_comparisons == matching.metrics["comparisons"]
        history = curve.history()
        assert history[0] == (0, 0)
        assert all(
            later[0] == earlier[0] + 1 and later[1] >= earlier[1]
            for earlier, later in zip(history, history[1:])
        )
        assert 0.0 < curve.final_recall() <= 1.0
        assert 0.0 < curve.auc() <= 1.0

    def test_engines_agree_on_budgeted_runs(self, budget_dataset):
        results = {}
        for engine in ("array", "object"):
            workflow = default_workflow(
                budget=self.BUDGET,
                scheduling_engine=engine,
                iterate_merges=True,
                match_threshold=0.5,
            )
            results[engine] = workflow.run(
                budget_dataset.collection, budget_dataset.ground_truth
            )
        assert results["array"].matches == results["object"].matches
        assert (
            results["array"].comparisons_executed
            == results["object"].comparisons_executed
        )
        assert results["array"].iterations == results["object"].iterations
        assert results["array"].curve.history() == results["object"].curve.history()
        assert results["array"].clusters == results["object"].clusters

    @pytest.mark.parametrize("engine", ["array", "object"])
    def test_unbudgeted_run_executes_all_candidates(self, budget_dataset, engine):
        workflow = default_workflow(scheduling_engine=engine)
        result = workflow.run(budget_dataset.collection, budget_dataset.ground_truth)
        metablocking = next(
            s for s in result.report if s.stage.startswith("metablocking[")
        )
        matching = next(s for s in result.report if s.stage.startswith("matching["))
        assert matching.metrics["comparisons"] == metablocking.metrics["retained"]


class TestClusteringEngineThreading:
    def test_clustering_engines_produce_identical_results(self, small_dirty_dataset):
        """Swapping the clustering engine changes stage labels, not the outcome."""
        results = {}
        for engine in ("array", "object"):
            for clustering in ("connected_components", "center", "merge_center"):
                workflow = default_workflow(
                    clustering=clustering, clustering_engine=engine
                )
                result = workflow.run(
                    small_dirty_dataset.collection, small_dirty_dataset.ground_truth
                )
                results[(engine, clustering)] = result
                stage_names = [stage.stage for stage in result.report]
                assert f"clustering[{clustering}@{engine}]" in stage_names
        for clustering in ("connected_components", "center", "merge_center"):
            array_result = results[("array", clustering)]
            object_result = results[("object", clustering)]
            # exact cluster lists, including order, and identical metrics
            assert array_result.clusters == object_result.clusters
            assert (
                array_result.matching_quality.as_dict()
                == object_result.matching_quality.as_dict()
            )

    def test_custom_clustering_override_not_supported_by_name(self, small_dirty_dataset):
        with pytest.raises(KeyError):
            ERWorkflow(WorkflowConfig(clustering_engine="array", clustering="bogus")).run(
                small_dirty_dataset.collection
            )

    def test_default_run_creates_no_match_decision_objects(self, small_dirty_dataset):
        """The default engine path is object-free end to end: scheduling
        drains into decision columns and clustering consumes them as flat
        ordinals, so not a single MatchDecision is ever constructed."""
        from repro.matching.matchers import MatchDecision

        calls = []
        original = MatchDecision.__init__

        def counting(self, *args, **kwargs):
            calls.append(1)
            original(self, *args, **kwargs)

        MatchDecision.__init__ = counting
        try:
            result = default_workflow().run(
                small_dirty_dataset.collection, small_dirty_dataset.ground_truth
            )
        finally:
            MatchDecision.__init__ = original
        assert result.clusters  # the run actually resolved something
        assert result.matching_quality is not None
        assert not calls, f"{len(calls)} MatchDecision objects created on the default path"

    def test_object_engines_do_create_decision_objects(self, small_dirty_dataset):
        """Sanity check of the zero-object assertion: the legacy object
        pipeline trips the same counter."""
        from repro.matching.matchers import MatchDecision

        calls = []
        original = MatchDecision.__init__

        def counting(self, *args, **kwargs):
            calls.append(1)
            original(self, *args, **kwargs)

        MatchDecision.__init__ = counting
        try:
            default_workflow(
                scheduling_engine="object", clustering_engine="object"
            ).run(small_dirty_dataset.collection, small_dirty_dataset.ground_truth)
        finally:
            MatchDecision.__init__ = original
        assert calls


class TestIncrementalWorkflow:
    """``run_incremental``: arrival-stream resolution with snapshot/restore."""

    def test_stage_labels_and_metrics(self, small_dirty_dataset):
        result = ERWorkflow(WorkflowConfig()).run_incremental(
            small_dirty_dataset.collection, small_dirty_dataset.ground_truth
        )
        stages = [stage.stage for stage in result.report]
        assert stages == ["incremental[profile_similarity@array]"]
        (stage,) = list(result.report)
        assert stage.get("arrivals") == len(small_dirty_dataset.collection)
        assert stage.get("comparisons") > 0
        assert result.clusters
        assert result.matching_quality is not None

    def test_engines_produce_identical_results(self, small_dirty_dataset):
        results = {}
        for engine in ("array", "object"):
            config = WorkflowConfig(incremental_engine=engine)
            result = ERWorkflow(config).run_incremental(small_dirty_dataset.collection)
            (stage,) = list(result.report)
            assert stage.stage == f"incremental[profile_similarity@{engine}]"
            results[engine] = (
                sorted(sorted(c) for c in result.clusters),
                sorted(result.matches),
                stage.get("comparisons"),
            )
        assert results["array"] == results["object"]

    def test_snapshot_and_restore_stages(self, small_dirty_dataset, tmp_path):
        descriptions = list(small_dirty_dataset.collection)
        half = len(descriptions) // 2
        from repro.datamodel.collection import EntityCollection

        snapshot_dir = tmp_path / "snap"
        first = ERWorkflow(WorkflowConfig()).run_incremental(
            EntityCollection(descriptions[:half]), snapshot=snapshot_dir
        )
        assert [s.stage for s in first.report] == [
            "incremental[profile_similarity@array]",
            "incremental_snapshot",
        ]
        second = ERWorkflow(WorkflowConfig()).run_incremental(
            EntityCollection(descriptions[half:]), restore=snapshot_dir
        )
        assert [s.stage for s in second.report] == [
            "incremental_restore",
            "incremental[profile_similarity@array]",
        ]
        straight = ERWorkflow(WorkflowConfig()).run_incremental(
            EntityCollection(descriptions)
        )
        assert sorted(sorted(c) for c in second.clusters) == sorted(
            sorted(c) for c in straight.clusters
        )
