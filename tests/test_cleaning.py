"""Tests for block purging, block filtering and comparison propagation."""

import pytest

from repro.blocking.base import Block, BlockCollection
from repro.blocking.cleaning import (
    BlockFiltering,
    BlockPurging,
    ComparisonPropagation,
    adaptive_cardinality_threshold,
    clean_blocks,
)
from repro.blocking.token_blocking import TokenBlocking
from repro.evaluation.metrics import evaluate_blocks


def make_skewed_blocks():
    """A few small match-bearing blocks and one huge block."""
    big_block_members = [f"filler{i}" for i in range(40)]
    return BlockCollection(
        [
            Block("small1", members=["a1", "a2"]),
            Block("small2", members=["b1", "b2"]),
            Block("small3", members=["a1", "a2", "b1"]),
            Block("huge", members=big_block_members),
        ]
    )


class TestBlockPurging:
    def test_fixed_threshold_removes_oversized_blocks(self):
        purged = BlockPurging(max_comparisons=10).process(make_skewed_blocks())
        assert all(block.num_comparisons() <= 10 for block in purged)
        assert len(purged) == 3

    def test_adaptive_threshold_drops_dominating_block(self):
        purged = BlockPurging().process(make_skewed_blocks())
        assert all(block.key != "huge" for block in purged)
        # the small, match-bearing blocks survive
        assert {block.key for block in purged} >= {"small1", "small2", "small3"}

    def test_empty_collection(self):
        assert len(BlockPurging().process(BlockCollection())) == 0

    def test_purging_reduces_comparisons_but_keeps_recall_on_real_data(self, small_dirty_dataset):
        blocks = TokenBlocking().build(small_dirty_dataset.collection)
        purged = BlockPurging().process(blocks)
        assert purged.total_comparisons() <= blocks.total_comparisons()
        before = evaluate_blocks(blocks, small_dirty_dataset.ground_truth, small_dirty_dataset.collection)
        after = evaluate_blocks(purged, small_dirty_dataset.ground_truth, small_dirty_dataset.collection)
        assert after.pair_completeness >= before.pair_completeness - 0.1


class TestAdaptiveThreshold:
    """Edge cases of the adaptive purging bound."""

    def test_uniform_cardinalities_purge_nothing(self):
        # a single distinct cardinality has no gap to cut at
        assert adaptive_cardinality_threshold([4, 4, 4, 4], smoothing_factor=2.0) == 4
        blocks = BlockCollection(
            [Block(f"b{i}", members=[f"x{i}", f"y{i}", f"z{i}"]) for i in range(5)]
        )
        assert len(BlockPurging().process(blocks)) == 5

    def test_single_block(self):
        assert adaptive_cardinality_threshold([7], smoothing_factor=2.0) == 7
        blocks = BlockCollection([Block("only", members=["a", "b", "c"])])
        assert len(BlockPurging().process(blocks)) == 1

    def test_empty_cardinalities(self):
        assert adaptive_cardinality_threshold([], smoothing_factor=2.0) == 0

    def test_gap_exactly_at_the_median_boundary_is_ignored(self):
        # median of [1, 3, 3, 3, 9] is 3: the (1 -> 3) gap has ratio 3.0 but
        # its upper value equals the median, so only the upper-tail (3 -> 9)
        # gap counts and the threshold lands on 3
        assert adaptive_cardinality_threshold([1, 3, 3, 3, 9], smoothing_factor=2.0) == 3

    def test_gap_just_above_the_median_counts(self):
        # with median 1 the (1 -> 3) gap is in play; it ties the (3 -> 9)
        # gap at ratio 3.0 and the earlier (lower) gap wins the tie, so the
        # threshold cuts at 1
        assert adaptive_cardinality_threshold([1, 1, 1, 3, 9], smoothing_factor=2.0) == 1

    def test_smooth_distribution_purges_nothing(self):
        # no upper-tail gap reaches the smoothing factor: keep everything
        cardinalities = [2, 3, 4, 6]
        assert adaptive_cardinality_threshold(cardinalities, smoothing_factor=2.0) == 6

    def test_smoothing_factor_boundary(self):
        # a gap ratio exactly equal to the smoothing factor is accepted
        assert adaptive_cardinality_threshold([1, 1, 4, 8], smoothing_factor=2.0) == 4


class TestBlockFiltering:
    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            BlockFiltering(ratio=0.0)
        with pytest.raises(ValueError):
            BlockFiltering(ratio=1.5)

    def test_each_description_keeps_its_smallest_blocks(self):
        blocks = make_skewed_blocks()
        filtered = BlockFiltering(ratio=0.5).process(blocks)
        # 'a1' appears in small1 (1 comparison), small3 (3), huge (780): it keeps ceil(0.5*3)=2
        index = filtered.entity_index()
        assert len(index.get("a1", [])) <= 2
        assert filtered.total_comparisons() < blocks.total_comparisons()

    def test_ratio_one_keeps_everything(self):
        blocks = make_skewed_blocks()
        filtered = BlockFiltering(ratio=1.0).process(blocks)
        assert filtered.total_comparisons() == blocks.total_comparisons()

    def test_empty_collection(self):
        assert len(BlockFiltering().process(BlockCollection())) == 0

    def test_bilateral_blocks_survive_filtering(self):
        blocks = BlockCollection(
            [
                Block("t1", left_members=["l1"], right_members=["r1", "r2"]),
                Block("t2", left_members=["l1", "l2"], right_members=["r1"]),
            ]
        )
        filtered = BlockFiltering(ratio=1.0).process(blocks)
        assert all(block.is_bilateral for block in filtered)


class TestComparisonPropagation:
    def test_eliminates_all_redundancy_without_losing_pairs(self):
        blocks = make_skewed_blocks()
        propagated = ComparisonPropagation().process(blocks)
        assert propagated.num_distinct_comparisons() == blocks.num_distinct_comparisons()
        assert propagated.total_comparisons() == blocks.num_distinct_comparisons()
        assert propagated.redundancy() == pytest.approx(1.0)

    def test_bilateral_blocks_stay_bilateral(self):
        blocks = BlockCollection(
            [
                Block("t", left_members=["l1", "l2"], right_members=["r1"]),
                Block("u", left_members=["l1"], right_members=["r1"]),
            ]
        )
        propagated = ComparisonPropagation().process(blocks)
        assert all(block.is_bilateral for block in propagated)
        assert propagated.num_distinct_comparisons() == 2


def test_clean_blocks_pipeline_combines_steps(small_dirty_dataset):
    blocks = TokenBlocking().build(small_dirty_dataset.collection)
    cleaned = clean_blocks(
        blocks, purging=BlockPurging(), filtering=BlockFiltering(0.6), propagate=True
    )
    assert cleaned.total_comparisons() <= blocks.total_comparisons()
    assert cleaned.redundancy() == pytest.approx(1.0)


def test_clean_blocks_on_clean_clean_input_end_to_end(small_clean_clean_dataset):
    """The full purge -> filter -> propagate pipeline on bilateral blocks."""
    task = small_clean_clean_dataset.task
    blocks = TokenBlocking().build(task)
    filtered = clean_blocks(blocks, purging=BlockPurging(), filtering=BlockFiltering(0.8))
    cleaned = clean_blocks(filtered, propagate=True)
    # every surviving block stays bilateral and every comparison cross-collection
    assert all(block.is_bilateral for block in cleaned)
    for first, second in cleaned.distinct_pairs():
        assert task.is_valid_pair(first, second)
    # propagation removes redundancy without losing a single distinct pair
    assert cleaned.redundancy() == pytest.approx(1.0)
    assert cleaned.distinct_pairs() == filtered.distinct_pairs()
    # the pipeline kept most of the recall of the raw blocks
    before = evaluate_blocks(blocks, small_clean_clean_dataset.ground_truth, task)
    after = evaluate_blocks(cleaned, small_clean_clean_dataset.ground_truth, task)
    assert after.pair_completeness >= before.pair_completeness - 0.1
    assert after.num_comparisons <= before.num_comparisons
