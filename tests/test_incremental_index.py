"""Equivalence and golden suites for the growable incremental index.

:class:`repro.iterative.index.IncrementalIndex` (the ``"array"`` engine) must
be **bit-identical** to the object oracle in
:mod:`repro.iterative.incremental` at every prefix of an arrival stream:
same per-arrival :class:`ArrivalResult` (matched clusters in declaration
order, comparison counts), same clusters, same merged representations, same
``resolve`` answers -- including after ``update``/``remove`` and after a
snapshot save/load round trip, with and without NumPy.

``tests/fixtures/incremental/golden_stream.json`` freezes a seeded
adds/removes/updates stream **and the oracle's outputs on it**, so future
changes to either engine cannot silently alter what incremental resolution
produces.  Regenerating the fixture (only when the semantics change on
purpose): run this module as a script::

    PYTHONPATH=src python tests/test_incremental_index.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.datamodel.description import EntityDescription
from repro.datasets import DatasetConfig, generate_dirty_dataset
from repro.iterative import IncrementalResolver
from repro.iterative.index import IncrementalIndex
from repro.matching import ProfileSimilarityMatcher

try:
    import numpy
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    numpy = None

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "incremental" / "golden_stream.json"

NUMPY_MODES = [False] + ([True] if numpy is not None else [])


# ----------------------------------------------------------------------
# stream construction
# ----------------------------------------------------------------------
def _stream_descriptions(num_entities=40, duplicates=1.5, seed=29):
    dataset = generate_dirty_dataset(
        DatasetConfig(
            num_entities=num_entities, duplicates_per_entity=duplicates, seed=seed
        )
    )
    return list(dataset.collection)


def _mixed_operations(descriptions):
    """A deterministic add/remove/update interleaving over ``descriptions``."""
    operations = []
    for position, description in enumerate(descriptions):
        operations.append(("add", description))
        if position >= 10 and position % 7 == 0:
            # remove a record added a while ago (still present: removes only
            # target positions that are multiples of 7+3 once)
            victim = descriptions[position - 9]
            operations.append(("remove", victim.identifier))
        if position >= 12 and position % 11 == 0:
            changed = descriptions[position - 5]
            revised = EntityDescription(
                changed.identifier,
                attributes={
                    name: list(changed.values(name)) + ["revised"]
                    for name in changed.attribute_names
                },
            )
            operations.append(("update", revised))
    return operations


def _apply(resolver, operation):
    """Run one operation, returning a comparable serialisation of the result."""
    kind, payload = operation
    if kind == "add":
        result = resolver.add(payload)
        return _arrival(result)
    if kind == "update":
        result = resolver.update(payload)
        return _arrival(result)
    replays = resolver.remove(payload)
    return [_arrival(result) for result in replays]


def _arrival(result):
    return {
        "identifier": result.identifier,
        "matched_clusters": [sorted(cluster) for cluster in result.matched_clusters],
        "comparisons": result.comparisons,
    }


def _state(resolver):
    return {
        "clusters": sorted(sorted(cluster) for cluster in resolver.clusters()),
        "num_clusters": resolver.num_clusters,
        "comparisons_executed": resolver.comparisons_executed,
        "size": len(resolver),
    }


def _representations(resolver, identifiers):
    output = {}
    for identifier in identifiers:
        representation = resolver.representation_of(identifier)
        if representation is None:
            output[identifier] = None
        else:
            output[identifier] = {
                "identifier": representation.identifier,
                "attributes": {
                    name: list(representation.values(name))
                    for name in representation.attribute_names
                },
            }
    return output


# ----------------------------------------------------------------------
# array-vs-oracle equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("use_numpy", NUMPY_MODES)
def test_array_matches_oracle_at_every_prefix(use_numpy):
    descriptions = _stream_descriptions()
    matcher = ProfileSimilarityMatcher(threshold=0.5)
    oracle = IncrementalResolver(matcher, engine="object")
    index = IncrementalIndex(
        ProfileSimilarityMatcher(threshold=0.5), use_numpy=use_numpy
    )
    for description in descriptions:
        expected = _arrival(oracle.add(description))
        actual = _arrival(index.add(description))
        assert actual == expected
        assert _state(index) == _state(oracle)
    live = [d.identifier for d in descriptions if oracle.cluster_of(d.identifier)]
    assert _representations(index, live) == _representations(oracle, live)
    assert [d.identifier for d in index.as_collection()] == [
        d.identifier for d in oracle.as_collection()
    ]


@pytest.mark.parametrize("use_numpy", NUMPY_MODES)
def test_array_matches_oracle_through_removes_and_updates(use_numpy):
    descriptions = _stream_descriptions(num_entities=30, duplicates=1.8, seed=31)
    operations = _mixed_operations(descriptions)
    matcher = ProfileSimilarityMatcher(threshold=0.5)
    oracle = IncrementalResolver(matcher, engine="object")
    index = IncrementalIndex(
        ProfileSimilarityMatcher(threshold=0.5), use_numpy=use_numpy
    )
    for operation in operations:
        assert _apply(index, operation) == _apply(oracle, operation)
        assert _state(index) == _state(oracle)


def test_resolver_facade_uses_array_engine():
    resolver = IncrementalResolver(ProfileSimilarityMatcher(threshold=0.5))
    resolver.add(EntityDescription("a", {"name": "alan turing"}))
    assert resolver.last_engine == "array"
    # TF-IDF matchers are not batch-scorable as plain token sets: fall back
    from repro.text.vectorizer import TfIdfVectorizer

    vectorizer = TfIdfVectorizer().fit(
        [EntityDescription("c", {"name": "alan turing"})]
    )
    fallback = IncrementalResolver(
        ProfileSimilarityMatcher(threshold=0.5, vectorizer=vectorizer)
    )
    fallback.add(EntityDescription("a", {"name": "alan turing"}))
    assert fallback.last_engine == "object"


def test_engine_validation():
    with pytest.raises(ValueError):
        IncrementalResolver(ProfileSimilarityMatcher(), engine="vectorised")


def test_duplicate_and_unknown_identifiers():
    index = IncrementalIndex(ProfileSimilarityMatcher(threshold=0.5))
    index.add(EntityDescription("a", {"name": "alan"}))
    with pytest.raises(ValueError):
        index.add(EntityDescription("a", {"name": "alan"}))
    with pytest.raises(KeyError):
        index.remove("ghost")
    # after a remove the identifier becomes free again
    index.remove("a")
    index.add(EntityDescription("a", {"name": "alan"}))
    assert index.cluster_of("a") == {"a"}


@pytest.mark.parametrize("use_numpy", NUMPY_MODES)
def test_resolve_is_read_only_and_matches_oracle(use_numpy):
    descriptions = _stream_descriptions(num_entities=25, seed=37)
    matcher = ProfileSimilarityMatcher(threshold=0.5)
    oracle = IncrementalResolver(matcher, engine="object")
    index = IncrementalIndex(
        ProfileSimilarityMatcher(threshold=0.5), use_numpy=use_numpy
    )
    oracle.add_all(descriptions)
    index.add_all(descriptions)
    queries = descriptions[::5] + [
        EntityDescription("q:unknown", {"name": "zzz qqq completely novel tokens"})
    ]
    for query in queries:
        before = _state(index)
        assert index.resolve(query) == oracle.resolve(query)
        assert _state(index) == before  # no counters moved, no clusters changed


# ----------------------------------------------------------------------
# snapshot persistence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("save_numpy", NUMPY_MODES)
@pytest.mark.parametrize("load_numpy", NUMPY_MODES)
def test_snapshot_round_trip_then_continue(tmp_path, save_numpy, load_numpy):
    descriptions = _stream_descriptions(num_entities=30, seed=41)
    half = len(descriptions) // 2

    straight = IncrementalIndex(
        ProfileSimilarityMatcher(threshold=0.5), use_numpy=save_numpy
    )
    straight.add_all(descriptions[:half])

    index = IncrementalIndex(
        ProfileSimilarityMatcher(threshold=0.5), use_numpy=save_numpy
    )
    index.add_all(descriptions[:half])
    index.save(tmp_path / "snap")
    restored = IncrementalIndex.load(tmp_path / "snap", use_numpy=load_numpy)
    assert _state(restored) == _state(index)

    # continuing to add on the restored index reproduces the straight run
    for description in descriptions[half:]:
        assert _arrival(restored.add(description)) == _arrival(
            straight.add(description)
        )
    assert _state(restored) == _state(straight)

    # removes and resolves keep working after a restore
    victim = descriptions[0].identifier
    probe = descriptions[3]
    assert restored.resolve(probe) == straight.resolve(probe)
    assert [_arrival(r) for r in restored.remove(victim)] == [
        _arrival(r) for r in straight.remove(victim)
    ]
    assert _state(restored) == _state(straight)


def test_restored_index_has_no_descriptions(tmp_path):
    index = IncrementalIndex(ProfileSimilarityMatcher(threshold=0.5))
    index.add(EntityDescription("a", {"name": "alan turing"}))
    index.save(tmp_path / "snap")
    restored = IncrementalIndex.load(tmp_path / "snap")
    assert restored.cluster_of("a") == {"a"}
    with pytest.raises(RuntimeError):
        restored.representation_of("a")
    with pytest.raises(RuntimeError):
        restored.as_collection()


def test_snapshot_rejects_mismatched_matcher(tmp_path):
    index = IncrementalIndex(ProfileSimilarityMatcher(threshold=0.5))
    index.add(EntityDescription("a", {"name": "alan turing"}))
    index.save(tmp_path / "snap")
    with pytest.raises(ValueError, match="matcher"):
        IncrementalIndex.load(
            tmp_path / "snap", matcher=ProfileSimilarityMatcher(threshold=0.7)
        )
    # a matching configuration is accepted
    restored = IncrementalIndex.load(
        tmp_path / "snap", matcher=ProfileSimilarityMatcher(threshold=0.5)
    )
    assert restored.cluster_of("a") == {"a"}


def test_resolver_snapshot_facade(tmp_path):
    resolver = IncrementalResolver(ProfileSimilarityMatcher(threshold=0.5))
    resolver.add(EntityDescription("a", {"name": "alan turing"}))
    resolver.save(tmp_path / "snap")
    restored = IncrementalResolver.restore(tmp_path / "snap")
    assert restored.cluster_of("a") == {"a"}
    assert restored.last_engine == "array"
    restored.add(EntityDescription("b", {"name": "alan turing"}))
    assert restored.cluster_of("a") == {"a", "b"}
    # the object engine has no snapshot support
    oracle = IncrementalResolver(ProfileSimilarityMatcher(threshold=0.5), engine="object")
    oracle.add(EntityDescription("a", {"name": "alan"}))
    with pytest.raises(ValueError):
        oracle.save(tmp_path / "nope")


# ----------------------------------------------------------------------
# golden stream (frozen from the oracle)
# ----------------------------------------------------------------------
def _golden_operations():
    descriptions = _stream_descriptions(num_entities=35, duplicates=1.6, seed=43)
    return _mixed_operations(descriptions)


def _encode_operation(operation):
    kind, payload = operation
    if kind == "remove":
        return {"op": kind, "identifier": payload}
    return {
        "op": kind,
        "identifier": payload.identifier,
        "attributes": {
            name: list(payload.values(name)) for name in payload.attribute_names
        },
    }


def _decode_operation(record):
    if record["op"] == "remove":
        return ("remove", record["identifier"])
    return (
        record["op"],
        EntityDescription(record["identifier"], attributes=record["attributes"]),
    )


def _freeze_fixture() -> dict:
    operations = _golden_operations()
    oracle = IncrementalResolver(
        ProfileSimilarityMatcher(threshold=0.5), engine="object"
    )
    results = [_apply(oracle, operation) for operation in operations]
    return {
        "description": "oracle outputs on a seeded add/remove/update stream",
        "matcher": {"threshold": 0.5},
        "operations": [_encode_operation(operation) for operation in operations],
        "results": results,
        "final": _state(oracle),
    }


@pytest.mark.parametrize("engine", ["object", "array"])
def test_golden_stream(engine):
    fixture = json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))
    resolver = IncrementalResolver(
        ProfileSimilarityMatcher(threshold=fixture["matcher"]["threshold"]),
        engine=engine,
    )
    for record, expected in zip(fixture["operations"], fixture["results"]):
        assert _apply(resolver, _decode_operation(record)) == expected
    assert resolver.last_engine == engine
    assert _state(resolver) == fixture["final"]


def test_golden_fixture_is_current():
    """The checked-in fixture matches what the oracle produces today."""
    fixture = json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))
    assert fixture == _freeze_fixture()


if __name__ == "__main__":
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(
        json.dumps(_freeze_fixture(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {FIXTURE_PATH}")
