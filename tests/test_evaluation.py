"""Tests for evaluation metrics, progressive recall curves and reports."""

import pytest

from repro.blocking.base import Block, BlockCollection
from repro.datamodel.collection import EntityCollection
from repro.datamodel.description import EntityDescription
from repro.datamodel.ground_truth import GroundTruth
from repro.evaluation.curves import ProgressiveRecallCurve, area_under_curve
from repro.evaluation.metrics import (
    evaluate_blocks,
    evaluate_comparisons,
    evaluate_matches,
    f_measure,
)
from repro.evaluation.report import StageReport, WorkflowReport, render_table


@pytest.fixture()
def truth():
    return GroundTruth([["a", "b"], ["c", "d"], ["e", "f"]])


def test_f_measure():
    assert f_measure(0.0, 0.0) == 0.0
    assert f_measure(1.0, 1.0) == 1.0
    assert f_measure(0.5, 1.0) == pytest.approx(2 / 3)


class TestBlockingQuality:
    def test_perfect_candidates(self, truth):
        quality = evaluate_comparisons([("a", "b"), ("c", "d"), ("e", "f")], truth, 100)
        assert quality.pair_completeness == 1.0
        assert quality.pairs_quality == 1.0
        assert quality.reduction_ratio == pytest.approx(0.97)
        assert quality.f_measure == 1.0

    def test_partial_candidates(self, truth):
        quality = evaluate_comparisons([("a", "b"), ("a", "c"), ("x", "y")], truth, 10)
        assert quality.pair_completeness == pytest.approx(1 / 3)
        assert quality.pairs_quality == pytest.approx(1 / 3)
        assert quality.num_comparisons == 3

    def test_accepts_comparison_objects_and_reversed_pairs(self, truth):
        from repro.datamodel.pairs import Comparison

        quality = evaluate_comparisons([Comparison("b", "a")], truth, 10)
        assert quality.num_detected_matches == 1

    def test_empty_candidates(self, truth):
        quality = evaluate_comparisons([], truth, 10)
        assert quality.pair_completeness == 0.0
        assert quality.pairs_quality == 0.0

    def test_evaluate_blocks_uses_distinct_pairs(self, truth):
        blocks = BlockCollection(
            [Block("t1", members=["a", "b"]), Block("t2", members=["a", "b", "x"])]
        )
        collection = EntityCollection(
            [EntityDescription(i, {"name": i}) for i in ["a", "b", "x"]]
        )
        quality = evaluate_blocks(blocks, truth, collection)
        assert quality.num_comparisons == 3
        assert quality.num_detected_matches == 1

    def test_as_dict_and_str(self, truth):
        quality = evaluate_comparisons([("a", "b")], truth, 10)
        as_dict = quality.as_dict()
        assert set(as_dict) >= {"PC", "PQ", "RR", "F"}
        assert "PC=" in str(quality)


class TestMatchingQuality:
    def test_transitive_closure_of_declared_matches(self, truth):
        # declaring (a,b) and (b,c) implies (a,c) which is wrong here -> hurts precision
        quality = evaluate_matches([("a", "b"), ("b", "c")], truth)
        assert quality.num_declared == 3
        assert quality.num_correct == 1
        assert quality.precision == pytest.approx(1 / 3)
        assert quality.recall == pytest.approx(1 / 3)

    def test_merged_identifiers_expand(self, truth):
        quality = evaluate_matches([("a+b", "c")], truth)
        # expands to (a,c), (b,c) and (a,b): only (a,b) is correct
        assert quality.num_correct == 1
        assert quality.num_declared == 3

    def test_perfect_output(self, truth):
        quality = evaluate_matches([("a", "b"), ("c", "d"), ("e", "f")], truth)
        assert quality.precision == 1.0 and quality.recall == 1.0 and quality.f1 == 1.0

    def test_empty_declarations(self, truth):
        quality = evaluate_matches([], truth)
        assert quality.precision == 0.0 and quality.recall == 0.0


class TestProgressiveRecallCurve:
    def test_area_under_curve_known_values(self):
        assert area_under_curve([]) == 0.0
        assert area_under_curve([(0.0, 0.0), (1.0, 1.0)]) == pytest.approx(0.5)
        assert area_under_curve([(0.0, 1.0), (1.0, 1.0)]) == pytest.approx(1.0)
        # curve extended horizontally to x=1
        assert area_under_curve([(0.0, 0.0), (0.5, 1.0)]) == pytest.approx(0.75)

    def test_recording_and_recall_at(self, truth):
        curve = ProgressiveRecallCurve(truth, budget=6)
        for is_match in (True, False, True, False, False, True):
            curve.record(is_match=is_match)
        assert curve.num_comparisons == 6
        assert curve.final_recall() == 1.0
        assert curve.recall_at(1) == pytest.approx(1 / 3)
        assert curve.recall_at(3) == pytest.approx(2 / 3)
        assert curve.comparisons_for_recall(0.66) == 3
        assert curve.comparisons_for_recall(1.01) is None

    def test_front_loaded_curve_has_higher_auc(self, truth):
        early = ProgressiveRecallCurve(truth, budget=6)
        late = ProgressiveRecallCurve(truth, budget=6)
        for i in range(6):
            early.record(is_match=i < 3)
            late.record(is_match=i >= 3)
        assert early.auc() > late.auc()

    def test_batch_recording_and_sampling(self, truth):
        curve = ProgressiveRecallCurve(truth)
        curve.record_batch(10, 2)
        curve.record_batch(10, 1)
        assert curve.num_comparisons == 20
        assert curve.final_recall() == 1.0
        sampled = curve.sampled(num_points=5)
        assert sampled[0] == (0, 0.0)
        assert sampled[-1][1] == 1.0
        with pytest.raises(ValueError):
            curve.record_batch(-1, 0)


class TestReports:
    def test_stage_report_and_rendering(self):
        report = WorkflowReport("demo")
        report.add_stage("blocking", blocks=10, comparisons=100)
        stage = report.add_stage(StageReport("matching", {"comparisons": 50}))
        stage.add("matches", 7)
        assert report.stage("blocking").get("blocks") == 10
        assert report.stage("missing") is None
        rendered = report.render()
        assert "blocking" in rendered and "matches" in rendered
        assert len(report.to_rows()) == 2
        assert "[matching]" in str(stage)

    def test_render_table(self):
        text = render_table(
            [{"scheme": "token", "PC": 1.0}, {"scheme": "standard", "PC": 0.5, "extra": 3}],
            title="blocking",
        )
        assert "blocking" in text
        assert "token" in text and "standard" in text
        assert render_table([], title="empty") == "empty"


class TestOrdinalFastPaths:
    """Columnar/ordinal counting must equal the tuple-set formulation."""

    def _random_case(self, seed):
        import random

        rng = random.Random(seed)
        universe = [f"e{i}" for i in range(30)]
        clusters, pool = [], universe[:]
        rng.shuffle(pool)
        while pool:
            size = rng.randint(1, 4)
            clusters.append([pool.pop() for _ in range(min(size, len(pool)))])
        truth = GroundTruth([c for c in clusters if len(c) > 1])
        pairs = []
        for _ in range(60):
            first, second = rng.sample(universe, 2)
            pairs.append((first, second))
        return truth, pairs

    def test_evaluate_comparisons_columns_equal_tuple_path(self):
        from repro.datamodel.pairs import Comparison, ComparisonColumns, OrdinalInterner
        from array import array

        for seed in (1, 7, 23):
            truth, pairs = self._random_case(seed)
            intern = OrdinalInterner()
            first = array("q")
            second = array("q")
            for a, b in pairs:
                if a > b:
                    a, b = b, a
                first.append(intern(a))
                second.append(intern(b))
            columns = ComparisonColumns(intern.ids, first, second)
            via_columns = evaluate_comparisons(columns, truth, 500)
            via_tuples = evaluate_comparisons(pairs, truth, 500)
            assert via_columns == via_tuples

    def test_evaluate_comparisons_distinct_columns_skip_dedup(self):
        from repro.datamodel.pairs import ComparisonColumns, OrdinalInterner
        from array import array

        truth = GroundTruth([["a", "b"]])
        intern = OrdinalInterner()
        columns = ComparisonColumns(
            intern.ids,
            array("q", [intern("a")]),
            array("q", [intern("b")]),
            distinct=True,
        )
        quality = evaluate_comparisons(columns, truth, 10)
        assert quality.num_comparisons == 1
        assert quality.num_detected_matches == 1

    def test_evaluate_matches_decision_columns_use_positive_rows(self):
        from repro.datamodel.pairs import Comparison, DecisionColumns
        from repro.matching.matchers import MatchDecision

        truth = GroundTruth([["a", "b"], ["c", "d"]])
        decisions = [
            MatchDecision(Comparison("a", "b"), 0.9, True),
            MatchDecision(Comparison("a", "c"), 0.8, True),
            MatchDecision(Comparison("c", "d"), 0.3, False),  # negative: ignored
        ]
        columns = DecisionColumns.from_decisions(decisions)
        via_columns = evaluate_matches(columns, truth)
        via_pairs = evaluate_matches([("a", "b"), ("a", "c")], truth)
        assert via_columns == via_pairs
        assert via_columns.num_declared == 3  # closure of {a,b,c}
        assert via_columns.num_correct == 1

    def test_evaluate_matches_closure_equals_pair_set_reference(self):
        """The closed-form counts equal an explicit pair-set computation."""
        from repro.core.unionfind import UnionFind
        from repro.datamodel.pairs import canonical_pair

        for seed in (2, 9, 31):
            truth, pairs = self._random_case(seed)
            quality = evaluate_matches(pairs, truth)
            # reference: seed formulation with explicit quadratic pair sets
            links = UnionFind()
            for a, b in pairs:
                links.union(a, b)
            declared = set()
            for members in links.groups().values():
                ordered = sorted(members)
                for i, a in enumerate(ordered):
                    for b in ordered[i + 1 :]:
                        declared.add(canonical_pair(a, b))
            correct = len(declared & truth.matching_pairs())
            assert quality.num_declared == len(declared)
            assert quality.num_correct == correct
            assert quality.precision == (correct / len(declared) if declared else 0.0)
            assert quality.recall == (
                correct / len(truth.matching_pairs()) if truth.matching_pairs() else 0.0
            )

    def test_evaluate_matches_expands_merged_identifiers(self):
        truth = GroundTruth([["a", "b", "c"]])
        quality = evaluate_matches([("a+b", "c")], truth)
        # expansion declares a-c, b-c and a-b: all three are correct
        assert quality.num_declared == 3
        assert quality.num_correct == 3
        assert quality.recall == 1.0

    def test_cluster_spanning_pairs_close_to_same_metrics(self):
        from repro.evaluation.metrics import cluster_spanning_pairs

        truth = GroundTruth([["a", "b", "c"], ["d", "e"]])
        clusters = [frozenset({"a", "b", "c"}), frozenset({"d", "x"})]
        full = [("a", "b"), ("a", "c"), ("b", "c"), ("d", "x")]
        assert evaluate_matches(cluster_spanning_pairs(clusters), truth) == evaluate_matches(
            full, truth
        )

    def test_ground_truth_ordinal_views(self):
        truth = GroundTruth([["a", "b"], ["c", "d"]])
        indices = truth.cluster_indices(["a", "b", "c", "z"])
        assert indices[0] == indices[1]
        assert indices[2] != indices[0] and indices[2] >= 0
        assert indices[3] == -1
        assert truth.cluster_index("z") == -1
        # arithmetic num_matches equals the pair-set size, before and after
        # the pair set is materialised
        assert truth.num_matches() == 2
        assert len(truth.matching_pairs()) == 2
        assert truth.num_matches() == 2


class TestClusterEvaluationFastPath:
    def test_matches_reference_composition(self):
        """evaluate_clusters equals composing the public reference helpers."""
        import random

        from repro.evaluation.clusters import (
            closest_cluster_score,
            evaluate_clusters,
            variation_of_information,
            _normalise_partition,
        )

        for seed in (4, 17):
            rng = random.Random(seed)
            universe = [f"u{i}" for i in range(40)]
            truth_pool = universe[:]
            rng.shuffle(truth_pool)
            truth_clusters = []
            while truth_pool:
                size = rng.randint(1, 5)
                truth_clusters.append(
                    [truth_pool.pop() for _ in range(min(size, len(truth_pool)))]
                )
            truth = GroundTruth([c for c in truth_clusters if len(c) > 1])
            produced_pool = universe[:]
            rng.shuffle(produced_pool)
            produced = []
            while produced_pool:
                size = rng.randint(1, 6)
                produced.append(
                    frozenset(
                        produced_pool.pop() for _ in range(min(size, len(produced_pool)))
                    )
                )
            quality = evaluate_clusters(produced, truth, universe)

            universe_set = set(universe)
            reference_produced = _normalise_partition(produced, universe_set)
            reference_truth = _normalise_partition(truth.clusters, universe_set)
            exact = len(set(reference_produced) & set(reference_truth))
            assert quality.cluster_precision == exact / len(set(reference_produced))
            assert quality.cluster_recall == exact / len(set(reference_truth))
            assert quality.closest_cluster_f1 == 0.5 * (
                closest_cluster_score(reference_produced, reference_truth)
                + closest_cluster_score(reference_truth, reference_produced)
            )
            assert quality.variation_of_information == variation_of_information(
                reference_produced, reference_truth, len(universe_set)
            )

    def test_duplicate_produced_clusters_collapse(self):
        from repro.evaluation.clusters import evaluate_clusters

        truth = GroundTruth([["a", "b"]])
        quality = evaluate_clusters(
            [{"a", "b"}, {"a", "b"}, {"c", "d"}], truth, ["a", "b", "c", "d"]
        )
        # duplicates count once: 2 distinct produced clusters ({a,b}, {c,d}),
        # 1 exact match, against 3 reference clusters ({a,b}, {c}, {d})
        assert quality.cluster_precision == 1 / 2
        assert quality.cluster_recall == 1 / 3
