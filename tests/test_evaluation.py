"""Tests for evaluation metrics, progressive recall curves and reports."""

import pytest

from repro.blocking.base import Block, BlockCollection
from repro.datamodel.collection import EntityCollection
from repro.datamodel.description import EntityDescription
from repro.datamodel.ground_truth import GroundTruth
from repro.evaluation.curves import ProgressiveRecallCurve, area_under_curve
from repro.evaluation.metrics import (
    evaluate_blocks,
    evaluate_comparisons,
    evaluate_matches,
    f_measure,
)
from repro.evaluation.report import StageReport, WorkflowReport, render_table


@pytest.fixture()
def truth():
    return GroundTruth([["a", "b"], ["c", "d"], ["e", "f"]])


def test_f_measure():
    assert f_measure(0.0, 0.0) == 0.0
    assert f_measure(1.0, 1.0) == 1.0
    assert f_measure(0.5, 1.0) == pytest.approx(2 / 3)


class TestBlockingQuality:
    def test_perfect_candidates(self, truth):
        quality = evaluate_comparisons([("a", "b"), ("c", "d"), ("e", "f")], truth, 100)
        assert quality.pair_completeness == 1.0
        assert quality.pairs_quality == 1.0
        assert quality.reduction_ratio == pytest.approx(0.97)
        assert quality.f_measure == 1.0

    def test_partial_candidates(self, truth):
        quality = evaluate_comparisons([("a", "b"), ("a", "c"), ("x", "y")], truth, 10)
        assert quality.pair_completeness == pytest.approx(1 / 3)
        assert quality.pairs_quality == pytest.approx(1 / 3)
        assert quality.num_comparisons == 3

    def test_accepts_comparison_objects_and_reversed_pairs(self, truth):
        from repro.datamodel.pairs import Comparison

        quality = evaluate_comparisons([Comparison("b", "a")], truth, 10)
        assert quality.num_detected_matches == 1

    def test_empty_candidates(self, truth):
        quality = evaluate_comparisons([], truth, 10)
        assert quality.pair_completeness == 0.0
        assert quality.pairs_quality == 0.0

    def test_evaluate_blocks_uses_distinct_pairs(self, truth):
        blocks = BlockCollection(
            [Block("t1", members=["a", "b"]), Block("t2", members=["a", "b", "x"])]
        )
        collection = EntityCollection(
            [EntityDescription(i, {"name": i}) for i in ["a", "b", "x"]]
        )
        quality = evaluate_blocks(blocks, truth, collection)
        assert quality.num_comparisons == 3
        assert quality.num_detected_matches == 1

    def test_as_dict_and_str(self, truth):
        quality = evaluate_comparisons([("a", "b")], truth, 10)
        as_dict = quality.as_dict()
        assert set(as_dict) >= {"PC", "PQ", "RR", "F"}
        assert "PC=" in str(quality)


class TestMatchingQuality:
    def test_transitive_closure_of_declared_matches(self, truth):
        # declaring (a,b) and (b,c) implies (a,c) which is wrong here -> hurts precision
        quality = evaluate_matches([("a", "b"), ("b", "c")], truth)
        assert quality.num_declared == 3
        assert quality.num_correct == 1
        assert quality.precision == pytest.approx(1 / 3)
        assert quality.recall == pytest.approx(1 / 3)

    def test_merged_identifiers_expand(self, truth):
        quality = evaluate_matches([("a+b", "c")], truth)
        # expands to (a,c), (b,c) and (a,b): only (a,b) is correct
        assert quality.num_correct == 1
        assert quality.num_declared == 3

    def test_perfect_output(self, truth):
        quality = evaluate_matches([("a", "b"), ("c", "d"), ("e", "f")], truth)
        assert quality.precision == 1.0 and quality.recall == 1.0 and quality.f1 == 1.0

    def test_empty_declarations(self, truth):
        quality = evaluate_matches([], truth)
        assert quality.precision == 0.0 and quality.recall == 0.0


class TestProgressiveRecallCurve:
    def test_area_under_curve_known_values(self):
        assert area_under_curve([]) == 0.0
        assert area_under_curve([(0.0, 0.0), (1.0, 1.0)]) == pytest.approx(0.5)
        assert area_under_curve([(0.0, 1.0), (1.0, 1.0)]) == pytest.approx(1.0)
        # curve extended horizontally to x=1
        assert area_under_curve([(0.0, 0.0), (0.5, 1.0)]) == pytest.approx(0.75)

    def test_recording_and_recall_at(self, truth):
        curve = ProgressiveRecallCurve(truth, budget=6)
        for is_match in (True, False, True, False, False, True):
            curve.record(is_match=is_match)
        assert curve.num_comparisons == 6
        assert curve.final_recall() == 1.0
        assert curve.recall_at(1) == pytest.approx(1 / 3)
        assert curve.recall_at(3) == pytest.approx(2 / 3)
        assert curve.comparisons_for_recall(0.66) == 3
        assert curve.comparisons_for_recall(1.01) is None

    def test_front_loaded_curve_has_higher_auc(self, truth):
        early = ProgressiveRecallCurve(truth, budget=6)
        late = ProgressiveRecallCurve(truth, budget=6)
        for i in range(6):
            early.record(is_match=i < 3)
            late.record(is_match=i >= 3)
        assert early.auc() > late.auc()

    def test_batch_recording_and_sampling(self, truth):
        curve = ProgressiveRecallCurve(truth)
        curve.record_batch(10, 2)
        curve.record_batch(10, 1)
        assert curve.num_comparisons == 20
        assert curve.final_recall() == 1.0
        sampled = curve.sampled(num_points=5)
        assert sampled[0] == (0, 0.0)
        assert sampled[-1][1] == 1.0
        with pytest.raises(ValueError):
            curve.record_batch(-1, 0)


class TestReports:
    def test_stage_report_and_rendering(self):
        report = WorkflowReport("demo")
        report.add_stage("blocking", blocks=10, comparisons=100)
        stage = report.add_stage(StageReport("matching", {"comparisons": 50}))
        stage.add("matches", 7)
        assert report.stage("blocking").get("blocks") == 10
        assert report.stage("missing") is None
        rendered = report.render()
        assert "blocking" in rendered and "matches" in rendered
        assert len(report.to_rows()) == 2
        assert "[matching]" in str(stage)

    def test_render_table(self):
        text = render_table(
            [{"scheme": "token", "PC": 1.0}, {"scheme": "standard", "PC": 0.5, "extra": 3}],
            title="blocking",
        )
        assert "blocking" in text
        assert "token" in text and "standard" in text
        assert render_table([], title="empty") == "empty"
