"""Tests for equivalence clustering of pairwise match decisions."""

import pytest

from repro.datamodel.pairs import Comparison
from repro.matching.clustering import (
    CenterClustering,
    ConnectedComponentsClustering,
    MergeCenterClustering,
)
from repro.matching.matchers import MatchDecision


def decision(first, second, similarity=1.0, is_match=True):
    return MatchDecision(Comparison(first, second), similarity=similarity, is_match=is_match)


class TestConnectedComponents:
    def test_transitive_closure(self):
        clusters = ConnectedComponentsClustering().cluster(
            [decision("a", "b"), decision("b", "c"), decision("x", "y")]
        )
        as_sets = {frozenset(c) for c in clusters}
        assert frozenset({"a", "b", "c"}) in as_sets
        assert frozenset({"x", "y"}) in as_sets

    def test_negative_decisions_are_ignored(self):
        clusters = ConnectedComponentsClustering().cluster(
            [decision("a", "b", is_match=False), decision("c", "d")]
        )
        assert {frozenset(c) for c in clusters} == {frozenset({"c", "d"})}

    def test_empty_input(self):
        assert ConnectedComponentsClustering().cluster([]) == []

    def test_clusters_to_pairs(self):
        pairs = ConnectedComponentsClustering.clusters_to_pairs([frozenset({"a", "b", "c"})])
        assert pairs == {("a", "b"), ("a", "c"), ("b", "c")}


class TestCenterClustering:
    def test_chains_are_broken_at_centers(self):
        # a-b (strong), b-c (weaker): center clustering assigns b to a's cluster and
        # c starts its own cluster because b is not a center
        clusters = CenterClustering().cluster(
            [decision("a", "b", similarity=0.9), decision("b", "c", similarity=0.5)]
        )
        as_sets = {frozenset(c) for c in clusters}
        assert frozenset({"a", "b"}) in as_sets
        assert any("c" in cluster for cluster in as_sets)
        assert frozenset({"a", "b", "c"}) not in as_sets

    def test_edges_processed_in_weight_order(self):
        clusters = CenterClustering().cluster(
            [decision("b", "c", similarity=0.4), decision("a", "b", similarity=0.9)]
        )
        assert frozenset({"a", "b"}) in {frozenset(c) for c in clusters}


class TestMergeCenterClustering:
    def test_merges_clusters_joined_by_center_edges(self):
        decisions = [
            decision("a", "b", similarity=0.9),   # a center, b member
            decision("c", "d", similarity=0.8),   # c center, d member
            decision("a", "c", similarity=0.7),   # two centers -> merge
        ]
        clusters = MergeCenterClustering().cluster(decisions)
        assert {frozenset(c) for c in clusters} == {frozenset({"a", "b", "c", "d"})}

    def test_comparison_with_plain_center(self):
        decisions = [
            decision("a", "b", similarity=0.9),
            decision("c", "d", similarity=0.8),
            decision("a", "c", similarity=0.7),
        ]
        merge_center = {frozenset(c) for c in MergeCenterClustering().cluster(decisions)}
        plain_center = {frozenset(c) for c in CenterClustering().cluster(decisions)}
        assert len(merge_center) <= len(plain_center)


@pytest.mark.parametrize(
    "algorithm",
    [ConnectedComponentsClustering(), CenterClustering(), MergeCenterClustering()],
)
def test_all_algorithms_cover_every_matched_identifier(algorithm):
    decisions = [
        decision("a", "b", 0.9),
        decision("c", "d", 0.8),
        decision("e", "f", 0.7),
        decision("a", "z", 0.3),
    ]
    clusters = algorithm.cluster(decisions)
    covered = {identifier for cluster in clusters for identifier in cluster}
    assert covered == {"a", "b", "c", "d", "e", "f", "z"}
    # clusters are disjoint
    assert sum(len(c) for c in clusters) == len(covered)


def test_count_cluster_pairs_matches_materialised_pairs():
    clusters = [frozenset({"a", "b", "c"}), frozenset({"x", "y"}), frozenset({"solo"})]
    from repro.matching.clustering import ClusteringAlgorithm

    assert ClusteringAlgorithm.count_cluster_pairs(clusters) == len(
        ClusteringAlgorithm.clusters_to_pairs(clusters)
    )
    assert ClusteringAlgorithm.count_cluster_pairs([]) == 0
