"""Tests for the built-in miniature benchmark datasets."""

import pytest

from repro.blocking import TokenBlocking
from repro.core import default_workflow
from repro.datasets import load_census, load_restaurants
from repro.evaluation import evaluate_blocks


def test_restaurants_structure():
    dataset = load_restaurants()
    assert len(dataset.collection) == 18
    assert dataset.ground_truth.num_matches() == 8
    # heterogeneous attribute names across the two "guides"
    names = dataset.collection.attribute_names()
    assert "address" in names and "street" in names
    assert "phone" in names and "tel" in names


def test_census_structure():
    dataset = load_census()
    assert len(dataset.collection) == 13
    assert len(dataset.ground_truth.clusters) == 7
    # the near-miss pair is NOT a match
    assert not dataset.ground_truth.are_matches("cens:6", "cens:8")
    assert dataset.ground_truth.are_matches("cens:1", "cens:3")


def test_datasets_are_deterministic():
    assert load_restaurants().collection.identifiers == load_restaurants().collection.identifiers
    assert load_census().ground_truth.matching_pairs() == load_census().ground_truth.matching_pairs()


@pytest.mark.parametrize("loader", [load_restaurants, load_census])
def test_token_blocking_covers_all_builtin_matches(loader):
    dataset = loader()
    blocks = TokenBlocking().build(dataset.collection)
    quality = evaluate_blocks(blocks, dataset.ground_truth, dataset.collection)
    assert quality.pair_completeness == 1.0


def test_default_workflow_resolves_restaurants_well():
    dataset = load_restaurants()
    result = default_workflow(match_threshold=0.3).run(dataset.collection, dataset.ground_truth)
    assert result.matching_quality.recall >= 0.75
    assert result.matching_quality.precision >= 0.85


def test_default_workflow_keeps_census_near_misses_apart():
    dataset = load_census()
    result = default_workflow(match_threshold=0.35).run(dataset.collection, dataset.ground_truth)
    matched = result.matched_pairs()
    assert ("cens:6", "cens:8") not in matched
    assert result.matching_quality.precision >= 0.8
