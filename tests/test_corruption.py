"""Tests for the corruption model used by the synthetic generators."""

import pytest

from repro.datamodel.description import EntityDescription
from repro.datasets.corruption import CorruptionConfig, CorruptionModel
from repro.datasets.vocabularies import ATTRIBUTE_SYNONYMS


def make_clean() -> EntityDescription:
    return EntityDescription(
        "universe:person/0",
        {
            "name": "Alan Mathison Turing",
            "city": "London",
            "affiliation": "University of Cambridge",
            "birth_year": "1912",
        },
        source="universe",
    )


def test_config_scaling_caps_probabilities():
    config = CorruptionConfig(typo_probability=0.5).scaled(10)
    assert config.typo_probability == 0.95
    low = CorruptionConfig.highly_similar()
    high = CorruptionConfig.somehow_similar()
    assert low.typo_probability < high.typo_probability


def test_corrupt_token_changes_or_preserves_length_reasonably():
    model = CorruptionModel(seed=1)
    token = "turing"
    corrupted = {model.corrupt_token(token) for _ in range(30)}
    # at least one corruption differs from the original and lengths stay close
    assert any(c != token for c in corrupted)
    assert all(abs(len(c) - len(token)) <= 1 for c in corrupted)
    assert model.corrupt_token("") == ""


def test_corrupt_value_keeps_at_least_one_token():
    model = CorruptionModel(CorruptionConfig().scaled(2.0), seed=2)
    for _ in range(20):
        assert model.corrupt_value("Alan Mathison Turing").strip() != ""


def test_corrupt_value_is_deterministic_given_seed():
    first = CorruptionModel(seed=5)
    second = CorruptionModel(seed=5)
    values = ["Alan Turing", "University of Crete", "1912"]
    assert [first.corrupt_value(v) for v in values] == [second.corrupt_value(v) for v in values]


def test_rename_attribute_uses_known_synonyms():
    model = CorruptionModel(seed=3)
    for _ in range(10):
        renamed = model.rename_attribute("name")
        assert renamed in ATTRIBUTE_SYNONYMS["name"]
    assert model.rename_attribute("unknown_attribute") == "unknown_attribute"


def test_corrupt_description_never_empty_and_new_identifier():
    model = CorruptionModel(CorruptionConfig(attribute_drop_probability=0.9), seed=4)
    clean = make_clean()
    duplicate = model.corrupt_description(clean, "kb:person/0-1", source="kb")
    assert duplicate.identifier == "kb:person/0-1"
    assert duplicate.source == "kb"
    assert len(duplicate.attribute_names) >= 1


def test_corrupt_description_respects_attribute_style():
    model = CorruptionModel(CorruptionConfig(attribute_rename_probability=0.0), seed=6)
    style = {"name": "foaf:name", "city": "dbo:city"}
    duplicate = model.corrupt_description(make_clean(), "dup", attribute_style=style)
    names = set(duplicate.attribute_names)
    assert "name" not in names
    assert "foaf:name" in names or "city" not in names  # dropped attributes are allowed


def test_corrupt_description_preserves_relationships():
    clean = EntityDescription("p", {"title": "Paper"}, relationships={"author": ["a1"]})
    model = CorruptionModel(seed=7)
    duplicate = model.corrupt_description(clean, "p-dup")
    assert duplicate.related("author") == ("a1",)


def test_make_style_covers_all_attributes():
    model = CorruptionModel(seed=8)
    style = model.make_style(["name", "city", "unknown"])
    assert set(style) == {"name", "city", "unknown"}
    assert style["unknown"] == "unknown"
