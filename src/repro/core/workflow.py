"""The configurable end-to-end ER workflow (tutorial Figure 1).

``ERWorkflow.run`` executes the four phases of the framework:

1. **Blocking** -- a blocking scheme builds blocks, optionally cleaned by
   block purging and block filtering, optionally restructured by
   meta-blocking (which also provides matching-likelihood weights).
2. **Scheduling** -- a progressive scheduler orders the candidate
   comparisons; with no budget this only affects the order in which matches
   are found, with a budget it decides which comparisons run at all.
3. **Matching** -- a pairwise matcher resolves the scheduled comparisons.
4. **Update / Iterate** (optional) -- matched descriptions are merged and the
   merged descriptions are matched against related candidates, possibly
   yielding new matches (merging-based iteration); the loop stops when an
   iteration finds no new match or ``max_iterations`` is reached.

Finally the declared matches are clustered into equivalence clusters.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Set, Tuple, Union

from repro.blocking.base import BlockBuilder, BlockCollection, ERInput
from repro.blocking.canopy import CanopyClusteringBlocking
from repro.blocking.cleaning import BlockFiltering, BlockPurging
from repro.blocking.engine import BlockingEngine
from repro.blocking.minhash import MinHashLSHBlocking
from repro.blocking.sorted_neighborhood import (
    ExtendedSortedNeighborhoodBlocking,
    SortedNeighborhoodBlocking,
)
from repro.blocking.standard import QGramsBlocking, StandardBlocking, attribute_key
from repro.blocking.similarity_join import SimilarityJoinBlocking
from repro.blocking.token_blocking import (
    AttributeClusteringBlocking,
    PrefixInfixSuffixBlocking,
    TokenBlocking,
)
from repro.core.config import WorkflowConfig
from repro.core.context import PipelineContext
from repro.core.results import WorkflowResult
from repro.core.unionfind import UnionFind
from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datamodel.description import merge_descriptions
from repro.datamodel.ground_truth import GroundTruth
from repro.datamodel.pairs import Comparison, ComparisonColumns, DecisionColumns
from repro.evaluation.metrics import (
    cluster_spanning_pairs,
    evaluate_blocks,
    evaluate_comparisons,
    evaluate_matches,
)
from repro.matching.cluster_engine import ClusteringEngine
from repro.matching.clustering import (
    CenterClustering,
    ConnectedComponentsClustering,
    MergeCenterClustering,
)
from repro.matching.engine import MatchingEngine
from repro.matching.matchers import Matcher, ProfileSimilarityMatcher
from repro.metablocking.pipeline import MetaBlocking
from repro.progressive.budget import Budget
from repro.progressive.engine import SchedulingEngine
from repro.progressive.hierarchy import PartitionHierarchyScheduler
from repro.progressive.psnm import ProgressiveBlockScheduler, ProgressiveSortedNeighborhood
from repro.progressive.runner import run_progressive
from repro.progressive.scheduler import CostBenefitScheduler
from repro.progressive.schedulers import (
    ProgressiveScheduler,
    RandomOrderScheduler,
    WeightOrderScheduler,
)
from repro.progressive.sorted_list import SortedListScheduler
from repro.text.vectorizer import TfIdfVectorizer

_BLOCKING_FACTORIES = {
    "token": lambda: TokenBlocking(),
    "attribute_clustering": lambda: AttributeClusteringBlocking(),
    "prefix_infix_suffix": lambda: PrefixInfixSuffixBlocking(),
    "qgrams": lambda: QGramsBlocking(),
    "sorted_neighborhood": lambda: SortedNeighborhoodBlocking(),
    "extended_sorted_neighborhood": lambda: ExtendedSortedNeighborhoodBlocking(),
    "similarity_join": lambda: SimilarityJoinBlocking(threshold=0.4),
    "minhash_lsh": lambda: MinHashLSHBlocking(),
    "canopy": lambda: CanopyClusteringBlocking(),
    "standard": lambda: StandardBlocking([attribute_key(["name"], length=6)]),
}

_SCHEDULER_FACTORIES = {
    "weight_order": lambda: WeightOrderScheduler(),
    "random": lambda: RandomOrderScheduler(),
    "sorted_list": lambda: SortedListScheduler(),
    "hierarchy": lambda: PartitionHierarchyScheduler(),
    "psnm": lambda: ProgressiveSortedNeighborhood(),
    "progressive_blocks": lambda: ProgressiveBlockScheduler(),
    "cost_benefit": lambda: CostBenefitScheduler(),
}

_CLUSTERING_FACTORIES = {
    "connected_components": ConnectedComponentsClustering,
    "center": CenterClustering,
    "merge_center": MergeCenterClustering,
}


class ERWorkflow:
    """Configurable blocking -> scheduling -> matching -> update workflow.

    Parameters
    ----------
    config:
        Declarative configuration; defaults are reasonable for schema-free
        Web data.
    blocking, matcher, scheduler:
        Optional component instances overriding the configuration's named
        choices.
    """

    def __init__(
        self,
        config: Optional[WorkflowConfig] = None,
        blocking: Optional[BlockBuilder] = None,
        matcher: Optional[Matcher] = None,
        scheduler: Optional[ProgressiveScheduler] = None,
    ) -> None:
        self.config = config or WorkflowConfig()
        self._blocking_override = blocking
        self._matcher_override = matcher
        self._scheduler_override = scheduler

    # ------------------------------------------------------------------
    # component resolution
    # ------------------------------------------------------------------
    def _make_blocking(self) -> BlockBuilder:
        if self._blocking_override is not None:
            return self._blocking_override
        name = self.config.blocking
        if name not in _BLOCKING_FACTORIES:
            raise KeyError(
                f"unknown blocking scheme {name!r}; available: {sorted(_BLOCKING_FACTORIES)}"
            )
        return _BLOCKING_FACTORIES[name]()

    def _make_scheduler(self) -> ProgressiveScheduler:
        if self._scheduler_override is not None:
            return self._scheduler_override
        name = self.config.scheduler
        if name not in _SCHEDULER_FACTORIES:
            raise KeyError(
                f"unknown scheduler {name!r}; available: {sorted(_SCHEDULER_FACTORIES)}"
            )
        return _SCHEDULER_FACTORIES[name]()

    def _make_matcher(
        self, data: ERInput, context: Optional[PipelineContext] = None
    ) -> Matcher:
        if self._matcher_override is not None:
            return self._matcher_override
        vectorizer = None
        if self.config.use_tfidf:
            # the shared context fits from its interned postings -- no second
            # tokenisation pass; the fitted frequencies are identical integers
            if context is not None:
                vectorizer = context.fit_vectorizer()
            else:
                vectorizer = TfIdfVectorizer().fit(iter(data))
        return ProfileSimilarityMatcher(
            threshold=self.config.match_threshold, vectorizer=vectorizer
        )

    def _make_clustering(self):
        name = self.config.clustering
        if name not in _CLUSTERING_FACTORIES:
            raise KeyError(
                f"unknown clustering {name!r}; available: {sorted(_CLUSTERING_FACTORIES)}"
            )
        return _CLUSTERING_FACTORIES[name]()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        data: ERInput,
        ground_truth: Optional[GroundTruth] = None,
    ) -> WorkflowResult:
        """Execute the workflow over ``data``; evaluate against ``ground_truth`` if given.

        With ``config.num_workers > 1`` (and the shared context enabled,
        which the parallel engine's shared columns require), a
        :class:`~repro.mapreduce.parallel.ParallelEngine` is opened for the
        duration of the run and handed to the blocking, meta-blocking and
        matching engines; each fans its hot pass out to worker processes
        when it can reproduce the single-process result bit for bit, and
        runs single-process otherwise.  Results are identical either way --
        including under worker failure: the engine retries lost shards on a
        rebuilt pool and, per ``config.on_worker_failure``, degrades to
        serial recomputation (recording per-stage counts in the result's
        ``fault_events``) or raises
        :class:`~repro.mapreduce.supervisor.WorkerFailureError`.
        """
        config = self.config
        parallel = None
        if config.num_workers > 1 and config.shared_context:
            from repro.mapreduce.parallel import ParallelEngine

            parallel = ParallelEngine(
                num_workers=config.num_workers,
                worker_timeout=config.worker_timeout,
                max_shard_retries=config.max_shard_retries,
                on_worker_failure=config.on_worker_failure,
            )
        try:
            return self._run(data, ground_truth, parallel)
        finally:
            if parallel is not None:
                parallel.close()

    def run_incremental(
        self,
        data: ERInput,
        ground_truth: Optional[GroundTruth] = None,
        snapshot: Optional[str] = None,
        restore: Optional[str] = None,
    ) -> WorkflowResult:
        """Resolve ``data`` as an arrival stream instead of a batch pipeline.

        Every description is resolved on arrival by an
        :class:`~repro.iterative.incremental.IncrementalResolver` running on
        ``config.incremental_engine``; the amortised cost per arrival is
        bounded by its candidate cap instead of a full re-resolution.

        Parameters
        ----------
        data:
            The arrival stream (any iterable of descriptions; a
            clean--clean task streams left then right).
        ground_truth:
            Optional ground truth; the final clusters are evaluated against
            it like the batch pipeline's.
        snapshot:
            Optional directory path: after the stream is resolved, the full
            resolution state is persisted there (array engine only).
        restore:
            Optional directory path of a previous snapshot: the resolver
            starts from that state (memory-mapped, nothing re-interned) and
            the stream is resolved *on top of* it.

        The default matcher is a plain set-mode
        :class:`~repro.matching.matchers.ProfileSimilarityMatcher` at
        ``config.match_threshold`` -- not TF-IDF, whose global document
        frequencies are a moving target under online arrivals.  A matcher
        override is honoured; custom types fall back to the object oracle
        (the stage label reports the engine that ran).
        """
        from repro.iterative.incremental import IncrementalResolver

        config = self.config
        result = WorkflowResult()
        report = result.report

        if restore is not None:
            start = time.perf_counter()
            resolver = IncrementalResolver.restore(
                restore, matcher=self._matcher_override
            )
            report.add_stage(
                "incremental_restore",
                records=len(resolver),
                clusters=resolver.num_clusters,
                seconds=time.perf_counter() - start,
            )
        else:
            matcher = self._matcher_override or ProfileSimilarityMatcher(
                threshold=config.match_threshold
            )
            resolver = IncrementalResolver(
                matcher, engine=config.incremental_engine
            )

        if isinstance(data, CleanCleanTask):
            arriving = list(data.left) + list(data.right)
        else:
            arriving = list(data)
        start = time.perf_counter()
        arrivals = resolver.add_all(arriving)
        comparisons = sum(arrival.comparisons for arrival in arrivals)
        report.add_stage(
            f"incremental[{resolver.matcher.name}@{resolver.last_engine}]",
            arrivals=len(arrivals),
            matched_arrivals=sum(
                1 for arrival in arrivals if not arrival.is_new_entity
            ),
            clusters=resolver.num_clusters,
            comparisons=comparisons,
            seconds=time.perf_counter() - start,
        )
        result.comparisons_executed = comparisons
        # every merge an arrival declared, in declaration order (the
        # incremental analogue of the batch pipeline's declared matches)
        result.matches = [
            (arrival.identifier, matched)
            for arrival in arrivals
            for matched in arrival.matched_clusters
        ]
        result.clusters = resolver.non_trivial_clusters()

        if snapshot is not None:
            start = time.perf_counter()
            resolver.save(snapshot)
            stage = report.add_stage(
                "incremental_snapshot",
                records=len(resolver),
                seconds=time.perf_counter() - start,
            )
            stage.notes = str(snapshot)

        if ground_truth is not None:
            result.matching_quality = evaluate_matches(
                cluster_spanning_pairs(result.clusters), ground_truth
            )
        return result

    def _run(
        self,
        data: ERInput,
        ground_truth: Optional[GroundTruth],
        parallel,
    ) -> WorkflowResult:
        config = self.config
        result = WorkflowResult()
        report = result.report

        # shared columnar context: the collection is interned exactly once
        # and every phase derives its token view from the shared columns
        context = PipelineContext(data) if config.shared_context else None
        if parallel is not None and context is not None:
            start = time.perf_counter()
            if parallel.intern_context(context):
                report.add_stage(
                    "interning@parallel",
                    descriptions=context.num_descriptions,
                    tokens=context.vocabulary_size,
                    seconds=time.perf_counter() - start,
                )

        # ---------------- blocking ----------------
        start = time.perf_counter()
        builder = self._make_blocking()
        blocking_engine = BlockingEngine(
            builder, engine=config.blocking_engine, context=context, parallel=parallel
        )
        blocks = blocking_engine.build(data)
        raw_blocks = blocks
        report.add_stage(
            f"blocking[{builder.name}@{blocking_engine.last_engine}]",
            blocks=len(blocks),
            comparisons=blocks.total_comparisons(),
            seconds=time.perf_counter() - start,
        )

        if config.enable_purging:
            start = time.perf_counter()
            blocks = blocking_engine.clean(blocks, purging=BlockPurging())
            report.add_stage(
                f"block_purging@{blocking_engine.last_engine}",
                blocks=len(blocks),
                comparisons=blocks.total_comparisons(),
                seconds=time.perf_counter() - start,
            )
        if config.enable_filtering:
            start = time.perf_counter()
            blocks = blocking_engine.clean(
                blocks, filtering=BlockFiltering(ratio=config.filtering_ratio)
            )
            report.add_stage(
                f"block_filtering@{blocking_engine.last_engine}",
                blocks=len(blocks),
                comparisons=blocks.total_comparisons(),
                seconds=time.perf_counter() - start,
            )

        # ---------------- meta-blocking ----------------
        candidates: Union[BlockCollection, ComparisonColumns, List[Comparison]]
        if config.enable_metablocking:
            start = time.perf_counter()
            metablocking = MetaBlocking(
                config.weighting_scheme,
                config.pruning_scheme,
                engine=config.metablocking_engine,
            )
            candidates = metablocking.weighted_columns(
                blocks, context=context, parallel=parallel
            )
            report.add_stage(
                f"metablocking[{config.weighting_scheme}+{config.pruning_scheme}"
                f"@{metablocking.last_engine}]",
                graph_edges=metablocking.last_graph_edges,
                retained=metablocking.last_retained_edges,
                seconds=time.perf_counter() - start,
            )
        else:
            candidates = blocks

        if ground_truth is not None:
            if isinstance(candidates, BlockCollection):
                candidate_pairs = candidates.distinct_pairs()
            elif isinstance(candidates, ComparisonColumns):
                # columns are evaluated on the ordinal-coded fast path --
                # no per-pair tuple is ever materialised
                candidate_pairs = candidates
            else:
                # a lazy candidate source would be exhausted by evaluating it
                # here and then again by the scheduler: materialise it once
                if not isinstance(candidates, (list, tuple)):
                    candidates = list(candidates)
                candidate_pairs = {c.pair for c in candidates}
            result.blocking_quality = evaluate_comparisons(candidate_pairs, ground_truth, data)

        # ---------------- scheduling + matching ----------------
        start = time.perf_counter()
        scheduler = self._make_scheduler()
        matcher = self._make_matcher(data, context)
        engine = MatchingEngine(
            matcher, engine=config.matching_engine, context=context, parallel=parallel
        )
        scheduling = SchedulingEngine(scheduler, engine=config.scheduling_engine)
        progressive = run_progressive(
            scheduler=scheduler,
            matcher=matcher,
            data=data,
            candidates=candidates,
            budget=config.budget,
            ground_truth=ground_truth,
            keep_decisions=False,
            engine=engine,
            scheduling=scheduling,
        )
        result.comparisons_executed += progressive.comparisons_executed
        result.matches = list(progressive.declared_matches)
        result.curve = progressive.curve
        report.add_stage(
            f"matching[{scheduler.name}@{scheduling.last_engine or scheduling.engine}"
            f"+{engine.last_engine or engine.engine}]",
            comparisons=progressive.comparisons_executed,
            declared_matches=len(progressive.declared_matches),
            seconds=time.perf_counter() - start,
        )

        # ---------------- update / iterate ----------------
        if config.iterate_merges and result.matches:
            start = time.perf_counter()
            new_matches, extra_comparisons, iterations = self._iterate_merges(
                data,
                engine,
                result.matches,
                blocks=raw_blocks if self._merge_blocks_reusable(builder) else None,
                context=context,
            )
            result.matches.extend(new_matches)
            result.comparisons_executed += extra_comparisons
            result.iterations = iterations
            report.add_stage(
                "update_iterate",
                iterations=iterations,
                new_matches=len(new_matches),
                comparisons=extra_comparisons,
                seconds=time.perf_counter() - start,
            )

        # ---------------- clustering ----------------
        start = time.perf_counter()
        clustering = self._make_clustering()
        cluster_engine = ClusteringEngine(
            clustering, engine=config.clustering_engine, parallel=parallel
        )
        # the declared matches become positive decision columns directly; on
        # the array engine they are clustered as flat ordinals, and only a
        # custom algorithm (object fallback) materialises decision objects
        # through the columns' lazy bridge
        result.clusters = cluster_engine.cluster(
            DecisionColumns.from_match_pairs(result.matches)
        )
        report.add_stage(
            f"clustering[{clustering.name}@{cluster_engine.last_engine}]",
            clusters=len(result.clusters),
            seconds=time.perf_counter() - start,
        )

        if ground_truth is not None:
            # spanning pairs close to exactly the final clusters, so the
            # metrics equal evaluating matched_pairs() without materialising
            # the quadratic within-cluster pair set
            result.matching_quality = evaluate_matches(
                cluster_spanning_pairs(result.clusters), ground_truth
            )

        if parallel is not None and parallel.fault_stats:
            # worker failures were survived (retried and/or degraded):
            # surface the per-stage counts in the result and the report
            result.fault_events = {
                stage: dict(counts) for stage, counts in parallel.fault_stats.items()
            }
            for stage, counts in result.fault_events.items():
                report.add_stage(f"fault_recovery[{stage}]", **counts)

        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _merge_blocks_reusable(builder: BlockBuilder) -> bool:
        """Whether the blocking stage's raw blocks equal the update phase's.

        The update phase neighbours merged descriptions through plain
        default-parameter token blocking.  When the workflow's own blocking
        stage already ran exactly that scheme (the exact type with the
        default tokenisation -- subclasses such as prefix--infix--suffix add
        keys and must not be reused), its pre-cleaning output is the very
        collection the update phase would rebuild, so rebuilding is skipped.
        """
        if type(builder) is not TokenBlocking:
            return False
        # full-configuration equality: any future TokenBlocking parameter is
        # covered automatically, so a non-default builder can never slip
        # through and hand the update phase the wrong neighbourhoods
        return vars(builder) == vars(TokenBlocking())

    def _iterate_merges(
        self,
        data: ERInput,
        engine: MatchingEngine,
        matches: Sequence[Tuple[str, str]],
        blocks: Optional[BlockCollection] = None,
        context: Optional[PipelineContext] = None,
    ) -> Tuple[List[Tuple[str, str]], int, int]:
        """Merging-based update phase.

        Matched descriptions are merged; each merged description is compared
        against the (not yet matched) descriptions that share a token-blocking
        block with any of its sources, which may reveal matches missed by the
        pairwise phase.  Returns (new matches, extra comparisons, iterations).

        ``blocks`` is the blocking stage's raw (pre-cleaning) token-block
        collection when it is known to equal what this phase would rebuild
        (see :meth:`_merge_blocks_reusable`); otherwise the blocks are rebuilt
        here -- from the shared ``context``'s postings when one is supplied,
        so even the rebuild adds no tokenisation pass.

        Comparisons run through the matching ``engine``: the candidates of one
        merged description are scored as a single batch against the engine's
        profile store (the unmerged candidates stay cached across the whole
        phase), and the transient merged profile is invalidated as soon as its
        batch is done, so a merge only ever touches its own store entry.
        """
        new_matches: List[Tuple[str, str]] = []
        extra_comparisons = 0
        iterations = 0

        # current cluster representative per identifier
        clusters = UnionFind()
        for first, second in matches:
            clusters.union(first, second)

        if blocks is None:
            blocks = BlockingEngine(
                TokenBlocking(), engine=self.config.blocking_engine, context=context
            ).build(data)
        neighbour_index = blocks.entity_index()
        block_members = [list(block.members) for block in blocks]

        pending = list(matches)
        for iteration in range(self.config.max_iterations):
            if not pending:
                break
            iterations = iteration + 1
            found_this_round: List[Tuple[str, str]] = []
            for first, second in pending:
                description_a = data.get(first)
                description_b = data.get(second)
                if description_a is None or description_b is None:
                    continue
                merged = merge_descriptions(description_a, description_b)
                # candidate partners: co-blocked with either source, not already clustered together
                candidate_ids: Set[str] = set()
                for source in (first, second):
                    for block_index in neighbour_index.get(source, ()):
                        candidate_ids.update(block_members[block_index])
                candidate_ids.discard(first)
                candidate_ids.discard(second)
                candidates = [
                    (candidate_id, candidate)
                    for candidate_id in sorted(candidate_ids)
                    if (candidate := data.get(candidate_id)) is not None
                ]
                if engine.batch_applicable:
                    # stateless scoring: the whole candidate neighbourhood is
                    # scored in one batch, and the cluster check runs at
                    # decision time (in the same sorted order as the per-pair
                    # loop) because a union made for an earlier candidate can
                    # absorb a later one
                    decisions = engine.decide_pairs([(merged, c) for _, c in candidates])
                    engine.invalidate(merged.identifier)
                else:
                    # a fallback matcher may be stateful (e.g. the noisy
                    # oracle's RNG): only the pairs that survive the cluster
                    # check may reach it, in the historical call order
                    decisions = [None] * len(candidates)
                for index, (candidate_id, candidate) in enumerate(candidates):
                    if clusters.connected(candidate_id, first):
                        continue
                    extra_comparisons += 1
                    decision = decisions[index]
                    if decision is None:
                        decision = engine.decide(merged, candidate)
                    if decision.is_match:
                        clusters.union(first, candidate_id)
                        pair = (first, candidate_id)
                        found_this_round.append(pair)
            new_matches.extend(found_this_round)
            pending = found_this_round
        return new_matches, extra_comparisons, iterations


def default_workflow(budget: Optional[int] = None, **overrides) -> ERWorkflow:
    """A ready-to-use workflow for schema-free Web data.

    Token blocking with purging and filtering, CBS+WNP meta-blocking,
    weight-ordered scheduling and a TF-IDF profile matcher.  Keyword
    overrides are applied to the underlying :class:`WorkflowConfig`.
    """
    config = WorkflowConfig(budget=budget)
    for key, value in overrides.items():
        if not hasattr(config, key):
            raise AttributeError(f"WorkflowConfig has no field {key!r}")
        setattr(config, key, value)
    return ERWorkflow(config)
