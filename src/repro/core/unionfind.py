"""Shared union--find (disjoint-set) structures.

Half the library needs a union--find: clustering turns match decisions into
equivalence clusters, evaluation closes declared matches transitively,
iterative blocking and collective ER propagate merges, attribute clustering
groups similar attribute names.  Historically each module hand-rolled its own
string-keyed ``parent`` dict; this module is the single definition both of
that keyed structure (:class:`UnionFind`) and of the array-backed ordinal
variant (:class:`IntUnionFind`) the columnar engines run on.

Both implementations use path halving and the same union rule -- *the root of
the first argument wins* -- so a keyed and an ordinal union--find fed the same
union sequence end up with identical set representatives.  :class:`UnionFind`
additionally preserves *first-touch insertion order* (keys are registered the
first time :meth:`~UnionFind.find` or :meth:`~UnionFind.union` sees them),
which is what makes the enumeration order of :meth:`~UnionFind.groups`
deterministic and lets the array engines replicate it exactly.
"""

from __future__ import annotations

from array import array
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional

__all__ = ["UnionFind", "IntUnionFind"]


class UnionFind:
    """Disjoint sets over hashable keys (path halving, first-root-wins union).

    Keys are registered lazily in first-touch order; iterating the structure
    (or calling :meth:`groups`) enumerates them in exactly that order, which
    makes every derived cluster list deterministic.
    """

    __slots__ = ("parent",)

    def __init__(self, keys: Optional[Iterable[Hashable]] = None) -> None:
        self.parent: Dict[Hashable, Hashable] = {}
        if keys is not None:
            for key in keys:
                self.parent.setdefault(key, key)

    def __len__(self) -> int:
        return len(self.parent)

    def __contains__(self, key: Hashable) -> bool:
        return key in self.parent

    def __iter__(self) -> Iterator[Hashable]:
        """Registered keys, in first-touch order."""
        return iter(self.parent)

    def find(self, key: Hashable) -> Hashable:
        """Representative of ``key``'s set, registering ``key`` if unseen."""
        parent = self.parent
        root = parent.setdefault(key, key)
        while parent[root] != root:
            parent[root] = parent[parent[root]]
            root = parent[root]
        return root

    def union(self, winner: Hashable, loser: Hashable) -> bool:
        """Join the sets of the two keys; the root of ``winner``'s set wins.

        Returns whether the two keys were in different sets (a merge
        happened).  ``find`` runs on ``winner`` first, so first-touch order
        registers ``winner`` before ``loser``.
        """
        root_a = self.find(winner)
        root_b = self.find(loser)
        if root_a == root_b:
            return False
        self.parent[root_b] = root_a
        return True

    def connected(self, first: Hashable, second: Hashable) -> bool:
        """Whether the two keys are currently in the same set."""
        return self.find(first) == self.find(second)

    def groups(self) -> "Dict[Hashable, List[Hashable]]":
        """Mapping root -> members; roots and members in first-touch order."""
        groups: Dict[Hashable, List[Hashable]] = {}
        for key in self.parent:
            groups.setdefault(self.find(key), []).append(key)
        return groups

    def clusters(self, min_size: int = 1) -> List[FrozenSet[Hashable]]:
        """The disjoint sets as frozensets, in first-touch order of their roots."""
        return [
            frozenset(members)
            for members in self.groups().values()
            if len(members) >= min_size
        ]

    def __repr__(self) -> str:
        return f"UnionFind({len(self.parent)} keys)"


class IntUnionFind:
    """Disjoint sets over the ordinals ``0..size-1`` as one flat parent array.

    The columnar counterpart of :class:`UnionFind`: same path halving, same
    first-root-wins union, but over ``array('q')`` ordinals -- no hashing, no
    string comparisons.  :meth:`grow` extends the universe on the fly, which
    streaming consumers (interners that discover ordinals as they go) use.
    """

    __slots__ = ("parent",)

    def __init__(self, size: int = 0) -> None:
        self.parent = array("q", range(size))

    def __len__(self) -> int:
        return len(self.parent)

    def grow(self, size: int) -> None:
        """Extend the universe to ``size`` ordinals (new ones are singletons)."""
        parent = self.parent
        if size > len(parent):
            parent.extend(range(len(parent), size))

    def find(self, ordinal: int) -> int:
        parent = self.parent
        while parent[ordinal] != ordinal:
            parent[ordinal] = parent[parent[ordinal]]
            ordinal = parent[ordinal]
        return ordinal

    def union(self, winner: int, loser: int) -> bool:
        """Join the two sets; the root of ``winner``'s set wins."""
        root_a = self.find(winner)
        root_b = self.find(loser)
        if root_a == root_b:
            return False
        self.parent[root_b] = root_a
        return True

    def connected(self, first: int, second: int) -> bool:
        return self.find(first) == self.find(second)

    def __repr__(self) -> str:
        return f"IntUnionFind({len(self.parent)} ordinals)"
