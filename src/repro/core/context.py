"""Shared columnar pipeline context: one tokenisation pass per workflow run.

Before this module, every phase of :class:`~repro.core.workflow.ERWorkflow`
built its own token universe: the blocking engine interned a
:class:`~repro.text.profile_store.ProfileStore`, the matching engine interned
another, the TF-IDF vectoriser ran a third full tokenisation pass over the
collection to fit document frequencies, and the update/iterate phase
re-blocked the whole collection from scratch -- so every entity description
was tokenised three to four times per run.

:class:`PipelineContext` interns the collection **once**:

* every description is assigned a dense **ordinal** (in the collection's
  iteration order -- left before right for clean--clean tasks, exactly the
  order of ``BlockBuilder._iter_with_side``);
* every token is interned into one shared **vocabulary** of dense integer
  ids (the very representation :class:`~repro.text.profile_store.ProfileStore`
  uses);
* for every description, the context stores one **column per attribute**:
  the sorted distinct token ids of that attribute's values plus the aligned
  occurrence counts -- and one **ordered token-id stream** over all values
  (duplicates kept, in value order), from which order-sensitive consumers
  such as sorted-neighbourhood keys are derived.

All downstream token views are derived from these columns without touching
the raw strings again:

* **blocking keys** -- the merged distinct ids filtered by the builder's
  stop words and minimum token length (a per-vocabulary
  :class:`TokenFilter` mask, computed once per configuration);
* **attribute-clustering profiles** -- the per-attribute id sets, filtered
  the same way;
* **TF-IDF document frequencies** -- :meth:`fit_vectorizer` counts each
  token's document frequency over the interned columns and returns a
  regularly-fitted :class:`~repro.text.vectorizer.TfIdfVectorizer` whose
  ``idf`` values are bit-identical to a ``fit(iter(data))`` pass (the
  frequencies are exact integers either way);
* **matching profiles** -- a :class:`~repro.text.profile_store.ProfileStore`
  constructed with ``context=...`` builds its per-description columns from
  the interned counts instead of re-tokenising (see
  :meth:`ProfileStore._build`).

The context is deliberately import-light (datamodel + text only), so the
engine modules can accept one without importing :mod:`repro.core`; engines
keep their private per-engine stores as the fallback whenever a context is
not supplied or does not own the input data.

The interning pass is lazy: a context that is created but never asked for
token data costs nothing beyond the constructor.
"""

from __future__ import annotations

from array import array
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datamodel.description import EntityDescription
from repro.text.tokenize import tokenize
from repro.text.vectorizer import TfIdfVectorizer

ERInput = object  # EntityCollection | CleanCleanTask (kept loose to stay import-light)


class TokenFilter:
    """A (stop words, minimum length) admission mask over a context vocabulary.

    The mask is evaluated once per token *id* and cached in a flat
    ``bytearray``, so filtering a description's column touches no strings.
    The vocabulary may keep growing after the filter is created (e.g. the
    prefix--infix--suffix builder interns URI tokens on the fly); the mask
    extends itself lazily.
    """

    __slots__ = ("_context", "stop_words", "min_length", "_flags")

    def __init__(
        self, context: "PipelineContext", stop_words: FrozenSet[str], min_length: int
    ) -> None:
        self._context = context
        self.stop_words = stop_words
        self.min_length = min_length
        self._flags = bytearray()

    @property
    def trivial(self) -> bool:
        """Whether the filter admits every token (no mask lookups needed)."""
        return self.min_length <= 1 and not self.stop_words

    def _extend(self, size: int) -> None:
        flags = self._flags
        tokens = self._context._tokens
        stops = self.stop_words
        min_length = self.min_length
        for token_id in range(len(flags), size):
            token = tokens[token_id]
            flags.append(len(token) >= min_length and token not in stops)

    def allows(self, token_id: int) -> bool:
        if len(self._flags) <= token_id:
            self._extend(token_id + 1)
        return bool(self._flags[token_id])

    def select(self, token_ids: Iterable[int]) -> array:
        """The admitted subset of ``token_ids``, order preserved."""
        if self.trivial:
            return token_ids if isinstance(token_ids, array) else array("q", token_ids)
        flags = self._flags
        vocabulary_size = self._context.vocabulary_size
        if len(flags) < vocabulary_size:
            self._extend(vocabulary_size)
        return array("q", (t for t in token_ids if flags[t]))

    def mask(self, size: int) -> bytes:
        """The admission flags of token ids ``0..size-1`` as immutable bytes.

        The multi-process engine ships this snapshot to worker processes so
        they can apply the filter without the vocabulary strings.
        """
        if len(self._flags) < size:
            self._extend(size)
        return bytes(self._flags[:size])


class PipelineContext:
    """One collection, interned once, shared by every pipeline phase.

    Parameters
    ----------
    data:
        The :class:`~repro.datamodel.collection.EntityCollection` or
        :class:`~repro.datamodel.collection.CleanCleanTask` being resolved.
        The context holds a reference and verifies ownership via identity
        (:meth:`owns`), so it can never silently serve columns for a
        different collection.
    """

    def __init__(self, data: ERInput) -> None:
        self.data = data
        self._interned = False
        self._ids: List[str] = []
        self._ordinal: Dict[str, int] = {}
        self._descriptions: List[EntityDescription] = []
        self.left_count = -1
        # shared vocabulary (token string <-> dense id)
        self._token_ids: Dict[str, int] = {}
        self._tokens: List[str] = []
        # per description: attribute names + aligned (sorted ids, counts) columns
        self._attr_names: List[Tuple[str, ...]] = []
        self._attr_ids: List[Tuple[array, ...]] = []
        self._attr_counts: List[Tuple[array, ...]] = []
        # per description: merged all-attribute (sorted ids, counts), built lazily
        self._merged: List[Optional[Tuple[array, array]]] = []
        # per description: every token id in value order (duplicates kept)
        self._streams: List[array] = []
        self._filters: Dict[Tuple[FrozenSet[str], int], TokenFilter] = {}
        self._fitted: Dict[int, TfIdfVectorizer] = {}

    # ------------------------------------------------------------------
    # ownership / structure
    # ------------------------------------------------------------------
    def owns(self, data: object) -> bool:
        """Whether this context was built for exactly ``data`` (identity)."""
        return data is self.data

    def _collect_descriptions(self) -> List[EntityDescription]:
        """The descriptions in interning order (left before right), side-effect:
        records ``left_count`` for clean--clean tasks.  Does **not** mark the
        context interned -- both the serial pass and the sharded parallel
        build start from this exact list."""
        data = self.data
        if isinstance(data, CleanCleanTask):
            descriptions = list(data.left) + list(data.right)
            self.left_count = len(data.left)
        else:
            descriptions = list(data)
        return descriptions

    def _intern_all(self) -> None:
        if self._interned:
            return
        self._interned = True
        descriptions = self._collect_descriptions()
        token_ids = self._token_ids
        tokens = self._tokens
        for description in descriptions:
            self._ordinal[description.identifier] = len(self._ids)
            self._ids.append(description.identifier)
            self._descriptions.append(description)
            names: List[str] = []
            id_columns: List[array] = []
            count_columns: List[array] = []
            stream = array("q")
            for attribute in description.attribute_names:
                counts: Dict[int, int] = {}
                for value in description.values(attribute):
                    for token in tokenize(value):
                        token_id = token_ids.get(token)
                        if token_id is None:
                            token_id = len(tokens)
                            token_ids[token] = token_id
                            tokens.append(token)
                        counts[token_id] = counts.get(token_id, 0) + 1
                        stream.append(token_id)
                names.append(attribute)
                items = sorted(counts.items())
                id_columns.append(array("q", (t for t, _ in items)))
                count_columns.append(array("q", (c for _, c in items)))
            self._attr_names.append(tuple(names))
            self._attr_ids.append(tuple(id_columns))
            self._attr_counts.append(tuple(count_columns))
            self._merged.append(None)
            self._streams.append(stream)

    def _intern_shards(
        self,
        descriptions: List[EntityDescription],
        shards: Iterable[Tuple[List[str], list]],
    ) -> None:
        """Merge worker-built interning shards into this (empty) context.

        Each shard covers a contiguous slice of ``descriptions`` (shards in
        slice order) and carries a *local* vocabulary -- token strings in the
        shard's first-occurrence order -- plus, per description, the
        attribute names and the per-attribute local-id/count columns and the
        local-id stream, exactly as :meth:`_intern_all` would have built them
        with a fresh vocabulary.

        The merge reassigns global ids by walking the shard vocabularies in
        shard order and get-or-assigning each token: a token's global id is
        therefore assigned at its global first occurrence, which reproduces
        the serial vocabulary order byte for byte.  Per-attribute columns are
        remapped and re-sorted by global id (the serial columns are sorted by
        id), and streams are remapped elementwise (order preserved).
        """
        if self._interned:
            raise RuntimeError("context is already interned")
        self._interned = True
        token_ids = self._token_ids
        tokens = self._tokens
        position = 0
        for local_tokens, entries in shards:
            remap = array("q", bytes(8 * len(local_tokens)))
            for local_id, token in enumerate(local_tokens):
                token_id = token_ids.get(token)
                if token_id is None:
                    token_id = len(tokens)
                    token_ids[token] = token_id
                    tokens.append(token)
                remap[local_id] = token_id
            for names, id_columns, count_columns, stream in entries:
                description = descriptions[position]
                position += 1
                self._ordinal[description.identifier] = len(self._ids)
                self._ids.append(description.identifier)
                self._descriptions.append(description)
                global_ids: List[array] = []
                global_counts: List[array] = []
                for ids_local, counts_local in zip(id_columns, count_columns):
                    items = sorted(
                        zip((remap[t] for t in ids_local), counts_local)
                    )
                    global_ids.append(array("q", (t for t, _ in items)))
                    global_counts.append(array("q", (c for _, c in items)))
                self._attr_names.append(names)
                self._attr_ids.append(tuple(global_ids))
                self._attr_counts.append(tuple(global_counts))
                self._merged.append(None)
                self._streams.append(array("q", (remap[t] for t in stream)))
        if position != len(descriptions):
            raise RuntimeError(
                f"interning shards cover {position} descriptions, "
                f"expected {len(descriptions)}"
            )

    @property
    def num_descriptions(self) -> int:
        self._intern_all()
        return len(self._ids)

    @property
    def ids(self) -> List[str]:
        """Identifier of every description, indexed by ordinal."""
        self._intern_all()
        return self._ids

    @property
    def descriptions(self) -> List[EntityDescription]:
        """The description objects, indexed by ordinal."""
        self._intern_all()
        return self._descriptions

    def ordinal(self, identifier: str) -> Optional[int]:
        self._intern_all()
        return self._ordinal.get(identifier)

    def description(self, ordinal: int) -> EntityDescription:
        return self.descriptions[ordinal]

    # ------------------------------------------------------------------
    # vocabulary
    # ------------------------------------------------------------------
    def intern(self, token: str) -> int:
        """Dense integer id of ``token``, assigning one if new."""
        self._intern_all()
        token_id = self._token_ids.get(token)
        if token_id is None:
            token_id = len(self._tokens)
            self._token_ids[token] = token_id
            self._tokens.append(token)
        return token_id

    def token(self, token_id: int) -> str:
        """Inverse of :meth:`intern`."""
        return self._tokens[token_id]

    @property
    def vocabulary_size(self) -> int:
        self._intern_all()
        return len(self._tokens)

    def token_filter(
        self, stop_words: Optional[Iterable[str]], min_length: int
    ) -> TokenFilter:
        """The cached :class:`TokenFilter` for a tokenisation configuration."""
        self._intern_all()
        stops = frozenset(stop_words) if stop_words else frozenset()
        key = (stops, min_length)
        cached = self._filters.get(key)
        if cached is None:
            cached = self._filters[key] = TokenFilter(self, stops, min_length)
        return cached

    # ------------------------------------------------------------------
    # per-description columns
    # ------------------------------------------------------------------
    def attribute_entries(self, ordinal: int) -> Iterable[Tuple[str, array, array]]:
        """``(attribute, sorted distinct ids, aligned counts)`` per attribute.

        Attributes whose values hold no token still appear (with empty
        columns), exactly as the attribute-clustering oracle records an
        empty profile for them.
        """
        self._intern_all()
        return zip(
            self._attr_names[ordinal],
            self._attr_ids[ordinal],
            self._attr_counts[ordinal],
        )

    def token_stream(self, ordinal: int) -> array:
        """Every token id of the description, in value order, duplicates kept.

        The stream records the tokens in exactly the order ``tokenize``
        yields them over ``description.values()`` (attributes in insertion
        order, values in insertion order).  Because ``normalize`` splits on
        the same word pattern that separates values in
        ``EntityDescription.text``, joining the stream's token strings with
        a single space reproduces ``normalize(description.text())`` --
        the default sorted-neighbourhood key -- without touching the raw
        strings again.
        """
        self._intern_all()
        return self._streams[ordinal]

    def token_counts(self, ordinal: int) -> Tuple[array, array]:
        """All-attribute ``(sorted distinct ids, aligned occurrence counts)``.

        The merge over the per-attribute columns is computed once per
        description and cached; the counts are exactly the ones
        ``TfIdfVectorizer.transform`` derives from the raw values.
        """
        self._intern_all()
        merged = self._merged[ordinal]
        if merged is None:
            id_columns = self._attr_ids[ordinal]
            if len(id_columns) == 1:
                merged = (id_columns[0], self._attr_counts[ordinal][0])
            else:
                counts: Dict[int, int] = {}
                for ids, column in zip(id_columns, self._attr_counts[ordinal]):
                    for token_id, count in zip(ids, column):
                        counts[token_id] = counts.get(token_id, 0) + count
                items = sorted(counts.items())
                merged = (
                    array("q", (t for t, _ in items)),
                    array("q", (c for _, c in items)),
                )
            self._merged[ordinal] = merged
        return merged

    # ------------------------------------------------------------------
    # TF-IDF fitting from the interned postings
    # ------------------------------------------------------------------
    def fit_vectorizer(self, min_token_length: int = 1) -> TfIdfVectorizer:
        """A fitted :class:`TfIdfVectorizer`, derived from the interned columns.

        Document frequencies are counted over the per-description distinct
        ids instead of a second tokenisation pass.  The result is
        indistinguishable from ``TfIdfVectorizer(min_token_length).fit(iter(data))``:
        the frequency of every token and the document count are the same
        exact integers, so every derived ``idf`` is the same float.
        """
        cached = self._fitted.get(min_token_length)
        if cached is not None:
            return cached
        self._intern_all()
        frequencies = [0] * len(self._tokens)
        token_filter = self.token_filter(None, min_token_length)
        trivial = token_filter.trivial
        for ordinal in range(len(self._ids)):
            ids, _counts = self.token_counts(ordinal)
            for token_id in ids:
                if trivial or token_filter.allows(token_id):
                    frequencies[token_id] += 1
        document_frequency = {
            self._tokens[token_id]: frequency
            for token_id, frequency in enumerate(frequencies)
            if frequency
        }
        vectorizer = TfIdfVectorizer.from_document_frequencies(
            document_frequency, len(self._ids), min_token_length=min_token_length
        )
        self._fitted[min_token_length] = vectorizer
        return vectorizer
