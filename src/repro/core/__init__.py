"""The unified ER framework of the tutorial's Figure 1.

The framework composes the library's building blocks into the workflow the
tutorial presents: **Blocking** (with optional block cleaning and
meta-blocking), **Scheduling** (progressive ordering of the candidate
comparisons), **Matching**, and an optional **Update/Iterate** phase that
propagates match results (merging-based iteration) before the final
clustering.  :class:`~repro.core.workflow.ERWorkflow` is the configurable
pipeline; :func:`~repro.core.workflow.default_workflow` builds a sensible
default for schema-free Web data.
"""

from repro.core.config import WorkflowConfig
from repro.core.context import PipelineContext
from repro.core.results import WorkflowResult
from repro.core.unionfind import IntUnionFind, UnionFind
from repro.core.workflow import ERWorkflow, default_workflow

__all__ = [
    "ERWorkflow",
    "IntUnionFind",
    "PipelineContext",
    "UnionFind",
    "WorkflowConfig",
    "WorkflowResult",
    "default_workflow",
]
