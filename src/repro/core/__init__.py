"""The unified ER framework of the tutorial's Figure 1.

The framework composes the library's building blocks into the workflow the
tutorial presents: **Blocking** (with optional block cleaning and
meta-blocking), **Scheduling** (progressive ordering of the candidate
comparisons), **Matching**, and an optional **Update/Iterate** phase that
propagates match results (merging-based iteration) before the final
clustering.  :class:`~repro.core.workflow.ERWorkflow` is the configurable
pipeline; :func:`~repro.core.workflow.default_workflow` builds a sensible
default for schema-free Web data.

Beyond the batch pipeline, the package holds the shared columnar substrate:
:class:`~repro.core.context.PipelineContext` (one interning pass per run),
its streaming twin :class:`~repro.core.growable.GrowableContext` (append-only
columns for incremental ER), and :mod:`repro.core.snapshot` (versioned
on-disk persistence that memory-maps those columns back).
"""

from repro.core.config import WorkflowConfig
from repro.core.context import PipelineContext
from repro.core.growable import GrowableColumn, GrowableContext
from repro.core.results import WorkflowResult
from repro.core.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    SnapshotReader,
    SnapshotWriter,
)
from repro.core.unionfind import IntUnionFind, UnionFind
from repro.core.workflow import ERWorkflow, default_workflow

__all__ = [
    "ERWorkflow",
    "GrowableColumn",
    "GrowableContext",
    "IntUnionFind",
    "PipelineContext",
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "SnapshotReader",
    "SnapshotWriter",
    "UnionFind",
    "WorkflowConfig",
    "WorkflowResult",
    "default_workflow",
]
