"""Versioned on-disk snapshots of flat columnar state.

The incremental-ER index (ROADMAP item 2) is an always-on service component:
its resolution state -- a growable vocabulary, token-id columns, union--find
parents, cluster postings -- must survive a restart without re-interning the
whole arrival history.  This module is the persistence primitive that makes
that possible: a snapshot is a **directory of ``.npy`` files plus a
``manifest.json``**, written with a pure-Python ``.npy`` v1.0 writer so the
bytes on disk are identical whether or not NumPy is installed.

Design rules:

* **One format, two readers.**  Columns are standard one-dimensional
  little-endian ``.npy`` arrays (``<i8``).  With NumPy installed they are
  opened with ``np.load(mmap_mode="r")``; without it, with ``mmap`` +
  ``memoryview.cast('q')``.  Either way a loaded column is a zero-copy view
  over the file, and both readers see bit-identical values.
* **Strings as blob + offsets.**  A string column is a raw UTF-8
  concatenation (``<name>.blob``) plus an ``int64`` offset column of length
  ``n + 1`` -- the same CSR shape as every other column.
* **Versioned manifest.**  ``manifest.json`` records
  :data:`SNAPSHOT_FORMAT_VERSION`, the column/string inventory with lengths
  (validated on load) and a free-form ``meta`` mapping for the writer's own
  configuration.  A reader refuses manifests whose major format version it
  does not know -- snapshots are a service interface, failing loudly beats
  misreading state.

The module is deliberately generic: it knows nothing about entity resolution,
only about named int64 columns, named string columns and a metadata dict.
:class:`~repro.core.growable.GrowableContext` and
:class:`~repro.iterative.index.IncrementalIndex` layer their schemas on top.
"""

from __future__ import annotations

import ast
import json
import mmap
import struct
from array import array
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

try:  # optional accelerator -- the format does not depend on it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotReader",
    "SnapshotWriter",
    "read_npy",
    "write_npy",
]

#: Version of the on-disk layout.  Bump on any incompatible change to the
#: column schema or encoding; readers require an exact match.
SNAPSHOT_FORMAT_VERSION = 1

_MAGIC = b"\x93NUMPY"
_INT64 = "<i8"
_MANIFEST = "manifest.json"


# ----------------------------------------------------------------------
# .npy primitives (pure Python, NumPy-compatible)
# ----------------------------------------------------------------------
def _npy_header(count: int, descr: str) -> bytes:
    """A NumPy-format 1.0 header for a 1-D array, padded numpy-style.

    The header dict uses the exact literal layout ``np.lib.format`` emits and
    is padded with spaces so the data section starts on a 64-byte boundary --
    which is what makes the memory-mapped ``memoryview.cast('q')`` aligned.
    """
    header = "{'descr': '%s', 'fortran_order': False, 'shape': (%d,), }" % (
        descr,
        count,
    )
    text = header.encode("latin1")
    unpadded = len(_MAGIC) + 2 + 2 + len(text) + 1  # magic, version, length, newline
    text += b" " * ((-unpadded) % 64) + b"\n"
    return _MAGIC + b"\x01\x00" + struct.pack("<H", len(text)) + text


def write_npy(path: Union[str, Path], chunks: Iterable[Any], count: int) -> None:
    """Write int64 buffers as one 1-D little-endian ``.npy`` file.

    ``chunks`` is any iterable of buffer-protocol objects (``array('q')``,
    ``memoryview`` views, NumPy arrays) whose element counts sum to
    ``count``; they are streamed straight to the file, so growable columns
    persist without a flat copy.
    """
    path = Path(path)
    written = 0
    with open(path, "wb") as handle:
        handle.write(_npy_header(count, _INT64))
        for chunk in chunks:
            view = memoryview(chunk)
            if view.format != "q" and view.format != "<q":
                view = view.cast("B").cast("q")
            written += len(view)
            handle.write(view)
    if written != count:
        raise ValueError(f"{path.name}: wrote {written} values, declared {count}")


def _parse_npy_header(buffer: Any) -> "tuple[str, int, int]":
    """``(descr, count, data offset)`` of a 1-D ``.npy`` buffer."""
    if bytes(buffer[:6]) != _MAGIC:
        raise ValueError("not a .npy file (bad magic)")
    major = buffer[6]
    if major == 1:
        (header_len,) = struct.unpack_from("<H", buffer, 8)
        start = 10
    elif major == 2:
        (header_len,) = struct.unpack_from("<I", buffer, 8)
        start = 12
    else:
        raise ValueError(f"unsupported .npy version {major}")
    info = ast.literal_eval(bytes(buffer[start : start + header_len]).decode("latin1"))
    shape = info["shape"]
    if info.get("fortran_order") or len(shape) != 1:
        raise ValueError(f"expected a C-ordered 1-D array, got {info!r}")
    return info["descr"], shape[0], start + header_len


def read_npy(path: Union[str, Path], use_numpy: Optional[bool] = None) -> Sequence[int]:
    """Memory-map a 1-D int64 ``.npy`` file back as a zero-copy view.

    Returns an ``np.memmap``-backed array when NumPy is importable (unless
    ``use_numpy=False``), otherwise a ``memoryview`` cast to ``'q'`` over an
    ``mmap``.  Both support ``len``, indexing, slicing and iteration; the
    ``memoryview`` keeps its ``mmap`` alive through the buffer protocol.
    """
    path = Path(path)
    numpy_wanted = (_np is not None) if use_numpy is None else bool(use_numpy)
    if numpy_wanted:
        if _np is None:
            raise ValueError("use_numpy=True but numpy is not importable")
        loaded = _np.load(str(path), mmap_mode="r")
        if loaded.ndim != 1 or loaded.dtype != _np.int64:
            raise ValueError(f"{path.name}: expected a 1-D int64 column")
        return loaded
    with open(path, "rb") as handle:
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    descr, count, offset = _parse_npy_header(mapped)
    if descr != _INT64:
        raise ValueError(f"{path.name}: expected {_INT64}, got {descr!r}")
    return memoryview(mapped)[offset : offset + count * 8].cast("q")


# ----------------------------------------------------------------------
# snapshot directories
# ----------------------------------------------------------------------
def _chunks_of(values: Any) -> "tuple[List[Any], int]":
    """Buffer chunks + total element count of any supported column source."""
    chunks = getattr(values, "chunks", None)
    if callable(chunks):  # GrowableColumn-style
        return list(chunks()), len(values)
    if isinstance(values, array) and values.typecode == "q":
        return [values], len(values)
    if _np is not None and isinstance(values, _np.ndarray):
        return [_np.ascontiguousarray(values, dtype=_np.int64)], len(values)
    flat = array("q", values)
    return [flat], len(flat)


class SnapshotWriter:
    """Writes named columns, string tables and metadata into a directory."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self._columns: Dict[str, int] = {}
        self._strings: Dict[str, int] = {}
        self._meta: Dict[str, Any] = {}

    def column(self, name: str, values: Any) -> None:
        """Persist an int64 column under ``name``."""
        if name in self._columns or name in self._strings:
            raise ValueError(f"duplicate snapshot column {name!r}")
        chunks, count = _chunks_of(values)
        write_npy(self.path / f"{name}.npy", chunks, count)
        self._columns[name] = count

    def strings(self, name: str, values: Sequence[str]) -> None:
        """Persist a string column as a UTF-8 blob plus int64 offsets."""
        if name in self._columns or name in self._strings:
            raise ValueError(f"duplicate snapshot column {name!r}")
        offsets = array("q", [0])
        pieces: List[bytes] = []
        total = 0
        for value in values:
            encoded = value.encode("utf-8")
            pieces.append(encoded)
            total += len(encoded)
            offsets.append(total)
        (self.path / f"{name}.blob").write_bytes(b"".join(pieces))
        write_npy(self.path / f"{name}.off.npy", [offsets], len(offsets))
        self._strings[name] = len(values)

    def meta(self, **entries: Any) -> None:
        """Merge JSON-serialisable entries into the manifest metadata."""
        self._meta.update(entries)

    def close(self) -> None:
        """Write ``manifest.json``; the snapshot is incomplete without it."""
        manifest = {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "columns": self._columns,
            "strings": self._strings,
            "meta": self._meta,
        }
        (self.path / _MANIFEST).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )


class SnapshotReader:
    """Opens a snapshot directory, validating version and inventory."""

    def __init__(self, path: Union[str, Path], use_numpy: Optional[bool] = None) -> None:
        self.path = Path(path)
        self._use_numpy = use_numpy
        manifest_path = self.path / _MANIFEST
        if not manifest_path.is_file():
            raise FileNotFoundError(f"no snapshot manifest at {manifest_path}")
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        version = manifest.get("format_version")
        if version != SNAPSHOT_FORMAT_VERSION:
            raise ValueError(
                f"snapshot format version {version!r} is not supported "
                f"(this build reads version {SNAPSHOT_FORMAT_VERSION})"
            )
        self._columns: Dict[str, int] = manifest["columns"]
        self._strings: Dict[str, int] = manifest["strings"]
        self.meta: Dict[str, Any] = manifest.get("meta", {})

    def column(self, name: str) -> Sequence[int]:
        """Memory-mapped view of the int64 column ``name``."""
        if name not in self._columns:
            raise KeyError(f"snapshot has no column {name!r}")
        view = read_npy(self.path / f"{name}.npy", use_numpy=self._use_numpy)
        if len(view) != self._columns[name]:
            raise ValueError(
                f"column {name!r}: manifest declares {self._columns[name]} "
                f"values, file holds {len(view)}"
            )
        return view

    def strings(self, name: str) -> List[str]:
        """The string column ``name``, decoded eagerly."""
        if name not in self._strings:
            raise KeyError(f"snapshot has no string column {name!r}")
        blob = (self.path / f"{name}.blob").read_bytes()
        offsets = read_npy(self.path / f"{name}.off.npy", use_numpy=self._use_numpy)
        if len(offsets) != self._strings[name] + 1:
            raise ValueError(f"string column {name!r}: offset table length mismatch")
        return [
            blob[offsets[index] : offsets[index + 1]].decode("utf-8")
            for index in range(self._strings[name])
        ]
