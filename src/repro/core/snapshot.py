"""Versioned on-disk snapshots of flat columnar state.

The incremental-ER index (ROADMAP item 2) is an always-on service component:
its resolution state -- a growable vocabulary, token-id columns, union--find
parents, cluster postings -- must survive a restart without re-interning the
whole arrival history.  This module is the persistence primitive that makes
that possible: a snapshot is a **directory of ``.npy`` files plus a
``manifest.json``**, written with a pure-Python ``.npy`` v1.0 writer so the
bytes on disk are identical whether or not NumPy is installed.

Design rules:

* **One format, two readers.**  Columns are standard one-dimensional
  little-endian ``.npy`` arrays (``<i8``).  With NumPy installed they are
  opened with ``np.load(mmap_mode="r")``; without it, with ``mmap`` +
  ``memoryview.cast('q')``.  Either way a loaded column is a zero-copy view
  over the file, and both readers see bit-identical values.
* **Strings as blob + offsets.**  A string column is a raw UTF-8
  concatenation (``<name>.blob``) plus an ``int64`` offset column of length
  ``n + 1`` -- the same CSR shape as every other column.
* **Versioned manifest.**  ``manifest.json`` records
  :data:`SNAPSHOT_FORMAT_VERSION`, the column/string inventory with lengths
  (validated on load) and a free-form ``meta`` mapping for the writer's own
  configuration.  A reader refuses manifests whose major format version it
  does not know -- snapshots are a service interface, failing loudly beats
  misreading state.
* **Crash-safe writes** (format 1.1).  The writer stages every file in a
  hidden temporary directory next to the target and only on :meth:`close
  <SnapshotWriter.close>` -- after the manifest is on disk -- swaps it into
  place with directory renames.  A crash at *any* earlier point leaves the
  target untouched: either the previous snapshot in full, or nothing.
  Overwriting an existing snapshot is therefore all-or-nothing too, and on
  Linux readers holding memory-maps into the replaced snapshot keep reading
  consistent (old) bytes -- the mappings pin the unlinked files.
* **Tamper-evident loads** (format 1.1).  The manifest records a CRC32 and
  byte length for every data file; readers verify them on first access and
  reject truncated or corrupted files with a precise :class:`SnapshotError`.
  Manifests written before 1.1 (no ``checksums`` key) still load, with a
  :class:`RuntimeWarning` that integrity cannot be verified.

The module is deliberately generic: it knows nothing about entity resolution,
only about named int64 columns, named string columns and a metadata dict.
:class:`~repro.core.growable.GrowableContext` and
:class:`~repro.iterative.index.IncrementalIndex` layer their schemas on top.
"""

from __future__ import annotations

import ast
import json
import mmap
import os
import secrets
import shutil
import struct
import warnings
import zlib
from array import array
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

try:  # optional accelerator -- the format does not depend on it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "SnapshotReader",
    "SnapshotWriter",
    "read_npy",
    "write_npy",
]

#: Version of the on-disk layout.  Bump on any incompatible change to the
#: column schema or encoding; readers require an exact match.
SNAPSHOT_FORMAT_VERSION = 1

#: Minor revision: 1 added per-file CRC32/length checksums and the atomic
#: temp-dir write.  Readers accept any minor under the same major (the
#: checksums are advisory metadata, not a layout change).
SNAPSHOT_FORMAT_MINOR = 1

_MAGIC = b"\x93NUMPY"
_INT64 = "<i8"
_MANIFEST = "manifest.json"


class SnapshotError(ValueError):
    """A snapshot is unreadable: truncated, corrupted, partial or mismatched.

    Subclasses :class:`ValueError` so pre-existing callers catching the old
    generic errors keep working; new code should catch :class:`SnapshotError`
    to distinguish integrity failures from ordinary bad arguments.
    """


def _file_crc32(path: Path) -> int:
    """CRC32 of a file's bytes, streamed in 1 MiB chunks."""
    crc = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                return crc
            crc = zlib.crc32(chunk, crc)


# ----------------------------------------------------------------------
# .npy primitives (pure Python, NumPy-compatible)
# ----------------------------------------------------------------------
def _npy_header(count: int, descr: str) -> bytes:
    """A NumPy-format 1.0 header for a 1-D array, padded numpy-style.

    The header dict uses the exact literal layout ``np.lib.format`` emits and
    is padded with spaces so the data section starts on a 64-byte boundary --
    which is what makes the memory-mapped ``memoryview.cast('q')`` aligned.
    """
    header = "{'descr': '%s', 'fortran_order': False, 'shape': (%d,), }" % (
        descr,
        count,
    )
    text = header.encode("latin1")
    unpadded = len(_MAGIC) + 2 + 2 + len(text) + 1  # magic, version, length, newline
    text += b" " * ((-unpadded) % 64) + b"\n"
    return _MAGIC + b"\x01\x00" + struct.pack("<H", len(text)) + text


def write_npy(path: Union[str, Path], chunks: Iterable[Any], count: int) -> None:
    """Write int64 buffers as one 1-D little-endian ``.npy`` file.

    ``chunks`` is any iterable of buffer-protocol objects (``array('q')``,
    ``memoryview`` views, NumPy arrays) whose element counts sum to
    ``count``; they are streamed straight to the file, so growable columns
    persist without a flat copy.
    """
    path = Path(path)
    written = 0
    with open(path, "wb") as handle:
        handle.write(_npy_header(count, _INT64))
        for chunk in chunks:
            view = memoryview(chunk)
            if view.format != "q" and view.format != "<q":
                view = view.cast("B").cast("q")
            written += len(view)
            handle.write(view)
    if written != count:
        raise ValueError(f"{path.name}: wrote {written} values, declared {count}")


def _parse_npy_header(buffer: Any) -> "tuple[str, int, int]":
    """``(descr, count, data offset)`` of a 1-D ``.npy`` buffer."""
    if bytes(buffer[:6]) != _MAGIC:
        raise ValueError("not a .npy file (bad magic)")
    major = buffer[6]
    if major == 1:
        (header_len,) = struct.unpack_from("<H", buffer, 8)
        start = 10
    elif major == 2:
        (header_len,) = struct.unpack_from("<I", buffer, 8)
        start = 12
    else:
        raise ValueError(f"unsupported .npy version {major}")
    info = ast.literal_eval(bytes(buffer[start : start + header_len]).decode("latin1"))
    shape = info["shape"]
    if info.get("fortran_order") or len(shape) != 1:
        raise ValueError(f"expected a C-ordered 1-D array, got {info!r}")
    return info["descr"], shape[0], start + header_len


def read_npy(path: Union[str, Path], use_numpy: Optional[bool] = None) -> Sequence[int]:
    """Memory-map a 1-D int64 ``.npy`` file back as a zero-copy view.

    Returns an ``np.memmap``-backed array when NumPy is importable (unless
    ``use_numpy=False``), otherwise a ``memoryview`` cast to ``'q'`` over an
    ``mmap``.  Both support ``len``, indexing, slicing and iteration; the
    ``memoryview`` keeps its ``mmap`` alive through the buffer protocol.
    """
    path = Path(path)
    numpy_wanted = (_np is not None) if use_numpy is None else bool(use_numpy)
    if numpy_wanted:
        if _np is None:
            raise ValueError("use_numpy=True but numpy is not importable")
        loaded = _np.load(str(path), mmap_mode="r")
        if loaded.ndim != 1 or loaded.dtype != _np.int64:
            raise ValueError(f"{path.name}: expected a 1-D int64 column")
        return loaded
    with open(path, "rb") as handle:
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    descr, count, offset = _parse_npy_header(mapped)
    if descr != _INT64:
        raise ValueError(f"{path.name}: expected {_INT64}, got {descr!r}")
    return memoryview(mapped)[offset : offset + count * 8].cast("q")


# ----------------------------------------------------------------------
# snapshot directories
# ----------------------------------------------------------------------
def _chunks_of(values: Any) -> "tuple[List[Any], int]":
    """Buffer chunks + total element count of any supported column source."""
    chunks = getattr(values, "chunks", None)
    if callable(chunks):  # GrowableColumn-style
        return list(chunks()), len(values)
    if isinstance(values, array) and values.typecode == "q":
        return [values], len(values)
    if _np is not None and isinstance(values, _np.ndarray):
        return [_np.ascontiguousarray(values, dtype=_np.int64)], len(values)
    flat = array("q", values)
    return [flat], len(flat)


class SnapshotWriter:
    """Writes named columns, string tables and metadata into a directory.

    Crash-safe: every file is staged in a hidden sibling directory
    (``.<name>.tmp-<pid>-<token>``) and :meth:`close` swaps the staging
    directory into place only after the manifest -- checksums included -- is
    fully on disk.  Until that final rename the target path is untouched, so
    a writer killed mid-save (even between columns) leaves any previous
    snapshot at ``path`` loadable and never exposes a partial one.

    Use as a context manager for exception safety: ``__exit__`` calls
    :meth:`close` on success and :meth:`abort` (removing the staging
    directory) when the body raised.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        parent = self.path.parent
        parent.mkdir(parents=True, exist_ok=True)
        self._staging = parent / (
            f".{self.path.name}.tmp-{os.getpid()}-{secrets.token_hex(4)}"
        )
        self._staging.mkdir()
        self._columns: Dict[str, int] = {}
        self._strings: Dict[str, int] = {}
        self._meta: Dict[str, Any] = {}
        self._checksums: Dict[str, "tuple[int, int]"] = {}
        self._finished = False

    def _record(self, filename: str) -> None:
        path = self._staging / filename
        self._checksums[filename] = (_file_crc32(path), path.stat().st_size)

    def column(self, name: str, values: Any) -> None:
        """Persist an int64 column under ``name``."""
        if name in self._columns or name in self._strings:
            raise ValueError(f"duplicate snapshot column {name!r}")
        chunks, count = _chunks_of(values)
        write_npy(self._staging / f"{name}.npy", chunks, count)
        self._record(f"{name}.npy")
        self._columns[name] = count

    def strings(self, name: str, values: Sequence[str]) -> None:
        """Persist a string column as a UTF-8 blob plus int64 offsets."""
        if name in self._columns or name in self._strings:
            raise ValueError(f"duplicate snapshot column {name!r}")
        offsets = array("q", [0])
        pieces: List[bytes] = []
        total = 0
        for value in values:
            encoded = value.encode("utf-8")
            pieces.append(encoded)
            total += len(encoded)
            offsets.append(total)
        (self._staging / f"{name}.blob").write_bytes(b"".join(pieces))
        self._record(f"{name}.blob")
        write_npy(self._staging / f"{name}.off.npy", [offsets], len(offsets))
        self._record(f"{name}.off.npy")
        self._strings[name] = len(values)

    def meta(self, **entries: Any) -> None:
        """Merge JSON-serialisable entries into the manifest metadata."""
        self._meta.update(entries)

    def close(self) -> None:
        """Finalise the manifest and atomically publish the snapshot.

        The staging directory replaces ``path`` via renames: a pre-existing
        snapshot is renamed aside first and removed only after the new one is
        in place, so no observer ever sees a missing or half-written target.
        """
        if self._finished:
            return
        manifest = {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "format_minor": SNAPSHOT_FORMAT_MINOR,
            "checksums": {
                filename: list(entry) for filename, entry in self._checksums.items()
            },
            "columns": self._columns,
            "strings": self._strings,
            "meta": self._meta,
        }
        (self._staging / _MANIFEST).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        self._finished = True
        if self.path.exists():
            # the snapshot becomes visible in one rename; the displaced old
            # directory is only deleted afterwards (and live memory-maps of
            # its files survive the unlink on POSIX)
            displaced = self.path.parent / f"{self._staging.name}.old"
            os.rename(self.path, displaced)
            os.rename(self._staging, self.path)
            shutil.rmtree(displaced)
        else:
            os.rename(self._staging, self.path)

    def abort(self) -> None:
        """Discard the staging directory; the target path is untouched."""
        if self._finished:
            return
        self._finished = True
        shutil.rmtree(self._staging, ignore_errors=True)

    def __enter__(self) -> "SnapshotWriter":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()

    def __del__(self) -> None:  # pragma: no cover - safety net only
        try:
            self.abort()
        except Exception:
            pass


class SnapshotReader:
    """Opens a snapshot directory, validating version, inventory and integrity.

    Every data file is verified against the manifest's recorded byte length
    and CRC32 on first access (and cached as verified); a truncated or
    corrupted file raises a precise :class:`SnapshotError` instead of
    returning silently wrong state.  Snapshots written before format 1.1
    carry no checksums: they load, with a :class:`RuntimeWarning` that
    integrity cannot be verified.
    """

    def __init__(self, path: Union[str, Path], use_numpy: Optional[bool] = None) -> None:
        self.path = Path(path)
        self._use_numpy = use_numpy
        manifest_path = self.path / _MANIFEST
        if not manifest_path.is_file():
            raise FileNotFoundError(f"no snapshot manifest at {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise SnapshotError(
                f"snapshot manifest at {manifest_path} is not valid JSON "
                f"({error}); the snapshot is corrupted"
            ) from error
        version = manifest.get("format_version")
        if version != SNAPSHOT_FORMAT_VERSION:
            raise SnapshotError(
                f"snapshot format version {version!r} is not supported "
                f"(this build reads version {SNAPSHOT_FORMAT_VERSION})"
            )
        for key in ("columns", "strings"):
            if key not in manifest:
                raise SnapshotError(
                    f"snapshot manifest at {manifest_path} is missing its "
                    f"{key!r} inventory; the snapshot is corrupted or partial"
                )
        self._columns: Dict[str, int] = manifest["columns"]
        self._strings: Dict[str, int] = manifest["strings"]
        self.meta: Dict[str, Any] = manifest.get("meta", {})
        self._checksums: Optional[Dict[str, Any]] = manifest.get("checksums")
        self._verified: "set[str]" = set()
        if self._checksums is None:
            warnings.warn(
                f"snapshot at {self.path} predates format 1.1 and records no "
                "checksums; file integrity cannot be verified",
                RuntimeWarning,
                stacklevel=2,
            )

    def _verify(self, filename: str) -> None:
        """Check ``filename`` against its recorded length and CRC32 (cached)."""
        if self._checksums is None or filename in self._verified:
            return
        entry = self._checksums.get(filename)
        if entry is None:
            raise SnapshotError(
                f"snapshot manifest records no checksum for {filename!r}; "
                "the manifest is corrupted or partial"
            )
        expected_crc, expected_bytes = int(entry[0]), int(entry[1])
        path = self.path / filename
        actual_bytes = path.stat().st_size
        if actual_bytes != expected_bytes:
            raise SnapshotError(
                f"snapshot file {filename!r} holds {actual_bytes} bytes but the "
                f"manifest records {expected_bytes}; the file is truncated or "
                "overwritten"
            )
        actual_crc = _file_crc32(path)
        if actual_crc != expected_crc:
            raise SnapshotError(
                f"snapshot file {filename!r} fails its CRC32 check "
                f"(recorded {expected_crc:#010x}, computed {actual_crc:#010x}); "
                "the file is corrupted"
            )
        self._verified.add(filename)

    def _open_npy(self, label: str, filename: str) -> Sequence[int]:
        path = self.path / filename
        if not path.is_file():
            raise SnapshotError(
                f"{label}: snapshot file {filename!r} is missing; "
                "the snapshot is partial"
            )
        try:
            return read_npy(path, use_numpy=self._use_numpy)
        except (ValueError, OSError) as error:
            raise SnapshotError(
                f"{label}: snapshot file {filename!r} is unreadable ({error}); "
                "the file is truncated or corrupted"
            ) from error

    def column(self, name: str) -> Sequence[int]:
        """Memory-mapped view of the int64 column ``name``, integrity-checked."""
        if name not in self._columns:
            raise KeyError(f"snapshot has no column {name!r}")
        view = self._open_npy(f"column {name!r}", f"{name}.npy")
        # the element-count check runs first so a swapped-in shorter column
        # reports its length mismatch, not just a checksum failure
        if len(view) != self._columns[name]:
            raise SnapshotError(
                f"column {name!r}: manifest declares {self._columns[name]} "
                f"values, file holds {len(view)}"
            )
        self._verify(f"{name}.npy")
        return view

    def strings(self, name: str) -> List[str]:
        """The string column ``name``, decoded eagerly and integrity-checked."""
        if name not in self._strings:
            raise KeyError(f"snapshot has no string column {name!r}")
        blob_path = self.path / f"{name}.blob"
        if not blob_path.is_file():
            raise SnapshotError(
                f"string column {name!r}: snapshot file {blob_path.name!r} is "
                "missing; the snapshot is partial"
            )
        self._verify(f"{name}.blob")
        blob = blob_path.read_bytes()
        offsets = self._open_npy(f"string column {name!r}", f"{name}.off.npy")
        if len(offsets) != self._strings[name] + 1:
            raise SnapshotError(f"string column {name!r}: offset table length mismatch")
        self._verify(f"{name}.off.npy")
        return [
            blob[offsets[index] : offsets[index + 1]].decode("utf-8")
            for index in range(self._strings[name])
        ]
