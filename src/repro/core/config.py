"""Configuration of the end-to-end ER workflow."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class WorkflowConfig:
    """Declarative configuration of :class:`~repro.core.workflow.ERWorkflow`.

    The configuration only holds simple, serialisable choices; component
    instances (a custom matcher, a custom scheduler) can be passed directly to
    the workflow constructor and take precedence over the corresponding
    fields here.

    Attributes
    ----------
    blocking:
        Name of the blocking scheme: ``"token"``, ``"attribute_clustering"``,
        ``"prefix_infix_suffix"``, ``"standard"``, ``"sorted_neighborhood"``,
        ``"extended_sorted_neighborhood"``, ``"qgrams"``,
        ``"similarity_join"``, ``"minhash_lsh"``, ``"canopy"``.
    blocking_engine:
        Execution engine of the blocking and block-cleaning stages:
        ``"index"`` (default, array-backed interned-token builders and
        streaming CSR cleaning passes) or ``"oracle"`` (the legacy
        per-``dict``/``set`` builders and cleaners).  Both produce
        block-for-block identical collections; every builtin scheme has an
        index implementation, and custom :class:`~repro.blocking.base.BlockBuilder`
        subclasses fall back to the oracle automatically (with a one-time
        :class:`RuntimeWarning` naming the scheme).  See
        :mod:`repro.blocking`.
    enable_purging / enable_filtering:
        Whether block purging / block filtering run after blocking.
    filtering_ratio:
        Ratio of the block filtering step (ignored when filtering is off).
    enable_metablocking:
        Whether meta-blocking restructures the blocks before scheduling.
    weighting_scheme / pruning_scheme:
        Meta-blocking configuration (ignored when meta-blocking is off).
    metablocking_engine:
        Execution engine of the meta-blocking stage: ``"index"`` (default,
        array-backed streaming engine) or ``"graph"`` (legacy object graph).
        Both retain identical comparisons; see :mod:`repro.metablocking`.
    scheduler:
        Progressive scheduler name: ``"weight_order"``, ``"random"``,
        ``"sorted_list"``, ``"hierarchy"``, ``"psnm"``, ``"progressive_blocks"``,
        ``"cost_benefit"``.
    scheduling_engine:
        Execution engine of the scheduling stage: ``"array"`` (default,
        orders and drains the candidate comparisons as flat ordinal/weight
        arrays) or ``"object"`` (the schedulers' own generator
        implementations).  Schedules are bit-identical; adaptive and custom
        schedulers fall back to the object path automatically.  See
        :mod:`repro.progressive`.
    matching_engine:
        Comparison-execution engine of the matching phase: ``"batch"``
        (default, scores candidate pairs in vectorised passes against a
        columnar profile store) or ``"pairwise"`` (the per-pair oracle).
        Decisions are bit-identical; see :mod:`repro.matching`.
    budget:
        Optional comparison budget for the matching phase (``None`` = resolve
        every scheduled comparison).
    match_threshold:
        Similarity threshold of the default profile matcher.
    use_tfidf:
        Whether the default matcher weights tokens by TF-IDF.
    iterate_merges:
        Whether the update phase merges matched descriptions and re-runs
        matching on the merge results (merging-based iteration).
    max_iterations:
        Upper bound on update/iterate rounds.
    clustering:
        Final clustering: ``"connected_components"``, ``"center"`` or
        ``"merge_center"``.
    clustering_engine:
        Execution engine of the final clustering stage: ``"array"``
        (default, integer union-find / argsort passes over decision
        columns) or ``"object"`` (the clustering algorithms' own
        string-keyed implementations).  Clusters are bit-identical --
        including the heaviest-first tie order; custom clustering
        algorithms fall back to the object path automatically.  See
        :mod:`repro.matching.cluster_engine`.
    shared_context:
        Whether the workflow interns the input collection once into a shared
        :class:`~repro.core.context.PipelineContext` (default) and threads
        it through blocking, meta-blocking, the TF-IDF fit and matching, or
        lets every engine intern its own per-stage store (the historical
        behaviour).  Results are bit-identical either way; the shared
        context only removes the redundant tokenisation passes.
    incremental_engine:
        Execution engine of :meth:`~repro.core.workflow.ERWorkflow.run_incremental`:
        ``"array"`` (default, the growable columnar
        :class:`~repro.iterative.index.IncrementalIndex` with snapshot
        support) or ``"object"`` (the per-pair oracle).  Streams resolve
        bit-identically on both -- clusters, merged representations, match
        decisions and comparison counts; TF-IDF and custom matchers fall
        back to the object path automatically.  See
        :mod:`repro.iterative.incremental`.
    num_workers:
        Number of worker processes of the multi-process parallel engine
        (:class:`~repro.mapreduce.parallel.ParallelEngine`).  The default
        ``1`` runs everything in-process; with ``num_workers > 1`` (and the
        shared context enabled, whose columns the workers read through
        shared memory) one engine is opened for the whole run and every
        parallelisable stage fans out to the pool: the sharded context
        interning, the blocking postings pass, the block-cleaning passes
        (purging cardinalities, filtering keep flags, comparison
        propagation), the meta-blocking weight streams and retained-edge
        emission, the weight sort of the comparison columns, the batched
        matching scores, and the connected-components clustering.  Stages
        the workers cannot reproduce (custom subclasses, foreign
        collections, the greedy center clusterings) silently run
        in-process.  Results -- blocks, retained edges, match decisions,
        clusters, tie orders -- are bit-identical to the single-process run
        at every worker count.
    worker_timeout:
        No-progress timeout (seconds) of the parallel engine's shard
        batches: if no shard completes within it, the pool is assumed hung,
        torn down and the outstanding shards retried.  ``None`` (default)
        disables the clock; crashed workers are still detected without it --
        the timeout is what recovers from silently *hung* ones.  Ignored
        when ``num_workers == 1``.
    max_shard_retries:
        How many times a failed shard is re-dispatched to a rebuilt pool
        (with bounded exponential backoff) before ``on_worker_failure``
        applies.  Retried shards are recomputed deterministically, so
        recovery never changes a result.
    on_worker_failure:
        What to do when a shard exhausts its retries: ``"degrade"``
        (default) recomputes the failed shards serially on the driver --
        results stay bit-identical, only the speedup is lost -- warning
        with :class:`~repro.mapreduce.supervisor.DegradedExecutionWarning`
        and recording per-stage counts in the workflow report
        (``fault_events`` on :class:`~repro.core.results.WorkflowResult`);
        ``"raise"`` aborts the run with
        :class:`~repro.mapreduce.supervisor.WorkerFailureError`.
    """

    blocking: str = "token"
    blocking_engine: str = "index"
    enable_purging: bool = True
    enable_filtering: bool = True
    filtering_ratio: float = 0.8
    enable_metablocking: bool = True
    weighting_scheme: str = "CBS"
    pruning_scheme: str = "WNP"
    metablocking_engine: str = "index"
    scheduler: str = "weight_order"
    scheduling_engine: str = "array"
    matching_engine: str = "batch"
    budget: Optional[int] = None
    match_threshold: float = 0.55
    use_tfidf: bool = True
    iterate_merges: bool = False
    max_iterations: int = 3
    clustering: str = "connected_components"
    clustering_engine: str = "array"
    incremental_engine: str = "array"
    shared_context: bool = True
    num_workers: int = 1
    worker_timeout: Optional[float] = None
    max_shard_retries: int = 2
    on_worker_failure: str = "degrade"

    def describe(self) -> str:
        """One-line human-readable summary of the configured pipeline."""
        stages = [f"{self.blocking}(engine={self.blocking_engine})"]
        if self.enable_purging:
            stages.append("purging")
        if self.enable_filtering:
            stages.append(f"filtering({self.filtering_ratio})")
        if self.enable_metablocking:
            stages.append(
                f"metablocking({self.weighting_scheme}+{self.pruning_scheme},"
                f" engine={self.metablocking_engine})"
            )
        stages.append(f"scheduler={self.scheduler}(engine={self.scheduling_engine})")
        stages.append(
            f"matcher(threshold={self.match_threshold}, engine={self.matching_engine})"
        )
        if self.iterate_merges:
            stages.append("iterative-merging")
        stages.append(f"{self.clustering}(engine={self.clustering_engine})")
        budget = f", budget={self.budget}" if self.budget is not None else ""
        context = ", shared-context" if self.shared_context else ""
        workers = f", workers={self.num_workers}" if self.num_workers > 1 else ""
        return " -> ".join(stages) + budget + context + workers
