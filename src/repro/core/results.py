"""Results of an end-to-end workflow run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.evaluation.curves import ProgressiveRecallCurve
from repro.evaluation.metrics import BlockingQuality, MatchingQuality
from repro.evaluation.report import WorkflowReport


@dataclass
class WorkflowResult:
    """Everything a workflow run produces.

    Attributes
    ----------
    clusters:
        The final equivalence clusters (only clusters with at least two
        members are reported).
    matches:
        The declared matching pairs (before transitive closure).
    comparisons_executed:
        Number of matcher invocations across all phases (including iterate
        rounds).
    report:
        Per-stage metric report (block counts, comparison counts, PC/PQ/RR
        when a ground truth was supplied, timings).
    blocking_quality / matching_quality:
        Evaluations against the ground truth; ``None`` when no ground truth
        was given.
    curve:
        Progressive recall curve of the matching phase (only when a ground
        truth was given).
    iterations:
        Number of update/iterate rounds executed (0 when iteration is off).
    fault_events:
        Per-stage fault-recovery counters of the parallel engine,
        ``{stage: {"retries", "degraded", "pool_rebuilds"}}``.  Empty on a
        clean run (and always empty with ``num_workers == 1``).  Non-empty
        means worker failures occurred and were survived -- the results are
        still bit-identical to a serial run; check :attr:`degraded_shards`
        to see whether any shard lost its parallelism entirely.
    """

    clusters: List[FrozenSet[str]] = field(default_factory=list)
    matches: List[Tuple[str, str]] = field(default_factory=list)
    comparisons_executed: int = 0
    report: WorkflowReport = field(default_factory=lambda: WorkflowReport("er-workflow"))
    blocking_quality: Optional[BlockingQuality] = None
    matching_quality: Optional[MatchingQuality] = None
    curve: Optional[ProgressiveRecallCurve] = None
    iterations: int = 0
    fault_events: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def num_matches(self) -> int:
        return len(self.matches)

    @property
    def degraded_shards(self) -> int:
        """Total shards recomputed serially after exhausting their retries."""
        return sum(counts.get("degraded", 0) for counts in self.fault_events.values())

    def matched_pairs(self) -> Set[Tuple[str, str]]:
        """All pairs implied by the final clusters (transitive closure)."""
        pairs: Set[Tuple[str, str]] = set()
        for cluster in self.clusters:
            members = sorted(cluster)
            for i, first in enumerate(members):
                for second in members[i + 1 :]:
                    pairs.add((first, second))
        return pairs

    def summary(self) -> str:
        """Multi-line human-readable summary (the stage report plus headline numbers)."""
        lines = [self.report.render(), ""]
        lines.append(
            f"clusters={len(self.clusters)} declared_matches={self.num_matches} "
            f"comparisons={self.comparisons_executed} iterations={self.iterations}"
        )
        if self.blocking_quality is not None:
            lines.append(f"blocking: {self.blocking_quality}")
        if self.matching_quality is not None:
            lines.append(f"matching: {self.matching_quality}")
        if self.fault_events:
            parts = []
            for stage in sorted(self.fault_events):
                counts = self.fault_events[stage]
                parts.append(
                    f"{stage}(retries={counts.get('retries', 0)}, "
                    f"degraded={counts.get('degraded', 0)})"
                )
            lines.append("worker faults survived: " + ", ".join(parts))
        return "\n".join(lines)
