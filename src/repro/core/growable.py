"""Growable columnar storage: the streaming counterpart of :class:`PipelineContext`.

:class:`~repro.core.context.PipelineContext` interns one *fixed* collection
and is rebuilt per workflow run.  Incremental ER cannot afford that: arrivals
keep coming, and each must be tokenised and interned exactly once into state
that lives for the process (and, via :mod:`repro.core.snapshot`, across
processes).  This module provides the two pieces:

* :class:`GrowableColumn` -- an append-only int64 column over fixed-size
  ``array('q')`` chunks, optionally rooted on a read-only *base* view (a
  memory-mapped snapshot column).  Appending never copies the base, so an
  index restored from disk continues growing without re-interning a single
  token.
* :class:`GrowableContext` -- the growable twin of ``PipelineContext``:
  append-only ordinal table, dense token vocabulary that accepts new terms,
  per-attribute token-id/count columns in CSR layout over growable chunks,
  and one merged distinct-token column per record.  It reuses
  :class:`~repro.core.context.TokenFilter` unchanged (the filter only needs
  ``_tokens`` and ``vocabulary_size``, both of which this class provides),
  so stop-word masks keep extending lazily as the vocabulary grows.

Tokenisation follows ``PipelineContext._intern_all`` to the letter --
``tokenize`` over each attribute's values in insertion order, first-touch
vocabulary ids, sorted distinct (id, count) columns -- so a record interned
here produces the same per-record token structure the batch pipeline would
build for it.

Identifiers may be *re-bound*: removing a record from an index and adding a
revised description appends a fresh ordinal and points the identifier at it;
old ordinals stay in the columns as tombstones (column storage is append-only
by design -- that is what makes snapshots cheap and views stable).
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.context import TokenFilter
from repro.core.snapshot import SnapshotReader, SnapshotWriter
from repro.datamodel.description import EntityDescription
from repro.text.tokenize import tokenize

__all__ = ["GrowableColumn", "GrowableContext"]

#: Elements per growable chunk.  Large enough that chunk bookkeeping is
#: negligible, small enough that a mostly-empty column stays cheap.
DEFAULT_CHUNK_SIZE = 1 << 14


class GrowableColumn:
    """Append-only int64 column: an optional read-only base plus owned chunks.

    The *base* is any indexable int64 sequence -- typically a memory-mapped
    snapshot view -- and is never mutated or copied; appends go into
    fixed-capacity ``array('q')`` chunks owned by the column.
    """

    __slots__ = ("chunk_size", "_base", "_base_length", "_chunks", "_length")

    def __init__(
        self,
        base: Optional[Sequence[int]] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.chunk_size = chunk_size
        self._base = base
        self._base_length = len(base) if base is not None else 0
        self._chunks: List[array] = []
        self._length = self._base_length

    def __len__(self) -> int:
        return self._length

    def append(self, value: int) -> None:
        chunks = self._chunks
        if not chunks or len(chunks[-1]) >= self.chunk_size:
            chunks.append(array("q"))
        chunks[-1].append(value)
        self._length += 1

    def extend(self, values: Iterable[int]) -> None:
        for value in values:
            self.append(value)

    def __getitem__(self, index: int) -> int:
        if index < 0 or index >= self._length:
            raise IndexError(index)
        offset = index - self._base_length
        if offset < 0:
            return self._base[index]  # type: ignore[index]
        return self._chunks[offset // self.chunk_size][offset % self.chunk_size]

    def __iter__(self) -> Iterator[int]:
        if self._base is not None:
            yield from self._base
        for chunk in self._chunks:
            yield from chunk

    def view(self, start: int, stop: int) -> Sequence[int]:
        """The values ``[start, stop)``; zero-copy within a single region."""
        if start >= stop:
            return array("q")
        if stop <= self._base_length:
            return self._base[start:stop]  # type: ignore[index]
        first = start - self._base_length
        last = stop - 1 - self._base_length
        if first >= 0 and first // self.chunk_size == last // self.chunk_size:
            chunk = self._chunks[first // self.chunk_size]
            offset = first % self.chunk_size
            return memoryview(chunk)[offset : offset + (stop - start)]
        # region-crossing ranges are rare (a record's column almost always
        # lands in one chunk); copy them out
        return array("q", (self[index] for index in range(start, stop)))

    def chunks(self) -> Iterator[Any]:
        """The column's buffers in order (consumed by the snapshot writer)."""
        if self._base is not None and self._base_length:
            yield self._base
        for chunk in self._chunks:
            yield chunk


class GrowableContext:
    """Append-only interning context for streams of entity descriptions."""

    def __init__(self) -> None:
        # ordinal table
        self._ids: List[str] = []
        self._ordinal: Dict[str, int] = {}
        # vocabulary; the string->id map is rebuilt lazily after a restore
        self._tokens: List[str] = []
        self._token_ids: Optional[Dict[str, int]] = {}
        # attribute-name dictionary (same lazy-map treatment)
        self._attr_names: List[str] = []
        self._attr_name_ids: Optional[Dict[str, int]] = {}
        # per record: CSR over attribute slots; per slot: attribute name id
        # and CSR over (token id, count) pairs
        self._record_slot_ptr = GrowableColumn()
        self._record_slot_ptr.append(0)
        self._slot_attr = GrowableColumn()
        self._slot_token_ptr = GrowableColumn()
        self._slot_token_ptr.append(0)
        self._slot_token_ids = GrowableColumn()
        self._slot_token_counts = GrowableColumn()
        # per record: merged all-attribute sorted distinct ids + counts
        self._token_ptr = GrowableColumn()
        self._token_ptr.append(0)
        self._token_ids_column = GrowableColumn()
        self._token_counts_column = GrowableColumn()
        self._filters: Dict[Tuple[FrozenSet[str], int], TokenFilter] = {}

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def num_records(self) -> int:
        return len(self._ids)

    @property
    def ids(self) -> List[str]:
        """Identifier of every record (including tombstones), by ordinal."""
        return self._ids

    def ordinal(self, identifier: str) -> Optional[int]:
        """The ordinal the identifier is currently bound to, if any."""
        return self._ordinal.get(identifier)

    # ------------------------------------------------------------------
    # vocabulary
    # ------------------------------------------------------------------
    @property
    def vocabulary_size(self) -> int:
        return len(self._tokens)

    def token(self, token_id: int) -> str:
        return self._tokens[token_id]

    def _vocab_map(self) -> Dict[str, int]:
        mapping = self._token_ids
        if mapping is None:
            # first mutation after a restore pays one pass over the loaded
            # vocabulary; what the snapshot avoids is re-tokenising and
            # re-interning every archived description
            mapping = {token: index for index, token in enumerate(self._tokens)}
            self._token_ids = mapping
        return mapping

    def token_id(self, token: str) -> Optional[int]:
        """Vocabulary id of ``token``, or ``None`` if never interned."""
        return self._vocab_map().get(token)

    def token_filter(
        self, stop_words: Optional[Iterable[str]], min_length: int
    ) -> TokenFilter:
        """The cached :class:`TokenFilter` for a tokenisation configuration."""
        stops = frozenset(stop_words) if stop_words else frozenset()
        key = (stops, min_length)
        cached = self._filters.get(key)
        if cached is None:
            cached = self._filters[key] = TokenFilter(self, stops, min_length)
        return cached

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def _attr_map(self) -> Dict[str, int]:
        mapping = self._attr_name_ids
        if mapping is None:
            mapping = {name: index for index, name in enumerate(self._attr_names)}
            self._attr_name_ids = mapping
        return mapping

    def add_record(self, description: EntityDescription) -> int:
        """Intern one description, appending a fresh ordinal.

        A previously seen identifier is re-bound to the new ordinal (the old
        ordinal becomes a tombstone); rejecting duplicates is the caller's
        policy, not the context's.
        """
        ordinal = len(self._ids)
        self._ordinal[description.identifier] = ordinal
        self._ids.append(description.identifier)
        token_ids = self._vocab_map()
        tokens = self._tokens
        attr_ids = self._attr_map()
        merged: Dict[int, int] = {}
        for attribute in description.attribute_names:
            counts: Dict[int, int] = {}
            for value in description.values(attribute):
                for token in tokenize(value):
                    token_id = token_ids.get(token)
                    if token_id is None:
                        token_id = len(tokens)
                        token_ids[token] = token_id
                        tokens.append(token)
                    counts[token_id] = counts.get(token_id, 0) + 1
                    merged[token_id] = merged.get(token_id, 0) + 1
            attr_id = attr_ids.get(attribute)
            if attr_id is None:
                attr_id = len(self._attr_names)
                attr_ids[attribute] = attr_id
                self._attr_names.append(attribute)
            self._slot_attr.append(attr_id)
            for token_id, count in sorted(counts.items()):
                self._slot_token_ids.append(token_id)
                self._slot_token_counts.append(count)
            self._slot_token_ptr.append(len(self._slot_token_ids))
        self._record_slot_ptr.append(len(self._slot_attr))
        for token_id, count in sorted(merged.items()):
            self._token_ids_column.append(token_id)
            self._token_counts_column.append(count)
        self._token_ptr.append(len(self._token_ids_column))
        return ordinal

    # ------------------------------------------------------------------
    # per-record columns
    # ------------------------------------------------------------------
    def token_ids_of(self, ordinal: int) -> Sequence[int]:
        """Sorted distinct token ids over all of the record's values."""
        return self._token_ids_column.view(
            self._token_ptr[ordinal], self._token_ptr[ordinal + 1]
        )

    def token_counts_of(self, ordinal: int) -> Sequence[int]:
        """Occurrence counts aligned with :meth:`token_ids_of`."""
        return self._token_counts_column.view(
            self._token_ptr[ordinal], self._token_ptr[ordinal + 1]
        )

    def attribute_entries(self, ordinal: int) -> Iterator[Tuple[str, Sequence[int], Sequence[int]]]:
        """``(attribute, sorted distinct ids, aligned counts)`` per attribute."""
        for slot in range(
            self._record_slot_ptr[ordinal], self._record_slot_ptr[ordinal + 1]
        ):
            start = self._slot_token_ptr[slot]
            stop = self._slot_token_ptr[slot + 1]
            yield (
                self._attr_names[self._slot_attr[slot]],
                self._slot_token_ids.view(start, stop),
                self._slot_token_counts.view(start, stop),
            )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def write_snapshot(self, writer: SnapshotWriter) -> None:
        """Persist every column and string table under ``context.*`` names."""
        writer.strings("context.ids", self._ids)
        writer.strings("context.tokens", self._tokens)
        writer.strings("context.attr_names", self._attr_names)
        writer.column("context.record_slot_ptr", self._record_slot_ptr)
        writer.column("context.slot_attr", self._slot_attr)
        writer.column("context.slot_token_ptr", self._slot_token_ptr)
        writer.column("context.slot_token_ids", self._slot_token_ids)
        writer.column("context.slot_token_counts", self._slot_token_counts)
        writer.column("context.token_ptr", self._token_ptr)
        writer.column("context.token_ids", self._token_ids_column)
        writer.column("context.token_counts", self._token_counts_column)

    @classmethod
    def from_snapshot(cls, reader: SnapshotReader) -> "GrowableContext":
        """Rebuild a context over the reader's memory-mapped columns.

        Numeric columns become the read-only bases of fresh growable
        columns (no copies); the string->id maps are rebuilt lazily on the
        first mutation.
        """
        context = cls()
        context._ids = reader.strings("context.ids")
        context._ordinal = {
            identifier: ordinal for ordinal, identifier in enumerate(context._ids)
        }
        context._tokens = reader.strings("context.tokens")
        context._token_ids = None
        context._attr_names = reader.strings("context.attr_names")
        context._attr_name_ids = None
        context._record_slot_ptr = GrowableColumn(reader.column("context.record_slot_ptr"))
        context._slot_attr = GrowableColumn(reader.column("context.slot_attr"))
        context._slot_token_ptr = GrowableColumn(reader.column("context.slot_token_ptr"))
        context._slot_token_ids = GrowableColumn(reader.column("context.slot_token_ids"))
        context._slot_token_counts = GrowableColumn(
            reader.column("context.slot_token_counts")
        )
        context._token_ptr = GrowableColumn(reader.column("context.token_ptr"))
        context._token_ids_column = GrowableColumn(reader.column("context.token_ids"))
        context._token_counts_column = GrowableColumn(
            reader.column("context.token_counts")
        )
        return context
