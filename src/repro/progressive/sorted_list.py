"""The pay-as-you-go "sorted list of records" hint.

Descriptions are sorted by a blocking key (as in sorted neighbourhood) and
candidate pairs are emitted by *incrementally widening windows*: first all
pairs of adjacent descriptions (distance 1), then pairs at distance 2, and so
on.  Because descriptions with more similar blocking keys end up closer in the
sorted order, early windows are much denser in matches than later ones -- the
progressive behaviour the tutorial describes ("starting from a window of size
2, this heuristic favors comparisons of descriptions with more similar values
on their blocking keys").
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from repro.blocking.sorted_neighborhood import default_sorting_key, sorted_order
from repro.datamodel.collection import CleanCleanTask
from repro.datamodel.description import EntityDescription
from repro.datamodel.pairs import Comparison
from repro.progressive.schedulers import CandidateSource, ERInput, ProgressiveScheduler


class SortedListScheduler(ProgressiveScheduler):
    """Emit pairs of the sorted order at increasing distance.

    Parameters
    ----------
    sorting_key:
        Function mapping a description to its sorting key (default: the
        schema-agnostic concatenation of all values).
    max_distance:
        Largest distance (window size - 1) to emit; ``None`` goes on until the
        list is exhausted (distance ``n - 1``).
    restrict_to_candidates:
        When true (default), only pairs that also appear in the supplied
        candidate source (e.g. a block collection) are emitted, so the
        scheduler re-orders blocking output rather than bypassing it.  When
        false the sorted list itself defines the candidates.
    """

    name = "sorted_list"

    def __init__(
        self,
        sorting_key: Optional[Callable[[EntityDescription], str]] = None,
        max_distance: Optional[int] = None,
        restrict_to_candidates: bool = True,
    ) -> None:
        self.sorting_key = sorting_key or default_sorting_key
        self.max_distance = max_distance
        self.restrict_to_candidates = restrict_to_candidates

    def schedule(self, data: ERInput, candidates: CandidateSource) -> Iterator[Comparison]:
        entries = sorted_order(data, self.sorting_key)
        identifiers = [identifier for _, identifier in entries]
        n = len(identifiers)
        if n < 2:
            return

        allowed = None
        if self.restrict_to_candidates and candidates is not None:
            from repro.progressive.schedulers import candidate_comparisons

            allowed = {comparison.pair for comparison in candidate_comparisons(candidates)}

        bilateral = isinstance(data, CleanCleanTask)
        limit = self.max_distance if self.max_distance is not None else n - 1
        emitted = set()
        for distance in range(1, min(limit, n - 1) + 1):
            for index in range(0, n - distance):
                first = identifiers[index]
                second = identifiers[index + distance]
                if bilateral and not data.is_valid_pair(first, second):
                    continue
                comparison = Comparison(first, second)
                if allowed is not None and comparison.pair not in allowed:
                    continue
                if comparison.pair in emitted:
                    continue
                emitted.add(comparison.pair)
                yield comparison
