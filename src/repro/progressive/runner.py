"""Executing a progressive scheduler under a budget and recording its curve.

:func:`run_progressive` is the driver shared by the examples and the
progressive benchmarks: it draws comparisons from a scheduler, resolves them
with a matcher while a :class:`~repro.progressive.budget.Budget` lasts, feeds
every decision back to the scheduler (the update phase), and records the
progressive recall curve against the ground truth (when provided).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple, Union

from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datamodel.ground_truth import GroundTruth
from repro.datamodel.pairs import Comparison
from repro.evaluation.curves import ProgressiveRecallCurve
from repro.matching.matchers import MatchDecision, Matcher
from repro.progressive.budget import Budget
from repro.progressive.schedulers import CandidateSource, ERInput, ProgressiveScheduler


@dataclass
class ProgressiveResult:
    """Outcome of a budgeted progressive run."""

    scheduler_name: str
    comparisons_executed: int = 0
    declared_matches: List[Tuple[str, str]] = field(default_factory=list)
    true_matches_found: int = 0
    budget_spent: float = 0.0
    curve: Optional[ProgressiveRecallCurve] = None
    decisions: List[MatchDecision] = field(default_factory=list)

    @property
    def recall(self) -> float:
        """Final recall of the run (0 when no ground truth was supplied)."""
        if self.curve is None:
            return 0.0
        return self.curve.final_recall()

    @property
    def auc(self) -> float:
        """Normalised area under the progressive recall curve (0 without ground truth)."""
        if self.curve is None:
            return 0.0
        return self.curve.auc()


def run_progressive(
    scheduler: ProgressiveScheduler,
    matcher: Matcher,
    data: ERInput,
    candidates: CandidateSource,
    budget: Union[Budget, int, None] = None,
    ground_truth: Optional[GroundTruth] = None,
    keep_decisions: bool = False,
) -> ProgressiveResult:
    """Run ``scheduler`` against ``matcher`` until the budget is exhausted.

    Parameters
    ----------
    scheduler:
        The progressive scheduler deciding the comparison order.
    matcher:
        The pairwise matcher; its per-decision ``cost`` is charged to the budget.
    data:
        The entity collection or clean--clean task being resolved.
    candidates:
        Candidate comparisons (a block collection or a comparison sequence).
    budget:
        A :class:`Budget`, a plain integer budget, or ``None`` for unlimited.
    ground_truth:
        When given, the progressive recall curve counts *true* matches among
        the declared ones; without it, no curve is recorded.
    keep_decisions:
        Whether to retain every :class:`MatchDecision` in the result (memory
        heavy for large runs; benchmarks usually keep it off).
    """
    if budget is None:
        budget_obj = Budget(None)
    elif isinstance(budget, Budget):
        budget_obj = budget
    else:
        budget_obj = Budget(float(budget))

    curve = None
    if ground_truth is not None:
        max_comparisons = int(budget_obj.total) if budget_obj.total is not None else None
        curve = ProgressiveRecallCurve(ground_truth, budget=max_comparisons)

    result = ProgressiveResult(scheduler_name=scheduler.name, curve=curve)
    seen_matches: Set[Tuple[str, str]] = set()

    for comparison in scheduler.schedule(data, candidates):
        first = data.get(comparison.first)
        second = data.get(comparison.second)
        if first is None or second is None:
            continue
        decision = matcher.decide(first, second)
        if not budget_obj.charge(decision.cost):
            break
        result.comparisons_executed += 1
        scheduler.feedback(decision)
        if keep_decisions:
            result.decisions.append(decision)

        is_true_match = False
        if decision.is_match:
            result.declared_matches.append(decision.pair)
            if ground_truth is not None:
                is_true_match = (
                    ground_truth.are_matches(*decision.pair) and decision.pair not in seen_matches
                )
                if is_true_match:
                    seen_matches.add(decision.pair)
                    result.true_matches_found += 1
        if curve is not None:
            curve.record(comparison, is_match=is_true_match)

    result.budget_spent = budget_obj.spent
    return result
