"""Executing a progressive scheduler under a budget and recording its curve.

:func:`run_progressive` is the driver shared by the examples and the
progressive benchmarks: it draws comparisons from a scheduler, resolves them
with a matcher while a :class:`~repro.progressive.budget.Budget` lasts, feeds
every decision back to the scheduler (the update phase), and records the
progressive recall curve against the ground truth (when provided).

Comparisons are executed through a
:class:`~repro.matching.engine.MatchingEngine` (``engine="batch"`` by
default), which caches each description's token profile in a columnar store
so an entity compared *K* times is tokenised once.  When the scheduler does
not adapt its order to match feedback (it leaves
:meth:`~repro.progressive.schedulers.ProgressiveScheduler.feedback`
un-overridden), the runner additionally *drains the scheduler in batches* and
scores each batch in one vectorised pass; adaptive schedulers keep the
draw-one/decide-one loop (their next draw may depend on the last decision)
but still hit the profile cache.  Both execution shapes are bit-identical to
the historical per-pair loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import List, Optional, Sequence, Set, Tuple, Union

from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datamodel.ground_truth import GroundTruth
from repro.datamodel.pairs import Comparison, DecisionColumns, pair_code
from repro.evaluation.curves import ProgressiveRecallCurve
from repro.matching.engine import MatchingEngine
from repro.matching.matchers import DecisionList, MatchDecision, Matcher
from repro.progressive.budget import Budget
from repro.progressive.engine import ScheduledRows, SchedulingEngine
from repro.progressive.schedulers import CandidateSource, ERInput, ProgressiveScheduler

#: Comparisons drawn per scheduler drain when batch execution applies.
DEFAULT_BATCH_SIZE = 512


class _GroundTruthOrdinals:
    """Ground-truth cluster index per schedule-table ordinal, resolved lazily.

    The ordinal-coded fast path of the progressive recall curve: instead of
    probing the ground truth with one identifier-pair lookup per executed
    comparison, each table identifier is resolved to its cluster index once
    (the table may still be growing -- interning schedulers register
    identifiers as they stream -- so resolution is lazy), and a decision is
    a true match exactly when both indices are equal and known.  Merged
    identifiers (``"a+b"``), which carry provenance semantics, fall back to
    :meth:`GroundTruth.are_matches` -- marked with a sentinel so the check
    costs one comparison on the common path.
    """

    __slots__ = ("_truth", "_ids", "_index")

    _MERGED = -2

    def __init__(self, truth: GroundTruth, ids) -> None:
        self._truth = truth
        self._ids = ids
        self._index: List[int] = []

    def _cluster(self, ordinal: int) -> int:
        index = self._index
        ids = self._ids
        while len(index) <= ordinal:
            identifier = ids[len(index)]
            if "+" in identifier:
                index.append(self._MERGED)
            else:
                index.append(self._truth.cluster_index(identifier))
        return index[ordinal]

    def are_matches(self, first: int, second: int, pair: Tuple[str, str]) -> bool:
        index_a = self._cluster(first)
        index_b = self._cluster(second)
        if index_a == self._MERGED or index_b == self._MERGED:
            return self._truth.are_matches(*pair)
        return index_a >= 0 and index_a == index_b


@dataclass
class ProgressiveResult:
    """Outcome of a budgeted progressive run."""

    scheduler_name: str
    comparisons_executed: int = 0
    declared_matches: List[Tuple[str, str]] = field(default_factory=list)
    true_matches_found: int = 0
    budget_spent: float = 0.0
    curve: Optional[ProgressiveRecallCurve] = None
    #: executed decisions when ``keep_decisions`` is on: a plain list on the
    #: object paths, a :class:`~repro.datamodel.pairs.DecisionColumns` (same
    #: decisions, materialised lazily) on the columnar drain
    decisions: Sequence[MatchDecision] = field(default_factory=list)
    #: scheduled comparisons dropped because an identifier did not resolve
    #: against the input data (also summarised by a RuntimeWarning)
    skipped_comparisons: int = 0

    @property
    def recall(self) -> float:
        """Final recall of the run (0 when no ground truth was supplied)."""
        if self.curve is None:
            return 0.0
        return self.curve.final_recall()

    @property
    def auc(self) -> float:
        """Normalised area under the progressive recall curve (0 without ground truth)."""
        if self.curve is None:
            return 0.0
        return self.curve.auc()


def run_progressive(
    scheduler: ProgressiveScheduler,
    matcher: Matcher,
    data: ERInput,
    candidates: CandidateSource,
    budget: Union[Budget, int, None] = None,
    ground_truth: Optional[GroundTruth] = None,
    keep_decisions: bool = False,
    engine: Union[str, MatchingEngine] = "batch",
    batch_size: int = DEFAULT_BATCH_SIZE,
    scheduling: Union[str, SchedulingEngine, None] = None,
) -> ProgressiveResult:
    """Run ``scheduler`` against ``matcher`` until the budget is exhausted.

    Parameters
    ----------
    scheduler:
        The progressive scheduler deciding the comparison order.
    matcher:
        The pairwise matcher; its per-decision ``cost`` is charged to the budget.
    data:
        The entity collection or clean--clean task being resolved.
    candidates:
        Candidate comparisons (a block collection or a comparison sequence).
    budget:
        A :class:`Budget`, a plain integer budget, or ``None`` for unlimited.
    ground_truth:
        When given, the progressive recall curve counts *true* matches among
        the declared ones; without it, no curve is recorded.
    keep_decisions:
        Whether to retain every :class:`MatchDecision` in the result (memory
        heavy for large runs; benchmarks usually keep it off).
    engine:
        ``"batch"`` (default), ``"pairwise"`` or a ready-made
        :class:`~repro.matching.engine.MatchingEngine` wrapping ``matcher``.
        The engine only changes *how* comparisons are scored (cached columnar
        profiles, vectorised passes), never the decisions; matchers the batch
        engine cannot replicate fall back to per-pair execution automatically.
    batch_size:
        How many comparisons are drawn per scheduler drain when batch
        execution applies.  Schedulers that adapt to feedback are always
        drained one comparison at a time, whatever this value.
    scheduling:
        ``None`` (default -- the scheduler's own ``schedule`` generator runs,
        the historical behaviour), ``"array"``/``"object"`` or a ready-made
        :class:`~repro.progressive.engine.SchedulingEngine` wrapping
        ``scheduler``.  The array engine executes feedback-free library
        schedulers over flat ordinal rows, draining them straight into
        :meth:`MatchingEngine.decide_pairs` without materialising scheduled
        ``Comparison`` objects; the schedule -- and hence every decision,
        match and curve point -- is bit-identical either way.
    """
    if budget is None:
        budget_obj = Budget(None)
    elif isinstance(budget, Budget):
        budget_obj = budget
    else:
        budget_obj = Budget(float(budget))

    if isinstance(engine, MatchingEngine):
        if engine.matcher is not matcher:
            raise ValueError(
                "the MatchingEngine passed as `engine` wraps a different matcher "
                "than the `matcher` argument; decisions would silently come from "
                "the engine's matcher"
            )
        executor = engine
    else:
        executor = MatchingEngine(matcher, engine=engine)

    curve = None
    if ground_truth is not None:
        max_comparisons = int(budget_obj.total) if budget_obj.total is not None else None
        curve = ProgressiveRecallCurve(ground_truth, budget=max_comparisons)

    result = ProgressiveResult(scheduler_name=scheduler.name, curve=curve)
    seen_matches: Set[Tuple[str, str]] = set()

    def process(comparison: Comparison, decision: MatchDecision) -> bool:
        """Charge, record and feed back one decision; False when budget is out."""
        if not budget_obj.charge(decision.cost):
            return False
        result.comparisons_executed += 1
        scheduler.feedback(decision)
        if keep_decisions:
            result.decisions.append(decision)

        is_true_match = False
        if decision.is_match:
            result.declared_matches.append(decision.pair)
            if ground_truth is not None:
                is_true_match = (
                    ground_truth.are_matches(*decision.pair) and decision.pair not in seen_matches
                )
                if is_true_match:
                    seen_matches.add(decision.pair)
                    result.true_matches_found += 1
        if curve is not None:
            curve.record(comparison, is_match=is_true_match)
        return True

    # same accounting as Matcher.decide_all: unresolvable comparisons are
    # counted and surfaced, whichever execution path drops them
    skips = DecisionList()

    # batch drains are only sound when the scheduler ignores feedback: an
    # adaptive scheduler's next draw may depend on the previous decision
    rows: Optional[ScheduledRows] = None
    if scheduling is not None:
        if isinstance(scheduling, SchedulingEngine):
            if scheduling.scheduler is not scheduler:
                raise ValueError(
                    "the SchedulingEngine passed as `scheduling` wraps a different "
                    "scheduler than the `scheduler` argument; the schedule would "
                    "silently come from the engine's scheduler"
                )
        else:
            scheduling = SchedulingEngine(scheduler, engine=scheduling)
        adaptive = not scheduling.feedback_free
        rows = scheduling.schedule_rows(data, candidates)
        scheduled = rows.comparisons() if rows is not None else scheduler.schedule(data, candidates)
    else:
        adaptive = type(scheduler).feedback is not ProgressiveScheduler.feedback
        scheduled = scheduler.schedule(data, candidates)

    if executor.batch_applicable and not adaptive and batch_size > 1:
        # the batch path only runs for a fixed-cost ProfileSimilarityMatcher,
        # so a draw never needs to exceed what the remaining budget can charge
        cost = matcher.cost

        if rows is not None:
            # ---------- columnar drain: zero per-pair objects ----------
            # the ordinal rows feed the engine's raw scoring pass and every
            # outcome lands straight in flat columns: no scheduled
            # Comparison, no MatchDecision.  The schedule is feedback-free
            # by construction (array schedules only exist for schedulers
            # whose feedback hook provably never changes the order), so the
            # per-decision callback of the object path is a no-op here and
            # is skipped outright.
            ids = rows.ids
            descriptions = rows.descriptions
            row_iter = rows.rows
            threshold = matcher.threshold
            decisions_out: Optional[DecisionColumns] = None
            if keep_decisions:
                decisions_out = DecisionColumns(ids, cost=cost)
                result.decisions = decisions_out
            truth_ordinals = (
                _GroundTruthOrdinals(ground_truth, ids)
                if ground_truth is not None
                else None
            )
            seen_codes: Set[int] = set()
            exhausted = False
            while not exhausted:
                draw = batch_size
                if budget_obj.total is not None and cost > 0:
                    remaining = budget_obj.remaining
                    if remaining < cost:
                        break
                    draw = min(batch_size, int(remaining / cost) + 1)
                drawn = 0
                ordinals: List[Tuple[int, int]] = []
                profile_pairs = []
                for f, s, _weight in islice(row_iter, draw):
                    drawn += 1
                    if descriptions is not None:
                        first = descriptions[f]
                        second = descriptions[s]
                    else:
                        first = data.get(ids[f])
                        second = data.get(ids[s])
                    if first is None or second is None:
                        id_a, id_b = ids[f], ids[s]
                        skips.record_skip((id_a, id_b) if id_a < id_b else (id_b, id_a))
                        continue
                    ordinals.append((f, s))
                    profile_pairs.append((first, second))
                if not drawn:
                    break
                scores = executor.similarity_scores(profile_pairs)
                for (f, s), score in zip(ordinals, scores):
                    if not budget_obj.charge(cost):
                        exhausted = True
                        break
                    result.comparisons_executed += 1
                    is_match = score >= threshold
                    if decisions_out is not None:
                        decisions_out.append(f, s, score, is_match)
                    is_true_match = False
                    if is_match:
                        id_a, id_b = ids[f], ids[s]
                        pair = (id_a, id_b) if id_a < id_b else (id_b, id_a)
                        result.declared_matches.append(pair)
                        if truth_ordinals is not None:
                            code = pair_code(f, s)
                            if code not in seen_codes and truth_ordinals.are_matches(
                                f, s, pair
                            ):
                                seen_codes.add(code)
                                is_true_match = True
                                result.true_matches_found += 1
                    if curve is not None:
                        curve.record(None, is_match=is_true_match)
        else:
            # ---------- object drain: scheduled Comparison objects ----------
            def resolve_draw(draw: int):
                drawn = 0
                resolved = []
                for comparison in islice(scheduled, draw):
                    drawn += 1
                    first = data.get(comparison.first)
                    second = data.get(comparison.second)
                    if first is None or second is None:
                        skips.record_skip(comparison.pair)
                        continue
                    resolved.append((comparison, first, second))
                return drawn, resolved

            exhausted = False
            while not exhausted:
                draw = batch_size
                if budget_obj.total is not None and cost > 0:
                    remaining = budget_obj.remaining
                    if remaining < cost:
                        break
                    draw = min(batch_size, int(remaining / cost) + 1)
                drawn, resolved = resolve_draw(draw)
                if not drawn:
                    break
                decisions = executor.decide_pairs([(f, s) for _, f, s in resolved])
                for (comparison, _, _), decision in zip(resolved, decisions):
                    if not process(comparison, decision):
                        exhausted = True
                        break
    else:
        for comparison in scheduled:
            first = data.get(comparison.first)
            second = data.get(comparison.second)
            if first is None or second is None:
                skips.record_skip(comparison.pair)
                continue
            if not process(comparison, executor.decide(first, second)):
                break

    result.skipped_comparisons = skips.skipped
    skips.warn_if_skipped()
    result.budget_spent = budget_obj.spent
    return result
