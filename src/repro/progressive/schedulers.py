"""The progressive scheduler interface and order-based baseline schedulers.

A progressive scheduler decides which candidate comparisons reach the matcher
and in what order.  The interface is a generator (:meth:`ProgressiveScheduler.schedule`)
plus a feedback hook (:meth:`ProgressiveScheduler.feedback`) through which the
runner reports every match decision, enabling schedulers that adapt their
order to the matches found so far (the "update" phase of the tutorial's
Figure 1).
"""

from __future__ import annotations

import abc
import random
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from repro.blocking.base import BlockCollection
from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datamodel.pairs import Comparison
from repro.matching.matchers import MatchDecision

ERInput = Union[EntityCollection, CleanCleanTask]
CandidateSource = Union[BlockCollection, Sequence[Comparison]]


def candidate_comparisons(candidates: CandidateSource) -> List[Comparison]:
    """Normalise a candidate source (blocks or comparisons) into distinct comparisons."""
    if isinstance(candidates, BlockCollection):
        return list(candidates.distinct_comparisons())
    seen = set()
    distinct = []
    for comparison in candidates:
        if comparison.pair not in seen:
            seen.add(comparison.pair)
            distinct.append(comparison)
    return distinct


class ProgressiveScheduler(abc.ABC):
    """Interface of a progressive comparison scheduler."""

    name = "scheduler"

    @abc.abstractmethod
    def schedule(self, data: ERInput, candidates: CandidateSource) -> Iterator[Comparison]:
        """Yield comparisons in the order they should be executed."""

    def feedback(self, decision: MatchDecision) -> None:
        """Receive the decision of the last executed comparison (default: ignored)."""


class RandomOrderScheduler(ProgressiveScheduler):
    """Baseline: executes the candidate comparisons in a random (seeded) order.

    This models the non-progressive workflow, whose recall grows linearly with
    the consumed budget in expectation.
    """

    name = "random_order"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def schedule(self, data: ERInput, candidates: CandidateSource) -> Iterator[Comparison]:
        comparisons = candidate_comparisons(candidates)
        rng = random.Random(self.seed)
        rng.shuffle(comparisons)
        yield from comparisons


class WeightOrderScheduler(ProgressiveScheduler):
    """Static best-first order by comparison weight (e.g. meta-blocking weight).

    Comparisons without a weight are ranked after all weighted ones, in a
    deterministic order.  There is no update phase: the order is fixed up
    front, which is what distinguishes it from the adaptive schedulers.
    """

    name = "weight_order"

    def schedule(self, data: ERInput, candidates: CandidateSource) -> Iterator[Comparison]:
        comparisons = candidate_comparisons(candidates)
        comparisons.sort(
            key=lambda c: (-(c.weight if c.weight is not None else float("-inf")), c.first, c.second)
        )
        yield from comparisons


class StaticOrderScheduler(ProgressiveScheduler):
    """Executes a pre-computed comparison order verbatim (utility for tests/benchmarks)."""

    name = "static_order"

    def __init__(self, order: Sequence[Comparison]) -> None:
        self.order = list(order)

    def schedule(self, data: ERInput, candidates: CandidateSource) -> Iterator[Comparison]:
        yield from self.order
