"""Comparison-cost budgets for progressive ER.

A :class:`Budget` tracks how much of the allotted computing budget has been
consumed.  The unit is abstract "cost": by default every comparison costs 1,
but matchers may charge more (e.g. an expensive oracle), and the cost--benefit
scheduler also charges the cost of *finding* pairs, not only of resolving
them.
"""

from __future__ import annotations

from typing import Optional


class Budget:
    """A consumable budget of comparison cost.

    Parameters
    ----------
    total:
        Total cost available; ``None`` means unlimited (useful for measuring
        the full curve).
    """

    def __init__(self, total: Optional[float] = None) -> None:
        if total is not None and total < 0:
            raise ValueError("budget must be non-negative")
        self.total = total
        self._spent = 0.0

    @property
    def spent(self) -> float:
        return self._spent

    @property
    def remaining(self) -> Optional[float]:
        if self.total is None:
            return None
        return max(0.0, self.total - self._spent)

    @property
    def exhausted(self) -> bool:
        return self.total is not None and self._spent >= self.total

    def can_afford(self, cost: float) -> bool:
        """Whether ``cost`` more units fit in the budget."""
        if self.total is None:
            return True
        return self._spent + cost <= self.total

    def charge(self, cost: float = 1.0) -> bool:
        """Charge ``cost`` units; returns False (and charges nothing) if unaffordable."""
        if cost < 0:
            raise ValueError("cost must be non-negative")
        if not self.can_afford(cost):
            return False
        self._spent += cost
        return True

    def fraction_used(self) -> float:
        """Fraction of the budget consumed (0 when unlimited)."""
        if self.total in (None, 0):
            return 0.0
        return min(1.0, self._spent / self.total)

    def reset(self) -> None:
        self._spent = 0.0

    def __repr__(self) -> str:
        if self.total is None:
            return f"Budget(unlimited, spent={self._spent:.0f})"
        return f"Budget(total={self.total:.0f}, spent={self._spent:.0f})"
