"""Array-backed progressive scheduling engine.

Scheduling was the last object-graph phase of the workflow: every scheduler
materialised a ``List[Comparison]`` (often twice -- meta-blocking built one
sorted list, the scheduler deduplicated and re-sorted it) and the runner drew
the per-pair objects one by one.  :class:`SchedulingEngine` executes the same
schedules over flat ordinal/weight arrays, following the established
two-engine pattern of the blocking, meta-blocking and matching phases:

* ``engine="array"`` (the default) -- the feedback-free library schedulers
  run natively on columns:

  - :class:`~repro.progressive.schedulers.WeightOrderScheduler` orders the
    meta-blocking engine's :class:`~repro.datamodel.pairs.ComparisonColumns`
    with one ``lexsort``/argsort over the ``(weight, first, second)``
    columns (weight ties break on the identifier ranks, exactly the object
    sort key) -- and recognises columns that are already weight-sorted, in
    which case scheduling is a zero-cost pass-through;
  - :class:`~repro.progressive.schedulers.RandomOrderScheduler` shuffles row
    indices with the same seeded Fisher--Yates permutation the object path
    applies to its comparison list;
  - :class:`~repro.progressive.schedulers.StaticOrderScheduler` streams its
    pre-computed order through the row interface (a budget becomes a plain
    slice of the order);
  - :class:`~repro.progressive.sorted_list.SortedListScheduler` emits its
    incrementally widening windows as position pairs over the sorted order,
    with the candidate-restriction set held as packed integer codes;
  - :class:`~repro.progressive.psnm.ProgressiveBlockScheduler` with
    ``promote_on_match=False`` (its feedback hook then never fires) emits
    block-ordered pairs with integer-coded first-occurrence deduplication.

  The scheduled rows feed
  :meth:`~repro.matching.engine.MatchingEngine.decide_pairs` directly in
  batched draws (see :func:`~repro.progressive.runner.run_progressive`), so
  a budgeted run touches only the array prefix it can afford.

* ``engine="object"`` -- delegates to the scheduler's own
  :meth:`~repro.progressive.schedulers.ProgressiveScheduler.schedule`
  generator, which remains the readable reference implementation and the
  oracle of the equivalence suite (``tests/test_scheduling_engine.py``).

Schedulers that adapt to match feedback (progressive sorted neighbourhood,
the cost--benefit scheduler, progressive blocking with promotion) and custom
:class:`~repro.progressive.schedulers.ProgressiveScheduler` implementations
fall back to the object path automatically -- their next draw may depend on
the previous decision, which an up-front array order cannot represent.  Both
engines produce bit-identical schedules: the same comparisons, in the same
order (including order under weight ties), hence the same matches and the
same progressive recall curve.
"""

from __future__ import annotations

import random
from array import array
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.blocking.base import BlockCollection
from repro.blocking.sorted_neighborhood import sorted_order
from repro.datamodel.collection import CleanCleanTask
from repro.datamodel.pairs import (
    Comparison,
    ComparisonColumns,
    OrdinalInterner,
    pair_code,
)
from repro.progressive.psnm import ProgressiveBlockScheduler
from repro.progressive.schedulers import (
    CandidateSource,
    ERInput,
    ProgressiveScheduler,
    RandomOrderScheduler,
    StaticOrderScheduler,
    WeightOrderScheduler,
)
from repro.progressive.sorted_list import SortedListScheduler

#: Execution engines of the scheduling phase.
SCHEDULING_ENGINES = ("array", "object")

#: Row type of an array schedule: (first ordinal, second ordinal, weight).
Row = Tuple[int, int, Optional[float]]


class ScheduledRows:
    """An array schedule: an identifier table plus lazily-yielded ordinal rows.

    ``rows`` yields ``(first, second, weight)`` triples indexing ``ids``;
    generation is lazy, so a budgeted consumer only pays for the prefix it
    draws.  ``descriptions`` (when the columns came from a shared pipeline
    context) is aligned with ``ids`` and lets the executor skip identifier
    resolution entirely.
    """

    __slots__ = ("ids", "rows", "descriptions")

    def __init__(
        self,
        ids: Sequence[str],
        rows: Iterator[Row],
        descriptions: Optional[Sequence] = None,
    ) -> None:
        self.ids = ids
        self.rows = rows
        self.descriptions = descriptions

    def comparisons(self) -> Iterator[Comparison]:
        """Materialise the schedule as :class:`Comparison` objects (lazy)."""
        ids = self.ids
        for first, second, weight in self.rows:
            yield Comparison(ids[first], ids[second], weight=weight)


def _columns_from_blocks(blocks: BlockCollection) -> ComparisonColumns:
    """The distinct comparisons of ``blocks`` as columns, first block wins.

    Row order equals ``BlockCollection.distinct_comparisons()`` (and hence
    ``candidate_comparisons``): blocks in collection order, within-block
    comparison order, first occurrence of every pair kept.
    """
    intern = OrdinalInterner()
    first = array("q")
    second = array("q")
    seen: Set[int] = set()
    add = seen.add
    for block in blocks:
        for id_a, id_b in block.pairs():
            a = intern(id_a)
            b = intern(id_b)
            code = pair_code(a, b)
            if code in seen:
                continue
            add(code)
            first.append(a)
            second.append(b)
    return ComparisonColumns(intern.ids, first, second, None, distinct=True)


class SchedulingEngine:
    """Comparison scheduling with an array and an object (oracle) engine.

    Parameters
    ----------
    scheduler:
        The progressive scheduler whose order is executed.  The array engine
        natively supports the exact library types listed in the module
        docstring; every other scheduler -- subclasses included, whose
        overridden behaviour the columnar path cannot see -- transparently
        falls back to its own ``schedule`` generator, so the engine is
        always safe to use.
    engine:
        ``"array"`` (default) or ``"object"``.

    Notes
    -----
    :attr:`last_engine` reports which engine actually produced the most
    recent schedule (``"array"`` or ``"object"``).
    """

    def __init__(self, scheduler: ProgressiveScheduler, engine: str = "array") -> None:
        if engine not in SCHEDULING_ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; available: {SCHEDULING_ENGINES}"
            )
        self.scheduler = scheduler
        self.engine = engine
        #: engine that actually produced the last schedule
        self.last_engine: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def feedback_free(self) -> bool:
        """Whether the scheduler's order cannot depend on match feedback.

        True when :meth:`ProgressiveScheduler.feedback` is not overridden --
        plus the one instance-level case the type check cannot see:
        :class:`ProgressiveBlockScheduler` with promotion disabled, whose
        overridden hook provably never changes the order.  Feedback-free
        schedules may be drained in batches; adaptive ones must stay on the
        draw-one/decide-one loop.
        """
        scheduler = self.scheduler
        if type(scheduler).feedback is ProgressiveScheduler.feedback:
            return True
        return (
            type(scheduler) is ProgressiveBlockScheduler
            and not scheduler.promote_on_match
        )

    def array_applicable(self, candidates: CandidateSource) -> bool:
        """Whether :meth:`schedule` will run on the array engine for this input."""
        if self.engine != "array":
            return False
        scheduler = self.scheduler
        kind = type(scheduler)
        columnar = isinstance(candidates, (ComparisonColumns, BlockCollection))
        if kind in (WeightOrderScheduler, RandomOrderScheduler):
            return columnar
        if kind is StaticOrderScheduler:
            return True
        if kind is SortedListScheduler:
            return candidates is None or columnar
        if kind is ProgressiveBlockScheduler:
            return not scheduler.promote_on_match and isinstance(
                candidates, BlockCollection
            )
        return False

    # ------------------------------------------------------------------
    def schedule_rows(
        self, data: ERInput, candidates: CandidateSource
    ) -> Optional[ScheduledRows]:
        """The array schedule, or ``None`` when the object engine must run."""
        if not self.array_applicable(candidates):
            self.last_engine = "object"
            return None
        self.last_engine = "array"
        scheduler = self.scheduler
        kind = type(scheduler)
        if kind is WeightOrderScheduler:
            return self._rows_weight_order(candidates)
        if kind is RandomOrderScheduler:
            return self._rows_random(scheduler, candidates)
        if kind is StaticOrderScheduler:
            return self._rows_static(scheduler)
        if kind is SortedListScheduler:
            return self._rows_sorted_list(scheduler, data, candidates)
        return self._rows_progressive_blocks(candidates)

    def schedule(
        self, data: ERInput, candidates: CandidateSource
    ) -> Iterator[Comparison]:
        """The scheduled comparisons, whichever engine produces them."""
        rows = self.schedule_rows(data, candidates)
        if rows is None:
            return self.scheduler.schedule(data, candidates)
        return rows.comparisons()

    # ------------------------------------------------------------------
    # native array schedules
    # ------------------------------------------------------------------
    @staticmethod
    def _as_columns(candidates: CandidateSource) -> ComparisonColumns:
        if isinstance(candidates, ComparisonColumns):
            return candidates.deduplicated()
        return _columns_from_blocks(candidates)

    @staticmethod
    def _column_rows(columns: ComparisonColumns) -> Iterator[Row]:
        if columns.weights is None:
            for f, s in zip(columns.first, columns.second):
                yield f, s, None
        else:
            yield from zip(columns.first, columns.second, columns.weights)

    def _rows_weight_order(self, candidates: CandidateSource) -> ScheduledRows:
        columns = self._as_columns(candidates).weight_sorted()
        return ScheduledRows(
            columns.ids, self._column_rows(columns), columns.descriptions
        )

    def _rows_random(
        self, scheduler: RandomOrderScheduler, candidates: CandidateSource
    ) -> ScheduledRows:
        columns = self._as_columns(candidates)
        # rng.shuffle permutes by index swaps only, so shuffling the row
        # indices yields exactly the permutation the object path applies to
        # its materialised comparison list
        order = list(range(len(columns)))
        random.Random(scheduler.seed).shuffle(order)
        first = columns.first
        second = columns.second
        weights = columns.weights

        def rows() -> Iterator[Row]:
            for i in order:
                yield first[i], second[i], weights[i] if weights is not None else None

        return ScheduledRows(columns.ids, rows(), columns.descriptions)

    @staticmethod
    def _rows_static(scheduler: StaticOrderScheduler) -> ScheduledRows:
        intern = OrdinalInterner()

        def rows() -> Iterator[Row]:
            for comparison in scheduler.order:
                yield intern(comparison.first), intern(comparison.second), comparison.weight

        return ScheduledRows(intern.ids, rows())

    @staticmethod
    def _rows_sorted_list(
        scheduler: SortedListScheduler, data: ERInput, candidates: CandidateSource
    ) -> ScheduledRows:
        entries = sorted_order(data, scheduler.sorting_key)
        identifiers = [identifier for _, identifier in entries]
        n = len(identifiers)
        if n < 2:
            return ScheduledRows(identifiers, iter(()))

        allowed: Optional[Set[int]] = None
        if scheduler.restrict_to_candidates and candidates is not None:
            position = {identifier: i for i, identifier in enumerate(identifiers)}
            allowed = set()
            if isinstance(candidates, ComparisonColumns):
                ids = candidates.ids
                pair_source = (
                    (ids[f], ids[s])
                    for f, s in zip(candidates.first, candidates.second)
                )
            else:
                pair_source = (
                    pair for block in candidates for pair in block.pairs()
                )
            for id_a, id_b in pair_source:
                a = position.get(id_a)
                b = position.get(id_b)
                if a is None or b is None:
                    continue  # never emittable by the window sweep anyway
                allowed.add(pair_code(a, b))

        bilateral = data if isinstance(data, CleanCleanTask) else None
        limit = scheduler.max_distance if scheduler.max_distance is not None else n - 1

        def rows() -> Iterator[Row]:
            emitted: Set[int] = set()
            for distance in range(1, min(limit, n - 1) + 1):
                for index in range(0, n - distance):
                    partner = index + distance
                    if bilateral is not None and not bilateral.is_valid_pair(
                        identifiers[index], identifiers[partner]
                    ):
                        continue
                    code = pair_code(index, partner)
                    if allowed is not None and code not in allowed:
                        continue
                    if code in emitted:
                        continue
                    emitted.add(code)
                    yield index, partner, None

        return ScheduledRows(identifiers, rows())

    @staticmethod
    def _rows_progressive_blocks(candidates: BlockCollection) -> ScheduledRows:
        ordered_blocks = sorted(
            candidates, key=lambda block: (block.num_comparisons(), block.key)
        )
        intern = OrdinalInterner()

        def rows() -> Iterator[Row]:
            seen: Set[int] = set()
            add = seen.add
            for block in ordered_blocks:
                for id_a, id_b in block.pairs():
                    a = intern(id_a)
                    b = intern(id_b)
                    code = pair_code(a, b)
                    if code in seen:
                        continue
                    add(code)
                    yield a, b, None

        return ScheduledRows(intern.ids, rows())
