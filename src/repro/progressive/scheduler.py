"""The windowed cost--benefit scheduler with an influence graph.

This scheduler follows the progressive approach to relational ER: candidate
pairs are the nodes of an *influence graph*, with an edge between two pairs
when resolving one influences the resolution of the other (here: the pairs
share a description, or their descriptions are connected by a relationship).
The total cost budget is divided into windows of equal cost; for every window
the scheduler selects, among the unresolved pairs, the set with the highest
*expected benefit* that fits in the window.  The benefit of a pair combines

* its base matching likelihood (its meta-blocking weight, normalised), and
* an influence bonus proportional to the number of already-resolved matches
  among its influencing neighbours -- so once matches are found, the pairs
  they influence rise to the top of subsequent windows (the update phase).

The scheduler degrades gracefully to a static best-first order when
``influence_weight`` is 0 (used as an ablation in benchmark E9).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datamodel.pairs import Comparison
from repro.matching.matchers import MatchDecision
from repro.progressive.schedulers import (
    CandidateSource,
    ERInput,
    ProgressiveScheduler,
    candidate_comparisons,
)


class CostBenefitScheduler(ProgressiveScheduler):
    """Windowed cost--benefit scheduling over an influence graph of candidate pairs.

    Parameters
    ----------
    window_size:
        Cost (number of comparisons, assuming unit cost) allotted to each
        scheduling window.
    influence_weight:
        Weight of the influence bonus relative to the base likelihood.
    use_relationships:
        Whether relationship links between descriptions also create influence
        edges between their candidate pairs (in addition to shared
        descriptions).
    """

    name = "cost_benefit"

    def __init__(
        self,
        window_size: int = 50,
        influence_weight: float = 0.5,
        use_relationships: bool = True,
    ) -> None:
        if window_size < 1:
            raise ValueError("window size must be at least 1")
        if influence_weight < 0:
            raise ValueError("influence weight must be non-negative")
        self.window_size = window_size
        self.influence_weight = influence_weight
        self.use_relationships = use_relationships
        # state shared with feedback()
        self._match_results: Dict[Tuple[str, str], bool] = {}
        self.windows_executed = 0

    # ------------------------------------------------------------------
    def feedback(self, decision: MatchDecision) -> None:
        self._match_results[decision.pair] = decision.is_match

    # ------------------------------------------------------------------
    def _relationship_neighbours(self, data: ERInput) -> Dict[str, Set[str]]:
        """identifier -> identifiers related through an entity relationship."""
        neighbours: Dict[str, Set[str]] = {}
        descriptions = list(data)
        known = {description.identifier for description in descriptions}
        for description in descriptions:
            for target in description.related():
                if target in known:
                    neighbours.setdefault(description.identifier, set()).add(target)
                    neighbours.setdefault(target, set()).add(description.identifier)
        return neighbours

    def _build_influence(
        self, data: ERInput, comparisons: Sequence[Comparison]
    ) -> Dict[Tuple[str, str], Set[Tuple[str, str]]]:
        """Influence edges between candidate pairs."""
        pairs_of_identifier: Dict[str, List[Tuple[str, str]]] = {}
        for comparison in comparisons:
            for identifier in comparison.pair:
                pairs_of_identifier.setdefault(identifier, []).append(comparison.pair)

        influence: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {
            comparison.pair: set() for comparison in comparisons
        }
        # pairs sharing a description influence each other
        for identifier, pairs in pairs_of_identifier.items():
            for i in range(len(pairs)):
                for j in range(i + 1, len(pairs)):
                    influence[pairs[i]].add(pairs[j])
                    influence[pairs[j]].add(pairs[i])

        if self.use_relationships:
            neighbours = self._relationship_neighbours(data)
            for comparison in comparisons:
                first, second = comparison.pair
                related = neighbours.get(first, set()) | neighbours.get(second, set())
                for related_id in related:
                    for other_pair in pairs_of_identifier.get(related_id, ()):
                        if other_pair != comparison.pair:
                            influence[comparison.pair].add(other_pair)
                            influence[other_pair].add(comparison.pair)
        return influence

    # ------------------------------------------------------------------
    def schedule(self, data: ERInput, candidates: CandidateSource) -> Iterator[Comparison]:
        comparisons = candidate_comparisons(candidates)
        if not comparisons:
            return
        self._match_results.clear()
        self.windows_executed = 0

        # normalised base likelihoods from the comparison weights
        weights = [c.weight if c.weight is not None else 0.0 for c in comparisons]
        max_weight = max(weights) if weights else 0.0
        base_benefit: Dict[Tuple[str, str], float] = {}
        comparison_by_pair: Dict[Tuple[str, str], Comparison] = {}
        for comparison, weight in zip(comparisons, weights):
            base_benefit[comparison.pair] = (weight / max_weight) if max_weight > 0 else 0.0
            comparison_by_pair[comparison.pair] = comparison

        influence = self._build_influence(data, comparisons)
        unresolved: Set[Tuple[str, str]] = set(base_benefit)

        while unresolved:
            # benefit = base likelihood + influence bonus from resolved matches
            def benefit(pair: Tuple[str, str]) -> float:
                bonus = 0.0
                if self.influence_weight > 0:
                    influencing = influence.get(pair, ())
                    resolved_matches = sum(
                        1 for other in influencing if self._match_results.get(other)
                    )
                    if influencing:
                        bonus = self.influence_weight * (resolved_matches / len(influencing))
                        # a direct resolved match sharing a description is the strongest signal
                        if resolved_matches:
                            bonus += self.influence_weight * 0.5
                return base_benefit[pair] + bonus

            window = sorted(unresolved, key=lambda p: (-benefit(p), p))[: self.window_size]
            if not window:
                break
            self.windows_executed += 1
            for pair in window:
                unresolved.discard(pair)
                yield comparison_by_pair[pair]
