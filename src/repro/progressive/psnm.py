"""Progressive sorted neighbourhood (with local lookahead) and progressive blocking.

Two adaptive schedulers in the spirit of progressive duplicate detection:

* :class:`ProgressiveSortedNeighborhood` extends the sorted-list heuristic
  with a *local lookahead*: if the descriptions at sorted positions ``(i, j)``
  are found to match, the descriptions at ``(i+1, j)`` and ``(i, j+1)`` are
  compared immediately, because matches tend to appear in dense areas of the
  initial sorting.
* :class:`ProgressiveBlockScheduler` works on a block collection instead of a
  sorted list: blocks are visited in increasing cardinality order (small
  blocks are cheapest and densest in matches), and whenever a comparison of a
  block produces a match, the remaining comparisons of that block are
  promoted ahead of all other blocks -- the block-level analogue of the
  lookahead.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterator, List, Optional, Set, Tuple

from repro.blocking.base import BlockCollection
from repro.blocking.sorted_neighborhood import default_sorting_key, sorted_order
from repro.datamodel.collection import CleanCleanTask
from repro.datamodel.description import EntityDescription
from repro.datamodel.pairs import Comparison, canonical_pair
from repro.matching.matchers import MatchDecision
from repro.progressive.schedulers import CandidateSource, ERInput, ProgressiveScheduler, candidate_comparisons


class ProgressiveSortedNeighborhood(ProgressiveScheduler):
    """Sorted-list scheduling with local lookahead on matches.

    Parameters
    ----------
    sorting_key:
        Key function for the initial sorting.
    max_distance:
        Maximum sorted distance explored by the base (non-lookahead) sweep.
    lookahead:
        Whether the local lookahead is enabled; disabling it reduces the
        scheduler to the plain incrementally-widening sorted list (used as an
        ablation in benchmark E8).
    restrict_to_candidates:
        When true, only pairs present in the supplied candidate source are
        emitted.
    """

    name = "progressive_sorted_neighborhood"

    def __init__(
        self,
        sorting_key: Optional[Callable[[EntityDescription], str]] = None,
        max_distance: Optional[int] = None,
        lookahead: bool = True,
        restrict_to_candidates: bool = False,
    ) -> None:
        self.sorting_key = sorting_key or default_sorting_key
        self.max_distance = max_distance
        self.lookahead = lookahead
        self.restrict_to_candidates = restrict_to_candidates
        # state shared between schedule() and feedback()
        self._position_of: Dict[str, int] = {}
        self._identifiers: List[str] = []
        self._priority: Deque[Tuple[str, str]] = deque()
        self._emitted: Set[Tuple[str, str]] = set()
        self._allowed: Optional[Set[Tuple[str, str]]] = None
        self._bilateral_data: Optional[CleanCleanTask] = None

    # ------------------------------------------------------------------
    def feedback(self, decision: MatchDecision) -> None:
        """On a match at positions (i, j), enqueue (i+1, j) and (i, j+1)."""
        if not self.lookahead or not decision.is_match:
            return
        first, second = decision.pair
        position_a = self._position_of.get(first)
        position_b = self._position_of.get(second)
        if position_a is None or position_b is None:
            return
        i, j = sorted((position_a, position_b))
        for next_i, next_j in ((i + 1, j), (i, j + 1)):
            if next_i == next_j:
                continue
            if 0 <= next_i < len(self._identifiers) and 0 <= next_j < len(self._identifiers):
                candidate = canonical_pair(self._identifiers[next_i], self._identifiers[next_j])
                if candidate not in self._emitted and self._pair_is_valid(candidate):
                    self._priority.append(candidate)

    def _pair_is_valid(self, pair: Tuple[str, str]) -> bool:
        if self._allowed is not None and pair not in self._allowed:
            return False
        if self._bilateral_data is not None and not self._bilateral_data.is_valid_pair(*pair):
            return False
        return True

    # ------------------------------------------------------------------
    def schedule(self, data: ERInput, candidates: CandidateSource) -> Iterator[Comparison]:
        entries = sorted_order(data, self.sorting_key)
        self._identifiers = [identifier for _, identifier in entries]
        self._position_of = {identifier: index for index, identifier in enumerate(self._identifiers)}
        self._priority.clear()
        self._emitted.clear()
        self._bilateral_data = data if isinstance(data, CleanCleanTask) else None
        self._allowed = None
        if self.restrict_to_candidates and candidates is not None:
            self._allowed = {comparison.pair for comparison in candidate_comparisons(candidates)}

        n = len(self._identifiers)
        if n < 2:
            return
        limit = self.max_distance if self.max_distance is not None else n - 1

        def emit(pair: Tuple[str, str]) -> Optional[Comparison]:
            if pair in self._emitted or not self._pair_is_valid(pair):
                return None
            self._emitted.add(pair)
            return Comparison(pair[0], pair[1])

        for distance in range(1, min(limit, n - 1) + 1):
            for index in range(0, n - distance):
                # priority (lookahead) pairs pre-empt the regular sweep
                while self._priority:
                    priority_pair = self._priority.popleft()
                    comparison = emit(priority_pair)
                    if comparison is not None:
                        yield comparison
                pair = canonical_pair(self._identifiers[index], self._identifiers[index + distance])
                comparison = emit(pair)
                if comparison is not None:
                    yield comparison
        # drain any remaining lookahead pairs
        while self._priority:
            comparison = emit(self._priority.popleft())
            if comparison is not None:
                yield comparison


class ProgressiveBlockScheduler(ProgressiveScheduler):
    """Block-at-a-time scheduling with match-driven block promotion.

    Blocks are initially ranked by ascending cardinality (small blocks are the
    most match-dense per comparison).  Every match reported through
    :meth:`feedback` promotes the remaining comparisons of the block that
    produced it to the front of the schedule.
    """

    name = "progressive_blocking"

    def __init__(self, promote_on_match: bool = True) -> None:
        self.promote_on_match = promote_on_match
        self._promoted: Deque[Comparison] = deque()
        self._pending_by_block: Dict[str, Deque[Comparison]] = {}
        self._block_of_pair: Dict[Tuple[str, str], str] = {}
        self._emitted: Set[Tuple[str, str]] = set()

    def feedback(self, decision: MatchDecision) -> None:
        if not self.promote_on_match or not decision.is_match:
            return
        block_id = self._block_of_pair.get(decision.pair)
        if block_id is None:
            return
        pending = self._pending_by_block.get(block_id)
        if not pending:
            return
        while pending:
            self._promoted.append(pending.popleft())

    def schedule(self, data: ERInput, candidates: CandidateSource) -> Iterator[Comparison]:
        if not isinstance(candidates, BlockCollection):
            # fall back to plain ordering when no block structure is available
            for comparison in candidate_comparisons(candidates):
                if comparison.pair not in self._emitted:
                    self._emitted.add(comparison.pair)
                    yield comparison
            return

        self._promoted.clear()
        self._pending_by_block.clear()
        self._block_of_pair.clear()
        self._emitted.clear()

        ordered_blocks = sorted(
            candidates, key=lambda block: (block.num_comparisons(), block.key)
        )
        seen_pairs: Set[Tuple[str, str]] = set()
        for block in ordered_blocks:
            queue: Deque[Comparison] = deque()
            for comparison in block.comparisons():
                if comparison.pair in seen_pairs:
                    continue
                seen_pairs.add(comparison.pair)
                queue.append(comparison)
                self._block_of_pair[comparison.pair] = block.key
            if queue:
                self._pending_by_block[block.key] = queue

        block_order = [block.key for block in ordered_blocks if block.key in self._pending_by_block]
        for block_id in block_order:
            pending = self._pending_by_block.get(block_id)
            while pending or self._promoted:
                # promoted comparisons (from blocks that just produced a match) go first
                if self._promoted:
                    comparison = self._promoted.popleft()
                elif pending:
                    comparison = pending.popleft()
                else:
                    break
                if comparison.pair in self._emitted:
                    continue
                self._emitted.add(comparison.pair)
                yield comparison
        # drain leftovers (blocks fully promoted elsewhere)
        for pending in self._pending_by_block.values():
            while pending:
                comparison = pending.popleft()
                if comparison.pair not in self._emitted:
                    self._emitted.add(comparison.pair)
                    yield comparison
