"""The pay-as-you-go "hierarchy of record partitions" hint.

A hierarchy of partitions is built by applying different (increasingly loose)
similarity criteria: descriptions that agree on a long prefix of their sorting
key (or, equivalently, are similar under a tight threshold) are grouped at the
lower levels of the hierarchy, while looser criteria produce the coarser upper
levels.  Traversing the hierarchy bottom-up and emitting the comparisons of
each level before moving to its parent favours the resolution of highly
similar descriptions first, which is exactly the progressive behaviour the
heuristic is designed for.

The concrete partitioning criterion used here is the length of the shared
prefix of the (normalised, schema-agnostic) sorting key: level 0 groups
descriptions sharing a prefix of ``max_prefix`` characters, level 1 a prefix
of ``max_prefix - step`` characters, and so on until the single-character
prefix of the top level.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.blocking.sorted_neighborhood import default_sorting_key
from repro.datamodel.collection import CleanCleanTask
from repro.datamodel.description import EntityDescription
from repro.datamodel.pairs import Comparison, canonical_pair
from repro.progressive.schedulers import CandidateSource, ERInput, ProgressiveScheduler, candidate_comparisons


class PartitionHierarchyScheduler(ProgressiveScheduler):
    """Bottom-up traversal of a prefix-based hierarchy of partitions.

    Parameters
    ----------
    sorting_key:
        Function mapping a description to the string on which the hierarchy
        is built.
    max_prefix:
        Prefix length of the deepest (tightest) level.
    step:
        How many characters of the prefix are dropped per level when moving up.
    restrict_to_candidates:
        When true, only pairs also present in the candidate source are
        emitted.
    """

    name = "partition_hierarchy"

    def __init__(
        self,
        sorting_key: Optional[Callable[[EntityDescription], str]] = None,
        max_prefix: int = 12,
        step: int = 3,
        restrict_to_candidates: bool = True,
    ) -> None:
        if max_prefix < 1:
            raise ValueError("max_prefix must be at least 1")
        if step < 1:
            raise ValueError("step must be at least 1")
        self.sorting_key = sorting_key or default_sorting_key
        self.max_prefix = max_prefix
        self.step = step
        self.restrict_to_candidates = restrict_to_candidates

    def _levels(self) -> List[int]:
        """Prefix lengths from the deepest level to the top (always ending at 1)."""
        lengths = list(range(self.max_prefix, 0, -self.step))
        if lengths[-1] != 1:
            lengths.append(1)
        return lengths

    def schedule(self, data: ERInput, candidates: CandidateSource) -> Iterator[Comparison]:
        descriptions = list(data)
        keys: Dict[str, str] = {
            description.identifier: self.sorting_key(description).replace(" ", "")
            for description in descriptions
        }

        allowed = None
        if self.restrict_to_candidates and candidates is not None:
            allowed = {comparison.pair for comparison in candidate_comparisons(candidates)}

        bilateral = isinstance(data, CleanCleanTask)
        emitted = set()

        for prefix_length in self._levels():
            partitions: Dict[str, List[str]] = {}
            for identifier, key in keys.items():
                prefix = key[:prefix_length]
                if not prefix:
                    continue
                partitions.setdefault(prefix, []).append(identifier)
            # deeper levels (longer prefixes) come first; within a level process
            # smaller partitions first (their members are more distinctive)
            for prefix in sorted(partitions, key=lambda p: (len(partitions[p]), p)):
                members = sorted(partitions[prefix])
                for i in range(len(members)):
                    for j in range(i + 1, len(members)):
                        first, second = members[i], members[j]
                        if bilateral and not data.is_valid_pair(first, second):
                            continue
                        pair = canonical_pair(first, second)
                        if pair in emitted:
                            continue
                        if allowed is not None and pair not in allowed:
                            continue
                        emitted.add(pair)
                        yield Comparison(pair[0], pair[1])
