"""Progressive (pay-as-you-go) entity resolution (Section IV of the tutorial).

Progressive ER maximises the number of matches reported within a limited
computing budget by adding a *scheduling* phase to the ER workflow: it decides
which candidate comparisons to execute and in what order, favouring the most
promising ones, and optionally an *update* phase that propagates matching
results so that the next schedule promotes comparisons influenced by them.

Schedulers implemented:

* :class:`~repro.progressive.schedulers.RandomOrderScheduler` and
  :class:`~repro.progressive.schedulers.WeightOrderScheduler` -- baselines
  (arbitrary order, meta-blocking-weight order).
* :class:`~repro.progressive.hierarchy.PartitionHierarchyScheduler` -- the
  pay-as-you-go "hierarchy of record partitions" hint.
* :class:`~repro.progressive.sorted_list.SortedListScheduler` -- the
  pay-as-you-go "sorted list of records" hint with incrementally widening
  windows.
* :class:`~repro.progressive.psnm.ProgressiveSortedNeighborhood` -- the
  progressive sorted-neighbourhood method with local lookahead.
* :class:`~repro.progressive.psnm.ProgressiveBlockScheduler` -- progressive
  block scheduling (block-pair ordering with match feedback).
* :class:`~repro.progressive.scheduler.CostBenefitScheduler` -- the windowed
  cost--benefit scheduler with an influence graph and an update phase.

:func:`~repro.progressive.runner.run_progressive` executes any scheduler
against a matcher under a comparison budget and records the progressive
recall curve.
"""

from repro.progressive.budget import Budget
from repro.progressive.hierarchy import PartitionHierarchyScheduler
from repro.progressive.psnm import ProgressiveBlockScheduler, ProgressiveSortedNeighborhood
from repro.progressive.runner import ProgressiveResult, run_progressive
from repro.progressive.schedulers import (
    ProgressiveScheduler,
    RandomOrderScheduler,
    WeightOrderScheduler,
)
from repro.progressive.scheduler import CostBenefitScheduler
from repro.progressive.sorted_list import SortedListScheduler

__all__ = [
    "Budget",
    "CostBenefitScheduler",
    "PartitionHierarchyScheduler",
    "ProgressiveBlockScheduler",
    "ProgressiveResult",
    "ProgressiveScheduler",
    "ProgressiveSortedNeighborhood",
    "RandomOrderScheduler",
    "SortedListScheduler",
    "WeightOrderScheduler",
    "run_progressive",
]
