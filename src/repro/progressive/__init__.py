"""Progressive (pay-as-you-go) entity resolution (Section IV of the tutorial).

Progressive ER maximises the number of matches reported within a limited
computing budget by adding a *scheduling* phase to the ER workflow: it decides
which candidate comparisons to execute and in what order, favouring the most
promising ones, and optionally an *update* phase that propagates matching
results so that the next schedule promotes comparisons influenced by them.

Schedulers implemented:

* :class:`~repro.progressive.schedulers.RandomOrderScheduler` and
  :class:`~repro.progressive.schedulers.WeightOrderScheduler` -- baselines
  (arbitrary order, meta-blocking-weight order).
* :class:`~repro.progressive.hierarchy.PartitionHierarchyScheduler` -- the
  pay-as-you-go "hierarchy of record partitions" hint.
* :class:`~repro.progressive.sorted_list.SortedListScheduler` -- the
  pay-as-you-go "sorted list of records" hint with incrementally widening
  windows.
* :class:`~repro.progressive.psnm.ProgressiveSortedNeighborhood` -- the
  progressive sorted-neighbourhood method with local lookahead.
* :class:`~repro.progressive.psnm.ProgressiveBlockScheduler` -- progressive
  block scheduling (block-pair ordering with match feedback).
* :class:`~repro.progressive.scheduler.CostBenefitScheduler` -- the windowed
  cost--benefit scheduler with an influence graph and an update phase.

:func:`~repro.progressive.runner.run_progressive` executes any scheduler
against a matcher under a comparison budget and records the progressive
recall curve.

Scheduling engines
------------------

Like the blocking, meta-blocking and matching phases, scheduling executes
behind a two-engine interface,
:class:`~repro.progressive.engine.SchedulingEngine`:

* ``engine="array"`` (the workflow default) runs the feedback-free library
  schedulers -- weight-ordered, static-order, random-order, sorted-list and
  progressive-block (with promotion disabled) -- over flat ordinal/weight
  arrays: meta-blocking hands its retained edges over as
  :class:`~repro.datamodel.pairs.ComparisonColumns` (one identifier table
  plus ``(first, second, weight)`` columns), ordering is one argsort or a
  lazy row generator, a comparison budget becomes a slice of the ordered
  rows, and :func:`~repro.progressive.runner.run_progressive` feeds the
  drawn rows straight into
  :meth:`~repro.matching.engine.MatchingEngine.decide_pairs` without ever
  materialising scheduled ``Comparison`` objects.
* ``engine="object"`` delegates to the scheduler's own ``schedule``
  generator -- the readable reference implementation and the oracle of the
  equivalence suite (``tests/test_scheduling_engine.py``).

**Fallback rules.**  Adaptive schedulers (progressive sorted neighbourhood,
the cost--benefit scheduler, progressive blocking with match promotion),
custom :class:`~repro.progressive.schedulers.ProgressiveScheduler`
implementations and subclasses of the native types always run on the object
path, whatever engine is configured: their order may depend on match
feedback or overridden behaviour that an up-front array order cannot
represent.  Both engines produce bit-identical schedules -- the same
comparisons in the same order (including order under weight ties), hence
the same matches and the same progressive recall curve -- so swapping them
never changes a workflow's output, only its speed.
"""

from repro.progressive.budget import Budget
from repro.progressive.engine import ScheduledRows, SchedulingEngine
from repro.progressive.hierarchy import PartitionHierarchyScheduler
from repro.progressive.psnm import ProgressiveBlockScheduler, ProgressiveSortedNeighborhood
from repro.progressive.runner import ProgressiveResult, run_progressive
from repro.progressive.schedulers import (
    ProgressiveScheduler,
    RandomOrderScheduler,
    StaticOrderScheduler,
    WeightOrderScheduler,
)
from repro.progressive.scheduler import CostBenefitScheduler
from repro.progressive.sorted_list import SortedListScheduler

__all__ = [
    "Budget",
    "CostBenefitScheduler",
    "PartitionHierarchyScheduler",
    "ProgressiveBlockScheduler",
    "ProgressiveResult",
    "ProgressiveScheduler",
    "ProgressiveSortedNeighborhood",
    "RandomOrderScheduler",
    "ScheduledRows",
    "SchedulingEngine",
    "SortedListScheduler",
    "StaticOrderScheduler",
    "WeightOrderScheduler",
    "run_progressive",
]
