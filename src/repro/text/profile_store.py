"""Columnar profile store: interned tokens and cached per-entity arrays.

The pairwise matchers re-derive the token profile of a description on every
comparison: :class:`~repro.matching.matchers.ProfileSimilarityMatcher` calls
``token_set`` twice per pair and the TF-IDF path re-tokenises and re-weights
both descriptions through ``TfIdfVectorizer.transform``.  A description that
appears in *K* candidate pairs therefore pays its tokenisation and
normalisation cost *K* times, which dominates the matching phase once
meta-blocking has made candidate generation cheap.

:class:`ProfileStore` amortises that cost to once per description.  Tokens are
interned to dense integer ids shared across the whole collection, and for
every description the store caches a :class:`Profile`:

* the **sorted token-id array** (``array('q')``) plus the id *set*, which turn
  every set similarity (Jaccard, Dice, overlap, cosine) into integer
  intersection counting;
* in TF-IDF mode, the **aligned weight array** with the same term-frequency
  scaling and smoothed IDF as ``TfIdfVectorizer.transform``, plus the
  **L2 norm** of the vector, precomputed once with :func:`math.fsum` (whose
  exactly rounded result is independent of accumulation order, so the cached
  norm is bit-identical to the one the pairwise oracle derives from its
  ``dict`` vector).

Profiles are computed lazily (a description that never reaches the matcher
never pays) and cached by identifier.  The cache remembers which description
*object* produced each profile: when a different object arrives under the same
identifier -- e.g. after a merge replaced the description -- the stale entry is
recomputed automatically, and :meth:`ProfileStore.invalidate` drops a single
entry explicitly without touching the rest of the store.

When NumPy is importable, :attr:`Profile.np_ids` / :attr:`Profile.np_weights`
expose the same columns as zero-copy ``int64`` / ``float64`` views for the
vectorised scoring passes of :class:`~repro.matching.engine.MatchingEngine`.
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, Iterable, List, Optional, Tuple

from repro.datamodel.description import EntityDescription
from repro.text.tokenize import token_set
from repro.text.vectorizer import SparseVector, TfIdfVectorizer

try:  # pragma: no cover - exercised implicitly when numpy is installed
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class Profile:
    """The cached columnar view of one description's token profile.

    Attributes
    ----------
    identifier:
        Identifier of the profiled description.
    token_ids:
        Sorted ``array('q')`` of interned token ids (distinct tokens).
    weights:
        TF-IDF weight ``array('d')`` aligned with ``token_ids``; ``None`` in
        set mode.
    norm:
        Precomputed L2 norm of ``weights`` (``0.0`` in set mode), computed
        with :func:`math.fsum` so it is bit-identical to the norm of the
        equivalent ``dict`` vector regardless of token order.

    The derived views (:attr:`id_set`, :attr:`weight_map`, :attr:`np_ids`,
    :attr:`np_weights`) are built lazily and cached: only the scoring path
    that actually runs pays for its view, so e.g. the default NumPy TF-IDF
    pass never materialises the per-profile hash tables of the pure-Python
    paths.
    """

    __slots__ = (
        "identifier",
        "token_ids",
        "weights",
        "norm",
        "_id_set",
        "_weight_map",
        "_np_ids",
        "_np_weights",
    )

    def __init__(
        self,
        identifier: str,
        token_ids: array,
        weights: Optional[array] = None,
        norm: float = 0.0,
    ) -> None:
        self.identifier = identifier
        self.token_ids = token_ids
        self.weights = weights
        self.norm = norm
        self._id_set = None
        self._weight_map = None
        self._np_ids = None
        self._np_weights = None

    def __len__(self) -> int:
        return len(self.token_ids)

    @property
    def id_set(self) -> frozenset:
        """The token ids as a ``frozenset`` for C-speed set intersection."""
        if self._id_set is None:
            self._id_set = frozenset(self.token_ids)
        return self._id_set

    @property
    def weight_map(self) -> Optional[SparseVector]:
        """Token id -> weight as a SparseVector carrying the precomputed
        norm, so the pure-Python cosine pass can feed it straight into
        :func:`repro.text.vectorizer.weighted_cosine`; ``None`` in set mode."""
        if self._weight_map is None and self.weights is not None:
            self._weight_map = SparseVector(
                zip(self.token_ids, self.weights), norm=self.norm
            )
        return self._weight_map

    @property
    def np_ids(self):
        """Zero-copy ``int64`` view of :attr:`token_ids` (NumPy only)."""
        if self._np_ids is None:
            if len(self.token_ids) == 0:
                self._np_ids = _np.zeros(0, dtype=_np.int64)
            else:
                self._np_ids = _np.frombuffer(self.token_ids, dtype=_np.int64)
        return self._np_ids

    @property
    def np_weights(self):
        """Zero-copy ``float64`` view of :attr:`weights` (NumPy only)."""
        if self._np_weights is None:
            if self.weights is None or len(self.weights) == 0:
                self._np_weights = _np.zeros(0, dtype=_np.float64)
            else:
                self._np_weights = _np.frombuffer(self.weights, dtype=_np.float64)
        return self._np_weights


class ProfileStore:
    """Interns tokens once per collection and caches per-description columns.

    A store instance mirrors the configuration of exactly one matcher:

    * **set mode** (``vectorizer=None``) -- profiles are the distinct tokens of
      ``token_set(description.values(), stop_words, min_length)``, matching
      :class:`~repro.matching.matchers.ProfileSimilarityMatcher`'s
      un-vectorised path;
    * **TF-IDF mode** (``vectorizer`` given) -- profiles additionally carry
      the weight column and norm of ``vectorizer.transform(description)``,
      taken directly from the transform output, so the columns hold
      bit-identical floats by construction.

    Parameters
    ----------
    stop_words / min_token_length:
        Set-mode tokenisation options (ignored in TF-IDF mode, exactly as the
        pairwise matcher ignores them when a vectoriser is present).
    vectorizer:
        Optional fitted :class:`~repro.text.vectorizer.TfIdfVectorizer`.
    context:
        Optional shared :class:`~repro.core.context.PipelineContext`.  When
        given, the store delegates token interning to the context's
        vocabulary and builds the profile of every description the context
        owns straight from the interned columns -- no re-tokenisation, same
        floats (counts and document frequencies are exact integers, the
        weight/norm arithmetic is the very expression of
        ``TfIdfVectorizer.transform`` and :func:`~repro.text.vectorizer.l2_norm`).
        Descriptions outside the context (e.g. transient merged descriptions
        of the update phase, or a replaced object reusing a known
        identifier) transparently take the tokenising path.
    """

    def __init__(
        self,
        stop_words: Optional[Iterable[str]] = None,
        min_token_length: int = 1,
        vectorizer: Optional[TfIdfVectorizer] = None,
        context=None,
    ) -> None:
        self.stop_words = frozenset(stop_words) if stop_words else frozenset()
        self.min_token_length = min_token_length
        self.vectorizer = vectorizer
        self.context = context
        self._token_ids: Dict[str, int] = {}
        self._tokens: List[str] = []
        #: token id -> idf weight column of the configured vectorizer,
        #: extended lazily (context mode only)
        self._idf: array = array("d")
        #: identifier -> (source description, profile); the source reference
        #: detects stale entries when a new object reuses an identifier
        self._profiles: Dict[str, Tuple[EntityDescription, Profile]] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # token interning
    # ------------------------------------------------------------------
    def intern(self, token: str) -> int:
        """Return the dense integer id of ``token``, assigning one if new."""
        if self.context is not None:
            return self.context.intern(token)
        token_id = self._token_ids.get(token)
        if token_id is None:
            token_id = len(self._tokens)
            self._token_ids[token] = token_id
            self._tokens.append(token)
        return token_id

    def token(self, token_id: int) -> str:
        """Inverse of :meth:`intern`."""
        if self.context is not None:
            return self.context.token(token_id)
        return self._tokens[token_id]

    @property
    def vocabulary_size(self) -> int:
        if self.context is not None:
            return self.context.vocabulary_size
        return len(self._tokens)

    @property
    def mode(self) -> str:
        return "tfidf" if self.vectorizer is not None else "set"

    def __len__(self) -> int:
        return len(self._profiles)

    # ------------------------------------------------------------------
    # profiles
    # ------------------------------------------------------------------
    def profile(self, description: EntityDescription) -> Profile:
        """The cached :class:`Profile` of ``description`` (built on first use).

        The cache is keyed by identifier but verified against the description
        object: a *different* object under a known identifier (a merged or
        otherwise replaced description) transparently recomputes the entry, so
        callers never observe a stale profile.
        """
        entry = self._profiles.get(description.identifier)
        if entry is not None and entry[0] is description:
            self.hits += 1
            return entry[1]
        self.misses += 1
        profile = self._build(description)
        self._profiles[description.identifier] = (description, profile)
        return profile

    def invalidate(self, identifier: str) -> bool:
        """Drop the cached profile of ``identifier``; other entries are kept.

        Returns whether an entry existed.  Used by the update/iterate phase:
        merging a description only invalidates that entity's store entry.
        """
        return self._profiles.pop(identifier, None) is not None

    def clear(self) -> None:
        """Drop every cached profile (the interned vocabulary is kept)."""
        self._profiles.clear()

    # ------------------------------------------------------------------
    def _build(self, description: EntityDescription) -> Profile:
        context = self.context
        if context is not None:
            ordinal = context.ordinal(description.identifier)
            if ordinal is not None and context.description(ordinal) is description:
                return self._build_from_context(context, ordinal, description.identifier)
        if self.vectorizer is None:
            tokens = token_set(
                description.values(),
                stop_words=self.stop_words,
                min_length=self.min_token_length,
            )
            ids = array("q", sorted(self.intern(token) for token in tokens))
            return Profile(description.identifier, ids)

        # TF-IDF mode: the columns are the vectorizer's own transform output
        # re-keyed to interned ids, so they are bit-identical to the pairwise
        # oracle's vectors by construction -- including the SparseVector's
        # fsum-precomputed norm
        vector = self.vectorizer.transform(description)
        if not vector:
            return Profile(description.identifier, array("q"))
        weighted: List[Tuple[int, float]] = sorted(
            (self.intern(token), weight) for token, weight in vector.items()
        )
        ids = array("q", (token_id for token_id, _ in weighted))
        weights = array("d", (weight for _, weight in weighted))
        return Profile(description.identifier, ids, weights, vector.norm)

    def _build_from_context(self, context, ordinal: int, identifier: str) -> Profile:
        """Build a profile from the context's interned columns (no tokenisation).

        Bit-identity with the tokenising path: the set-mode ids are the same
        filtered distinct tokens; the TF-IDF weights apply the exact
        term-frequency expression of ``TfIdfVectorizer.transform`` to the
        exact integer counts the transform would derive, and the norm goes
        through :func:`math.fsum` (exactly rounded, accumulation-order
        independent) like :func:`~repro.text.vectorizer.l2_norm`.
        """
        vectorizer = self.vectorizer
        if vectorizer is None:
            token_filter = context.token_filter(self.stop_words, self.min_token_length)
            ids, _counts = context.token_counts(ordinal)
            return Profile(identifier, token_filter.select(ids))

        token_filter = context.token_filter(None, vectorizer.min_token_length)
        ids, counts = context.token_counts(ordinal)
        if not token_filter.trivial:
            kept = [
                (token_id, count)
                for token_id, count in zip(ids, counts)
                if token_filter.allows(token_id)
            ]
            ids = array("q", (t for t, _ in kept))
            counts = array("q", (c for _, c in kept))
        if not len(ids):
            return Profile(identifier, array("q"))
        idf = self._idf
        vocabulary_size = context.vocabulary_size
        if len(idf) < vocabulary_size:
            token_of = context.token
            idf_of = vectorizer.idf
            idf.extend(
                idf_of(token_of(token_id))
                for token_id in range(len(idf), vocabulary_size)
            )
        max_count = max(counts)
        weights = array(
            "d",
            (
                (0.5 + 0.5 * count / max_count) * idf[token_id]
                for token_id, count in zip(ids, counts)
            ),
        )
        norm = math.sqrt(math.fsum(w * w for w in weights))
        return Profile(identifier, ids, weights, norm)
