"""Text processing substrate: tokenisation, normalisation and string similarity.

Every blocking and matching algorithm in the library ultimately operates on
tokens or character sequences extracted from attribute values.  This package
centralises:

* :mod:`repro.text.tokenize` -- normalisation, word tokenisation, character
  q-grams, blocking-key extraction helpers.
* :mod:`repro.text.similarity` -- set, sequence and hybrid string similarity
  measures (Jaccard, Dice, overlap, cosine, Levenshtein, Jaro, Jaro--Winkler,
  Monge--Elkan).
* :mod:`repro.text.vectorizer` -- TF-IDF weighting and weighted cosine
  similarity over token vectors.
* :mod:`repro.text.profile_store` -- columnar per-description token profiles
  (interned token ids, TF-IDF weight columns, precomputed norms) backing the
  batched matching engine.
"""

from repro.text.similarity import (
    cosine_similarity,
    dice_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan_similarity,
    overlap_coefficient,
)
from repro.text.tokenize import (
    normalize,
    qgrams,
    token_set,
    tokenize,
)
from repro.text.profile_store import Profile, ProfileStore
from repro.text.vectorizer import SparseVector, TfIdfVectorizer, l2_norm, weighted_cosine

__all__ = [
    "Profile",
    "ProfileStore",
    "SparseVector",
    "TfIdfVectorizer",
    "cosine_similarity",
    "dice_similarity",
    "jaccard_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "l2_norm",
    "levenshtein_distance",
    "levenshtein_similarity",
    "monge_elkan_similarity",
    "normalize",
    "overlap_coefficient",
    "qgrams",
    "token_set",
    "tokenize",
    "weighted_cosine",
]
