"""String and set similarity measures.

These are the similarity primitives referenced throughout the tutorial:
set-based measures over token sets (Jaccard, Dice, overlap, cosine),
character-based edit measures (Levenshtein, Jaro, Jaro--Winkler) and the
hybrid Monge--Elkan measure that combines the two levels.  All similarities
are in ``[0, 1]`` with 1 meaning identical.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Set


# ----------------------------------------------------------------------
# set-based measures
# ----------------------------------------------------------------------
def jaccard_similarity(first: Iterable[str], second: Iterable[str]) -> float:
    """Jaccard coefficient ``|A ∩ B| / |A ∪ B|`` of two token collections."""
    set_a, set_b = set(first), set(second)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    intersection = len(set_a & set_b)
    union = len(set_a) + len(set_b) - intersection
    return intersection / union


def dice_similarity(first: Iterable[str], second: Iterable[str]) -> float:
    """Sørensen--Dice coefficient ``2|A ∩ B| / (|A| + |B|)``."""
    set_a, set_b = set(first), set(second)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return 2 * len(set_a & set_b) / (len(set_a) + len(set_b))


def overlap_coefficient(first: Iterable[str], second: Iterable[str]) -> float:
    """Overlap coefficient ``|A ∩ B| / min(|A|, |B|)``."""
    set_a, set_b = set(first), set(second)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / min(len(set_a), len(set_b))


def cosine_similarity(first: Iterable[str], second: Iterable[str]) -> float:
    """Unweighted set cosine ``|A ∩ B| / sqrt(|A| |B|)``."""
    set_a, set_b = set(first), set(second)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / (len(set_a) * len(set_b)) ** 0.5


# ----------------------------------------------------------------------
# character-based measures
# ----------------------------------------------------------------------
def levenshtein_distance(first: str, second: str) -> int:
    """Edit distance (insertions, deletions, substitutions) between two strings."""
    if first == second:
        return 0
    if not first:
        return len(second)
    if not second:
        return len(first)
    # keep the shorter string in the inner dimension for memory locality
    if len(second) > len(first):
        first, second = second, first
    previous = list(range(len(second) + 1))
    for i, char_a in enumerate(first, start=1):
        current = [i]
        for j, char_b in enumerate(second, start=1):
            substitution_cost = 0 if char_a == char_b else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + substitution_cost,
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(first: str, second: str) -> float:
    """Normalised edit similarity ``1 - distance / max(len)``."""
    if not first and not second:
        return 1.0
    longest = max(len(first), len(second))
    return 1.0 - levenshtein_distance(first, second) / longest


def jaro_similarity(first: str, second: str) -> float:
    """Jaro similarity, designed for short name-like strings."""
    if first == second:
        return 1.0
    if not first or not second:
        return 0.0
    match_window = max(len(first), len(second)) // 2 - 1
    match_window = max(match_window, 0)
    matches_a = [False] * len(first)
    matches_b = [False] * len(second)
    matches = 0
    for i, char_a in enumerate(first):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len(second))
        for j in range(start, end):
            if matches_b[j] or second[j] != char_a:
                continue
            matches_a[i] = True
            matches_b[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, matched in enumerate(matches_a):
        if not matched:
            continue
        while not matches_b[j]:
            j += 1
        if first[i] != second[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len(first)
        + matches / len(second)
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(first: str, second: str, prefix_scale: float = 0.1) -> float:
    """Jaro--Winkler similarity: Jaro boosted by a shared prefix of up to 4 characters."""
    jaro = jaro_similarity(first, second)
    shared_prefix = 0
    for char_a, char_b in zip(first[:4], second[:4]):
        if char_a != char_b:
            break
        shared_prefix += 1
    return jaro + shared_prefix * prefix_scale * (1.0 - jaro)


# ----------------------------------------------------------------------
# hybrid measures
# ----------------------------------------------------------------------
def monge_elkan_similarity(
    first_tokens: Sequence[str],
    second_tokens: Sequence[str],
    inner: Callable[[str, str], float] = jaro_winkler_similarity,
) -> float:
    """Monge--Elkan: average best inner similarity of each token of ``first`` in ``second``.

    The measure is asymmetric by definition; callers that need symmetry can
    average both directions (see :func:`symmetric_monge_elkan`).
    """
    if not first_tokens and not second_tokens:
        return 1.0
    if not first_tokens or not second_tokens:
        return 0.0
    total = 0.0
    for token_a in first_tokens:
        total += max(inner(token_a, token_b) for token_b in second_tokens)
    return total / len(first_tokens)


def symmetric_monge_elkan(
    first_tokens: Sequence[str],
    second_tokens: Sequence[str],
    inner: Callable[[str, str], float] = jaro_winkler_similarity,
) -> float:
    """Symmetrised Monge--Elkan (average of both directions)."""
    return 0.5 * (
        monge_elkan_similarity(first_tokens, second_tokens, inner)
        + monge_elkan_similarity(second_tokens, first_tokens, inner)
    )


#: Registry of named similarity functions over token collections; the string
#: functions are wrapped to operate on the joined token text.  Used by
#: configuration-driven pipelines and the multidimensional blocking scheme.
SET_SIMILARITIES = {
    "jaccard": jaccard_similarity,
    "dice": dice_similarity,
    "overlap": overlap_coefficient,
    "cosine": cosine_similarity,
}

STRING_SIMILARITIES = {
    "levenshtein": levenshtein_similarity,
    "jaro": jaro_similarity,
    "jaro_winkler": jaro_winkler_similarity,
}


def get_similarity(name: str) -> Callable[..., float]:
    """Look up a similarity function by name (set-based first, then string-based)."""
    if name in SET_SIMILARITIES:
        return SET_SIMILARITIES[name]
    if name in STRING_SIMILARITIES:
        return STRING_SIMILARITIES[name]
    raise KeyError(
        f"unknown similarity {name!r}; available: "
        f"{sorted(SET_SIMILARITIES) + sorted(STRING_SIMILARITIES)}"
    )
