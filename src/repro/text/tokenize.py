"""Tokenisation and normalisation utilities.

Token blocking, attribute-clustering blocking and the string-similarity-join
algorithms all build inverted indices over the tokens of attribute values.
The functions here define precisely what a "token" is for the whole library so
that blocking, meta-blocking and matching agree on it.
"""

from __future__ import annotations

import re
import unicodedata
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

_WORD_RE = re.compile(r"[a-z0-9]+")
_URI_SPLIT_RE = re.compile(r"[/#:]")

#: A small stop-word list; highly frequent tokens produce enormous blocks and
#: carry almost no matching evidence, so blocking implementations may drop them.
DEFAULT_STOP_WORDS: FrozenSet[str] = frozenset(
    {
        "a",
        "an",
        "and",
        "at",
        "by",
        "de",
        "for",
        "from",
        "in",
        "of",
        "on",
        "or",
        "the",
        "to",
        "with",
    }
)


def normalize(value: str) -> str:
    """Normalise a string value: lowercase, strip accents, collapse whitespace.

    Normalisation is deliberately conservative -- it keeps digits and letters
    and removes punctuation -- so that tokens extracted from heterogeneous KBs
    remain comparable without destroying distinguishing content.
    """
    if not value:
        return ""
    decomposed = unicodedata.normalize("NFKD", value)
    ascii_only = decomposed.encode("ascii", "ignore").decode("ascii")
    lowered = ascii_only.lower()
    return " ".join(_WORD_RE.findall(lowered))


def tokenize(
    value: str,
    stop_words: Optional[Iterable[str]] = None,
    min_length: int = 1,
) -> List[str]:
    """Split ``value`` into normalised word tokens (duplicates preserved).

    Parameters
    ----------
    value:
        The raw attribute value.
    stop_words:
        Tokens to drop; ``None`` keeps everything (callers that want the
        default list pass :data:`DEFAULT_STOP_WORDS` explicitly).
    min_length:
        Minimum number of characters a token must have to be kept.
    """
    normalized = normalize(value)
    if not normalized:
        return []
    stops: FrozenSet[str] = frozenset(stop_words) if stop_words else frozenset()
    return [
        token
        for token in normalized.split(" ")
        if len(token) >= min_length and token not in stops
    ]


def token_set(
    values: Iterable[str],
    stop_words: Optional[Iterable[str]] = None,
    min_length: int = 1,
) -> Set[str]:
    """The set of distinct tokens appearing in any of ``values``."""
    tokens: Set[str] = set()
    for value in values:
        tokens.update(tokenize(value, stop_words=stop_words, min_length=min_length))
    return tokens


def qgrams(value: str, q: int = 3, pad: bool = True) -> List[str]:
    """Character q-grams of the normalised value.

    With ``pad`` enabled the string is padded with ``q - 1`` ``#``/``$``
    characters at its start/end, the standard construction that gives the
    first and last characters the same number of q-grams as middle ones.
    """
    if q < 1:
        raise ValueError("q must be a positive integer")
    normalized = normalize(value).replace(" ", "_")
    if not normalized:
        return []
    if pad and q > 1:
        normalized = "#" * (q - 1) + normalized + "$" * (q - 1)
    if len(normalized) < q:
        return [normalized]
    return [normalized[i : i + q] for i in range(len(normalized) - q + 1)]


def suffixes(value: str, min_length: int = 3) -> List[str]:
    """All suffixes of the normalised value with at least ``min_length`` characters.

    Used by suffix-array blocking: descriptions sharing a sufficiently long
    suffix of a blocking-key value are placed in the same block.
    """
    normalized = normalize(value).replace(" ", "")
    if len(normalized) < min_length:
        return [normalized] if normalized else []
    return [normalized[i:] for i in range(0, len(normalized) - min_length + 1)]


def prefix(value: str, length: int) -> str:
    """The first ``length`` characters of the normalised, space-free value."""
    normalized = normalize(value).replace(" ", "")
    return normalized[:length]


def uri_tokens(identifier: str) -> Tuple[str, str, List[str]]:
    """Split a URI-like identifier into (prefix, infix, infix tokens).

    Prefix--infix(--suffix) blocking for Web entities exploits the observation
    that URIs frequently encode naming information: the *prefix* is the
    namespace (authority + path head), and the *infix* is the local,
    name-bearing part.  For ``"http://dbpedia.org/resource/Berlin_Wall"`` the
    prefix is ``"http://dbpedia.org/resource"`` and the infix ``"Berlin_Wall"``.

    Returns a triple ``(prefix, infix, tokens-of-infix)``.
    """
    if not identifier:
        return "", "", []
    trimmed = identifier.rstrip("/#")
    pieces = _URI_SPLIT_RE.split(trimmed)
    pieces = [p for p in pieces if p]
    if not pieces:
        return "", "", []
    infix = pieces[-1]
    prefix_part = trimmed[: len(trimmed) - len(infix)].rstrip("/#:")
    tokens = tokenize(infix.replace("_", " ").replace("-", " "))
    return prefix_part, infix, tokens


def sorted_tokens_by_rarity(tokens: Iterable[str], document_frequency: dict) -> List[str]:
    """Order tokens from rarest to most frequent (global ordering for prefix filtering).

    String-similarity joins with prefix filtering require a total order on
    tokens; ordering by ascending document frequency minimises the expected
    size of the inverted-index postings that must be scanned.
    """
    return sorted(set(tokens), key=lambda t: (document_frequency.get(t, 0), t))
