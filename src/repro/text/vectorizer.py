"""TF-IDF weighting of entity descriptions and weighted cosine similarity.

Matching highly heterogeneous descriptions benefits from down-weighting
tokens that appear in many descriptions (e.g. "university", "john") and
up-weighting rare, discriminative tokens.  The :class:`TfIdfVectorizer` fits
document frequencies over a collection of descriptions and produces sparse
weight vectors used by value matchers and by the ARCS-style weighting in
meta-blocking.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.datamodel.description import EntityDescription
from repro.text.tokenize import tokenize


def l2_norm(vector: Mapping[str, float]) -> float:
    """L2 norm of a sparse weight vector, exactly rounded via :func:`math.fsum`.

    ``fsum`` makes the result independent of the accumulation order, so the
    norm of a vector is the same float whether it is derived from a ``dict``
    (insertion order) or from a sorted columnar array (see
    :mod:`repro.text.profile_store`).
    """
    return math.sqrt(math.fsum(w * w for w in vector.values()))


class SparseVector(Dict[str, float]):
    """A sparse ``token -> weight`` vector carrying its L2 norm.

    :meth:`TfIdfVectorizer.transform` returns these so that
    :func:`weighted_cosine` never recomputes ``sqrt(sum(w * w))`` for a vector
    that is compared many times.  The norm is computed lazily on first access
    and **invalidated by every mutating dict operation**, so a caller that
    edits the vector after ``transform`` still gets correct similarities.
    The class is a plain ``dict`` otherwise and remains interchangeable with
    one.
    """

    __slots__ = ("_norm",)

    def __init__(self, weights=(), norm: Optional[float] = None) -> None:
        super().__init__(weights)
        self._norm = norm

    @property
    def norm(self) -> float:
        """The L2 norm of the current weights (cached until a mutation)."""
        if self._norm is None:
            self._norm = l2_norm(self)
        return self._norm

    def __setitem__(self, key, value) -> None:
        self._norm = None
        super().__setitem__(key, value)

    def __delitem__(self, key) -> None:
        self._norm = None
        super().__delitem__(key)

    def pop(self, *args):
        self._norm = None
        return super().pop(*args)

    def popitem(self):
        self._norm = None
        return super().popitem()

    def clear(self) -> None:
        self._norm = None
        super().clear()

    def update(self, *args, **kwargs) -> None:
        self._norm = None
        super().update(*args, **kwargs)

    def setdefault(self, key, default=None):
        self._norm = None
        return super().setdefault(key, default)


def weighted_cosine(first: Mapping[str, float], second: Mapping[str, float]) -> float:
    """Cosine similarity of two sparse weight vectors (dicts token -> weight).

    Norms precomputed by :class:`SparseVector` are reused; plain dicts fall
    back to computing them on the fly.  The dot product goes through
    :func:`math.fsum`, so the result does not depend on which operand's tokens
    are iterated first -- the property that lets the batched matching engine
    reproduce this function bit for bit from columnar profiles.
    """
    if not first or not second:
        return 0.0
    # iterate over the smaller vector
    if len(second) < len(first):
        first, second = second, first
    products = [
        weight * other
        for token, weight in first.items()
        if (other := second.get(token)) is not None
    ]
    dot = math.fsum(products)
    if dot == 0.0:
        return 0.0
    norm_a = first.norm if isinstance(first, SparseVector) else l2_norm(first)
    norm_b = second.norm if isinstance(second, SparseVector) else l2_norm(second)
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


class TfIdfVectorizer:
    """Fits token document frequencies and vectorises descriptions.

    The vectoriser treats each entity description as one document whose
    tokens are the union of the tokens of all its attribute values
    (schema-agnostic, as required for the Web of data where attribute names
    are not comparable across KBs).
    """

    def __init__(self, min_token_length: int = 1) -> None:
        self.min_token_length = min_token_length
        self._document_frequency: Dict[str, int] = {}
        self._num_documents = 0

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    @classmethod
    def from_document_frequencies(
        cls,
        document_frequency: Mapping[str, int],
        num_documents: int,
        min_token_length: int = 1,
    ) -> "TfIdfVectorizer":
        """A fitted vectoriser from precomputed document frequencies.

        Used by :class:`~repro.core.context.PipelineContext` to fit from its
        interned postings instead of a second tokenisation pass.  Because the
        frequencies and the document count are exact integers, the resulting
        ``idf`` values are bit-identical to a :meth:`fit` pass that counted
        the same documents.
        """
        if num_documents < 0:
            raise ValueError("num_documents must be non-negative")
        vectorizer = cls(min_token_length=min_token_length)
        vectorizer._document_frequency = dict(document_frequency)
        vectorizer._num_documents = num_documents
        return vectorizer

    def fit(self, descriptions: Iterable[EntityDescription]) -> "TfIdfVectorizer":
        """Count in how many descriptions each token appears."""
        for description in descriptions:
            self._num_documents += 1
            seen = set()
            for value in description.values():
                for token in tokenize(value, min_length=self.min_token_length):
                    if token not in seen:
                        seen.add(token)
                        self._document_frequency[token] = (
                            self._document_frequency.get(token, 0) + 1
                        )
        return self

    @property
    def num_documents(self) -> int:
        return self._num_documents

    @property
    def vocabulary_size(self) -> int:
        return len(self._document_frequency)

    def document_frequency(self, token: str) -> int:
        return self._document_frequency.get(token, 0)

    def idf(self, token: str) -> float:
        """Smoothed inverse document frequency ``ln(1 + N / (1 + df))``."""
        if self._num_documents == 0:
            return 0.0
        df = self._document_frequency.get(token, 0)
        return math.log(1.0 + self._num_documents / (1.0 + df))

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------
    def transform(
        self,
        description: EntityDescription,
        attributes: Optional[Sequence[str]] = None,
    ) -> "SparseVector":
        """Return the sparse TF-IDF vector of one description.

        The returned :class:`SparseVector` carries its L2 norm, precomputed at
        build time so similarity computations can reuse it.
        """
        counts: Dict[str, int] = {}
        values = (
            description.values()
            if attributes is None
            else tuple(v for a in attributes for v in description.values(a))
        )
        for value in values:
            for token in tokenize(value, min_length=self.min_token_length):
                counts[token] = counts.get(token, 0) + 1
        if not counts:
            return SparseVector()
        max_count = max(counts.values())
        return SparseVector(
            (token, (0.5 + 0.5 * count / max_count) * self.idf(token))
            for token, count in counts.items()
        )

    def similarity(
        self,
        first: EntityDescription,
        second: EntityDescription,
        attributes: Optional[Sequence[str]] = None,
    ) -> float:
        """Weighted cosine similarity of two descriptions."""
        return weighted_cosine(
            self.transform(first, attributes), self.transform(second, attributes)
        )
