"""TF-IDF weighting of entity descriptions and weighted cosine similarity.

Matching highly heterogeneous descriptions benefits from down-weighting
tokens that appear in many descriptions (e.g. "university", "john") and
up-weighting rare, discriminative tokens.  The :class:`TfIdfVectorizer` fits
document frequencies over a collection of descriptions and produces sparse
weight vectors used by value matchers and by the ARCS-style weighting in
meta-blocking.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.datamodel.description import EntityDescription
from repro.text.tokenize import tokenize


def weighted_cosine(first: Mapping[str, float], second: Mapping[str, float]) -> float:
    """Cosine similarity of two sparse weight vectors (dicts token -> weight)."""
    if not first or not second:
        return 0.0
    # iterate over the smaller vector
    if len(second) < len(first):
        first, second = second, first
    dot = 0.0
    for token, weight in first.items():
        other = second.get(token)
        if other is not None:
            dot += weight * other
    if dot == 0.0:
        return 0.0
    norm_a = math.sqrt(sum(w * w for w in first.values()))
    norm_b = math.sqrt(sum(w * w for w in second.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


class TfIdfVectorizer:
    """Fits token document frequencies and vectorises descriptions.

    The vectoriser treats each entity description as one document whose
    tokens are the union of the tokens of all its attribute values
    (schema-agnostic, as required for the Web of data where attribute names
    are not comparable across KBs).
    """

    def __init__(self, min_token_length: int = 1) -> None:
        self.min_token_length = min_token_length
        self._document_frequency: Dict[str, int] = {}
        self._num_documents = 0

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(self, descriptions: Iterable[EntityDescription]) -> "TfIdfVectorizer":
        """Count in how many descriptions each token appears."""
        for description in descriptions:
            self._num_documents += 1
            seen = set()
            for value in description.values():
                for token in tokenize(value, min_length=self.min_token_length):
                    if token not in seen:
                        seen.add(token)
                        self._document_frequency[token] = (
                            self._document_frequency.get(token, 0) + 1
                        )
        return self

    @property
    def num_documents(self) -> int:
        return self._num_documents

    @property
    def vocabulary_size(self) -> int:
        return len(self._document_frequency)

    def document_frequency(self, token: str) -> int:
        return self._document_frequency.get(token, 0)

    def idf(self, token: str) -> float:
        """Smoothed inverse document frequency ``ln(1 + N / (1 + df))``."""
        if self._num_documents == 0:
            return 0.0
        df = self._document_frequency.get(token, 0)
        return math.log(1.0 + self._num_documents / (1.0 + df))

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------
    def transform(
        self,
        description: EntityDescription,
        attributes: Optional[Sequence[str]] = None,
    ) -> Dict[str, float]:
        """Return the sparse TF-IDF vector of one description."""
        counts: Dict[str, int] = {}
        values = (
            description.values()
            if attributes is None
            else tuple(v for a in attributes for v in description.values(a))
        )
        for value in values:
            for token in tokenize(value, min_length=self.min_token_length):
                counts[token] = counts.get(token, 0) + 1
        if not counts:
            return {}
        max_count = max(counts.values())
        return {
            token: (0.5 + 0.5 * count / max_count) * self.idf(token)
            for token, count in counts.items()
        }

    def similarity(
        self,
        first: EntityDescription,
        second: EntityDescription,
        attributes: Optional[Sequence[str]] = None,
    ) -> float:
        """Weighted cosine similarity of two descriptions."""
        return weighted_cosine(
            self.transform(first, attributes), self.transform(second, attributes)
        )
