"""Schema-free data model for entity resolution in the Web of data.

The tutorial's setting is a Web of interlinked knowledge bases (KBs) in which
real-world entities are described by *entity descriptions*: sets of
attribute--value pairs that do not commit to a schema fixed in advance.  This
package provides the core containers shared by every other subsystem:

* :class:`~repro.datamodel.description.EntityDescription` -- a single
  schema-free description (roughly an RDF resource with its literal values).
* :class:`~repro.datamodel.collection.EntityCollection` -- an ordered
  collection of descriptions, either *dirty* (one source containing
  duplicates) or one side of a *clean--clean* ER task (two duplicate-free
  sources matched against each other).
* :class:`~repro.datamodel.ground_truth.GroundTruth` -- the known set of
  matching description pairs / equivalence clusters used for evaluation.
* :class:`~repro.datamodel.pairs.Comparison` -- a candidate pair of
  descriptions proposed by blocking and consumed by matching.
"""

from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datamodel.description import EntityDescription, merge_descriptions
from repro.datamodel.ground_truth import GroundTruth
from repro.datamodel.pairs import (
    Comparison,
    ComparisonColumns,
    DecisionColumns,
    canonical_pair,
)

__all__ = [
    "CleanCleanTask",
    "Comparison",
    "ComparisonColumns",
    "DecisionColumns",
    "EntityCollection",
    "EntityDescription",
    "GroundTruth",
    "canonical_pair",
    "merge_descriptions",
]
