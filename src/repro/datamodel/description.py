"""Schema-free entity descriptions.

An *entity description* is the unit of data that every algorithm in this
library consumes: a named set of attribute--value pairs describing one
real-world entity, as published by one knowledge base (KB).  Descriptions in
the Web of data are partial, overlapping and structurally heterogeneous, so
the model intentionally makes no schema assumptions:

* an attribute may appear any number of times (multi-valued attributes),
* two descriptions of the same real-world entity may use entirely different
  attribute names,
* values are plain strings; links to other descriptions are represented by
  values that hold another description's identifier (see
  :attr:`EntityDescription.relationships`).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple


class EntityDescription:
    """A single schema-free description of a real-world entity.

    Parameters
    ----------
    identifier:
        A unique identifier for the description, typically a URI-like string
        (``"kb1:person/42"``).  Identifiers are unique within an
        :class:`~repro.datamodel.collection.EntityCollection`.
    attributes:
        A mapping from attribute name to either a single string value or a
        sequence of string values.  Internally all attributes are stored as
        tuples of values to support multi-valued attributes uniformly.
    source:
        Optional name of the KB the description originates from.
    relationships:
        Optional mapping from relationship name to identifiers of other
        descriptions (e.g. ``{"author": ("kb1:person/7",)}``).  Relationship
        values are identifiers, not literals, and are used by
        relationship-based iterative ER.
    """

    __slots__ = ("identifier", "_attributes", "source", "_relationships")

    def __init__(
        self,
        identifier: str,
        attributes: Optional[Mapping[str, object]] = None,
        source: Optional[str] = None,
        relationships: Optional[Mapping[str, object]] = None,
    ) -> None:
        if not identifier:
            raise ValueError("an entity description requires a non-empty identifier")
        self.identifier = identifier
        self.source = source
        self._attributes: Dict[str, Tuple[str, ...]] = {}
        self._relationships: Dict[str, Tuple[str, ...]] = {}
        if attributes:
            for name, value in attributes.items():
                self.add(name, value)
        if relationships:
            for name, value in relationships.items():
                self.add_relationship(name, value)

    # ------------------------------------------------------------------
    # attribute access
    # ------------------------------------------------------------------
    @staticmethod
    def _as_values(value: object) -> Tuple[str, ...]:
        if value is None:
            return ()
        if isinstance(value, str):
            return (value,) if value else ()
        if isinstance(value, (int, float)):
            return (str(value),)
        if isinstance(value, (list, tuple, set, frozenset)):
            return tuple(str(v) for v in value if v is not None and str(v) != "")
        raise TypeError(f"unsupported attribute value type: {type(value)!r}")

    def add(self, name: str, value: object) -> None:
        """Add one or more values for attribute ``name``."""
        values = self._as_values(value)
        if not values:
            return
        existing = self._attributes.get(name, ())
        merged = existing + tuple(v for v in values if v not in existing)
        self._attributes[name] = merged

    def add_relationship(self, name: str, target: object) -> None:
        """Add a relationship ``name`` pointing to one or more identifiers."""
        values = self._as_values(target)
        if not values:
            return
        existing = self._relationships.get(name, ())
        merged = existing + tuple(v for v in values if v not in existing)
        self._relationships[name] = merged

    @property
    def attributes(self) -> Mapping[str, Tuple[str, ...]]:
        """The attribute--values mapping (read-only view)."""
        return dict(self._attributes)

    @property
    def relationships(self) -> Mapping[str, Tuple[str, ...]]:
        """The relationship--targets mapping (read-only view)."""
        return dict(self._relationships)

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(self._attributes)

    def values(self, name: Optional[str] = None) -> Tuple[str, ...]:
        """Return the values of attribute ``name``, or of all attributes.

        When ``name`` is ``None`` the values of every attribute are returned,
        in attribute insertion order.
        """
        if name is not None:
            return self._attributes.get(name, ())
        return tuple(itertools.chain.from_iterable(self._attributes.values()))

    def value(self, name: str, default: str = "") -> str:
        """Return the first value of ``name``, or ``default`` if absent."""
        values = self._attributes.get(name, ())
        return values[0] if values else default

    def related(self, name: Optional[str] = None) -> Tuple[str, ...]:
        """Return related identifiers for relationship ``name`` (or all)."""
        if name is not None:
            return self._relationships.get(name, ())
        return tuple(itertools.chain.from_iterable(self._relationships.values()))

    def __contains__(self, name: str) -> bool:
        return name in self._attributes

    def __len__(self) -> int:
        return sum(len(values) for values in self._attributes.values())

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        """Iterate over ``(attribute, value)`` pairs."""
        for name, values in self._attributes.items():
            for value in values:
                yield name, value

    # ------------------------------------------------------------------
    # text views used by blocking / matching
    # ------------------------------------------------------------------
    def text(self, attributes: Optional[Sequence[str]] = None, separator: str = " ") -> str:
        """Concatenate all values into a single string.

        Parameters
        ----------
        attributes:
            Restrict the concatenation to these attributes, in the given
            order.  ``None`` uses every attribute.
        separator:
            String placed between consecutive values.
        """
        if attributes is None:
            values: Iterable[str] = self.values()
        else:
            values = itertools.chain.from_iterable(self.values(a) for a in attributes)
        return separator.join(values)

    # ------------------------------------------------------------------
    # comparisons / representation
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EntityDescription):
            return NotImplemented
        return (
            self.identifier == other.identifier
            and self._attributes == other._attributes
            and self._relationships == other._relationships
        )

    def __hash__(self) -> int:
        return hash(self.identifier)

    def __repr__(self) -> str:
        attrs = ", ".join(f"{k}={v!r}" for k, v in list(self._attributes.items())[:3])
        more = "..." if len(self._attributes) > 3 else ""
        return f"EntityDescription({self.identifier!r}, {attrs}{more})"

    def copy(self, identifier: Optional[str] = None) -> "EntityDescription":
        """Return a deep copy, optionally with a new identifier."""
        clone = EntityDescription(identifier or self.identifier, source=self.source)
        for name, values in self._attributes.items():
            clone.add(name, values)
        for name, values in self._relationships.items():
            clone.add_relationship(name, values)
        return clone


def merge_descriptions(
    first: EntityDescription,
    second: EntityDescription,
    identifier: Optional[str] = None,
) -> EntityDescription:
    """Merge two descriptions of the same real-world entity into one.

    The merge is the attribute-union merge used by merging-based iterative ER
    (the "merge" function of the Swoosh family): the resulting description
    carries the union of attribute values and relationships of both inputs.
    The identifier of the merged description defaults to
    ``"<id1>+<id2>"`` with the two identifiers in lexicographic order, which
    makes merging associative and commutative at the identifier level.
    """
    if identifier is None:
        left, right = sorted((first.identifier, second.identifier))
        identifier = f"{left}+{right}"
    merged = EntityDescription(identifier, source=first.source or second.source)
    for description in (first, second):
        for name, values in description.attributes.items():
            merged.add(name, values)
        for name, values in description.relationships.items():
            merged.add_relationship(name, values)
    return merged


def provenance(identifier: str) -> List[str]:
    """Return the original identifiers folded into a (possibly merged) id.

    Merged descriptions produced by :func:`merge_descriptions` concatenate
    their source identifiers with ``"+"``; this helper recovers them.
    """
    return identifier.split("+")
