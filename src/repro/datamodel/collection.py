"""Entity collections: the input of every ER task.

Two task settings are supported, following the tutorial's terminology:

* **Dirty ER** -- a single :class:`EntityCollection` that may contain any
  number of descriptions of the same real-world entity.  The task is to
  partition the collection into equivalence clusters.
* **Clean--clean ER** (record linkage) -- a :class:`CleanCleanTask` holding two
  individually duplicate-free collections; matches may only occur across the
  two collections, never within one.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.datamodel.description import EntityDescription


class EntityCollection:
    """An ordered collection of entity descriptions with id-based lookup.

    Descriptions keep their insertion order, which gives every description a
    stable integer *position* used by position-based algorithms (e.g. sorted
    neighbourhood) and by the MapReduce simulation for partitioning.
    """

    def __init__(
        self,
        descriptions: Optional[Iterable[EntityDescription]] = None,
        name: str = "collection",
    ) -> None:
        self.name = name
        self._descriptions: List[EntityDescription] = []
        self._index: Dict[str, int] = {}
        if descriptions:
            for description in descriptions:
                self.add(description)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, description: EntityDescription) -> None:
        """Append ``description``; identifiers must be unique."""
        if description.identifier in self._index:
            raise ValueError(f"duplicate identifier: {description.identifier!r}")
        self._index[description.identifier] = len(self._descriptions)
        self._descriptions.append(description)

    def extend(self, descriptions: Iterable[EntityDescription]) -> None:
        for description in descriptions:
            self.add(description)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._descriptions)

    def __iter__(self) -> Iterator[EntityDescription]:
        return iter(self._descriptions)

    def __contains__(self, identifier: str) -> bool:
        return identifier in self._index

    def __getitem__(self, key: object) -> EntityDescription:
        if isinstance(key, int):
            return self._descriptions[key]
        if isinstance(key, str):
            return self._descriptions[self._index[key]]
        raise TypeError("EntityCollection indices must be int positions or str identifiers")

    def get(self, identifier: str) -> Optional[EntityDescription]:
        position = self._index.get(identifier)
        return None if position is None else self._descriptions[position]

    def position(self, identifier: str) -> int:
        """Return the insertion position of ``identifier``."""
        return self._index[identifier]

    @property
    def identifiers(self) -> Tuple[str, ...]:
        return tuple(d.identifier for d in self._descriptions)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def attribute_names(self) -> Tuple[str, ...]:
        """All attribute names used anywhere in the collection (sorted)."""
        names = set()
        for description in self._descriptions:
            names.update(description.attribute_names)
        return tuple(sorted(names))

    def filter(self, predicate: Callable[[EntityDescription], bool], name: Optional[str] = None) -> "EntityCollection":
        """Return a new collection with the descriptions satisfying ``predicate``."""
        return EntityCollection(
            (d for d in self._descriptions if predicate(d)),
            name=name or f"{self.name}/filtered",
        )

    def sample(self, size: int, seed: int = 0) -> "EntityCollection":
        """Return a deterministic pseudo-random sample of ``size`` descriptions."""
        import random

        if size >= len(self):
            return EntityCollection(self._descriptions, name=f"{self.name}/sample")
        rng = random.Random(seed)
        chosen = rng.sample(range(len(self._descriptions)), size)
        return EntityCollection(
            (self._descriptions[i] for i in sorted(chosen)),
            name=f"{self.name}/sample",
        )

    def total_comparisons(self) -> int:
        """Number of comparisons of the exhaustive (quadratic) solution."""
        n = len(self._descriptions)
        return n * (n - 1) // 2

    def __repr__(self) -> str:
        return f"EntityCollection(name={self.name!r}, size={len(self)})"


class CleanCleanTask:
    """A clean--clean ER task: match descriptions across two clean collections.

    The two collections are individually duplicate-free (e.g. two distinct
    KBs each describing every entity at most once); candidate comparisons are
    only meaningful between a description of ``left`` and one of ``right``.
    """

    def __init__(self, left: EntityCollection, right: EntityCollection) -> None:
        overlap = set(left.identifiers) & set(right.identifiers)
        if overlap:
            raise ValueError(
                "clean-clean collections must use disjoint identifier spaces; "
                f"shared identifiers include {sorted(overlap)[:3]}"
            )
        self.left = left
        self.right = right

    def __len__(self) -> int:
        return len(self.left) + len(self.right)

    def __iter__(self) -> Iterator[EntityDescription]:
        yield from self.left
        yield from self.right

    def side_of(self, identifier: str) -> str:
        """Return ``"left"`` or ``"right"`` depending on which collection holds ``identifier``."""
        if identifier in self.left:
            return "left"
        if identifier in self.right:
            return "right"
        raise KeyError(identifier)

    def get(self, identifier: str) -> Optional[EntityDescription]:
        return self.left.get(identifier) or self.right.get(identifier)

    def is_valid_pair(self, first: str, second: str) -> bool:
        """A comparison is valid only across the two collections."""
        return (first in self.left and second in self.right) or (
            first in self.right and second in self.left
        )

    def as_single_collection(self, name: str = "union") -> EntityCollection:
        """Union of both sides as one collection (used by schema-agnostic blocking)."""
        return EntityCollection(iter(self), name=name)

    def total_comparisons(self) -> int:
        """Number of comparisons of the exhaustive clean--clean solution."""
        return len(self.left) * len(self.right)

    def __repr__(self) -> str:
        return f"CleanCleanTask(left={len(self.left)}, right={len(self.right)})"
