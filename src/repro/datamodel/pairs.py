"""Candidate comparisons (description pairs).

Blocking proposes *comparisons*: unordered pairs of description identifiers
that should be examined by the matching phase.  A comparison is canonicalised
so that the lexicographically smaller identifier always comes first, which
makes pair-level deduplication (redundant-comparison elimination) a set
operation.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

try:  # pragma: no cover - exercised implicitly when numpy is installed
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def canonical_pair(first: str, second: str) -> Tuple[str, str]:
    """Return the pair ordered lexicographically (the canonical form)."""
    if first == second:
        raise ValueError(f"a comparison requires two distinct descriptions, got {first!r} twice")
    return (first, second) if first < second else (second, first)


@dataclass(frozen=True)
class Comparison:
    """An unordered candidate pair of descriptions.

    Attributes
    ----------
    first, second:
        Identifiers of the two descriptions, stored in canonical
        (lexicographic) order regardless of construction order.
    weight:
        Optional weight attached by meta-blocking or a scheduler; higher
        means more likely to match.  ``None`` means unweighted.
    block_id:
        Optional identifier of the block that proposed this comparison.
    """

    first: str
    second: str
    weight: Optional[float] = field(default=None, compare=False)
    block_id: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        ordered = canonical_pair(self.first, self.second)
        if ordered != (self.first, self.second):
            object.__setattr__(self, "first", ordered[0])
            object.__setattr__(self, "second", ordered[1])

    @property
    def pair(self) -> Tuple[str, str]:
        return (self.first, self.second)

    def involves(self, identifier: str) -> bool:
        return identifier == self.first or identifier == self.second

    def other(self, identifier: str) -> str:
        """Return the member of the pair that is not ``identifier``."""
        if identifier == self.first:
            return self.second
        if identifier == self.second:
            return self.first
        raise KeyError(f"{identifier!r} is not part of comparison {self.pair}")

    def with_weight(self, weight: float) -> "Comparison":
        return Comparison(self.first, self.second, weight=weight, block_id=self.block_id)

    def __repr__(self) -> str:
        if self.weight is None:
            return f"Comparison({self.first!r}, {self.second!r})"
        return f"Comparison({self.first!r}, {self.second!r}, weight={self.weight:.4f})"


def pair_code(a: int, b: int) -> int:
    """Pack an unordered ordinal pair into one integer (``min << 32 | max``).

    The packing assumes ordinals fit 32 bits (four billion descriptions),
    which every realistic collection satisfies; it is the single definition
    of the dedup-code scheme used by the columnar paths.
    """
    return (a << 32) | b if a < b else (b << 32) | a


def identifier_ranks(ids: Sequence[str]) -> Sequence[int]:
    """Rank of every ordinal in the lexicographic order of its identifier.

    Comparing ranks is equivalent to comparing the identifier strings, which
    lets columnar ordering passes (:meth:`ComparisonColumns.weight_sorted`,
    the clustering engine's heaviest-first edge sort) break weight ties
    exactly like a sort over the identifier pair itself.
    """
    if _np is not None:
        rank = _np.empty(len(ids), dtype=_np.int64)
        rank[_np.argsort(_np.array(ids))] = _np.arange(len(ids), dtype=_np.int64)
        return rank
    rank = [0] * len(ids)
    for position, ordinal in enumerate(sorted(range(len(ids)), key=ids.__getitem__)):
        rank[ordinal] = position
    return rank


class OrdinalInterner:
    """Assigns dense ordinals to identifiers in first-seen order.

    Calling the interner with an identifier returns its ordinal, assigning
    the next free one on first sight; :attr:`ids` is the inverse table
    (ordinal -> identifier), growing as identifiers are interned -- safe to
    hand to a :class:`ComparisonColumns` or
    :class:`~repro.progressive.engine.ScheduledRows` before interning is
    complete, because consumers only index it after the producing row was
    yielded.
    """

    __slots__ = ("ids", "_ordinal")

    def __init__(self) -> None:
        self.ids: List[str] = []
        self._ordinal: Dict[str, int] = {}

    def __call__(self, identifier: str) -> int:
        ordinal = self._ordinal.get(identifier)
        if ordinal is None:
            ordinal = self._ordinal[identifier] = len(self.ids)
            self.ids.append(identifier)
        return ordinal

    def __len__(self) -> int:
        return len(self.ids)


class ComparisonColumns(Sequence):
    """Candidate comparisons as parallel ``(left, right, weight)`` arrays.

    The columnar counterpart of a ``List[Comparison]``: an identifier table
    plus three flat columns.  Meta-blocking emits its retained edges in this
    form (:meth:`~repro.metablocking.pipeline.MetaBlocking.weighted_columns`)
    and the array scheduling engine orders and drains them without ever
    materialising per-pair objects; every consumer written against a plain
    comparison sequence keeps working, because iteration and indexing
    materialise bit-identical :class:`Comparison` objects lazily.

    Attributes
    ----------
    ids:
        Identifier table; ``first``/``second`` hold indices into it.  Rows
        are stored in canonical order (``ids[first[i]] < ids[second[i]]``).
    first, second:
        ``array('q')`` ordinal columns, one entry per comparison.
    weights:
        Aligned ``array('d')`` of comparison weights, or ``None`` when the
        comparisons are unweighted.
    descriptions:
        Optional table of resolved description objects aligned with
        :attr:`ids` (supplied by the shared pipeline context), letting
        executors skip the per-comparison identifier lookup.
    distinct:
        Whether the rows are known to hold no duplicate pair (meta-blocking
        output is distinct by construction); consumers that must
        deduplicate can skip the pass when set.
    weight_ordered:
        Whether the rows are already in ``(-weight, first, second)`` order,
        making :meth:`weight_sorted` a zero-cost pass-through (meta-blocking
        emits its columns pre-sorted).
    """

    __slots__ = (
        "ids",
        "first",
        "second",
        "weights",
        "descriptions",
        "distinct",
        "weight_ordered",
    )

    def __init__(
        self,
        ids: Sequence[str],
        first: array,
        second: array,
        weights: Optional[array] = None,
        descriptions: Optional[Sequence] = None,
        distinct: bool = False,
        weight_ordered: bool = False,
    ) -> None:
        if len(first) != len(second):
            raise ValueError("first and second columns must have equal length")
        if weights is not None and len(weights) != len(first):
            raise ValueError("weights column must align with the ordinal columns")
        self.ids = ids
        self.first = first
        self.second = second
        self.weights = weights
        self.descriptions = descriptions
        self.distinct = distinct
        self.weight_ordered = weight_ordered

    def __len__(self) -> int:
        return len(self.first)

    def __getitem__(self, index: int) -> "Comparison":
        if isinstance(index, slice):
            raise TypeError("ComparisonColumns does not support slicing")
        weight = self.weights[index] if self.weights is not None else None
        return Comparison(
            self.ids[self.first[index]], self.ids[self.second[index]], weight=weight
        )

    def __iter__(self) -> Iterator["Comparison"]:
        ids = self.ids
        if self.weights is None:
            for f, s in zip(self.first, self.second):
                yield Comparison(ids[f], ids[s])
        else:
            for f, s, w in zip(self.first, self.second, self.weights):
                yield Comparison(ids[f], ids[s], weight=w)

    def pair(self, index: int) -> Tuple[str, str]:
        """The canonical identifier pair of row ``index`` (no object built)."""
        return (self.ids[self.first[index]], self.ids[self.second[index]])

    def pairs(self) -> Set[Tuple[str, str]]:
        """The distinct canonical pairs of all rows, as a set."""
        ids = self.ids
        return {(ids[f], ids[s]) for f, s in zip(self.first, self.second)}

    # ------------------------------------------------------------------
    def _ranks(self) -> Sequence[int]:
        """Identifier ranks of this table (see :func:`identifier_ranks`)."""
        return identifier_ranks(self.ids)

    def weight_sorted(self) -> "ComparisonColumns":
        """A copy ordered by ``(-weight, first, second)`` -- heaviest first.

        The exact order of ``MetaBlocking.weighted_comparisons`` and of
        :class:`~repro.progressive.schedulers.WeightOrderScheduler`:
        descending weight, ties broken by the canonical identifier pair
        (missing weights sort last).  NumPy runs one ``lexsort`` over the
        rank and weight columns; the fallback sorts row indices with the
        equivalent key.  Both orders are identical.
        """
        n = len(self)
        if n <= 1 or self.weight_ordered:
            return self
        rank = self._ranks()
        if _np is not None:
            first = _np.frombuffer(self.first, dtype=_np.int64)
            second = _np.frombuffer(self.second, dtype=_np.int64)
            if self.weights is None:
                order = _np.lexsort((rank[second], rank[first]))
            else:
                weights = _np.frombuffer(self.weights, dtype=_np.float64)
                order = _np.lexsort((rank[second], rank[first], -weights))
            sorted_first = array("q", first[order].tobytes())
            sorted_second = array("q", second[order].tobytes())
            sorted_weights = None
            if self.weights is not None:
                sorted_weights = array("d", weights[order].tobytes())
        else:
            first = self.first
            second = self.second
            weights = self.weights
            if weights is None:
                indices = sorted(
                    range(n), key=lambda i: (rank[first[i]], rank[second[i]])
                )
            else:
                indices = sorted(
                    range(n),
                    key=lambda i: (-weights[i], rank[first[i]], rank[second[i]]),
                )
            sorted_first = array("q", (first[i] for i in indices))
            sorted_second = array("q", (second[i] for i in indices))
            sorted_weights = (
                array("d", (weights[i] for i in indices)) if weights is not None else None
            )
        return ComparisonColumns(
            self.ids,
            sorted_first,
            sorted_second,
            sorted_weights,
            descriptions=self.descriptions,
            distinct=self.distinct,
            weight_ordered=True,
        )

    def deduplicated(self) -> "ComparisonColumns":
        """A copy keeping the first occurrence of every pair (input order).

        The columnar analogue of
        :func:`repro.progressive.schedulers.candidate_comparisons` over a
        comparison sequence.  A pass-through (returns ``self``) when the
        rows are already known to be distinct or too few to repeat.
        """
        if self.distinct or len(self) <= 1:
            return self
        seen: Set[int] = set()
        add = seen.add
        keep: List[int] = []
        for index, (f, s) in enumerate(zip(self.first, self.second)):
            code = pair_code(f, s)
            if code in seen:
                continue
            add(code)
            keep.append(index)
        if len(keep) == len(self):
            kept = (self.first, self.second, self.weights)
        else:
            kept = (
                array("q", (self.first[i] for i in keep)),
                array("q", (self.second[i] for i in keep)),
                array("d", (self.weights[i] for i in keep))
                if self.weights is not None
                else None,
            )
        return ComparisonColumns(
            self.ids,
            kept[0],
            kept[1],
            kept[2],
            descriptions=self.descriptions,
            distinct=True,
            weight_ordered=self.weight_ordered,
        )

    def __repr__(self) -> str:
        weighted = "weighted" if self.weights is not None else "unweighted"
        return f"ComparisonColumns({len(self)} comparisons, {len(self.ids)} ids, {weighted})"


class DecisionColumns(Sequence):
    """Match decisions as parallel ``(first, second, similarity, is_match)`` arrays.

    The columnar counterpart of a ``List[MatchDecision]``: an identifier
    table plus four flat columns.  The batched matching engine and the
    progressive runner's array drain emit executed decisions in this form,
    and the array clustering engine consumes it without ever materialising a
    per-pair object -- while every consumer written against a sequence of
    :class:`~repro.matching.matchers.MatchDecision` keeps working, because
    iteration and indexing materialise bit-identical decision objects lazily
    (the oracle bridge).

    Attributes
    ----------
    ids:
        Identifier table; ``first``/``second`` hold indices into it.  The
        table may be shared with the producing schedule and may therefore
        contain identifiers no decision references.
    first, second:
        ``array('q')`` ordinal columns, one entry per decision, stored in
        the execution orientation (use :meth:`pair` for the canonical pair).
    similarity:
        Aligned ``array('d')`` of similarity scores.
    is_match:
        Aligned ``bytearray`` of 0/1 match flags.
    cost:
        Budget cost per decision (uniform across the columns, like the
        fixed-cost matchers that emit them).
    """

    __slots__ = ("ids", "first", "second", "similarity", "is_match", "cost")

    def __init__(
        self,
        ids: Sequence[str],
        first: Optional[array] = None,
        second: Optional[array] = None,
        similarity: Optional[array] = None,
        is_match: Optional[bytearray] = None,
        cost: float = 1.0,
    ) -> None:
        self.ids = ids
        self.first = first if first is not None else array("q")
        self.second = second if second is not None else array("q")
        self.similarity = similarity if similarity is not None else array("d")
        self.is_match = is_match if is_match is not None else bytearray()
        self.cost = cost
        lengths = {len(self.first), len(self.second), len(self.similarity), len(self.is_match)}
        if len(lengths) != 1:
            raise ValueError("decision columns must have equal length")

    # ------------------------------------------------------------------
    @classmethod
    def from_decisions(
        cls, decisions: Iterable["MatchDecision"], cost: float = 1.0
    ) -> "DecisionColumns":
        """Intern existing decision objects into columns (the bridge *in*)."""
        intern = OrdinalInterner()
        columns = cls(intern.ids, cost=cost)
        for decision in decisions:
            first, second = decision.pair
            columns.append(
                intern(first), intern(second), decision.similarity, decision.is_match
            )
        return columns

    @classmethod
    def from_match_pairs(
        cls,
        pairs: Iterable[Tuple[str, str]],
        similarity: float = 1.0,
        cost: float = 1.0,
    ) -> "DecisionColumns":
        """Columns declaring every identifier pair a match at ``similarity``.

        The columnar analogue of the workflow tail's historical
        ``[MatchDecision(Comparison(a, b), 1.0, True) for a, b in matches]``
        list: pairs are canonicalised exactly like :class:`Comparison` would,
        so the resulting columns feed clustering bit-identically.
        """
        intern = OrdinalInterner()
        columns = cls(intern.ids, cost=cost)
        for first, second in pairs:
            if first > second:
                first, second = second, first
            elif first == second:
                raise ValueError(
                    f"a match decision requires two distinct descriptions, got {first!r} twice"
                )
            columns.append(intern(first), intern(second), similarity, True)
        return columns

    # ------------------------------------------------------------------
    def append(self, first: int, second: int, similarity: float, is_match: bool) -> None:
        """Record one executed decision as a row."""
        self.first.append(first)
        self.second.append(second)
        self.similarity.append(similarity)
        self.is_match.append(1 if is_match else 0)

    def __len__(self) -> int:
        return len(self.first)

    def __getitem__(self, index: int) -> "MatchDecision":
        if isinstance(index, slice):
            raise TypeError("DecisionColumns does not support slicing")
        # lazy import: matchers sits above the datamodel layer; the bridge
        # only pays for it when somebody actually materialises a decision
        from repro.matching.matchers import MatchDecision

        return MatchDecision(
            comparison=Comparison(self.ids[self.first[index]], self.ids[self.second[index]]),
            similarity=self.similarity[index],
            is_match=bool(self.is_match[index]),
            cost=self.cost,
        )

    def __iter__(self) -> Iterator["MatchDecision"]:
        for index in range(len(self.first)):
            yield self[index]

    # ------------------------------------------------------------------
    def pair(self, index: int) -> Tuple[str, str]:
        """The canonical identifier pair of row ``index`` (no object built)."""
        first = self.ids[self.first[index]]
        second = self.ids[self.second[index]]
        return (first, second) if first < second else (second, first)

    def pairs(self) -> Set[Tuple[str, str]]:
        """The distinct canonical pairs of all rows, as a set."""
        return {self.pair(index) for index in range(len(self.first))}

    def matched_pairs(self) -> List[Tuple[str, str]]:
        """Canonical pairs of the positive decisions, in row order."""
        return [
            self.pair(index)
            for index, flag in enumerate(self.is_match)
            if flag
        ]

    @property
    def num_matches(self) -> int:
        """Number of positive decisions."""
        return sum(self.is_match)

    def __repr__(self) -> str:
        return (
            f"DecisionColumns({len(self)} decisions, {self.num_matches} matches, "
            f"{len(self.ids)} ids)"
        )


class ComparisonCounter:
    """Counts comparisons executed per stage; shared by pipelines and budgets.

    The counter is the single source of truth that progressive ER uses to
    enforce a comparison budget, and that benchmarks use to report the number
    of executed comparisons per workflow stage.
    """

    def __init__(self) -> None:
        self._per_stage: Dict[str, int] = {}

    def record(self, stage: str = "matching", count: int = 1) -> None:
        self._per_stage[stage] = self._per_stage.get(stage, 0) + count

    def count(self, stage: Optional[str] = None) -> int:
        if stage is not None:
            return self._per_stage.get(stage, 0)
        return sum(self._per_stage.values())

    @property
    def total(self) -> int:
        return self.count()

    def per_stage(self) -> Dict[str, int]:
        return dict(self._per_stage)

    def reset(self) -> None:
        self._per_stage.clear()

    def __repr__(self) -> str:
        return f"ComparisonCounter(total={self.total}, stages={self._per_stage})"
