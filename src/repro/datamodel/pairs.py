"""Candidate comparisons (description pairs).

Blocking proposes *comparisons*: unordered pairs of description identifiers
that should be examined by the matching phase.  A comparison is canonicalised
so that the lexicographically smaller identifier always comes first, which
makes pair-level deduplication (redundant-comparison elimination) a set
operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


def canonical_pair(first: str, second: str) -> Tuple[str, str]:
    """Return the pair ordered lexicographically (the canonical form)."""
    if first == second:
        raise ValueError(f"a comparison requires two distinct descriptions, got {first!r} twice")
    return (first, second) if first < second else (second, first)


@dataclass(frozen=True)
class Comparison:
    """An unordered candidate pair of descriptions.

    Attributes
    ----------
    first, second:
        Identifiers of the two descriptions, stored in canonical
        (lexicographic) order regardless of construction order.
    weight:
        Optional weight attached by meta-blocking or a scheduler; higher
        means more likely to match.  ``None`` means unweighted.
    block_id:
        Optional identifier of the block that proposed this comparison.
    """

    first: str
    second: str
    weight: Optional[float] = field(default=None, compare=False)
    block_id: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        ordered = canonical_pair(self.first, self.second)
        if ordered != (self.first, self.second):
            object.__setattr__(self, "first", ordered[0])
            object.__setattr__(self, "second", ordered[1])

    @property
    def pair(self) -> Tuple[str, str]:
        return (self.first, self.second)

    def involves(self, identifier: str) -> bool:
        return identifier == self.first or identifier == self.second

    def other(self, identifier: str) -> str:
        """Return the member of the pair that is not ``identifier``."""
        if identifier == self.first:
            return self.second
        if identifier == self.second:
            return self.first
        raise KeyError(f"{identifier!r} is not part of comparison {self.pair}")

    def with_weight(self, weight: float) -> "Comparison":
        return Comparison(self.first, self.second, weight=weight, block_id=self.block_id)

    def __repr__(self) -> str:
        if self.weight is None:
            return f"Comparison({self.first!r}, {self.second!r})"
        return f"Comparison({self.first!r}, {self.second!r}, weight={self.weight:.4f})"


class ComparisonCounter:
    """Counts comparisons executed per stage; shared by pipelines and budgets.

    The counter is the single source of truth that progressive ER uses to
    enforce a comparison budget, and that benchmarks use to report the number
    of executed comparisons per workflow stage.
    """

    def __init__(self) -> None:
        self._per_stage: Dict[str, int] = {}

    def record(self, stage: str = "matching", count: int = 1) -> None:
        self._per_stage[stage] = self._per_stage.get(stage, 0) + count

    def count(self, stage: Optional[str] = None) -> int:
        if stage is not None:
            return self._per_stage.get(stage, 0)
        return sum(self._per_stage.values())

    @property
    def total(self) -> int:
        return self.count()

    def per_stage(self) -> Dict[str, int]:
        return dict(self._per_stage)

    def reset(self) -> None:
        self._per_stage.clear()

    def __repr__(self) -> str:
        return f"ComparisonCounter(total={self.total}, stages={self._per_stage})"
