"""Ground truth for evaluation: known equivalence clusters of descriptions.

The ground truth records which descriptions refer to the same real-world
entity.  It is stored both as equivalence clusters (one cluster per real-world
entity) and, lazily, as the induced set of matching pairs, which is what
pair-level metrics (pair completeness, pairs quality) consume.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.datamodel.description import provenance
from repro.datamodel.pairs import canonical_pair


class GroundTruth:
    """Known matching pairs / equivalence clusters of description identifiers."""

    def __init__(self, clusters: Optional[Iterable[Iterable[str]]] = None) -> None:
        self._cluster_of: Dict[str, int] = {}
        self._clusters: List[Set[str]] = []
        self._pairs: Optional[FrozenSet[Tuple[str, str]]] = None
        self._num_matches: Optional[int] = None
        if clusters:
            for cluster in clusters:
                self.add_cluster(cluster)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_cluster(self, identifiers: Iterable[str]) -> None:
        """Declare that all ``identifiers`` describe the same real-world entity."""
        members = [i for i in identifiers]
        if not members:
            return
        existing_clusters = {self._cluster_of[m] for m in members if m in self._cluster_of}
        if existing_clusters:
            # merge into the smallest-index existing cluster
            target = min(existing_clusters)
        else:
            target = len(self._clusters)
            self._clusters.append(set())
        for cluster_index in sorted(existing_clusters - {target}, reverse=True):
            absorbed = self._clusters[cluster_index]
            self._clusters[target].update(absorbed)
            for member in absorbed:
                self._cluster_of[member] = target
            self._clusters[cluster_index] = set()
        for member in members:
            self._clusters[target].add(member)
            self._cluster_of[member] = target
        self._pairs = None
        self._num_matches = None

    def add_match(self, first: str, second: str) -> None:
        """Declare a single matching pair (transitively closed with prior matches)."""
        self.add_cluster([first, second])

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[str, str]]) -> "GroundTruth":
        truth = cls()
        for first, second in pairs:
            truth.add_match(first, second)
        return truth

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def clusters(self) -> Tuple[FrozenSet[str], ...]:
        """Non-empty equivalence clusters (including singletons that were added)."""
        return tuple(frozenset(c) for c in self._clusters if c)

    def cluster_of(self, identifier: str) -> FrozenSet[str]:
        """Return the cluster containing ``identifier`` (a singleton if unknown)."""
        index = self._cluster_of.get(identifier)
        if index is None:
            return frozenset({identifier})
        return frozenset(self._clusters[index])

    def matching_pairs(self) -> FrozenSet[Tuple[str, str]]:
        """All canonical matching pairs induced by the clusters."""
        if self._pairs is None:
            pairs: Set[Tuple[str, str]] = set()
            for cluster in self._clusters:
                members = sorted(cluster)
                for i, first in enumerate(members):
                    for second in members[i + 1 :]:
                        pairs.add(canonical_pair(first, second))
            self._pairs = frozenset(pairs)
        return self._pairs

    def are_matches(self, first: str, second: str, resolve_merged: bool = True) -> bool:
        """Whether ``first`` and ``second`` describe the same real-world entity.

        When ``resolve_merged`` is true, identifiers produced by
        :func:`repro.datamodel.description.merge_descriptions` (of the form
        ``"a+b"``) are considered matches of another identifier if *any* of
        their constituent identifiers matches it; this is the semantics
        merging-based iterative ER requires.
        """
        if first == second:
            return True
        if not resolve_merged or ("+" not in first and "+" not in second):
            index_a = self._cluster_of.get(first)
            index_b = self._cluster_of.get(second)
            return index_a is not None and index_a == index_b
        parts_a = provenance(first)
        parts_b = provenance(second)
        for a in parts_a:
            for b in parts_b:
                if a == b:
                    return True
                index_a = self._cluster_of.get(a)
                index_b = self._cluster_of.get(b)
                if index_a is not None and index_a == index_b:
                    return True
        return False

    def cluster_index(self, identifier: str) -> int:
        """Dense index of the cluster containing ``identifier`` (-1 if unknown).

        Two known identifiers match exactly when their cluster indices are
        equal; the columnar evaluation paths compare these integers instead
        of probing a materialised pair set.  Merged identifiers (``"a+b"``)
        are *not* resolved -- callers that may see them go through
        :meth:`are_matches`.
        """
        index = self._cluster_of.get(identifier)
        return -1 if index is None else index

    def cluster_indices(self, identifiers: Iterable[str]) -> List[int]:
        """Cluster index per identifier (-1 for unknown), in input order.

        One dictionary lookup per identifier -- the ordinal-coded ground
        truth the evaluation fast paths index by table ordinal, instead of
        one tuple-set probe per candidate *pair*.
        """
        cluster_of = self._cluster_of
        return [cluster_of.get(identifier, -1) for identifier in identifiers]

    def num_matches(self) -> int:
        """Total number of matching pairs.

        Clusters are disjoint, so the count is a cached closed form over
        cluster sizes; the induced pair set is only materialised when a
        caller asks for :meth:`matching_pairs` itself.
        """
        if self._num_matches is None:
            self._num_matches = sum(
                len(cluster) * (len(cluster) - 1) // 2 for cluster in self._clusters
            )
        return self._num_matches

    def identifiers(self) -> FrozenSet[str]:
        return frozenset(self._cluster_of)

    def restricted_to(self, identifiers: Iterable[str]) -> "GroundTruth":
        """Ground truth restricted to a subset of identifiers (e.g. a sample)."""
        keep = set(identifiers)
        truth = GroundTruth()
        for cluster in self._clusters:
            members = [m for m in cluster if m in keep]
            if members:
                truth.add_cluster(members)
        return truth

    def __len__(self) -> int:
        return self.num_matches()

    def __repr__(self) -> str:
        return (
            f"GroundTruth(clusters={len(self.clusters)}, "
            f"matching_pairs={self.num_matches()})"
        )
