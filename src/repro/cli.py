"""Command-line interface for the ER workflow.

The CLI exposes the end-to-end workflow of :mod:`repro.core` to the shell so
that the library can be used on exported datasets without writing Python::

    # resolve a CSV export (one row per description, an "id" column)
    python -m repro.cli resolve descriptions.csv --output clusters.csv

    # resolve two clean sources against each other
    python -m repro.cli link kb_a.csv kb_b.csv --threshold 0.5

    # generate a synthetic workload for experimentation
    python -m repro.cli generate --entities 500 --domain person --output dirty.json

Every sub-command prints the per-stage report of the workflow; ``resolve`` and
``link`` write the resulting clusters (one line per cluster, identifiers
separated by ``|``) when ``--output`` is given.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core import ERWorkflow, WorkflowConfig
from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datasets import (
    DatasetConfig,
    generate_clean_clean_task,
    generate_dirty_dataset,
    load_collection_csv,
    load_collection_json,
    save_collection_csv,
    save_collection_json,
)


def _load_collection(path: str, id_field: str) -> EntityCollection:
    """Load a collection from CSV or JSON, based on the file extension."""
    suffix = Path(path).suffix.lower()
    if suffix == ".json":
        return load_collection_json(path)
    if suffix in (".csv", ".tsv", ".txt"):
        return load_collection_csv(path, id_field=id_field)
    raise SystemExit(f"unsupported input format {suffix!r}; expected .csv or .json")


def _workflow_from_args(args: argparse.Namespace) -> ERWorkflow:
    config = WorkflowConfig(
        blocking=args.blocking,
        blocking_engine=args.blocking_engine,
        enable_metablocking=not args.no_metablocking,
        weighting_scheme=args.weighting,
        pruning_scheme=args.pruning,
        metablocking_engine=args.metablocking_engine,
        scheduler=args.scheduler,
        scheduling_engine=args.scheduling_engine,
        matching_engine=args.matching_engine,
        budget=args.budget,
        match_threshold=args.threshold,
        iterate_merges=args.iterate,
        clustering=args.clustering,
        clustering_engine=args.clustering_engine,
        shared_context=not args.no_shared_context,
        num_workers=args.num_workers,
        worker_timeout=args.worker_timeout,
        max_shard_retries=args.max_shard_retries,
        on_worker_failure=args.on_worker_failure,
    )
    return ERWorkflow(config)


#: exit code of ``--strict`` runs in which a parallel stage degraded to
#: serial recomputation (results are still correct; the speedup was lost)
EXIT_DEGRADED = 3


def _report_faults(result, strict: bool) -> int:
    """Print per-stage fault-recovery counts; the command's exit code."""
    for stage in sorted(result.fault_events):
        counts = result.fault_events[stage]
        print(
            f"worker faults survived in {stage}: "
            f"retries={counts.get('retries', 0)} "
            f"degraded={counts.get('degraded', 0)} "
            f"pool_rebuilds={counts.get('pool_rebuilds', 0)}"
        )
    if strict and result.degraded_shards:
        print(
            f"--strict: {result.degraded_shards} shard(s) degraded to serial "
            f"recomputation; exiting {EXIT_DEGRADED}"
        )
        return EXIT_DEGRADED
    return 0


def _write_clusters(clusters, output: Optional[str]) -> None:
    if not output:
        return
    lines = ["|".join(sorted(cluster)) for cluster in sorted(clusters, key=lambda c: sorted(c)[0])]
    Path(output).write_text("\n".join(lines) + "\n", encoding="utf-8")
    print(f"wrote {len(lines)} clusters to {output}")


def _add_workflow_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--blocking",
        default="token",
        help="blocking scheme (default: token; also: attribute_clustering, "
        "prefix_infix_suffix, qgrams, standard, sorted_neighborhood, "
        "extended_sorted_neighborhood, similarity_join, minhash_lsh, canopy)",
    )
    parser.add_argument(
        "--blocking-engine",
        default="index",
        choices=["index", "oracle"],
        help="blocking + cleaning execution: array-backed interned-token engine (index, "
        "covers every builtin scheme) or the legacy per-dict builders and cleaners (oracle)",
    )
    parser.add_argument("--no-metablocking", action="store_true", help="disable meta-blocking")
    parser.add_argument("--weighting", default="CBS", help="meta-blocking weighting scheme")
    parser.add_argument("--pruning", default="WNP", help="meta-blocking pruning scheme")
    parser.add_argument(
        "--metablocking-engine",
        default="index",
        choices=["index", "graph"],
        help="meta-blocking engine: array-backed streaming (index) or legacy object graph",
    )
    parser.add_argument("--scheduler", default="weight_order", help="progressive scheduler")
    parser.add_argument(
        "--scheduling-engine",
        default="array",
        choices=["array", "object"],
        help="comparison scheduling: flat ordinal/weight arrays (array) or the "
        "schedulers' own generators (object); adaptive schedulers always use the latter",
    )
    parser.add_argument(
        "--matching-engine",
        default="batch",
        choices=["batch", "pairwise"],
        help="comparison execution: batched columnar scoring (batch) or the per-pair oracle",
    )
    parser.add_argument(
        "--clustering",
        default="connected_components",
        choices=["connected_components", "center", "merge_center"],
        help="final clustering of the declared matches (default: connected_components)",
    )
    parser.add_argument(
        "--clustering-engine",
        default="array",
        choices=["array", "object"],
        help="clustering execution: integer union-find/argsort passes over decision "
        "columns (array) or the algorithms' own string-keyed implementations (object)",
    )
    parser.add_argument(
        "--no-shared-context",
        action="store_true",
        help="disable the shared pipeline context (each stage interns its own "
        "token store, tokenising the collection once per stage)",
    )
    parser.add_argument(
        "--num-workers",
        type=int,
        default=1,
        help="worker processes of the multi-process parallel engine (default: 1 = "
        "in-process; >1 requires the shared context and produces bit-identical results)",
    )
    parser.add_argument(
        "--worker-timeout",
        type=float,
        default=None,
        help="no-progress timeout (seconds) per parallel shard batch; recovers "
        "from hung workers (default: none -- crashed workers are detected anyway)",
    )
    parser.add_argument(
        "--max-shard-retries",
        type=int,
        default=2,
        help="re-dispatches of a failed shard to a rebuilt pool before the "
        "failure policy applies (default: 2)",
    )
    parser.add_argument(
        "--on-worker-failure",
        default="degrade",
        choices=["degrade", "raise"],
        help="after retry exhaustion: recompute failed shards serially on the "
        "driver (degrade, bit-identical results) or abort the run (raise)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help=f"exit {EXIT_DEGRADED} if any parallel stage degraded to serial "
        "recomputation (results are still correct; use in CI to catch flaky pools)",
    )
    parser.add_argument("--budget", type=int, default=None, help="comparison budget (default: unlimited)")
    parser.add_argument("--threshold", type=float, default=0.55, help="match threshold")
    parser.add_argument("--iterate", action="store_true", help="enable merging-based iteration")
    parser.add_argument("--id-field", default="id", help="identifier column for CSV input")
    parser.add_argument("--output", default=None, help="file to write the clusters to")


def _command_resolve(args: argparse.Namespace) -> int:
    collection = _load_collection(args.input, args.id_field)
    workflow = _workflow_from_args(args)
    print(f"resolving {len(collection)} descriptions with: {workflow.config.describe()}")
    result = workflow.run(collection)
    print(result.report.render())
    print(f"{len(result.clusters)} clusters, {result.num_matches} declared matches")
    _write_clusters(result.clusters, args.output)
    return _report_faults(result, args.strict)


def _command_link(args: argparse.Namespace) -> int:
    left = _load_collection(args.left, args.id_field)
    right = _load_collection(args.right, args.id_field)
    task = CleanCleanTask(left, right)
    workflow = _workflow_from_args(args)
    print(
        f"linking {len(left)} x {len(right)} descriptions with: {workflow.config.describe()}"
    )
    result = workflow.run(task)
    print(result.report.render())
    print(f"{len(result.clusters)} linked clusters, {result.num_matches} declared links")
    _write_clusters(result.clusters, args.output)
    return _report_faults(result, args.strict)


def _command_incremental(args: argparse.Namespace) -> int:
    collection = _load_collection(args.input, args.id_field)
    config = WorkflowConfig(
        match_threshold=args.threshold,
        incremental_engine=args.engine,
    )
    workflow = ERWorkflow(config)
    mode = f"restored from {args.restore}" if args.restore else "fresh index"
    print(
        f"incrementally resolving {len(collection)} arrivals "
        f"(engine={args.engine}, threshold={args.threshold}, {mode})"
    )
    result = workflow.run_incremental(
        collection, snapshot=args.snapshot, restore=args.restore
    )
    print(result.report.render())
    print(f"{len(result.clusters)} clusters, {result.num_matches} declared matches")
    if args.snapshot:
        print(f"snapshot written to {args.snapshot}")
    _write_clusters(result.clusters, args.output)
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    config = DatasetConfig(
        num_entities=args.entities,
        duplicates_per_entity=args.duplicates,
        domain=args.domain,
        seed=args.seed,
    )
    if args.clean_clean:
        dataset = generate_clean_clean_task(config)
        collection = dataset.task.as_single_collection()
    else:
        dataset = generate_dirty_dataset(config)
        collection = dataset.collection

    output = Path(args.output)
    if output.suffix.lower() == ".json":
        save_collection_json(collection, output)
    else:
        save_collection_csv(collection, output)
    print(f"wrote {len(collection)} descriptions to {output}")

    if args.ground_truth:
        truth_path = Path(args.ground_truth)
        clusters = [sorted(cluster) for cluster in dataset.ground_truth.clusters]
        truth_path.write_text(
            json.dumps({"clusters": clusters}, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {len(clusters)} ground-truth clusters to {truth_path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Web-scale blocking, iterative and progressive entity resolution",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    resolve = subparsers.add_parser("resolve", help="deduplicate a single (dirty) collection")
    resolve.add_argument("input", help="CSV or JSON file with one row/object per description")
    _add_workflow_arguments(resolve)
    resolve.set_defaults(handler=_command_resolve)

    link = subparsers.add_parser("link", help="link two duplicate-free collections")
    link.add_argument("left", help="CSV or JSON file of the first collection")
    link.add_argument("right", help="CSV or JSON file of the second collection")
    _add_workflow_arguments(link)
    link.set_defaults(handler=_command_link)

    incremental = subparsers.add_parser(
        "incremental",
        help="resolve a collection as an arrival stream, with optional "
        "snapshot/restore of the resolution state",
    )
    incremental.add_argument(
        "input", help="CSV or JSON file with one row/object per description"
    )
    incremental.add_argument(
        "--engine",
        default="array",
        choices=["array", "object"],
        help="incremental engine: growable columnar index with snapshot "
        "support (array) or the per-pair object oracle",
    )
    incremental.add_argument(
        "--threshold", type=float, default=0.55, help="match threshold"
    )
    incremental.add_argument(
        "--snapshot",
        default=None,
        help="directory to persist the resolution state to after the stream "
        "(array engine only)",
    )
    incremental.add_argument(
        "--restore",
        default=None,
        help="snapshot directory to start from (memory-mapped; arrivals "
        "resolve on top of the restored state)",
    )
    incremental.add_argument("--id-field", default="id", help="identifier column for CSV input")
    incremental.add_argument("--output", default=None, help="file to write the clusters to")
    incremental.set_defaults(handler=_command_incremental)

    generate = subparsers.add_parser("generate", help="generate a synthetic workload")
    generate.add_argument("--entities", type=int, default=500)
    generate.add_argument("--duplicates", type=float, default=1.0)
    generate.add_argument("--domain", default="person", choices=["person", "product", "publication"])
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--clean-clean", action="store_true", help="generate a clean-clean task")
    generate.add_argument("--output", required=True, help="CSV or JSON file to write")
    generate.add_argument("--ground-truth", default=None, help="JSON file for the ground-truth clusters")
    generate.set_defaults(handler=_command_generate)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
