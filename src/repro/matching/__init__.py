"""Entity matching: deciding whether two descriptions refer to the same entity.

The matching phase consumes the comparisons proposed by blocking (possibly
re-ordered by a progressive scheduler) and declares matches.  The package
provides:

* similarity-based matchers over schema-agnostic token profiles and
  schema-aware weighted attributes (:mod:`repro.matching.matchers`);
* a batched comparison-execution engine (:mod:`repro.matching.engine`);
* a ground-truth *oracle* matcher with configurable noise and per-comparison
  cost, used by experiments that need to isolate scheduling behaviour from
  matcher quality (:mod:`repro.matching.oracle`);
* equivalence clustering of pairwise match decisions
  (:mod:`repro.matching.clustering`).

Execution engines
-----------------
Like the meta-blocking stage, matching separates *what* is decided from *how*
the decisions are executed.  The matchers are the readable per-pair
formulation, but they re-derive both descriptions' token profiles on every
comparison, so an entity appearing in *K* candidate pairs pays its
tokenisation and TF-IDF weighting cost *K* times.
:class:`~repro.matching.engine.MatchingEngine` (``engine="batch"``, the
workflow default) instead resolves each description once into a columnar
:class:`~repro.text.profile_store.ProfileStore` -- interned integer token
ids, sorted id arrays and L2-normalised TF-IDF weight columns -- and scores
candidate pairs in vectorised passes (NumPy when importable, with a
bit-identical pure-Python fallback).

The per-pair matchers remain the *oracle*: ``engine="pairwise"`` executes
them verbatim, the equivalence suite (``tests/test_matching_equivalence.py``)
pins both engines to bit-identical decisions, and the batch engine falls back
to the oracle automatically whenever it cannot replicate the configured
matcher -- :class:`~repro.matching.matchers.RuleBasedMatcher`,
:class:`~repro.matching.matchers.AttributeWeightedMatcher`, custom
:class:`~repro.matching.matchers.Matcher` implementations and
``ProfileSimilarityMatcher`` *subclasses* (whose overridden similarity the
columnar path cannot see).  Swapping engines therefore never changes a
workflow's output, only its speed.

The same split closes the pipeline tail.  On the batch path the engine can
emit executed decisions straight into a columnar
:class:`~repro.datamodel.pairs.DecisionColumns` (ordinal ``first``/``second``
plus flat ``similarity``/``is_match`` arrays; decision objects materialise
lazily as the oracle bridge), and
:class:`~repro.matching.cluster_engine.ClusteringEngine`
(``engine="array"``, the workflow default) clusters those columns with
integer path-halving union--find and argsort passes -- bit-identical clusters
to the object algorithms, including the heaviest-first tie order (descending
similarity, ties in canonical identifier-pair order).  ``engine="object"``
executes the :mod:`repro.matching.clustering` algorithms verbatim; custom
:class:`~repro.matching.clustering.ClusteringAlgorithm` implementations --
and subclasses of the three library algorithms -- always fall back to it,
receiving lazily materialised decisions, so the engine is safe for any
algorithm.
"""

from repro.matching.cluster_engine import CLUSTERING_ENGINES, ClusteringEngine
from repro.matching.clustering import (
    CenterClustering,
    ClusteringAlgorithm,
    ConnectedComponentsClustering,
    MergeCenterClustering,
)
from repro.matching.engine import MATCHING_ENGINES, MatchingEngine
from repro.matching.matchers import (
    AttributeWeightedMatcher,
    DecisionList,
    MatchDecision,
    Matcher,
    ProfileSimilarityMatcher,
    RuleBasedMatcher,
    ThresholdRule,
)
from repro.matching.oracle import OracleMatcher

__all__ = [
    "AttributeWeightedMatcher",
    "CLUSTERING_ENGINES",
    "CenterClustering",
    "ClusteringAlgorithm",
    "ClusteringEngine",
    "ConnectedComponentsClustering",
    "DecisionList",
    "MATCHING_ENGINES",
    "MatchDecision",
    "Matcher",
    "MatchingEngine",
    "MergeCenterClustering",
    "OracleMatcher",
    "ProfileSimilarityMatcher",
    "RuleBasedMatcher",
    "ThresholdRule",
]
