"""Entity matching: deciding whether two descriptions refer to the same entity.

The matching phase consumes the comparisons proposed by blocking (possibly
re-ordered by a progressive scheduler) and declares matches.  The package
provides:

* similarity-based matchers over schema-agnostic token profiles and
  schema-aware weighted attributes (:mod:`repro.matching.matchers`);
* a ground-truth *oracle* matcher with configurable noise and per-comparison
  cost, used by experiments that need to isolate scheduling behaviour from
  matcher quality (:mod:`repro.matching.oracle`);
* equivalence clustering of pairwise match decisions
  (:mod:`repro.matching.clustering`).
"""

from repro.matching.clustering import (
    CenterClustering,
    ConnectedComponentsClustering,
    MergeCenterClustering,
)
from repro.matching.matchers import (
    AttributeWeightedMatcher,
    MatchDecision,
    Matcher,
    ProfileSimilarityMatcher,
    RuleBasedMatcher,
    ThresholdRule,
)
from repro.matching.oracle import OracleMatcher

__all__ = [
    "AttributeWeightedMatcher",
    "CenterClustering",
    "ConnectedComponentsClustering",
    "MatchDecision",
    "Matcher",
    "MergeCenterClustering",
    "OracleMatcher",
    "ProfileSimilarityMatcher",
    "RuleBasedMatcher",
    "ThresholdRule",
]
