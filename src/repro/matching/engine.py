"""Batched comparison-execution engine for the matching phase.

The per-pair matchers in :mod:`repro.matching.matchers` are the readable
formulation of the matching phase, but they re-derive both descriptions'
token profiles on every comparison.  :class:`MatchingEngine` executes the
same decisions in batches against a columnar
:class:`~repro.text.profile_store.ProfileStore`: each description is
tokenised, interned and (in TF-IDF mode) weighted exactly once, and candidate
pairs are then scored in passes over flat integer/float columns.

Two engines sit behind one interface, mirroring the meta-blocking engines of
PR 1:

* ``engine="batch"`` (the default) -- resolves candidate pairs against the
  profile store and scores them in vectorised passes: NumPy when importable
  (token-id gathers against a vocabulary-sized scratch column, grouped by the
  left-hand description so its column is scattered once per group), and a
  pure-Python fallback over cached ``frozenset``/dict views.  Both paths are
  bit-identical to each other *and* to the per-pair matcher:

  - set similarities reduce to integer intersection counts, and the final
    score is computed with the very expressions of
    :mod:`repro.text.similarity`;
  - the TF-IDF cosine accumulates the dot product with :func:`math.fsum`
    (exactly rounded, order-independent) over elementwise products that IEEE
    multiplication makes identical regardless of operand order, and divides
    by the norms the store precomputed with ``fsum`` -- matching
    :func:`repro.text.vectorizer.weighted_cosine` bit for bit.

* ``engine="pairwise"`` -- delegates to the per-pair matcher, which remains
  the oracle of the equivalence suite (``tests/test_matching_equivalence.py``)
  and the automatic fallback whenever the batch path cannot replicate the
  matcher: :class:`~repro.matching.matchers.RuleBasedMatcher`,
  :class:`~repro.matching.matchers.AttributeWeightedMatcher`, custom
  :class:`~repro.matching.matchers.Matcher` implementations and
  ``ProfileSimilarityMatcher`` *subclasses* (whose overridden behaviour the
  columnar path cannot see) all run pairwise even under ``engine="batch"``.

Because decisions are bit-identical and emitted in input order, swapping the
engines never changes a workflow's output -- only its speed.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datamodel.description import EntityDescription
from repro.datamodel.pairs import Comparison, DecisionColumns, OrdinalInterner
from repro.matching.matchers import (
    DecisionList,
    MatchDecision,
    Matcher,
    ProfileSimilarityMatcher,
)
from repro.text.profile_store import Profile, ProfileStore
from repro.text.vectorizer import weighted_cosine

try:  # pragma: no cover - exercised implicitly when numpy is installed
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Execution engines of the matching phase.
MATCHING_ENGINES = ("batch", "pairwise")


def _set_score(similarity_name: str, size_a: int, size_b: int, shared: int) -> float:
    """Set similarity from cardinalities, using the exact expressions of
    :mod:`repro.text.similarity` so scores are bit-identical to the oracle."""
    if not size_a and not size_b:
        return 1.0
    if not size_a or not size_b:
        return 0.0
    if similarity_name == "jaccard":
        return shared / (size_a + size_b - shared)
    if similarity_name == "dice":
        return 2 * shared / (size_a + size_b)
    if similarity_name == "overlap":
        return shared / min(size_a, size_b)
    # cosine
    return shared / (size_a * size_b) ** 0.5


class MatchingEngine:
    """Comparison executor with a batched and a per-pair (oracle) engine.

    Parameters
    ----------
    matcher:
        The matcher whose decisions are executed.  The batch engine natively
        supports :class:`~repro.matching.matchers.ProfileSimilarityMatcher`
        (both its set-similarity and TF-IDF modes); every other matcher --
        including subclasses -- transparently falls back to the per-pair
        oracle, so the engine is always safe to use.
    engine:
        ``"batch"`` (default) or ``"pairwise"``.
    use_numpy:
        Force (``True``, raising :class:`ValueError` when NumPy is not
        importable) or forbid (``False``) the vectorised scoring path;
        ``None`` uses NumPy whenever importable.  Both paths are
        bit-identical.
    context:
        Optional shared :class:`~repro.core.context.PipelineContext`.  When
        given, the engine's profile store is backed by the context: profiles
        of descriptions the context owns are built from its interned columns
        (zero re-tokenisation), and transient descriptions (merges) fall
        back to tokenising into the shared vocabulary.  Decisions are
        bit-identical with or without a context.
    parallel:
        Optional :class:`~repro.mapreduce.parallel.ParallelEngine`.  When
        given (together with a context), :meth:`similarity_scores` batches
        whose descriptions all resolve to context ordinals are scored by
        worker processes over the context's shared columns -- bit-identical
        to the single-process batch path.  Batches touching transient
        descriptions (e.g. merges), or of fewer than two pairs, silently
        stay single-process.

    Notes
    -----
    An engine instance owns one :class:`~repro.text.profile_store.ProfileStore`
    bound to the first input data it sees; it is meant to live for one
    workflow run (one dataset).  :attr:`last_engine` reports which engine
    actually executed the most recent call (``"batch"``, ``"pairwise"``, or
    ``"parallel"`` when a :class:`~repro.mapreduce.parallel.ParallelEngine`
    scored the batch).
    """

    def __init__(
        self,
        matcher: Matcher,
        engine: str = "batch",
        use_numpy: Optional[bool] = None,
        context=None,
        parallel=None,
    ) -> None:
        if engine not in MATCHING_ENGINES:
            raise ValueError(f"unknown engine {engine!r}; available: {MATCHING_ENGINES}")
        if use_numpy and _np is None:
            raise ValueError(
                "use_numpy=True but numpy is not importable; "
                "pass use_numpy=None to fall back automatically"
            )
        self.matcher = matcher
        self.engine = engine
        self.context = context
        self.parallel = parallel
        self._use_numpy = (_np is not None) if use_numpy is None else bool(use_numpy)
        self._store: Optional[ProfileStore] = None
        self._store_source: Optional[object] = None
        #: engine that actually executed the last call
        self.last_engine: Optional[str] = None
        #: comparisons skipped by the last ``decide_all`` (unresolvable ids)
        self.last_skipped = 0

    # ------------------------------------------------------------------
    @property
    def batch_applicable(self) -> bool:
        """Whether the batch engine can replicate the configured matcher.

        The check is an exact type check, like the meta-blocking engine
        dispatch: subclasses may override ``similarity`` in ways the columnar
        path cannot replicate, so they stay on the per-pair oracle.
        """
        return self.engine == "batch" and type(self.matcher) is ProfileSimilarityMatcher

    @property
    def store(self) -> Optional[ProfileStore]:
        """The engine's profile store (``None`` until the first batch call)."""
        return self._store

    def invalidate(self, identifier: str) -> bool:
        """Invalidate one entity's store entry (after its description changed)."""
        return self._store.invalidate(identifier) if self._store is not None else False

    def _store_for(self, source: Optional[object]) -> ProfileStore:
        if self._store is None or (source is not None and source is not self._store_source):
            matcher = self.matcher
            # the shared pipeline context backs the store only for data it
            # actually owns (or for explicit pairs, which the update phase
            # resolves against the context's collection); a foreign
            # collection gets a plain per-engine store
            context = self.context
            if context is not None and source is not None and not context.owns(source):
                context = None
            if matcher.vectorizer is not None:
                self._store = ProfileStore(vectorizer=matcher.vectorizer, context=context)
            else:
                self._store = ProfileStore(
                    stop_words=matcher.stop_words,
                    min_token_length=matcher.min_token_length,
                    context=context,
                )
            self._store_source = source
        return self._store

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def decide_all(
        self,
        comparisons: Sequence[Comparison],
        data: Union[EntityCollection, CleanCleanTask],
    ) -> DecisionList:
        """Decide ``comparisons`` against ``data``; same contract as
        :meth:`Matcher.decide_all`, decisions in input order."""
        if not self.batch_applicable:
            self.last_engine = "pairwise"
            decisions = self.matcher.decide_all(comparisons, data)
            self.last_skipped = decisions.skipped
            return decisions

        self.last_engine = "batch"
        store = self._store_for(data)
        resolved: List[Tuple[Comparison, Profile, Profile]] = []
        decisions = DecisionList()
        for comparison in comparisons:
            first = data.get(comparison.first)
            second = data.get(comparison.second)
            if first is None or second is None:
                decisions.record_skip(comparison.pair)
                continue
            resolved.append((comparison, store.profile(first), store.profile(second)))
        scores = self._score(store, [(a, b) for _, a, b in resolved])
        matcher = self.matcher
        threshold = matcher.threshold
        cost = matcher.cost
        decisions.extend(
            MatchDecision(
                comparison=comparison,
                similarity=score,
                is_match=score >= threshold,
                cost=cost,
            )
            for (comparison, _, _), score in zip(resolved, scores)
        )
        self.last_skipped = decisions.skipped
        decisions.warn_if_skipped()
        return decisions

    def decide(
        self, first: EntityDescription, second: EntityDescription
    ) -> MatchDecision:
        """Decide one explicit pair through the engine.

        Even single-pair execution benefits from the store: the profiles of
        both descriptions are cached, so a description compared *K* times by
        an adaptive scheduler is tokenised and weighted only once.
        """
        if not self.batch_applicable:
            self.last_engine = "pairwise"
            return self.matcher.decide(first, second)
        self.last_engine = "batch"
        store = self._store_for(None)
        score = self._score(store, [(store.profile(first), store.profile(second))])[0]
        return MatchDecision(
            comparison=Comparison(first.identifier, second.identifier),
            similarity=score,
            is_match=score >= self.matcher.threshold,
            cost=self.matcher.cost,
        )

    def decide_pairs(
        self,
        pairs: Sequence[Tuple[EntityDescription, EntityDescription]],
    ) -> List[MatchDecision]:
        """Decide explicit description pairs (no identifier resolution).

        Used by the update/iterate phase, where one side of each pair is a
        freshly merged description that lives outside the input collection;
        the store caches it by identifier and recomputes automatically if a
        different object later reuses the identifier.
        """
        if not self.batch_applicable:
            self.last_engine = "pairwise"
            return [self.matcher.decide(first, second) for first, second in pairs]
        scores = self.similarity_scores(pairs)
        matcher = self.matcher
        threshold = matcher.threshold
        cost = matcher.cost
        return [
            MatchDecision(
                comparison=Comparison(first.identifier, second.identifier),
                similarity=score,
                is_match=score >= threshold,
                cost=cost,
            )
            for (first, second), score in zip(pairs, scores)
        ]

    def similarity_scores(
        self,
        pairs: Sequence[Tuple[EntityDescription, EntityDescription]],
    ) -> List[float]:
        """Raw similarity of explicit description pairs, in input order.

        The object-free core of :meth:`decide_pairs`: the scores it returns
        are exactly the ``similarity`` fields the decision objects would
        carry, but nothing per-pair is materialised -- the progressive
        runner's columnar drain feeds them straight into a
        :class:`~repro.datamodel.pairs.DecisionColumns`.  Only valid on the
        batch path (:attr:`batch_applicable`); matchers the batch engine
        cannot replicate have no object-free formulation.
        """
        if not self.batch_applicable:
            raise ValueError(
                "similarity_scores requires the batch engine and a natively "
                "supported matcher; use decide_pairs, which falls back to the "
                "per-pair oracle"
            )
        self.last_engine = "batch"
        if self.parallel is not None and self.context is not None and len(pairs) > 1:
            ordinal_pairs = self._resolve_ordinals(pairs)
            if ordinal_pairs is not None:
                self.last_engine = "parallel"
                return self.parallel.similarity_scores(
                    self.context, self.matcher, ordinal_pairs
                )
        store = self._store_for(None)
        profiles = [(store.profile(first), store.profile(second)) for first, second in pairs]
        return self._score(store, profiles)

    def _resolve_ordinals(
        self,
        pairs: Sequence[Tuple[EntityDescription, EntityDescription]],
    ) -> Optional[List[Tuple[int, int]]]:
        """The context ordinals of every pair, or ``None`` if any description
        is not the context's own object (e.g. a transient merge, whose tokens
        the shared columns do not carry)."""
        context = self.context
        ordinal_of = context.ordinal
        description_of = context.description
        ordinal_pairs: List[Tuple[int, int]] = []
        for first, second in pairs:
            a = ordinal_of(first.identifier)
            b = ordinal_of(second.identifier)
            if (
                a is None
                or b is None
                or description_of(a) is not first
                or description_of(b) is not second
            ):
                return None
            ordinal_pairs.append((a, b))
        return ordinal_pairs

    def decide_columns(
        self,
        pairs: Sequence[Tuple[EntityDescription, EntityDescription]],
    ) -> DecisionColumns:
        """Decide explicit description pairs straight into decision columns.

        The columnar sibling of :meth:`decide_pairs`: on the batch path the
        ordinal/similarity/is_match arrays are emitted directly (zero
        :class:`~repro.matching.matchers.MatchDecision` objects); matchers
        the batch engine cannot replicate fall back to the per-pair oracle
        and its decisions are interned into the same columnar form, so the
        result is bit-identical either way (lazy materialisation through the
        oracle bridge yields the very decisions ``decide_pairs`` returns).
        """
        cost = getattr(self.matcher, "cost", 1.0)
        if not self.batch_applicable:
            return DecisionColumns.from_decisions(self.decide_pairs(pairs), cost=cost)
        scores = self.similarity_scores(pairs)
        threshold = self.matcher.threshold
        intern = OrdinalInterner()
        columns = DecisionColumns(intern.ids, cost=cost)
        for (first, second), score in zip(pairs, scores):
            columns.append(
                intern(first.identifier),
                intern(second.identifier),
                score,
                score >= threshold,
            )
        return columns

    # ------------------------------------------------------------------
    # scoring passes
    # ------------------------------------------------------------------
    def _score(
        self, store: ProfileStore, profile_pairs: Sequence[Tuple[Profile, Profile]]
    ) -> List[float]:
        """Similarity of each profile pair, in input order."""
        if not profile_pairs:
            return []
        # the NumPy passes scatter into a vocabulary-sized scratch column --
        # a win amortised over a batch, pure overhead for a single pair
        # (e.g. adaptive schedulers deciding one comparison at a time), which
        # the bit-identical cached-set/dict path scores in O(profile) instead
        use_numpy = self._use_numpy and len(profile_pairs) > 1
        if store.mode == "tfidf":
            if use_numpy:
                return self._score_tfidf_numpy(store, profile_pairs)
            return self._score_tfidf_python(profile_pairs)
        if use_numpy:
            return self._score_sets_numpy(store, profile_pairs)
        return self._score_sets_python(profile_pairs)

    def _score_sets_python(
        self, profile_pairs: Sequence[Tuple[Profile, Profile]]
    ) -> List[float]:
        name = self.matcher.similarity_name
        scores = []
        for first, second in profile_pairs:
            shared = len(first.id_set & second.id_set)
            scores.append(_set_score(name, len(first), len(second), shared))
        return scores

    def _score_sets_numpy(
        self, store: ProfileStore, profile_pairs: Sequence[Tuple[Profile, Profile]]
    ) -> List[float]:
        name = self.matcher.similarity_name
        scores: List[float] = [0.0] * len(profile_pairs)
        flags = _np.zeros(store.vocabulary_size, dtype=bool)
        for left, group in self._grouped(profile_pairs).items():
            left_ids = left.np_ids
            left_size = len(left)
            flags[left_ids] = True
            non_empty = [(index, right) for index, right in group if len(right)]
            for index, right in group:
                if not len(right):
                    scores[index] = _set_score(name, left_size, 0, 0)
            if len(non_empty) == 1:
                # a single partner: one gather, no concatenation overhead
                index, right = non_empty[0]
                shared = int(flags[right.np_ids].sum())
                scores[index] = _set_score(name, left_size, len(right), shared)
            elif non_empty:
                # one gather for the whole group: concatenate the right
                # profiles' token ids and segment-sum the marked flags
                sizes = [len(right) for _index, right in non_empty]
                offsets = _np.zeros(len(sizes), dtype=_np.intp)
                _np.cumsum(sizes[:-1], out=offsets[1:])
                marked = flags[
                    _np.concatenate([right.np_ids for _index, right in non_empty])
                ]
                shared_counts = _np.add.reduceat(marked, offsets, dtype=_np.intp)
                for (index, right), shared in zip(non_empty, shared_counts.tolist()):
                    scores[index] = _set_score(name, left_size, len(right), shared)
            flags[left_ids] = False
        return scores

    def score_id_set_pairs(
        self,
        pairs: Sequence[Tuple[int, int]],
        id_columns: Sequence[Sequence[int]],
        vocabulary_size: int,
    ) -> List[float]:
        """Set-mode scores of ordinal pairs over precomputed token-id columns.

        The fully columnar entry point of the set scorer: callers that
        already hold one *distinct* token-id column per description (e.g.
        the similarity-join array build's
        :class:`~repro.blocking.columns.TokenColumnView`) score candidate
        ordinal pairs without materialising descriptions or profiles.
        Scores use the exact :func:`_set_score` expressions of every other
        batch path, so they are bit-identical to the per-pair oracle's
        similarities.  Requires the batch engine, a natively supported
        set-mode matcher, and columns indexed by the ordinals in ``pairs``.
        """
        if not self.batch_applicable:
            raise ValueError(
                "score_id_set_pairs requires the batch engine and a natively "
                "supported matcher"
            )
        if getattr(self.matcher, "vectorizer", None) is not None:
            raise ValueError("score_id_set_pairs only supports set-mode matchers")
        self.last_engine = "batch"
        name = self.matcher.similarity_name
        scores: List[float] = [0.0] * len(pairs)
        if self._use_numpy and len(pairs) > 1:
            # runs of equal first ordinals share one scatter of the first
            # column; callers that sort their pairs (the similarity join
            # emits them in ascending canonical order) get one run per
            # distinct left-hand description for free
            np_columns = [_np.asarray(column, dtype=_np.intp) for column in id_columns]
            sizes = [len(column) for column in id_columns]
            flags = _np.zeros(vocabulary_size, dtype=bool)
            total = len(pairs)
            start = 0
            while start < total:
                first = pairs[start][0]
                stop = start + 1
                while stop < total and pairs[stop][0] == first:
                    stop += 1
                first_size = sizes[first]
                seconds = [pairs[index][1] for index in range(start, stop)]
                non_empty = [second for second in seconds if sizes[second]]
                if len(non_empty) < len(seconds):
                    for offset, second in enumerate(seconds):
                        if not sizes[second]:
                            scores[start + offset] = _set_score(name, first_size, 0, 0)
                if non_empty:
                    first_ids = np_columns[first]
                    flags[first_ids] = True
                    if len(non_empty) == 1:
                        shared_counts = [int(flags[np_columns[non_empty[0]]].sum())]
                    else:
                        offsets = _np.zeros(len(non_empty), dtype=_np.intp)
                        _np.cumsum([sizes[s] for s in non_empty[:-1]], out=offsets[1:])
                        marked = flags[
                            _np.concatenate([np_columns[s] for s in non_empty])
                        ]
                        shared_counts = _np.add.reduceat(
                            marked, offsets, dtype=_np.intp
                        ).tolist()
                    counts = iter(shared_counts)
                    for offset, second in enumerate(seconds):
                        second_size = sizes[second]
                        if second_size:
                            scores[start + offset] = _set_score(
                                name, first_size, second_size, next(counts)
                            )
                    flags[first_ids] = False
                start = stop
            return scores
        sets: Dict[int, frozenset] = {}

        def id_set(ordinal: int) -> frozenset:
            cached = sets.get(ordinal)
            if cached is None:
                sets[ordinal] = cached = frozenset(id_columns[ordinal])
            return cached

        for index, (first, second) in enumerate(pairs):
            first_set = id_set(first)
            second_set = id_set(second)
            shared = len(first_set & second_set)
            scores[index] = _set_score(name, len(first_set), len(second_set), shared)
        return scores

    @staticmethod
    def _score_tfidf_python(
        profile_pairs: Sequence[Tuple[Profile, Profile]]
    ) -> List[float]:
        # weight_map is a SparseVector carrying the store's precomputed norm,
        # so this is literally the oracle's cosine over cached columns -- one
        # copy of the bit-identity-critical logic, not a transcription of it
        return [
            weighted_cosine(first.weight_map or {}, second.weight_map or {})
            for first, second in profile_pairs
        ]

    def _score_tfidf_numpy(
        self, store: ProfileStore, profile_pairs: Sequence[Tuple[Profile, Profile]]
    ) -> List[float]:
        scores: List[float] = [0.0] * len(profile_pairs)
        column = _np.zeros(store.vocabulary_size, dtype=_np.float64)
        for left, group in self._grouped(profile_pairs).items():
            if not len(left):
                continue  # empty profile: cosine is 0.0 for the whole group
            left_ids = left.np_ids
            column[left_ids] = left.np_weights
            left_norm = left.norm
            for index, right in group:
                if not len(right):
                    continue
                # tokens absent from the left profile gather 0.0 and
                # contribute exact-zero products, which leave the exactly
                # rounded fsum -- and hence bit-identity with the oracle's
                # intersection-only accumulation -- unchanged
                products = column[right.np_ids] * right.np_weights
                dot = math.fsum(products.tolist())
                if dot == 0.0:
                    continue
                right_norm = right.norm
                if left_norm == 0.0 or right_norm == 0.0:
                    continue
                scores[index] = dot / (left_norm * right_norm)
            column[left_ids] = 0.0
        return scores

    @staticmethod
    def _grouped(
        profile_pairs: Sequence[Tuple[Profile, Profile]]
    ) -> Dict[Profile, List[Tuple[int, Profile]]]:
        """Group pair indices by left profile so its column scatters once."""
        groups: Dict[Profile, List[Tuple[int, Profile]]] = {}
        for index, (first, second) in enumerate(profile_pairs):
            groups.setdefault(first, []).append((index, second))
        return groups
