"""Array-backed clustering engine.

Clustering was the last per-object phase of the workflow tail: every run
materialised a ``MatchDecision`` per declared match only to feed a
string-keyed union--find.  :class:`ClusteringEngine` executes the same three
library algorithms over the flat ordinal columns of a
:class:`~repro.datamodel.pairs.DecisionColumns`, following the established
two-engine pattern of the blocking, meta-blocking, matching and scheduling
phases:

* ``engine="array"`` (the default) -- the library algorithms run natively on
  columns:

  - :class:`~repro.matching.clustering.ConnectedComponentsClustering` is one
    :class:`~repro.core.unionfind.IntUnionFind` pass over the positive rows
    (path halving, first-root-wins -- the exact union rule of the oracle);
  - :class:`~repro.matching.clustering.CenterClustering` and
    :class:`~repro.matching.clustering.MergeCenterClustering` first order the
    positive rows heaviest-first with one ``lexsort``/argsort over the
    ``(similarity, first, second)`` columns -- similarity ties break on the
    identifier ranks, exactly the oracle's ``(-weight, first, second)`` sort
    key (see :func:`~repro.datamodel.pairs.identifier_ranks`) -- and then
    replay the greedy scan over flat assignment/center arrays.

  Cluster output is bit-identical to the oracle: the same frozensets in the
  same list order (clusters appear in first-assignment order of their
  members, which the array engine tracks explicitly).

* ``engine="object"`` -- delegates to the algorithm's own
  :meth:`~repro.matching.clustering.ClusteringAlgorithm.cluster`, which
  remains the readable reference implementation and the oracle of the
  equivalence suite (``tests/test_clustering_engine.py``).

Custom :class:`~repro.matching.clustering.ClusteringAlgorithm` subclasses --
including subclasses of the three library algorithms, whose overridden
behaviour the columnar path cannot see -- transparently fall back to the
object path; :class:`DecisionColumns` materialises bit-identical decision
objects lazily, so the fallback never needs a conversion step.
"""

from __future__ import annotations

from array import array
from typing import FrozenSet, Iterable, List, Optional, Sequence, Union

from repro.core.unionfind import IntUnionFind
from repro.datamodel.pairs import DecisionColumns, identifier_ranks
from repro.matching.clustering import (
    CenterClustering,
    ClusteringAlgorithm,
    ConnectedComponentsClustering,
    MergeCenterClustering,
)
from repro.matching.matchers import MatchDecision

try:  # pragma: no cover - exercised implicitly when numpy is installed
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Execution engines of the clustering phase.
CLUSTERING_ENGINES = ("array", "object")

#: Library algorithms the array engine replicates (exact types; subclasses
#: fall back to their own ``cluster``).
_ARRAY_ALGORITHMS = (
    ConnectedComponentsClustering,
    CenterClustering,
    MergeCenterClustering,
)


class ClusteringEngine:
    """Match-decision clustering with an array and an object (oracle) engine.

    Parameters
    ----------
    algorithm:
        The clustering algorithm whose clusters are computed.  The array
        engine natively supports the three library algorithms (exact types);
        every other algorithm -- subclasses included -- transparently falls
        back to its own ``cluster`` method, so the engine is always safe to
        use.
    engine:
        ``"array"`` (default) or ``"object"``.
    use_numpy:
        Force (``True``, raising :class:`ValueError` when NumPy is not
        importable) or forbid (``False``) the vectorised edge sort; ``None``
        uses NumPy whenever importable.  Both paths are bit-identical.
    parallel:
        Optional :class:`~repro.mapreduce.parallel.ParallelEngine`.  The
        connected-components union--find then runs as per-shard passes over
        shared-memory row ranges, merged on the driver -- bit-identical
        clusters in the identical list order.  The center algorithms are
        inherently sequential greedy scans and ignore it.

    Notes
    -----
    :attr:`last_engine` reports which engine actually produced the most
    recent clusters (``"array"``, ``"object"``, or ``"parallel"`` when the
    pooled union--find ran).
    """

    def __init__(
        self,
        algorithm: ClusteringAlgorithm,
        engine: str = "array",
        use_numpy: Optional[bool] = None,
        parallel=None,
    ) -> None:
        if engine not in CLUSTERING_ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; available: {CLUSTERING_ENGINES}"
            )
        if use_numpy and _np is None:
            raise ValueError(
                "use_numpy=True but numpy is not importable; "
                "pass use_numpy=None to fall back automatically"
            )
        self.algorithm = algorithm
        self.engine = engine
        self._use_numpy = (_np is not None) if use_numpy is None else bool(use_numpy)
        self.parallel = parallel
        #: engine that actually produced the last clusters
        self.last_engine: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def array_applicable(self) -> bool:
        """Whether the array engine can replicate the configured algorithm.

        An exact type check, like every other engine dispatch in the
        library: subclasses may override ``cluster`` in ways the columnar
        path cannot see, so they stay on the object oracle.
        """
        return self.engine == "array" and type(self.algorithm) in _ARRAY_ALGORITHMS

    def cluster(
        self, decisions: Union[DecisionColumns, Iterable[MatchDecision]]
    ) -> List[FrozenSet[str]]:
        """Cluster ``decisions``; same contract as ``algorithm.cluster``.

        Accepts either a :class:`DecisionColumns` (clustered natively on the
        array engine) or any iterable of decision objects (interned into
        columns first).  The object engine -- and every fallback -- receives
        the decisions unchanged; a :class:`DecisionColumns` input then
        materialises its decision objects lazily through the oracle bridge.
        """
        if not self.array_applicable:
            self.last_engine = "object"
            return self.algorithm.cluster(decisions)
        self.last_engine = "array"
        if not isinstance(decisions, DecisionColumns):
            decisions = DecisionColumns.from_decisions(decisions)
        kind = type(self.algorithm)
        if kind is ConnectedComponentsClustering:
            return self._cluster_connected(decisions)
        if kind is CenterClustering:
            return self._cluster_center(decisions)
        return self._cluster_merge_center(decisions)

    # ------------------------------------------------------------------
    # native array algorithms
    # ------------------------------------------------------------------
    @staticmethod
    def _canonical_rows(columns: DecisionColumns):
        """The ordinal columns with every row in canonical orientation.

        The oracle algorithms read ``decision.pair``, which always presents
        the lexicographically smaller identifier first; decision columns may
        instead store the *execution* orientation (``decide_columns``, the
        runner's ``keep_decisions`` drain).  Rows are swapped where needed so
        the edge sort and the greedy scans see exactly the oracle's pairs.
        """
        ids = columns.ids
        first = columns.first
        second = columns.second
        for f, s in zip(first, second):
            if ids[f] > ids[s]:
                break
        else:
            return first, second  # already canonical (the common case)
        first = array("q", first)
        second = array("q", second)
        for index, (f, s) in enumerate(zip(first, second)):
            if ids[f] > ids[s]:
                first[index] = s
                second[index] = f
        return first, second

    @staticmethod
    def _group_by_root(
        links: IntUnionFind, order: Sequence[int], ids: Sequence[str]
    ) -> List[FrozenSet[str]]:
        """Clusters of the ``order``-ed ordinals, grouped by union-find root.

        Enumerating the touched ordinals in first-touch order and the roots
        in first-appearance order replicates the oracle's insertion-ordered
        ``parent`` dict walk exactly.
        """
        groups: dict = {}
        for ordinal in order:
            groups.setdefault(links.find(ordinal), []).append(ordinal)
        return [
            frozenset(ids[member] for member in members)
            for members in groups.values()
        ]

    def _cluster_connected(self, columns: DecisionColumns) -> List[FrozenSet[str]]:
        ids = columns.ids
        first, second = self._canonical_rows(columns)
        if self.parallel is not None:
            # per-shard union--find passes merged on the driver; the merge
            # replays shard-local first-touch order range by range, which for
            # contiguous row shards equals the sequential first-touch order
            pooled = self.parallel.cluster_links(
                first, second, columns.is_match, len(ids)
            )
            if pooled is not None:
                self.last_engine = "parallel"
                links, order = pooled
                return self._group_by_root(links, order, ids)
        links = IntUnionFind(len(ids))
        touched = bytearray(len(ids))
        order: List[int] = []
        for f, s, flag in zip(first, second, columns.is_match):
            if not flag:
                continue
            if not touched[f]:
                touched[f] = 1
                order.append(f)
            if not touched[s]:
                touched[s] = 1
                order.append(s)
            links.union(f, s)
        return self._group_by_root(links, order, ids)

    def _positive_edges_heaviest_first(
        self, columns: DecisionColumns, first, second
    ) -> Sequence[int]:
        """Row indices of the positive decisions, heaviest-first.

        Descending similarity, ties broken by the identifier ranks of the
        canonical pair -- the exact oracle sort key
        ``(-similarity, first, second)`` (``first``/``second`` are the
        canonical-orientation columns of :meth:`_canonical_rows`; rank
        comparison equals string comparison).
        """
        rank = identifier_ranks(columns.ids)
        if self._use_numpy:
            flags = _np.frombuffer(columns.is_match, dtype=_np.uint8)
            positive = _np.flatnonzero(flags)
            if not len(positive):
                return ()
            first = _np.frombuffer(first, dtype=_np.int64)[positive]
            second = _np.frombuffer(second, dtype=_np.int64)[positive]
            similarity = _np.frombuffer(columns.similarity, dtype=_np.float64)[positive]
            order = _np.lexsort((rank[second], rank[first], -similarity))
            return positive[order].tolist()
        similarity = columns.similarity
        positive = [i for i, flag in enumerate(columns.is_match) if flag]
        positive.sort(
            key=lambda i: (-similarity[i], rank[first[i]], rank[second[i]])
        )
        return positive

    def _cluster_center(self, columns: DecisionColumns) -> List[FrozenSet[str]]:
        ids = columns.ids
        first, second = self._canonical_rows(columns)
        # center ordinal per assigned node, -1 while unassigned
        cluster_of = array("q", [-1]) * len(ids)
        is_center = bytearray(len(ids))
        order: List[int] = []  # nodes in assignment order, like the oracle dict

        for row in self._positive_edges_heaviest_first(columns, first, second):
            f = first[row]
            s = second[row]
            assigned_first = cluster_of[f] >= 0
            assigned_second = cluster_of[s] >= 0
            if not assigned_first and not assigned_second:
                cluster_of[f] = f
                is_center[f] = 1
                cluster_of[s] = f
                order.append(f)
                order.append(s)
            elif assigned_first and not assigned_second:
                if is_center[f]:
                    cluster_of[s] = f
                else:
                    cluster_of[s] = s
                    is_center[s] = 1
                order.append(s)
            elif assigned_second and not assigned_first:
                if is_center[s]:
                    cluster_of[f] = s
                else:
                    cluster_of[f] = f
                    is_center[f] = 1
                order.append(f)
            # both assigned: the edge is ignored

        groups: dict = {}
        for node in order:
            groups.setdefault(cluster_of[node], []).append(node)
        return [
            frozenset(ids[member] for member in members)
            for members in groups.values()
        ]

    def _cluster_merge_center(self, columns: DecisionColumns) -> List[FrozenSet[str]]:
        ids = columns.ids
        first, second = self._canonical_rows(columns)
        links = IntUnionFind(len(ids))
        is_center = bytearray(len(ids))
        assigned = bytearray(len(ids))
        order: List[int] = []

        for row in self._positive_edges_heaviest_first(columns, first, second):
            f = first[row]
            s = second[row]
            assigned_first = assigned[f]
            assigned_second = assigned[s]
            if not assigned_first and not assigned_second:
                is_center[f] = 1
                assigned[f] = 1
                assigned[s] = 1
                order.append(f)
                order.append(s)
                links.union(f, s)
            elif assigned_first and not assigned_second:
                assigned[s] = 1
                order.append(s)
                links.union(f, s)
            elif assigned_second and not assigned_first:
                assigned[f] = 1
                order.append(f)
                links.union(s, f)
            else:
                # both assigned: merge only if both are centers
                if is_center[f] and is_center[s] and links.find(f) != links.find(s):
                    links.union(f, s)

        return self._group_by_root(links, order, ids)
