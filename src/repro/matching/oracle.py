"""Ground-truth oracle matcher.

Several experiments of the surveyed literature (notably the progressive and
iterative ER ones) assume a *resolve* function whose answers are
(near-)perfect but expensive, and study how to spend a limited number of such
calls.  :class:`OracleMatcher` plays that role: it answers from the ground
truth with configurable false-negative/false-positive rates and a fixed per
comparison cost, while counting every call.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.datamodel.description import EntityDescription
from repro.datamodel.ground_truth import GroundTruth
from repro.datamodel.pairs import Comparison
from repro.matching.matchers import MatchDecision, Matcher


class OracleMatcher(Matcher):
    """Matcher that answers from the ground truth, with optional noise.

    Parameters
    ----------
    ground_truth:
        The known matches.
    false_negative_rate:
        Probability of answering "no" for a true match.
    false_positive_rate:
        Probability of answering "yes" for a true non-match.
    cost:
        Cost charged per call (consumed by progressive budgets).
    seed:
        Seed of the noise generator.
    """

    name = "oracle"

    def __init__(
        self,
        ground_truth: GroundTruth,
        false_negative_rate: float = 0.0,
        false_positive_rate: float = 0.0,
        cost: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= false_negative_rate < 1.0:
            raise ValueError("false negative rate must be in [0, 1)")
        if not 0.0 <= false_positive_rate < 1.0:
            raise ValueError("false positive rate must be in [0, 1)")
        self.ground_truth = ground_truth
        self.false_negative_rate = false_negative_rate
        self.false_positive_rate = false_positive_rate
        self.cost = cost
        self._rng = random.Random(seed)
        self.calls = 0

    def similarity(self, first: EntityDescription, second: EntityDescription) -> float:
        return 1.0 if self.ground_truth.are_matches(first.identifier, second.identifier) else 0.0

    def decide(self, first: EntityDescription, second: EntityDescription) -> MatchDecision:
        self.calls += 1
        truth = self.ground_truth.are_matches(first.identifier, second.identifier)
        answer = truth
        if truth and self.false_negative_rate > 0.0:
            if self._rng.random() < self.false_negative_rate:
                answer = False
        elif not truth and self.false_positive_rate > 0.0:
            if self._rng.random() < self.false_positive_rate:
                answer = True
        return MatchDecision(
            comparison=Comparison(first.identifier, second.identifier),
            similarity=1.0 if answer else 0.0,
            is_match=answer,
            cost=self.cost,
        )

    def reset(self) -> None:
        """Reset the call counter (the noise stream is not rewound)."""
        self.calls = 0
