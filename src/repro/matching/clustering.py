"""Clustering of pairwise match decisions into equivalence clusters.

Pairwise decisions are rarely consistent (similarity is not transitive), so a
clustering step turns the weighted "match graph" into disjoint entity
clusters.  Three classical algorithms are provided:

* :class:`ConnectedComponentsClustering` -- transitive closure of all declared
  matches; maximises recall, sensitive to chaining errors.
* :class:`CenterClustering` -- greedy: edges are scanned heaviest-first, the
  first unassigned endpoint of an edge becomes a cluster *center* and the
  other endpoint joins it; later edges can only attach unassigned nodes to
  centers.
* :class:`MergeCenterClustering` -- like center clustering, but an edge
  between two existing centers merges their clusters.

Tie-breaking
------------
Center and merge-center clustering scan edges *heaviest first*; edges of
equal weight are ordered by the canonical identifier pair ``(first, second)``
-- the same rule as
:meth:`~repro.datamodel.pairs.ComparisonColumns.weight_sorted` and
:class:`~repro.progressive.schedulers.WeightOrderScheduler`.  This order is
part of the algorithms' contract (it decides which endpoint of a tied edge
becomes a center) and is pinned by tests on both execution engines, so the
clusters of a run are reproducible bit for bit.

These classes are the readable *oracle* formulation over decision objects;
:class:`~repro.matching.cluster_engine.ClusteringEngine` executes the same
three algorithms over the flat ordinal columns of a
:class:`~repro.datamodel.pairs.DecisionColumns` with integer union--find and
argsort passes, falling back to the oracle for custom
:class:`ClusteringAlgorithm` subclasses.
"""

from __future__ import annotations

import abc
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.core.unionfind import UnionFind
from repro.matching.matchers import MatchDecision


def _as_weighted_pairs(
    decisions: Iterable[MatchDecision],
) -> List[Tuple[str, str, float]]:
    """Extract (first, second, similarity) for positive decisions only."""
    pairs = []
    for decision in decisions:
        if decision.is_match:
            first, second = decision.pair
            pairs.append((first, second, decision.similarity))
    return pairs


class ClusteringAlgorithm(abc.ABC):
    """Interface: positive match decisions in, equivalence clusters out."""

    name = "clustering"

    @abc.abstractmethod
    def cluster(self, decisions: Iterable[MatchDecision]) -> List[FrozenSet[str]]:
        """Return disjoint clusters covering every identifier in a positive decision."""

    @staticmethod
    def clusters_to_pairs(clusters: Iterable[FrozenSet[str]]) -> Set[Tuple[str, str]]:
        """All matching pairs induced by the clusters (for evaluation).

        Materialises one tuple per within-cluster pair -- quadratic in the
        cluster size.  Callers that only need the *number* of induced pairs
        (precision/recall denominators) should use
        :meth:`count_cluster_pairs` instead, which is what the evaluation
        fast paths do.
        """
        pairs: Set[Tuple[str, str]] = set()
        for cluster in clusters:
            members = sorted(cluster)
            for i, first in enumerate(members):
                for second in members[i + 1 :]:
                    pairs.add((first, second))
        return pairs

    @staticmethod
    def count_cluster_pairs(clusters: Iterable[FrozenSet[str]]) -> int:
        """Number of matching pairs induced by the clusters, without building them.

        Equals ``len(clusters_to_pairs(clusters))`` for disjoint clusters, in
        O(number of clusters) instead of O(total pairs).
        """
        return sum(len(cluster) * (len(cluster) - 1) // 2 for cluster in clusters)


class ConnectedComponentsClustering(ClusteringAlgorithm):
    """Transitive closure of declared matches via union--find."""

    name = "connected_components"

    def cluster(self, decisions: Iterable[MatchDecision]) -> List[FrozenSet[str]]:
        links = UnionFind()
        for first, second, _ in _as_weighted_pairs(decisions):
            links.union(first, second)
        return links.clusters()


def _edges_heaviest_first(
    decisions: Iterable[MatchDecision],
) -> List[Tuple[str, str, float]]:
    """Positive edges in descending weight; ties in canonical pair order."""
    edges = _as_weighted_pairs(decisions)
    edges.sort(key=lambda e: (-e[2], e[0], e[1]))
    return edges


class CenterClustering(ClusteringAlgorithm):
    """Greedy center clustering over edges sorted by descending similarity."""

    name = "center"

    def cluster(self, decisions: Iterable[MatchDecision]) -> List[FrozenSet[str]]:
        cluster_of: Dict[str, str] = {}  # node -> center, in assignment order
        is_center: Set[str] = set()

        for first, second, _ in _edges_heaviest_first(decisions):
            assigned_first = first in cluster_of
            assigned_second = second in cluster_of
            if not assigned_first and not assigned_second:
                # first becomes a center, second joins it
                cluster_of[first] = first
                is_center.add(first)
                cluster_of[second] = first
            elif assigned_first and not assigned_second:
                if first in is_center:
                    cluster_of[second] = first
                else:
                    # first is a non-center member: second starts its own cluster
                    cluster_of[second] = second
                    is_center.add(second)
            elif assigned_second and not assigned_first:
                if second in is_center:
                    cluster_of[first] = second
                else:
                    cluster_of[first] = first
                    is_center.add(first)
            # both assigned: the edge is ignored (no merging in plain center clustering)

        clusters: Dict[str, Set[str]] = {}
        for node, center in cluster_of.items():
            clusters.setdefault(center, set()).add(node)
        return [frozenset(members) for members in clusters.values()]


class MergeCenterClustering(ClusteringAlgorithm):
    """Center clustering that merges clusters when an edge joins two centers."""

    name = "merge_center"

    def cluster(self, decisions: Iterable[MatchDecision]) -> List[FrozenSet[str]]:
        links = UnionFind()
        is_center: Set[str] = set()
        # dict-as-ordered-set: nodes in assignment order, so the final cluster
        # list is deterministic (a plain set would enumerate in hash order)
        assigned: Dict[str, None] = {}

        for first, second, _ in _edges_heaviest_first(decisions):
            assigned_first = first in assigned
            assigned_second = second in assigned
            if not assigned_first and not assigned_second:
                is_center.add(first)
                assigned[first] = None
                assigned[second] = None
                links.union(first, second)
            elif assigned_first and not assigned_second:
                assigned[second] = None
                links.union(first, second)
            elif assigned_second and not assigned_first:
                assigned[first] = None
                links.union(second, first)
            else:
                # both assigned: merge only if both are centers
                if (
                    first in is_center
                    and second in is_center
                    and links.find(first) != links.find(second)
                ):
                    links.union(first, second)

        clusters: Dict[str, Set[str]] = {}
        for identifier in assigned:
            clusters.setdefault(links.find(identifier), set()).add(identifier)
        return [frozenset(members) for members in clusters.values()]
