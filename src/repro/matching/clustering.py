"""Clustering of pairwise match decisions into equivalence clusters.

Pairwise decisions are rarely consistent (similarity is not transitive), so a
clustering step turns the weighted "match graph" into disjoint entity
clusters.  Three classical algorithms are provided:

* :class:`ConnectedComponentsClustering` -- transitive closure of all declared
  matches; maximises recall, sensitive to chaining errors.
* :class:`CenterClustering` -- greedy: edges are scanned heaviest-first, the
  first unassigned endpoint of an edge becomes a cluster *center* and the
  other endpoint joins it; later edges can only attach unassigned nodes to
  centers.
* :class:`MergeCenterClustering` -- like center clustering, but an edge
  between two existing centers merges their clusters.
"""

from __future__ import annotations

import abc
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.datamodel.pairs import Comparison
from repro.matching.matchers import MatchDecision


def _as_weighted_pairs(
    decisions: Iterable[MatchDecision],
) -> List[Tuple[str, str, float]]:
    """Extract (first, second, similarity) for positive decisions only."""
    pairs = []
    for decision in decisions:
        if decision.is_match:
            first, second = decision.pair
            pairs.append((first, second, decision.similarity))
    return pairs


class ClusteringAlgorithm(abc.ABC):
    """Interface: positive match decisions in, equivalence clusters out."""

    name = "clustering"

    @abc.abstractmethod
    def cluster(self, decisions: Iterable[MatchDecision]) -> List[FrozenSet[str]]:
        """Return disjoint clusters covering every identifier in a positive decision."""

    @staticmethod
    def clusters_to_pairs(clusters: Iterable[FrozenSet[str]]) -> Set[Tuple[str, str]]:
        """All matching pairs induced by the clusters (for evaluation)."""
        pairs: Set[Tuple[str, str]] = set()
        for cluster in clusters:
            members = sorted(cluster)
            for i, first in enumerate(members):
                for second in members[i + 1 :]:
                    pairs.add((first, second))
        return pairs


class ConnectedComponentsClustering(ClusteringAlgorithm):
    """Transitive closure of declared matches via union--find."""

    name = "connected_components"

    def cluster(self, decisions: Iterable[MatchDecision]) -> List[FrozenSet[str]]:
        parent: Dict[str, str] = {}

        def find(x: str) -> str:
            parent.setdefault(x, x)
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        def union(a: str, b: str) -> None:
            root_a, root_b = find(a), find(b)
            if root_a != root_b:
                parent[root_b] = root_a

        for first, second, _ in _as_weighted_pairs(decisions):
            union(first, second)

        clusters: Dict[str, Set[str]] = {}
        for identifier in parent:
            clusters.setdefault(find(identifier), set()).add(identifier)
        return [frozenset(members) for members in clusters.values()]


class CenterClustering(ClusteringAlgorithm):
    """Greedy center clustering over edges sorted by descending similarity."""

    name = "center"

    def cluster(self, decisions: Iterable[MatchDecision]) -> List[FrozenSet[str]]:
        edges = _as_weighted_pairs(decisions)
        edges.sort(key=lambda e: (-e[2], e[0], e[1]))

        cluster_of: Dict[str, str] = {}  # node -> center
        is_center: Set[str] = set()

        for first, second, _ in edges:
            assigned_first = first in cluster_of
            assigned_second = second in cluster_of
            if not assigned_first and not assigned_second:
                # first becomes a center, second joins it
                cluster_of[first] = first
                is_center.add(first)
                cluster_of[second] = first
            elif assigned_first and not assigned_second:
                if first in is_center:
                    cluster_of[second] = first
                else:
                    # first is a non-center member: second starts its own cluster
                    cluster_of[second] = second
                    is_center.add(second)
            elif assigned_second and not assigned_first:
                if second in is_center:
                    cluster_of[first] = second
                else:
                    cluster_of[first] = first
                    is_center.add(first)
            # both assigned: the edge is ignored (no merging in plain center clustering)

        clusters: Dict[str, Set[str]] = {}
        for node, center in cluster_of.items():
            clusters.setdefault(center, set()).add(node)
        return [frozenset(members) for members in clusters.values()]


class MergeCenterClustering(ClusteringAlgorithm):
    """Center clustering that merges clusters when an edge joins two centers."""

    name = "merge_center"

    def cluster(self, decisions: Iterable[MatchDecision]) -> List[FrozenSet[str]]:
        edges = _as_weighted_pairs(decisions)
        edges.sort(key=lambda e: (-e[2], e[0], e[1]))

        parent: Dict[str, str] = {}
        is_center: Set[str] = set()

        def find(x: str) -> str:
            parent.setdefault(x, x)
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        def union(a: str, b: str) -> None:
            root_a, root_b = find(a), find(b)
            if root_a != root_b:
                parent[root_b] = root_a

        assigned: Set[str] = set()
        for first, second, _ in edges:
            assigned_first = first in assigned
            assigned_second = second in assigned
            if not assigned_first and not assigned_second:
                is_center.add(first)
                assigned.update((first, second))
                union(first, second)
            elif assigned_first and not assigned_second:
                assigned.add(second)
                union(first, second)
            elif assigned_second and not assigned_first:
                assigned.add(first)
                union(second, first)
            else:
                # both assigned: merge only if both are centers
                if find(first) != find(second) and first in is_center and second in is_center:
                    union(first, second)

        clusters: Dict[str, Set[str]] = {}
        for identifier in assigned:
            clusters.setdefault(find(identifier), set()).add(identifier)
        return [frozenset(members) for members in clusters.values()]
