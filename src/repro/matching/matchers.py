"""Pairwise matchers.

A matcher turns a pair of descriptions into a :class:`MatchDecision`: a
similarity score, a boolean decision and the cost charged against a
progressive budget.  Three matcher families are provided:

* :class:`ProfileSimilarityMatcher` -- schema-agnostic: compares the token
  profiles (optionally TF-IDF-weighted) of whole descriptions.  This is the
  right default for the Web of data, where attribute names are not aligned.
* :class:`AttributeWeightedMatcher` -- schema-aware: a weighted combination of
  per-attribute similarities, the classical record-linkage configuration.
* :class:`RuleBasedMatcher` -- a conjunction/disjunction of
  :class:`ThresholdRule` conditions on individual attributes.
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.datamodel.collection import CleanCleanTask, EntityCollection
from repro.datamodel.description import EntityDescription
from repro.datamodel.pairs import Comparison
from repro.text.similarity import get_similarity, jaccard_similarity
from repro.text.tokenize import DEFAULT_STOP_WORDS, token_set, tokenize
from repro.text.vectorizer import TfIdfVectorizer


@dataclass(frozen=True)
class MatchDecision:
    """The outcome of comparing two descriptions."""

    comparison: Comparison
    similarity: float
    is_match: bool
    cost: float = 1.0

    @property
    def pair(self) -> Tuple[str, str]:
        return self.comparison.pair


class DecisionList(List[MatchDecision]):
    """A list of match decisions plus batch-execution bookkeeping.

    Behaves exactly like a plain list of :class:`MatchDecision`; additionally
    carries how many comparisons were *skipped* because one of their
    identifiers could not be resolved against the input data (a symptom of
    blocking output and matching input drifting out of sync).
    """

    __slots__ = ("skipped", "skipped_examples")

    def __init__(self, decisions: Iterable[MatchDecision] = ()) -> None:
        super().__init__(decisions)
        #: number of comparisons dropped due to unresolvable identifiers
        self.skipped: int = 0
        #: up to the first five skipped identifier pairs, for diagnostics
        self.skipped_examples: List[Tuple[str, str]] = []

    def record_skip(self, pair: Tuple[str, str]) -> None:
        """Count one skipped comparison, keeping the first few as examples."""
        self.skipped += 1
        if len(self.skipped_examples) < 5:
            self.skipped_examples.append(pair)

    def warn_if_skipped(self) -> None:
        """Emit the shared unresolvable-identifier warning when skips occurred."""
        if self.skipped:
            _warn_skipped_comparisons(self.skipped, self.skipped_examples)


def _warn_skipped_comparisons(skipped: int, examples: Sequence[Tuple[str, str]]) -> None:
    """Emit the shared unresolvable-identifier warning of ``decide_all``."""
    sample = ", ".join(f"{first!r}-{second!r}" for first, second in examples[:3])
    warnings.warn(
        f"decide_all skipped {skipped} comparison(s) whose identifiers could not "
        f"be resolved against the input data (e.g. {sample}); the candidate "
        "comparisons and the entity collection appear to be out of sync",
        RuntimeWarning,
        stacklevel=3,
    )


class Matcher(abc.ABC):
    """Interface of a pairwise matcher."""

    name: str = "matcher"

    @abc.abstractmethod
    def similarity(self, first: EntityDescription, second: EntityDescription) -> float:
        """Similarity score of the two descriptions in [0, 1]."""

    @abc.abstractmethod
    def decide(self, first: EntityDescription, second: EntityDescription) -> MatchDecision:
        """Full decision (score, boolean match, cost) for the two descriptions."""

    def match(self, first: EntityDescription, second: EntityDescription) -> bool:
        """Boolean decision only."""
        return self.decide(first, second).is_match

    # ------------------------------------------------------------------
    def decide_all(
        self,
        comparisons: Iterable[Comparison],
        data: Union[EntityCollection, CleanCleanTask],
    ) -> DecisionList:
        """Decide a batch of comparisons, resolving identifiers against ``data``.

        Comparisons whose identifiers cannot be resolved are not decided, but
        they are no longer dropped invisibly: the returned
        :class:`DecisionList` counts them (:attr:`DecisionList.skipped`) and a
        :class:`RuntimeWarning` summarises the first few offending pairs.
        """
        decisions = DecisionList()
        for comparison in comparisons:
            first = data.get(comparison.first)
            second = data.get(comparison.second)
            if first is None or second is None:
                decisions.record_skip(comparison.pair)
                continue
            decision = self.decide(first, second)
            decisions.append(
                MatchDecision(
                    comparison=comparison,
                    similarity=decision.similarity,
                    is_match=decision.is_match,
                    cost=decision.cost,
                )
            )
        decisions.warn_if_skipped()
        return decisions


class ProfileSimilarityMatcher(Matcher):
    """Schema-agnostic matcher over whole-description token profiles.

    Parameters
    ----------
    threshold:
        Similarity at or above which the pair is declared a match.
    vectorizer:
        Optional fitted :class:`TfIdfVectorizer`; when given, the similarity
        is the TF-IDF weighted cosine, otherwise the set similarity named by
        ``similarity_name`` over the token sets.
    similarity_name:
        Set similarity used without a vectoriser: ``"jaccard"`` (default),
        ``"dice"``, ``"overlap"`` or ``"cosine"``.  The overlap coefficient is
        the right choice when merged descriptions are compared (merging grows
        the token union, which dilutes Jaccard but not the overlap
        coefficient).
    """

    name = "profile_similarity"

    def __init__(
        self,
        threshold: float = 0.5,
        vectorizer: Optional[TfIdfVectorizer] = None,
        stop_words=DEFAULT_STOP_WORDS,
        min_token_length: int = 2,
        similarity_name: str = "jaccard",
        cost: float = 1.0,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        from repro.text.similarity import SET_SIMILARITIES

        if similarity_name not in SET_SIMILARITIES:
            raise KeyError(
                f"unknown set similarity {similarity_name!r}; available: {sorted(SET_SIMILARITIES)}"
            )
        self.threshold = threshold
        self.vectorizer = vectorizer
        self.stop_words = frozenset(stop_words) if stop_words else frozenset()
        self.min_token_length = min_token_length
        self.similarity_name = similarity_name
        self._set_similarity = SET_SIMILARITIES[similarity_name]
        self.cost = cost

    def similarity(self, first: EntityDescription, second: EntityDescription) -> float:
        if self.vectorizer is not None:
            return self.vectorizer.similarity(first, second)
        tokens_a = token_set(
            first.values(), stop_words=self.stop_words, min_length=self.min_token_length
        )
        tokens_b = token_set(
            second.values(), stop_words=self.stop_words, min_length=self.min_token_length
        )
        return self._set_similarity(tokens_a, tokens_b)

    def decide(self, first: EntityDescription, second: EntityDescription) -> MatchDecision:
        score = self.similarity(first, second)
        return MatchDecision(
            comparison=Comparison(first.identifier, second.identifier),
            similarity=score,
            is_match=score >= self.threshold,
            cost=self.cost,
        )


class AttributeWeightedMatcher(Matcher):
    """Schema-aware matcher: weighted combination of per-attribute similarities.

    Parameters
    ----------
    attribute_weights:
        Mapping ``attribute name -> weight``; weights are normalised to sum
        to 1.  Attributes missing from *both* descriptions are skipped and
        their weight redistributed; attributes missing from one side score 0.
    similarity_name:
        Name of the per-attribute similarity (one of the registered string or
        set similarities, e.g. ``"jaro_winkler"``, ``"jaccard"``).
    threshold:
        Combined score at or above which the pair is a match.
    """

    name = "attribute_weighted"

    def __init__(
        self,
        attribute_weights: Mapping[str, float],
        similarity_name: str = "jaro_winkler",
        threshold: float = 0.75,
        cost: float = 1.0,
    ) -> None:
        if not attribute_weights:
            raise ValueError("attribute weights must not be empty")
        total = sum(attribute_weights.values())
        if total <= 0:
            raise ValueError("attribute weights must sum to a positive value")
        self.attribute_weights = {k: v / total for k, v in attribute_weights.items()}
        self.similarity_name = similarity_name
        self._similarity = get_similarity(similarity_name)
        self._is_set_similarity = similarity_name in ("jaccard", "dice", "overlap", "cosine")
        self.threshold = threshold
        self.cost = cost
        # raw value -> normalised form (token list or lowercased string).
        # Attribute values repeat heavily across the candidate pairs of one
        # run (each description is compared K times), so memoising the
        # per-value normalisation removes the dominant re-tokenisation cost.
        # The cache lives as long as the matcher; bounded by distinct values.
        self._value_cache: Dict[str, object] = {}

    def _normalised(self, value: str) -> object:
        cached = self._value_cache.get(value)
        if cached is None:
            cached = tokenize(value) if self._is_set_similarity else value.lower()
            self._value_cache[value] = cached
        return cached

    def _attribute_similarity(self, value_a: str, value_b: str) -> float:
        return self._similarity(self._normalised(value_a), self._normalised(value_b))

    def similarity(self, first: EntityDescription, second: EntityDescription) -> float:
        weighted_sum = 0.0
        weight_used = 0.0
        for attribute, weight in self.attribute_weights.items():
            values_a = first.values(attribute)
            values_b = second.values(attribute)
            if not values_a and not values_b:
                continue  # attribute absent on both sides: redistribute weight
            weight_used += weight
            if not values_a or not values_b:
                continue  # absent on one side only: contributes 0
            best = max(
                self._attribute_similarity(a, b) for a in values_a for b in values_b
            )
            weighted_sum += weight * best
        if weight_used == 0.0:
            return 0.0
        return weighted_sum / weight_used

    def decide(self, first: EntityDescription, second: EntityDescription) -> MatchDecision:
        score = self.similarity(first, second)
        return MatchDecision(
            comparison=Comparison(first.identifier, second.identifier),
            similarity=score,
            is_match=score >= self.threshold,
            cost=self.cost,
        )


@dataclass(frozen=True)
class ThresholdRule:
    """A single condition: similarity of one attribute must reach a threshold."""

    attribute: str
    threshold: float
    similarity_name: str = "jaro_winkler"

    def evaluate(self, first: EntityDescription, second: EntityDescription) -> Tuple[bool, float]:
        values_a = first.values(self.attribute)
        values_b = second.values(self.attribute)
        if not values_a or not values_b:
            return False, 0.0
        similarity = get_similarity(self.similarity_name)
        if self.similarity_name in ("jaccard", "dice", "overlap", "cosine"):
            best = max(
                similarity(tokenize(a), tokenize(b)) for a in values_a for b in values_b
            )
        else:
            best = max(similarity(a.lower(), b.lower()) for a in values_a for b in values_b)
        return best >= self.threshold, best


class RuleBasedMatcher(Matcher):
    """Conjunction (default) or disjunction of threshold rules.

    The reported similarity is the average of the per-rule best scores, so the
    matcher can still feed schedulers that expect a numeric score.
    """

    name = "rule_based"

    def __init__(self, rules: Sequence[ThresholdRule], require_all: bool = True, cost: float = 1.0) -> None:
        if not rules:
            raise ValueError("rule-based matching requires at least one rule")
        self.rules = list(rules)
        self.require_all = require_all
        self.cost = cost

    def similarity(self, first: EntityDescription, second: EntityDescription) -> float:
        scores = [rule.evaluate(first, second)[1] for rule in self.rules]
        return sum(scores) / len(scores)

    def decide(self, first: EntityDescription, second: EntityDescription) -> MatchDecision:
        outcomes = [rule.evaluate(first, second) for rule in self.rules]
        satisfied = [ok for ok, _ in outcomes]
        scores = [score for _, score in outcomes]
        is_match = all(satisfied) if self.require_all else any(satisfied)
        return MatchDecision(
            comparison=Comparison(first.identifier, second.identifier),
            similarity=sum(scores) / len(scores),
            is_match=is_match,
            cost=self.cost,
        )
