"""A single-process MapReduce engine with simulated parallel cost accounting.

The engine executes a :class:`MapReduceJob` exactly once over its input (so
results are identical to a sequential run) while *simulating* how the work
would be spread over ``num_workers`` map and reduce workers:

* the input is split into ``num_workers`` chunks processed by map workers;
  each map worker is charged ``job.map_cost(record)`` per record;
* the shuffle groups intermediate pairs by key and the configured
  :class:`~repro.mapreduce.balancing.Partitioner` assigns groups to reduce
  workers; each reduce worker is charged ``job.reduce_cost(key, values)`` per
  group;
* the simulated wall-clock time (*makespan*) of a phase is the maximum cost
  charged to any of its workers, and the job makespan is the sum of the two
  phase makespans.

Speedup and load-balance experiments read these numbers from
:class:`JobStatistics`; correctness never depends on the worker count.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Generic, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

from repro.mapreduce.balancing import HashPartitioner, Partitioner, load_imbalance

InputRecord = TypeVar("InputRecord")
Key = str
Value = Any


class MapReduceJob(abc.ABC):
    """A MapReduce job: map and reduce functions plus optional cost model."""

    name = "job"

    @abc.abstractmethod
    def map(self, record: Any) -> Iterable[Tuple[Key, Value]]:
        """Emit intermediate ``(key, value)`` pairs for one input record."""

    @abc.abstractmethod
    def reduce(self, key: Key, values: List[Value]) -> Iterable[Any]:
        """Emit output records for one intermediate key and all its values."""

    def combine(self, key: Key, values: List[Value]) -> List[Value]:
        """Optional combiner applied per map worker before the shuffle (default: identity)."""
        return values

    # ------------------------------------------------------------------
    # cost model (simulated time units)
    # ------------------------------------------------------------------
    def map_cost(self, record: Any) -> float:
        """Simulated cost of mapping one record (default 1)."""
        return 1.0

    def reduce_cost(self, key: Key, values: List[Value]) -> float:
        """Simulated cost of reducing one group (default: number of values)."""
        return float(len(values))


@dataclass
class JobStatistics:
    """Simulated execution statistics of one MapReduce job."""

    job_name: str
    num_workers: int
    num_input_records: int = 0
    #: pairs emitted by the map function, before any combiner ran
    num_intermediate_pairs: int = 0
    #: pairs that actually crossed the shuffle (after per-worker combiners);
    #: equals ``num_intermediate_pairs`` when no combiner is used
    num_combined_pairs: int = 0
    num_groups: int = 0
    num_output_records: int = 0
    map_worker_costs: List[float] = field(default_factory=list)
    reduce_worker_costs: List[float] = field(default_factory=list)

    @property
    def map_makespan(self) -> float:
        return max(self.map_worker_costs) if self.map_worker_costs else 0.0

    @property
    def reduce_makespan(self) -> float:
        return max(self.reduce_worker_costs) if self.reduce_worker_costs else 0.0

    @property
    def makespan(self) -> float:
        """Simulated parallel wall-clock time of the job."""
        return self.map_makespan + self.reduce_makespan

    @property
    def sequential_cost(self) -> float:
        """Total work, i.e. the simulated time of a single-worker execution."""
        return sum(self.map_worker_costs) + sum(self.reduce_worker_costs)

    @property
    def speedup(self) -> float:
        """Speedup of the simulated parallel execution over the sequential one."""
        if self.makespan == 0:
            return 1.0
        return self.sequential_cost / self.makespan

    @property
    def reduce_imbalance(self) -> float:
        """Reduce-phase load imbalance (max/mean worker cost)."""
        return load_imbalance(self.reduce_worker_costs)

    def as_dict(self) -> Dict[str, float]:
        return {
            "workers": self.num_workers,
            "input_records": self.num_input_records,
            "intermediate_pairs": self.num_intermediate_pairs,
            "combined_pairs": self.num_combined_pairs,
            "groups": self.num_groups,
            "output_records": self.num_output_records,
            "makespan": self.makespan,
            "sequential_cost": self.sequential_cost,
            "speedup": self.speedup,
            "reduce_imbalance": self.reduce_imbalance,
        }


class MapReduceEngine:
    """Executes MapReduce jobs with simulated parallelism.

    Parameters
    ----------
    num_workers:
        Number of simulated map workers and reduce workers.
    partitioner:
        Strategy assigning intermediate keys to reduce workers; the default
        hash partitioner reproduces skew effects, the greedy balanced
        partitioner mitigates them.
    use_combiner:
        Whether to run the job's combiner on each map worker's local output.
    """

    def __init__(
        self,
        num_workers: int = 4,
        partitioner: Optional[Partitioner] = None,
        use_combiner: bool = True,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.num_workers = num_workers
        self.partitioner = partitioner or HashPartitioner()
        self.use_combiner = use_combiner

    # ------------------------------------------------------------------
    def _split_input(self, records: Sequence[Any]) -> List[List[Any]]:
        """Split the input into one chunk per map worker (contiguous ranges)."""
        chunks: List[List[Any]] = [[] for _ in range(self.num_workers)]
        if not records:
            return chunks
        chunk_size = max(1, (len(records) + self.num_workers - 1) // self.num_workers)
        for index, record in enumerate(records):
            chunks[min(index // chunk_size, self.num_workers - 1)].append(record)
        return chunks

    def run(self, job: MapReduceJob, records: Sequence[Any]) -> Tuple[List[Any], JobStatistics]:
        """Execute ``job`` over ``records``; return (outputs, statistics)."""
        statistics = JobStatistics(job_name=job.name, num_workers=self.num_workers)
        statistics.num_input_records = len(records)

        # ---------------- map phase ----------------
        chunks = self._split_input(list(records))
        grouped: Dict[Key, List[Value]] = {}
        map_costs: List[float] = []
        for chunk in chunks:
            worker_cost = 0.0
            local: Dict[Key, List[Value]] = {}
            for record in chunk:
                worker_cost += job.map_cost(record)
                for key, value in job.map(record):
                    local.setdefault(key, []).append(value)
                    statistics.num_intermediate_pairs += 1
            if self.use_combiner:
                local = {key: job.combine(key, values) for key, values in local.items()}
            for key, values in local.items():
                statistics.num_combined_pairs += len(values)
                grouped.setdefault(key, []).extend(values)
            map_costs.append(worker_cost)
        statistics.map_worker_costs = map_costs

        # ---------------- shuffle + reduce phase ----------------
        statistics.num_groups = len(grouped)
        group_costs = {key: job.reduce_cost(key, values) for key, values in grouped.items()}
        assignment = self.partitioner.assign(group_costs, self.num_workers)

        reduce_costs = [0.0] * self.num_workers
        outputs: List[Any] = []
        # deterministic processing order: by key
        for key in sorted(grouped):
            worker = assignment[key]
            reduce_costs[worker] += group_costs[key]
            for output in job.reduce(key, grouped[key]):
                outputs.append(output)
        statistics.reduce_worker_costs = reduce_costs
        statistics.num_output_records = len(outputs)
        return outputs, statistics
