"""Supervised shard dispatch: the fault-tolerant replacement for ``pool.map``.

A bare ``Pool.map`` call has no story for worker death: a SIGKILLed worker's
in-flight chunk is lost forever (its result never arrives), a wedged worker
blocks the map indefinitely, and the driver's only symptom is a hang.  The
:class:`Supervisor` replaces that call for every
:class:`~repro.mapreduce.parallel.ParallelEngine` stage:

* shards are submitted **individually** (``apply_async``), so one lost shard
  never takes sibling results down with it;
* the collect loop watches for **pool damage** -- a worker whose ``exitcode``
  is set, the pool's worker pid-set churning (the pool replaces dead workers,
  but their in-flight shards are already lost), or the pool leaving its
  running state -- and for a **no-progress timeout** (the deadline re-arms on
  every reaped shard, so only a stalled batch trips it, not a slow one);
* on either signal the pool is torn down (``terminate`` + watchdog join, see
  :func:`shutdown_pool`), rebuilt, and the unfinished shards are resubmitted
  after a bounded exponential backoff;
* when a shard exhausts its retries the configured policy applies:
  ``"raise"`` aborts with :class:`WorkerFailureError`, ``"degrade"`` warns
  with :class:`DegradedExecutionWarning` and recomputes the shard **inline on
  the driver** -- the job functions are ordinary picklable callables, the
  driver can attach its own shared-memory segments, and the serial engines
  are the bit-identity oracle, so a degraded run returns byte-identical
  results (just without the parallelism).

Determinism is preserved by construction: results are collected into their
task-index slots regardless of completion order, every stage's merge walks
shards in range order, and the shard jobs themselves are deterministic -- so
a retried or degraded shard contributes exactly the bytes the first attempt
would have.  Exceptions *raised by the job itself* (deterministic data
errors) are not retried: they would fail identically on every attempt, so
they propagate to the caller unchanged, exactly as under ``pool.map``.

:func:`~repro.mapreduce.faults.maybe_trigger` is woven into the worker-side
entry point (:func:`invoke`), which is how the chaos suite injects worker
kills/hangs/delays at an exact (stage, shard, attempt) coordinate.
"""

from __future__ import annotations

import threading
import time
import warnings
from multiprocessing import pool as mp_pool
from typing import Callable, Dict, List, Optional, Sequence

from repro.mapreduce import faults

__all__ = [
    "DegradedExecutionWarning",
    "Supervisor",
    "WorkerFailureError",
    "invoke",
    "shutdown_pool",
]


class WorkerFailureError(RuntimeError):
    """A shard exhausted its retries under the ``"raise"`` failure policy."""

    def __init__(self, stage: str, shard: int, attempts: int, reason: str) -> None:
        super().__init__(
            f"stage {stage!r} shard {shard} failed after {attempts} "
            f"pool attempt(s): {reason}"
        )
        self.stage = stage
        self.shard = shard
        self.attempts = attempts
        self.reason = reason


class DegradedExecutionWarning(RuntimeWarning):
    """A shard exhausted its retries and was recomputed serially on the driver."""

    def __init__(self, stage: str, shard: int, attempts: int, reason: str) -> None:
        super().__init__(
            f"stage {stage!r} shard {shard} failed after {attempts} pool "
            f"attempt(s) ({reason}); recomputed serially on the driver -- "
            "results are unaffected, parallel speedup is"
        )
        self.stage = stage
        self.shard = shard
        self.attempts = attempts
        self.reason = reason


def invoke(payload):
    """Worker-side shard entry point: fault hook, then the real job.

    ``payload`` is ``(job, task, stage, shard, attempt)``.  Module-level so
    it is picklable under every start method; the attempt number travels in
    the payload (not the environment) because forked workers snapshot the
    driver's environment at pool build time.
    """
    job, task, stage, shard, attempt = payload
    faults.maybe_trigger(stage, shard, attempt)
    return job(task)


def _kill_workers(pool) -> None:
    for process in list(getattr(pool, "_pool", []) or []):
        try:
            process.kill()
        except Exception:  # pragma: no cover - already-reaped worker
            pass


def shutdown_pool(pool, graceful: bool = True, join_timeout: float = 5.0) -> None:
    """Shut a pool down without ever hanging the driver -- or interpreter exit.

    The naive ``close()`` + ``join()`` blocks forever when a worker is wedged
    in a shard: the killed worker's pending result keeps the pool's cache
    non-empty, so the worker handler respawns workers and ``join()`` never
    returns.  Here the whole drain runs in a watchdog thread; if it misses
    ``join_timeout`` the workers are ``SIGKILL``-ed and ``pool.terminate()``
    is invoked from a second daemon thread (its first act is flipping the
    handler threads to ``TERMINATE``, which stops the respawn loop, even if
    the rest of the teardown then wedges on a queue lock a killed worker
    died holding).  If the drain *still* has not finished, the pool's
    ``atexit`` finalizer is cancelled -- running it at interpreter exit would
    hang the exit on the same lock; abandoning the daemon threads leaks a
    few handles instead, and they cannot keep the interpreter alive.
    """
    if pool is None:
        return

    def drain() -> None:
        try:
            if graceful:
                pool.close()
            else:
                pool.terminate()
            pool.join()
        except Exception:
            pass

    watchdog = threading.Thread(target=drain, daemon=True, name="repro-pool-drain")
    watchdog.start()
    watchdog.join(join_timeout)
    if not watchdog.is_alive():
        return
    _kill_workers(pool)
    escalation = threading.Thread(
        target=pool.terminate, daemon=True, name="repro-pool-terminate"
    )
    escalation.start()
    escalation.join(join_timeout)
    # terminate's state flip may have raced one last worker respawn
    _kill_workers(pool)
    watchdog.join(join_timeout)
    if watchdog.is_alive() or escalation.is_alive():
        finalizer = getattr(pool, "_terminate", None)
        if hasattr(finalizer, "cancel"):  # pragma: no cover - wedged teardown
            finalizer.cancel()


class Supervisor:
    """Owns a worker pool and runs shard batches on it fault-tolerantly.

    Parameters
    ----------
    pool_factory:
        Zero-argument callable returning a fresh ``multiprocessing`` pool;
        invoked lazily for the first batch and again after every rebuild.
    timeout:
        No-progress timeout in seconds: the clock re-arms every time a shard
        result is reaped, so it bounds *stalls*, not batch duration.  ``None``
        (default) disables it -- dead workers are still detected by exitcode
        and pid churn; only silent hangs then need external intervention.
    max_retries:
        How many times a failed shard is re-dispatched to a (rebuilt) pool
        before the failure policy applies.
    on_failure:
        ``"degrade"`` (default): warn and recompute exhausted shards serially
        on the driver.  ``"raise"``: abort with :class:`WorkerFailureError`.
    backoff_base / backoff_cap:
        Bounded exponential backoff between rebuild attempts:
        ``min(cap, base * 2**(attempt-1))`` seconds.
    poll_interval:
        Collect-loop wait granularity in seconds.
    join_timeout:
        Watchdog window passed to :func:`shutdown_pool`.
    inline_cleanup:
        Optional callable invoked after any degraded inline recomputation of
        a batch; the parallel engine passes
        :func:`repro.mapreduce.worker.release_attachments` so shared-memory
        attachments the inline jobs cached in the *driver* process are
        released before the engine unlinks its segments.

    Attributes
    ----------
    stats:
        ``{stage: {"retries": int, "degraded": int, "pool_rebuilds": int}}``
        accumulated over the supervisor's lifetime; stages that never failed
        never appear.  This is what surfaces in the workflow report and the
        CLI stats output.
    """

    _POLICIES = ("degrade", "raise")

    def __init__(
        self,
        pool_factory: Callable[[], "mp_pool.Pool"],
        *,
        timeout: Optional[float] = None,
        max_retries: int = 2,
        on_failure: str = "degrade",
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        poll_interval: float = 0.02,
        join_timeout: float = 5.0,
        inline_cleanup: Optional[Callable[[], None]] = None,
    ) -> None:
        if on_failure not in self._POLICIES:
            raise ValueError(
                f"on_failure must be one of {self._POLICIES}, got {on_failure!r}"
            )
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self._pool_factory = pool_factory
        self._timeout = timeout
        self._max_retries = max_retries
        self._on_failure = on_failure
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._poll_interval = poll_interval
        self._join_timeout = join_timeout
        self._inline_cleanup = inline_cleanup
        self._pool = None
        self._pool_pids: frozenset = frozenset()
        self.stats: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._pool_factory()
            self._pool_pids = frozenset(p.pid for p in self._pool._pool)
        return self._pool

    def _discard_pool(self) -> None:
        pool, self._pool = self._pool, None
        self._pool_pids = frozenset()
        if pool is not None:
            shutdown_pool(pool, graceful=False, join_timeout=self._join_timeout)

    def shutdown(self, graceful: bool = True) -> None:
        """Tear the pool down (idempotent; never hangs, see :func:`shutdown_pool`)."""
        pool, self._pool = self._pool, None
        self._pool_pids = frozenset()
        if pool is not None:
            shutdown_pool(pool, graceful=graceful, join_timeout=self._join_timeout)

    def _stage_stats(self, stage: str) -> Dict[str, int]:
        stats = self.stats.get(stage)
        if stats is None:
            stats = self.stats[stage] = {"retries": 0, "degraded": 0, "pool_rebuilds": 0}
        return stats

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def run(self, job, tasks: Sequence[tuple], stage: str) -> list:
        """Run ``job`` over ``tasks`` on the pool; returns results in task order.

        Semantically ``[job(t) for t in tasks]`` -- including which exception
        is raised when a job fails deterministically -- but executed on the
        worker pool with crash recovery as described in the module docstring.
        """
        tasks = list(tasks)
        results: List[object] = [None] * len(tasks)
        done = [False] * len(tasks)
        attempts = [0] * len(tasks)
        pending = list(range(len(tasks)))
        recomputed_inline = False
        while pending:
            pool = self._ensure_pool()
            handles = {}
            for shard in pending:
                attempts[shard] += 1
                payload = (job, tasks[shard], stage, shard, attempts[shard] - 1)
                handles[shard] = pool.apply_async(invoke, (payload,))
            pending = []
            reason = self._collect(pool, handles, results, done)
            if reason is None:
                continue
            # the pool is damaged or stalled: everything unreaped is suspect
            self._discard_pool()
            stats = self._stage_stats(stage)
            stats["pool_rebuilds"] += 1
            backoff = 0.0
            for shard in sorted(handles):
                if attempts[shard] <= self._max_retries:
                    stats["retries"] += 1
                    pending.append(shard)
                    backoff = max(
                        backoff,
                        min(self._backoff_cap, self._backoff_base * 2 ** (attempts[shard] - 1)),
                    )
                elif self._on_failure == "raise":
                    raise WorkerFailureError(stage, shard, attempts[shard], reason)
                else:
                    stats["degraded"] += 1
                    warnings.warn(
                        DegradedExecutionWarning(stage, shard, attempts[shard], reason),
                        stacklevel=2,
                    )
                    # the driver runs the exact worker kernel inline: the
                    # fault hook is inert outside worker processes, and the
                    # jobs are deterministic, so this is the oracle result
                    results[shard] = job(tasks[shard])
                    done[shard] = True
                    recomputed_inline = True
            if pending and backoff > 0:
                time.sleep(backoff)
        if recomputed_inline and self._inline_cleanup is not None:
            self._inline_cleanup()
        return results

    def _collect(self, pool, handles, results, done) -> Optional[str]:
        """Reap ``handles`` into ``results``; ``None`` on success, else the
        failure reason (with ``handles`` reduced to the unreaped shards)."""
        deadline = (
            time.monotonic() + self._timeout if self._timeout is not None else None
        )
        while handles:
            progressed = False
            for shard in list(handles):
                handle = handles[shard]
                if handle.ready():
                    del handles[shard]
                    # a deterministic job exception propagates unchanged --
                    # it would recur on every retry, exactly like pool.map
                    results[shard] = handle.get()
                    done[shard] = True
                    progressed = True
            if progressed:
                if deadline is not None:
                    deadline = time.monotonic() + self._timeout
                continue
            if not handles:
                break
            damage = self._pool_damage(pool)
            if damage is not None:
                return damage
            if deadline is not None and time.monotonic() > deadline:
                return f"no shard progress within {self._timeout}s"
            next(iter(handles.values())).wait(self._poll_interval)
        return None

    def _pool_damage(self, pool) -> Optional[str]:
        """Why the pool can no longer be trusted to deliver, or ``None``."""
        state = getattr(pool, "_state", mp_pool.RUN)
        if state != mp_pool.RUN:
            return f"pool left running state ({state})"
        workers = list(getattr(pool, "_pool", []) or [])
        for process in workers:
            if process.exitcode is not None:
                return f"worker pid {process.pid} died with exitcode {process.exitcode}"
        pids = frozenset(p.pid for p in workers)
        if pids != self._pool_pids:
            # the pool quietly replaced dead workers; their in-flight
            # shards are lost and will never become ready
            lost = sorted(self._pool_pids - pids)
            return f"worker pid(s) {lost} were replaced after dying"
        return None
