"""Deterministic fault injection for the parallel engine.

Fault tolerance cannot be trusted on inspection: the only way to know that a
worker SIGKILL mid-shard is survived -- with the bit-identity contract intact
and no shared-memory segment leaked -- is to kill a worker mid-shard, on every
stage, on purpose.  This module is that switch.  A :class:`FaultSpec` names a
*stage* (the supervisor's stage label, e.g. ``"postings"`` or ``"wnp_stats"``),
a *shard* index, a *mode* and how many dispatch *attempts* it fires on; the
spec travels to the worker processes through the :data:`ENV_VAR` environment
variable (so it reaches forked and spawned pools alike), and
:func:`maybe_trigger` -- called by the supervisor's worker-side entry point
just before the shard job runs -- applies it.

Modes
-----
``"kill"``
    ``SIGKILL`` the worker process immediately (the OOM-killer scenario).
    The supervisor observes the pool's worker set change and retries the
    lost shards.
``"hang"``
    Sleep for an hour (the wedged-native-extension scenario).  Recovery
    requires a ``worker_timeout``; the supervisor terminates the pool when
    the shard batch stops making progress.
``"delay"``
    Sleep for :attr:`FaultSpec.seconds` and then run the job normally (the
    straggler scenario).  No recovery is needed; the run must simply still
    be bit-identical.

Determinism rules:

* a fault fires only in *worker* processes (marked by the pool initializer
  via :func:`mark_worker`), never on the driver -- so the serial degraded
  recomputation of a failed shard can never re-trigger the fault;
* a fault fires only while ``attempt < spec.attempts`` (the attempt number
  is shipped with each dispatched shard), so "fail once, succeed on retry"
  and "fail always, force degradation" are both expressible exactly.

Programmatic use::

    from repro.mapreduce import faults

    with faults.injected(faults.FaultSpec(stage="postings", mode="kill")):
        workflow.run(data)          # shard 0 of the postings stage dies once

or from the shell: ``REPRO_FAULTS="stage=postings;mode=kill;shard=0"``.
"""

from __future__ import annotations

import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = [
    "ENV_VAR",
    "FaultSpec",
    "active",
    "clear",
    "injected",
    "install",
    "mark_worker",
    "maybe_trigger",
]

#: Environment variable carrying the encoded fault spec to worker processes.
ENV_VAR = "REPRO_FAULTS"

#: How long a "hang" fault sleeps -- effectively forever at test timescales,
#: but interruptible by the SIGTERM the supervisor's pool teardown sends.
_HANG_SECONDS = 3600.0

_MODES = ("kill", "hang", "delay")

#: set by the pool initializer; faults only ever fire in worker processes
_worker_process = False


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: which stage/shard it hits, how, and how often.

    Attributes
    ----------
    stage:
        Supervisor stage label the fault applies to (exact match).
    mode:
        ``"kill"``, ``"hang"`` or ``"delay"``.
    shard:
        Index of the targeted shard within the stage's task batch.
    attempts:
        The fault fires while the shard's dispatch-attempt number is below
        this bound: ``1`` (default) fails only the first attempt (the retry
        succeeds), a large value fails every pool attempt (exhausting the
        retries and forcing the configured failure policy).
    seconds:
        Sleep length of ``"delay"`` mode (ignored by the other modes).
    """

    stage: str
    mode: str
    shard: int = 0
    attempts: int = 1
    seconds: float = 0.1

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; expected one of {_MODES}")

    def encode(self) -> str:
        """The environment-variable form of this spec."""
        return (
            f"stage={self.stage};mode={self.mode};shard={self.shard};"
            f"attempts={self.attempts};seconds={self.seconds}"
        )

    @classmethod
    def decode(cls, text: str) -> "FaultSpec":
        """Parse the environment-variable form back into a spec."""
        fields = {}
        for piece in text.split(";"):
            piece = piece.strip()
            if not piece:
                continue
            key, _, value = piece.partition("=")
            fields[key.strip()] = value.strip()
        try:
            return cls(
                stage=fields["stage"],
                mode=fields["mode"],
                shard=int(fields.get("shard", 0)),
                attempts=int(fields.get("attempts", 1)),
                seconds=float(fields.get("seconds", 0.1)),
            )
        except (KeyError, ValueError) as error:
            raise ValueError(f"malformed {ENV_VAR} spec {text!r}: {error}") from error


def install(spec: FaultSpec) -> None:
    """Arm ``spec`` for every worker pool created (or forked) from now on."""
    os.environ[ENV_VAR] = spec.encode()


def clear() -> None:
    """Disarm any installed fault."""
    os.environ.pop(ENV_VAR, None)


def active() -> Optional[FaultSpec]:
    """The currently armed spec, or ``None``."""
    text = os.environ.get(ENV_VAR)
    return FaultSpec.decode(text) if text else None


@contextmanager
def injected(spec: FaultSpec) -> Iterator[FaultSpec]:
    """Context manager: arm ``spec``, disarm on exit."""
    install(spec)
    try:
        yield spec
    finally:
        clear()


def mark_worker() -> None:
    """Declare this process a pool worker (called by the pool initializer)."""
    global _worker_process
    _worker_process = True


def maybe_trigger(stage: str, shard: int, attempt: int) -> None:
    """Apply the armed fault if it matches ``(stage, shard, attempt)``.

    No-op on the driver, with no spec armed, or when the spec does not
    match -- the check is one environment lookup, so leaving the hook in the
    production dispatch path costs nothing measurable.
    """
    if not _worker_process:
        return
    text = os.environ.get(ENV_VAR)
    if not text:
        return
    spec = FaultSpec.decode(text)
    if spec.stage != stage or spec.shard != shard or attempt >= spec.attempts:
        return
    if spec.mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif spec.mode == "hang":
        time.sleep(_HANG_SECONDS)
    else:  # delay: be slow, then behave
        time.sleep(spec.seconds)
