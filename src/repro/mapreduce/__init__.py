"""Parallel execution: a real multi-process engine and a MapReduce simulation.

The tutorial discusses MapReduce-based parallelisations of blocking (Dedoop,
parallel token blocking) and of meta-blocking.  This package provides both a
*real* multi-core execution path and the original single-process simulation,
and the two serve different purposes:

**The multi-process engine** (:mod:`repro.mapreduce.parallel`) delivers
actual wall-clock speedup on multi-core machines:

* :class:`~repro.mapreduce.parallel.ParallelEngine` shards the flat columns
  of the shared :class:`~repro.core.context.PipelineContext` and of the
  meta-blocking CSR index by contiguous entity-ordinal ranges
  (:func:`~repro.mapreduce.balancing.contiguous_partitions` balances the
  ranges by per-entity cost) and runs every parallelisable workflow stage
  in ``multiprocessing`` workers: the sharded context interning (local
  vocabularies merged in range order), the blocking postings pass, the
  block-cleaning passes (purging cardinalities, filtering keep flags,
  comparison propagation), the meta-blocking node-weight streams and
  per-node retained-edge emission for all pruning schemes, the weight sort
  of the comparison columns (per-shard argsort + driver k-way merge), the
  batched matching scores, and the connected-components clustering
  (per-shard union--find merged in first-touch order);
* the columns cross the process boundary through
  :class:`~repro.mapreduce.shm.ColumnSegment` shared memory -- workers
  attach zero-copy and only the small per-partition result columns are
  pickled back;
* results are **bit-identical** to the single-process array engines (same
  blocks, same edge weights, same match decisions, same tie order), because
  every worker kernel (:mod:`repro.mapreduce.worker`) either is the
  sequential code run over a range, or replicates its exact expressions over
  the same exact integers;
* the engines it plugs into (``BlockingEngine``, ``MetaBlocking``,
  ``MatchingEngine``) fall back to their single-process paths for anything
  the workers cannot reproduce -- non-token blocking schemes, foreign
  collections outside the shared context, transient merged descriptions,
  custom weighting/pruning/matcher subclasses -- so enabling the engine
  never changes a result.

Shared-memory lifecycle: the driver (the ``ParallelEngine``) owns every
segment and unlinks all of them in :meth:`~repro.mapreduce.parallel.ParallelEngine.close`
(use the engine as a context manager); workers only ever attach, and
unregister their attachments from the ``resource_tracker`` so no spurious
leak warnings (and no double unlinks) occur -- see :mod:`repro.mapreduce.shm`.

**Fault tolerance** (:mod:`repro.mapreduce.supervisor`,
:mod:`repro.mapreduce.faults`): every parallel stage dispatches its shards
through a :class:`~repro.mapreduce.supervisor.Supervisor` that detects dead
or hung workers, rebuilds the pool, retries lost shards with bounded
exponential backoff, and -- on retry exhaustion -- either raises or (the
default) recomputes the lost shards serially on the driver, preserving the
bit-identity contract because the shard jobs are deterministic and every
merge walks shards in range order.  Segment names carry a parseable
``repro-<pid>-<token>-<seq>`` prefix so the janitor
(:func:`~repro.mapreduce.shm.orphaned_segments` /
:func:`~repro.mapreduce.shm.sweep`) can reclaim ``/dev/shm`` leftovers of a
SIGKILLed driver; a deterministic fault-injection harness
(:mod:`repro.mapreduce.faults`) lets the chaos suite kill, hang or delay a
chosen worker at an exact (stage, shard, attempt) coordinate.

**The MapReduce simulation** (:mod:`repro.mapreduce.engine`,
:mod:`repro.mapreduce.jobs`) remains the readable oracle for the *semantics*
of the published MapReduce formulations, and the path custom user-defined
jobs run on:

* :class:`~repro.mapreduce.engine.MapReduceEngine` executes map, shuffle and
  reduce phases exactly once in-process with a configurable number of
  simulated workers, charging each worker a per-record cost and reporting
  the simulated makespan (the maximum per-worker cost), which is what
  speedup and load-balance experiments measure;
* :mod:`repro.mapreduce.jobs` defines the parallel token-blocking job and
  the three-stage parallel meta-blocking jobs;
* :mod:`repro.mapreduce.balancing` provides reduce-side load-balancing
  strategies (naive hashing vs. greedy longest-processing-time placement),
  the knob the parallel meta-blocking papers study under block-size skew.
"""

from repro.mapreduce.balancing import (
    GreedyBalancedPartitioner,
    HashPartitioner,
    Partitioner,
    contiguous_partitions,
)
from repro.mapreduce.engine import JobStatistics, MapReduceEngine, MapReduceJob
from repro.mapreduce.jobs import (
    ParallelMetaBlocking,
    ParallelTokenBlocking,
    block_collection_from_reduce_output,
)
from repro.mapreduce.parallel import ParallelEngine
from repro.mapreduce.supervisor import (
    DegradedExecutionWarning,
    Supervisor,
    WorkerFailureError,
)

__all__ = [
    "DegradedExecutionWarning",
    "GreedyBalancedPartitioner",
    "HashPartitioner",
    "JobStatistics",
    "MapReduceEngine",
    "MapReduceJob",
    "ParallelEngine",
    "Supervisor",
    "WorkerFailureError",
    "ParallelMetaBlocking",
    "ParallelTokenBlocking",
    "Partitioner",
    "block_collection_from_reduce_output",
    "contiguous_partitions",
]
