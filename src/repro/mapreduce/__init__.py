"""In-process MapReduce simulation for parallel blocking and meta-blocking.

The tutorial discusses MapReduce-based parallelisations of blocking (Dedoop,
parallel token blocking) and of meta-blocking.  Real clusters are out of scope
for a laptop reproduction, so this package provides a faithful *simulation*:

* :class:`~repro.mapreduce.engine.MapReduceEngine` executes map, shuffle and
  reduce phases with a configurable number of workers, charging each worker a
  per-record cost and reporting the simulated makespan (the maximum per-worker
  cost), which is what speedup and load-balance experiments measure.
* :mod:`repro.mapreduce.jobs` defines the parallel token-blocking job and the
  three-stage parallel meta-blocking jobs.
* :mod:`repro.mapreduce.balancing` provides reduce-side load-balancing
  strategies (naive hashing vs. greedy longest-processing-time placement),
  the knob the parallel meta-blocking papers study under block-size skew.
"""

from repro.mapreduce.balancing import (
    GreedyBalancedPartitioner,
    HashPartitioner,
    Partitioner,
)
from repro.mapreduce.engine import JobStatistics, MapReduceEngine, MapReduceJob
from repro.mapreduce.jobs import (
    ParallelMetaBlocking,
    ParallelTokenBlocking,
    block_collection_from_reduce_output,
)

__all__ = [
    "GreedyBalancedPartitioner",
    "HashPartitioner",
    "JobStatistics",
    "MapReduceEngine",
    "MapReduceJob",
    "ParallelMetaBlocking",
    "ParallelTokenBlocking",
    "Partitioner",
    "block_collection_from_reduce_output",
]
