"""Reduce-side partitioning and load balancing.

The shuffle phase assigns every intermediate key (and its list of values) to
one reduce worker.  Because block sizes in token blocking are heavily skewed
-- a few tokens appear in a large fraction of all descriptions -- the naive
hash partitioner can leave one reducer with most of the work.  The
load-balancing strategies here reproduce that effect and its remedy:

* :class:`HashPartitioner` -- assign keys by a deterministic hash, oblivious
  to group sizes (the MapReduce default).
* :class:`GreedyBalancedPartitioner` -- assign keys to workers greedily in
  decreasing order of group cost (longest-processing-time first), the
  standard skew-aware heuristic used by block-based load balancing.
"""

from __future__ import annotations

import abc
import hashlib
from typing import Dict, List, Sequence, Tuple


def stable_hash(key: str) -> int:
    """Deterministic hash of a string key (Python's ``hash`` is salted per process)."""
    digest = hashlib.md5(key.encode("utf-8")).hexdigest()
    return int(digest[:12], 16)


class Partitioner(abc.ABC):
    """Assigns intermediate keys to reduce workers."""

    name = "partitioner"

    @abc.abstractmethod
    def assign(self, group_costs: Dict[str, float], num_workers: int) -> Dict[str, int]:
        """Return a mapping ``key -> worker index`` given the cost of each key's group."""


class HashPartitioner(Partitioner):
    """Key-hash partitioning, oblivious to group sizes (the MapReduce default)."""

    name = "hash"

    def assign(self, group_costs: Dict[str, float], num_workers: int) -> Dict[str, int]:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        return {key: stable_hash(key) % num_workers for key in group_costs}


class GreedyBalancedPartitioner(Partitioner):
    """Longest-processing-time-first assignment of keys to the least-loaded worker."""

    name = "greedy_balanced"

    def assign(self, group_costs: Dict[str, float], num_workers: int) -> Dict[str, int]:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        loads = [0.0] * num_workers
        assignment: Dict[str, int] = {}
        # heaviest groups first; ties broken by key for determinism
        for key in sorted(group_costs, key=lambda k: (-group_costs[k], k)):
            worker = min(range(num_workers), key=lambda w: (loads[w], w))
            assignment[key] = worker
            loads[worker] += group_costs[key]
        return assignment


def contiguous_partitions(
    costs: Sequence[float], num_workers: int
) -> List[Tuple[int, int]]:
    """Split ``range(len(costs))`` into ``num_workers`` contiguous balanced ranges.

    The multi-process engine of :mod:`repro.mapreduce.parallel` shards work by
    *ordinal ranges* (so each worker streams a contiguous slice of the shared
    columns and results concatenate back in ordinal order), which rules out
    the per-key partitioners above.  The greedy rule here is their contiguous
    sibling: walk a prefix sum of the costs and cut whenever the running
    partition reaches the ideal per-worker share of the remaining work.

    Always returns exactly ``num_workers`` ``(start, stop)`` ranges covering
    the input in order; trailing ranges may be empty when there are more
    workers than items.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be at least 1")
    total = len(costs)
    ranges: List[Tuple[int, int]] = []
    remaining = float(sum(costs))
    start = 0
    for worker in range(num_workers):
        workers_left = num_workers - worker
        if workers_left == 1:
            ranges.append((start, total))
            break
        target = remaining / workers_left
        stop = start
        accumulated = 0.0
        # leave at least one item per remaining worker while items last
        while stop < total - (workers_left - 1) and (
            accumulated < target or stop == start
        ):
            accumulated += costs[stop]
            stop += 1
        ranges.append((start, stop))
        remaining -= accumulated
        start = stop
    return ranges


def load_imbalance(per_worker_cost: Sequence[float]) -> float:
    """Imbalance ratio: max worker cost / mean worker cost (1.0 is perfectly balanced)."""
    costs = [c for c in per_worker_cost]
    if not costs:
        return 1.0
    mean = sum(costs) / len(costs)
    if mean == 0:
        return 1.0
    return max(costs) / mean
