"""Parallel blocking and meta-blocking as MapReduce jobs.

Two job families are provided, mirroring the MapReduce realisations the
tutorial cites:

* :class:`ParallelTokenBlocking` -- the classical single-job parallelisation
  of token blocking: the map phase tokenises descriptions and emits
  ``(token, identifier)`` pairs, the reduce phase materialises one block per
  token.
* :class:`ParallelMetaBlocking` -- the three-stage parallel meta-blocking
  pipeline: stage 1 builds the entity index (description -> blocks), stage 2
  enumerates the distinct co-occurring pairs and computes their edge weights
  (using the broadcast entity index, as the distributed implementations do),
  and stage 3 applies the pruning scheme -- globally for edge-centric schemes
  (driver side), per node for node-centric schemes (a reduce per node).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.blocking.base import Block, BlockCollection, ERInput
from repro.blocking.token_blocking import TokenBlocking
from repro.datamodel.collection import CleanCleanTask
from repro.datamodel.pairs import canonical_pair
from repro.mapreduce.engine import JobStatistics, MapReduceEngine, MapReduceJob
from repro.metablocking.graph import WeightedEdge
from repro.text.tokenize import DEFAULT_STOP_WORDS


# ----------------------------------------------------------------------
# parallel token blocking
# ----------------------------------------------------------------------
class _TokenBlockingJob(MapReduceJob):
    """Map: description -> (token, (side, id)); Reduce: token -> block."""

    name = "token_blocking"

    def __init__(self, tokenizer: TokenBlocking, bilateral: bool) -> None:
        self.tokenizer = tokenizer
        self.bilateral = bilateral

    def map(self, record) -> Iterable[Tuple[str, Tuple[str, str]]]:
        side, description = record
        for token in sorted(self.tokenizer.tokens_of(description)):
            yield token, (side, description.identifier)

    def reduce(self, key: str, values: List[Tuple[str, str]]) -> Iterable[Block]:
        if self.bilateral:
            left = [identifier for side, identifier in values if side == "left"]
            right = [identifier for side, identifier in values if side == "right"]
            if left and right:
                yield Block(key, left_members=left, right_members=right)
        else:
            members = [identifier for _, identifier in values]
            if len(members) >= 2:
                yield Block(key, members=members)

    def reduce_cost(self, key: str, values: List[Tuple[str, str]]) -> float:
        # materialising a block costs time proportional to its size (the
        # comparisons it induces are paid later, by the matching phase)
        return float(max(1, len(values)))


def block_collection_from_reduce_output(blocks: Iterable[Block], name: str) -> BlockCollection:
    """Wrap reduce outputs (blocks) into a :class:`BlockCollection`, dropping degenerate ones."""
    collection = BlockCollection(name=name)
    for block in blocks:
        collection.add(block)
    return collection


class ParallelTokenBlocking:
    """Token blocking executed as a MapReduce job on a simulated cluster.

    The produced blocks are identical to those of the sequential
    :class:`~repro.blocking.token_blocking.TokenBlocking` (up to block order);
    the added value is the :class:`JobStatistics` describing the simulated
    parallel execution.
    """

    name = "parallel_token_blocking"

    def __init__(
        self,
        stop_words=DEFAULT_STOP_WORDS,
        min_token_length: int = 2,
        max_block_fraction: Optional[float] = None,
    ) -> None:
        self.tokenizer = TokenBlocking(
            stop_words=stop_words,
            min_token_length=min_token_length,
            max_block_fraction=max_block_fraction,
        )

    def build(
        self, data: ERInput, engine: MapReduceEngine
    ) -> Tuple[BlockCollection, JobStatistics]:
        bilateral = isinstance(data, CleanCleanTask)
        records = list(self.tokenizer._iter_with_side(data))
        job = _TokenBlockingJob(self.tokenizer, bilateral)
        outputs, statistics = engine.run(job, records)
        blocks = block_collection_from_reduce_output(outputs, name=self.name)
        limit = self.tokenizer.member_limit(len(records))
        if limit is not None:
            blocks = BlockCollection(
                (block for block in blocks if len(block) <= limit), name=self.name
            )
        return blocks, statistics


# ----------------------------------------------------------------------
# parallel meta-blocking (three stages)
# ----------------------------------------------------------------------
class _EntityIndexJob(MapReduceJob):
    """Stage 1: map blocks to (identifier, block index); reduce to the entity index."""

    name = "entity_index"

    def map(self, record) -> Iterable[Tuple[str, int]]:
        block_index, block = record
        for identifier in block.members:
            yield identifier, block_index

    def reduce(self, key: str, values: List[int]) -> Iterable[Tuple[str, Tuple[int, ...]]]:
        yield key, tuple(sorted(values))


class _EdgeWeightJob(MapReduceJob):
    """Stage 2: enumerate co-occurring pairs per block and weight each distinct pair.

    The entity index and block cardinalities are supplied to every (simulated)
    worker, mirroring the broadcast/distributed-cache step of the MapReduce
    implementations.
    """

    name = "edge_weighting"

    def __init__(
        self,
        scheme: str,
        entity_index: Dict[str, Tuple[int, ...]],
        block_cardinalities: List[int],
        total_blocks: int,
    ) -> None:
        self.scheme = scheme.upper()
        self.entity_index = entity_index
        self.block_cardinalities = block_cardinalities
        self.total_blocks = max(1, total_blocks)

    def map(self, record) -> Iterable[Tuple[str, Tuple[str, str, int]]]:
        block_index, block = record
        for first, second in block.pairs():
            yield f"{first}|{second}", (first, second, block_index)

    def reduce(self, key: str, values: List[Tuple[str, str, int]]) -> Iterable[WeightedEdge]:
        first, second, _ = values[0]
        shared_blocks = sorted({block_index for _, _, block_index in values})
        blocks_first = self.entity_index.get(first, ())
        blocks_second = self.entity_index.get(second, ())
        weight = self._weight(shared_blocks, blocks_first, blocks_second)
        yield WeightedEdge(first, second, weight)

    def _weight(
        self,
        shared_blocks: Sequence[int],
        blocks_first: Sequence[int],
        blocks_second: Sequence[int],
    ) -> float:
        shared = len(shared_blocks)
        if shared == 0:
            return 0.0
        if self.scheme == "CBS":
            return float(shared)
        if self.scheme == "ECBS":
            return (
                shared
                * math.log10(self.total_blocks / max(1, len(blocks_first)) + 1.0)
                * math.log10(self.total_blocks / max(1, len(blocks_second)) + 1.0)
            )
        if self.scheme == "JS":
            union = len(blocks_first) + len(blocks_second) - shared
            return shared / union if union else 0.0
        if self.scheme == "ARCS":
            return sum(
                1.0 / self.block_cardinalities[index]
                for index in shared_blocks
                if self.block_cardinalities[index] > 0
            )
        raise ValueError(
            f"scheme {self.scheme!r} is not supported by parallel meta-blocking "
            "(supported: CBS, ECBS, JS, ARCS)"
        )

    def reduce_cost(self, key: str, values: List[Tuple[str, str, int]]) -> float:
        return float(len(values))


class _NodePruningJob(MapReduceJob):
    """Stage 3 (node-centric schemes): group edges per node and keep the best ones."""

    name = "node_pruning"

    def __init__(self, mode: str, k: int = 1) -> None:
        if mode not in ("WNP", "CNP"):
            raise ValueError("node pruning mode must be WNP or CNP")
        self.mode = mode
        self.k = max(1, k)

    def map(self, record: WeightedEdge) -> Iterable[Tuple[str, WeightedEdge]]:
        yield record.first, record
        yield record.second, record

    def reduce(self, key: str, values: List[WeightedEdge]) -> Iterable[WeightedEdge]:
        if self.mode == "WNP":
            threshold = sum(edge.weight for edge in values) / len(values)
            for edge in values:
                if edge.weight >= threshold and edge.weight > 0:
                    yield edge
        else:  # CNP
            ranked = sorted(values, key=lambda e: (-e.weight, e.first, e.second))
            for edge in ranked[: self.k]:
                if edge.weight > 0:
                    yield edge


class ParallelMetaBlocking:
    """Three-stage MapReduce meta-blocking over a simulated cluster.

    Parameters
    ----------
    weighting:
        Weighting scheme name (``"CBS"``, ``"ECBS"``, ``"JS"``, ``"ARCS"``).
    pruning:
        Pruning scheme name (``"WEP"``, ``"CEP"``, ``"WNP"``, ``"CNP"``).
    """

    name = "parallel_metablocking"

    def __init__(self, weighting: str = "CBS", pruning: str = "WEP") -> None:
        self.weighting = weighting.upper()
        self.pruning = pruning.upper()
        if self.pruning not in ("WEP", "CEP", "WNP", "CNP"):
            raise ValueError("pruning must be one of WEP, CEP, WNP, CNP")

    def run(
        self, blocks: BlockCollection, engine: MapReduceEngine
    ) -> Tuple[List[WeightedEdge], List[JobStatistics]]:
        """Execute the three stages; return retained edges and per-stage statistics."""
        statistics: List[JobStatistics] = []
        indexed_blocks = list(enumerate(blocks))

        # stage 1: entity index
        stage1_outputs, stage1_stats = engine.run(_EntityIndexJob(), indexed_blocks)
        statistics.append(stage1_stats)
        entity_index: Dict[str, Tuple[int, ...]] = dict(stage1_outputs)

        # stage 2: edge weighting
        cardinalities = [block.num_comparisons() for block in blocks]
        stage2_job = _EdgeWeightJob(self.weighting, entity_index, cardinalities, len(blocks))
        edges, stage2_stats = engine.run(stage2_job, indexed_blocks)
        statistics.append(stage2_stats)

        # stage 3: pruning
        if self.pruning == "WEP":
            if not edges:
                return [], statistics
            threshold = sum(edge.weight for edge in edges) / len(edges)
            retained = [edge for edge in edges if edge.weight > threshold]
        elif self.pruning == "CEP":
            budget = max(1, sum(len(block) for block in blocks) // 2)
            retained = sorted(edges, key=lambda e: (-e.weight, e.first, e.second))[:budget]
        else:
            average_blocks = (
                sum(len(v) for v in entity_index.values()) / max(1, len(entity_index))
            )
            k = max(1, int(round(average_blocks)) - 1)
            stage3_job = _NodePruningJob(self.pruning, k=k)
            pruned, stage3_stats = engine.run(stage3_job, edges)
            statistics.append(stage3_stats)
            # an edge may be kept by both endpoints: deduplicate
            seen: Set[Tuple[str, str]] = set()
            retained = []
            for edge in pruned:
                if edge.pair not in seen:
                    seen.add(edge.pair)
                    retained.append(edge)
        return retained, statistics
