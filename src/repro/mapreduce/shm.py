"""Shared-memory column segments for the multi-process parallel engine.

The columnar engines of PRs 1--5 keep every hot data structure as a flat
``array('q')`` / ``array('d')`` / byte-mask buffer.  Those buffers are exactly
what :mod:`multiprocessing.shared_memory` can expose to worker processes
without copying: the driver packs the named columns of one pipeline phase
into a single segment (:class:`ColumnSegment`), ships the tiny picklable
:attr:`~ColumnSegment.spec` to the workers, and every worker attaches the
segment once and reads the columns through zero-copy ``memoryview`` casts
(or ``numpy.frombuffer`` views on the vectorised paths).

Lifecycle rules (see also the :mod:`repro.mapreduce` package docstring):

* the **driver** owns every segment: it creates the block of memory, keeps
  the :class:`ColumnSegment` handle, and calls :meth:`ColumnSegment.destroy`
  (close + unlink) when the parallel engine shuts down;
* **workers** only ever attach.  Python's :class:`SharedMemory` registers
  every attachment with the ``resource_tracker`` as if the attaching process
  owned the segment (fixed upstream only in 3.13 via ``track=False``).  What
  that implies depends on the start method: a *spawned* worker runs its own
  tracker, which at worker exit would warn about -- and, worse, unlink --
  the driver's "leaked" segments, so :func:`attach` must unregister the
  attachment immediately (``unregister=True``); a *forked* worker shares the
  driver's tracker process, where the segment is already registered by the
  driver's create (the registry is a set, so the attach-register is a
  no-op), and unregistering there would strip the driver's own entry and
  make the final unlink trip a tracker ``KeyError`` (``unregister=False``).
  :class:`~repro.mapreduce.parallel.ParallelEngine` configures the worker
  side accordingly via the pool initializer;
* ``memoryview`` casts pin the mapped buffer, so
  :meth:`AttachedSegment.release` drops every view *before* closing the
  mapping (closing first raises ``BufferError``).

The janitor
-----------

Ownership in :meth:`ColumnSegment.destroy` covers the orderly paths, but a
driver that dies by SIGKILL (or a test run aborted mid-engine) never reaches
``close()`` and would leave its segments pinned in ``/dev/shm`` forever.
Three mechanisms close that hole:

* every segment this module creates carries a **parseable name**,
  ``repro-<driver pid>-<run token>-<seq>`` (see :func:`new_run_prefix`), so a
  stray segment can always be traced back to its owning process;
* a process-wide **live registry** records every not-yet-destroyed segment,
  and an ``atexit`` hook destroys whatever is still registered at interpreter
  shutdown -- covering exceptions that bypass engine ``close()``;
* the audit API -- :func:`orphaned_segments` lists ``repro-*`` entries in
  ``/dev/shm`` whose owner pid is no longer alive (or that this very process
  abandoned), and :func:`sweep` unlinks them.  The parallel engine sweeps on
  startup, so a crashed previous run is cleaned by the next one; operators
  and the chaos tests call it directly.

Workers never create ``repro-*`` segments, so the janitor can never reclaim
memory a live run still needs: liveness of the *driver* pid is the single
ownership criterion.
"""

from __future__ import annotations

import atexit
import os
import secrets
from array import array
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple, Union

#: item size per supported typecode ("q" int64, "d" float64, "B" byte mask)
_ITEM_SIZES = {"q": 8, "d": 8, "b": 1, "B": 1}

#: common name prefix of every segment this module creates -- what the
#: janitor scans /dev/shm for
SEGMENT_PREFIX = "repro-"

#: where POSIX shared memory lives on Linux (janitor is a no-op elsewhere)
_SHM_DIR = "/dev/shm"

#: segments created by this process that have not been destroyed yet
_live_segments: Dict[str, "ColumnSegment"] = {}


def new_run_prefix() -> str:
    """A fresh, parseable segment-name prefix: ``repro-<pid>-<token>``.

    The pid identifies the owning driver (so :func:`orphaned_segments` can
    test its liveness); the random token keeps two engines in one process --
    or a recycled pid -- from colliding.
    """
    return f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(3)}"


def _atexit_sweep() -> None:  # pragma: no cover - runs at interpreter exit
    for segment in list(_live_segments.values()):
        try:
            segment.destroy()
        except Exception:
            pass


atexit.register(_atexit_sweep)


def _owner_pid(name: str) -> Optional[int]:
    """The driver pid encoded in a janitor-managed segment name, if any."""
    if not name.startswith(SEGMENT_PREFIX):
        return None
    pid_text = name[len(SEGMENT_PREFIX) :].split("-", 1)[0]
    return int(pid_text) if pid_text.isdigit() else None


def orphaned_segments() -> List[str]:
    """Names of ``repro-*`` segments in ``/dev/shm`` with no live owner.

    A segment is orphaned when the pid in its name no longer refers to a
    running process, or when it names this very process but is no longer in
    the live registry (created and then lost without ``destroy()``).
    Segments of other *live* pids are never reported: they belong to a
    running driver.
    """
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux
        return []
    orphans = []
    for name in sorted(os.listdir(_SHM_DIR)):
        pid = _owner_pid(name)
        if pid is None:
            continue
        if pid == os.getpid():
            if name not in _live_segments:
                orphans.append(name)
            continue
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            orphans.append(name)
        except PermissionError:  # pragma: no cover - pid alive, other user
            pass
    return orphans


def sweep() -> List[str]:
    """Unlink every orphaned ``repro-*`` segment; returns the swept names."""
    swept = []
    for name in orphaned_segments():
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
        except FileNotFoundError:  # pragma: no cover - raced another sweeper
            continue
        swept.append(name)
    return swept

#: picklable layout: (shared-memory name, {column: (typecode, offset, items)})
SegmentSpec = Tuple[str, Dict[str, Tuple[str, int, int]]]

ColumnData = Union[array, bytes, bytearray, memoryview]


def _column_bytes(typecode: str, data: ColumnData) -> bytes:
    if isinstance(data, array):
        if data.typecode != typecode:
            raise ValueError(f"array typecode {data.typecode!r} != column typecode {typecode!r}")
        return data.tobytes()
    return bytes(data)


class ColumnSegment:
    """One shared-memory segment holding named flat columns (driver side).

    Parameters
    ----------
    columns:
        ``{name: (typecode, data)}`` with typecode ``"q"`` (int64), ``"d"``
        (float64) or ``"b"``/``"B"`` (bytes).  The data is copied into the
        segment once at construction; offsets are 8-byte aligned so every
        column can be cast (and ``numpy.frombuffer``-viewed) directly.
    name:
        Explicit segment name, normally ``"<run prefix>-<seq>"`` from
        :func:`new_run_prefix` so the janitor can attribute the segment to
        its owning driver.  When ``None`` a fresh prefix is minted.  A stale
        ``/dev/shm`` entry under the same name (a dead owner's leftover) is
        swept and the creation retried once.
    """

    def __init__(
        self, columns: Dict[str, Tuple[str, ColumnData]], name: Optional[str] = None
    ) -> None:
        payload: Dict[str, bytes] = {}
        layout: Dict[str, Tuple[str, int, int]] = {}
        offset = 0
        for column, (typecode, data) in columns.items():
            item_size = _ITEM_SIZES[typecode]
            raw = _column_bytes(typecode, data)
            if len(raw) % item_size:
                raise ValueError(f"column {column!r} is not a whole number of {typecode!r} items")
            payload[column] = raw
            layout[column] = (typecode, offset, len(raw) // item_size)
            # 8-byte alignment keeps int64/float64 casts legal at any offset
            offset += (len(raw) + 7) & ~7
        if name is None:
            name = f"{new_run_prefix()}-0"
        # zero-length segments are rejected by the OS: allocate one byte
        try:
            self._shm = shared_memory.SharedMemory(create=True, size=max(1, offset), name=name)
        except FileExistsError:
            # only a dead owner's leftover can collide (live prefixes are
            # unique per engine): reclaim it and retry once
            if name not in orphaned_segments():
                raise
            os.unlink(os.path.join(_SHM_DIR, name))
            self._shm = shared_memory.SharedMemory(create=True, size=max(1, offset), name=name)
        _live_segments[self._shm.name] = self
        buf = self._shm.buf
        for column, raw in payload.items():
            _typecode, start, _items = layout[column]
            buf[start : start + len(raw)] = raw
        self.spec: SegmentSpec = (self._shm.name, layout)
        self.nbytes = max(1, offset)
        self._destroyed = False

    def destroy(self) -> None:
        """Close the driver's mapping and unlink the segment (idempotent)."""
        if self._destroyed:
            return
        self._destroyed = True
        _live_segments.pop(self._shm.name, None)
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - external removal
            pass

    def __del__(self) -> None:  # pragma: no cover - safety net only
        try:
            self.destroy()
        except Exception:
            pass


class AttachedSegment:
    """A worker's zero-copy view of a :class:`ColumnSegment`.

    :attr:`views` maps every column name to a typed ``memoryview`` over the
    shared buffer.  :meth:`release` must drop the views before closing the
    mapping; the worker-side cache in :mod:`repro.mapreduce.worker` calls it
    when evicting a segment.
    """

    __slots__ = ("name", "views", "_shm", "_released")

    def __init__(self, spec: SegmentSpec, unregister: bool = False) -> None:
        name, layout = spec
        self._shm = shared_memory.SharedMemory(name=name)
        if unregister:
            # the attachment is not an ownership: without this, a spawned
            # worker's own resource tracker would try to unlink the driver's
            # segment at exit and warn about "leaked" shared memory
            try:
                resource_tracker.unregister(self._shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals vary
                pass
        self.name = name
        buf = self._shm.buf
        views: Dict[str, memoryview] = {}
        for column, (typecode, offset, items) in layout.items():
            nbytes = items * _ITEM_SIZES[typecode]
            views[column] = buf[offset : offset + nbytes].cast(typecode)
        self.views = views
        self._released = False

    def numpy_view(self, spec: SegmentSpec, column: str, dtype):
        """A ``numpy`` view of one column (the caller supplies the module)."""
        import numpy as np

        _name, layout = spec
        typecode, offset, items = layout[column]
        return np.frombuffer(self._shm.buf, dtype=dtype, count=items, offset=offset)

    def release(self) -> None:
        """Drop every view, then close the worker's mapping (idempotent)."""
        if self._released:
            return
        self._released = True
        for view in self.views.values():
            view.release()
        self.views = {}
        self._shm.close()


def attach(spec: SegmentSpec, unregister: bool = False) -> AttachedSegment:
    """Attach to a driver-owned segment (worker side).

    ``unregister`` must be ``True`` exactly when this process runs its own
    resource tracker (spawned workers) -- see the module docstring.
    """
    return AttachedSegment(spec, unregister=unregister)
