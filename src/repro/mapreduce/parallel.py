"""The multi-process parallel engine over shared pipeline columns.

:class:`ParallelEngine` is the driver side of the real (non-simulated)
parallel execution path: it shards the flat columns of a
:class:`~repro.core.context.PipelineContext` or
:class:`~repro.metablocking.entity_index.EntityIndexEngine` by contiguous
entity-ordinal ranges (:func:`~repro.mapreduce.balancing.contiguous_partitions`
balances the ranges by per-entity cost), exposes the columns to a
``multiprocessing`` pool through :class:`~repro.mapreduce.shm.ColumnSegment`
shared memory, and concatenates the per-partition result columns back in
range order.  The worker-side kernels live in :mod:`repro.mapreduce.worker`.

The engine parallelises exactly the stages whose sequential engines it can
reproduce bit for bit -- token-blocking postings, meta-blocking node-weight
streams (all weighting schemes, including the ECBS/EJS global factors), and
batched profile-similarity scoring -- and the callers in
:mod:`repro.blocking.engine`, :mod:`repro.metablocking.pipeline` and
:mod:`repro.matching.engine` fall back to their single-process paths for
anything else, so plugging an engine in never changes a result.

Lifecycle: the engine owns every shared-memory segment it creates and every
pool process it forks; :meth:`close` (or use as a context manager) tears both
down deterministically -- segments are unlinked driver-side, and workers only
ever attach (see :mod:`repro.mapreduce.shm` for the tracker discipline that
keeps ``resource_tracker`` silent).  Unlike the sequential pruning passes,
whose transient memory is bounded by one neighbourhood, the driver holds each
fanned-out weight round in full while the pruning pass consumes it.

Fault tolerance: every stage dispatches through a
:class:`~repro.mapreduce.supervisor.Supervisor` rather than a bare
``pool.map`` -- dead workers are detected, the pool is rebuilt, failed shards
retry with bounded exponential backoff, and on retry exhaustion the engine
either raises :class:`~repro.mapreduce.supervisor.WorkerFailureError` or
(default) recomputes the lost shards serially on the driver, bit-identically,
warning with :class:`~repro.mapreduce.supervisor.DegradedExecutionWarning`.
Segments carry a janitor-parseable run prefix and engine construction sweeps
orphans left by crashed previous runs (:func:`repro.mapreduce.shm.sweep`).
"""

from __future__ import annotations

import heapq
import math
import multiprocessing
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.unionfind import IntUnionFind
from repro.datamodel.pairs import ComparisonColumns, canonical_pair, identifier_ranks
from repro.mapreduce import shm, worker
from repro.mapreduce.balancing import contiguous_partitions
from repro.mapreduce.shm import ColumnSegment, SegmentSpec
from repro.mapreduce.supervisor import Supervisor

try:  # pragma: no cover - exercised implicitly when numpy is installed
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def _extend_int64(destination: array, column) -> None:
    """Append ``column`` (array/ndarray/sequence of ints) to an ``array('q')``."""
    if _np is not None and isinstance(column, _np.ndarray):
        destination.frombytes(
            _np.ascontiguousarray(column, dtype=_np.int64).tobytes()
        )
    else:
        destination.extend(column)


class ParallelEngine:
    """Multi-process executor over shared-memory pipeline columns.

    Parameters
    ----------
    num_workers:
        Number of worker processes in the pool.  ``1`` still runs through a
        one-process pool (so single-worker timings measure the real parallel
        path, IPC included).
    start_method:
        ``multiprocessing`` start method; ``None`` picks ``fork`` when the
        platform offers it (workers then inherit the interpreter state) and
        the platform default otherwise.
    worker_timeout:
        No-progress timeout in seconds for each shard batch (the clock
        re-arms on every completed shard); ``None`` disables it.  Required to
        recover from silently *hung* workers -- dead ones are detected
        without it.
    max_shard_retries:
        How many times a failed shard is re-dispatched to a rebuilt pool
        before ``on_worker_failure`` applies.
    on_worker_failure:
        ``"degrade"`` (default): recompute exhausted shards serially on the
        driver (bit-identical, with a
        :class:`~repro.mapreduce.supervisor.DegradedExecutionWarning`);
        ``"raise"``: abort with
        :class:`~repro.mapreduce.supervisor.WorkerFailureError`.

    Notes
    -----
    The engine is handed to :class:`~repro.blocking.engine.BlockingEngine`,
    :class:`~repro.metablocking.pipeline.MetaBlocking` and
    :class:`~repro.matching.engine.MatchingEngine` via their ``parallel``
    parameters; they call back into the three public stage methods below.
    Always :meth:`close` the engine (or use ``with``): that terminates the
    pool and unlinks every shared-memory segment.  Per-stage retry/degrade
    counters accumulate in :attr:`fault_stats`.
    """

    def __init__(
        self,
        num_workers: int = 4,
        start_method: Optional[str] = None,
        worker_timeout: Optional[float] = None,
        max_shard_retries: int = 2,
        on_worker_failure: str = "degrade",
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.num_workers = num_workers
        self._start_method = start_method
        self._supervisor = Supervisor(
            self._build_pool,
            timeout=worker_timeout,
            max_retries=max_shard_retries,
            on_failure=on_worker_failure,
            inline_cleanup=worker.release_attachments,
        )
        self._segments: List[ColumnSegment] = []
        self._segment_prefix = shm.new_run_prefix()
        self._segment_seq = 0
        # caches hold strong references to their keys' objects so an id()
        # can never be recycled while its entry is alive
        self._context_entries: Dict[int, Tuple[object, dict]] = {}
        self._mask_specs: Dict[Tuple[int, int], Tuple[object, Optional[SegmentSpec]]] = {}
        self._idf_specs: Dict[Tuple[int, int], Tuple[object, SegmentSpec]] = {}
        self._index_entries: Dict[int, Tuple[object, dict]] = {}
        self._closed = False
        # a crashed previous run cannot clean up after itself: its successor
        # does, before allocating segments of its own
        shm.sweep()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def fault_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-stage ``{"retries", "degraded", "pool_rebuilds"}`` counters.

        Stages that never saw a failure never appear; an empty dict is the
        happy path.
        """
        return self._supervisor.stats

    def _build_pool(self):
        method = self._start_method
        if method is None and "fork" in multiprocessing.get_all_start_methods():
            method = "fork"
        context = (
            multiprocessing.get_context(method)
            if method is not None
            else multiprocessing.get_context()
        )
        # only spawned workers run their own resource tracker; forked
        # (and forkserver) workers share the driver's -- see shm.py.
        # The driver's tracker must exist BEFORE the fork: otherwise a
        # forked worker's first attach starts a private tracker that,
        # when the worker exits, unlinks every segment it ever saw out
        # from under the driver and its remaining workers.
        if context.get_start_method() != "spawn":
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        return context.Pool(
            processes=self.num_workers,
            initializer=worker.configure,
            initargs=(context.get_start_method() == "spawn",),
        )

    def _run(self, job, tasks: Sequence[tuple], stage: str) -> list:
        if self._closed:
            raise RuntimeError("ParallelEngine is closed")
        return self._supervisor.run(job, tasks, stage)

    def _segment(self, columns) -> ColumnSegment:
        if self._closed:
            raise RuntimeError("ParallelEngine is closed")
        segment = ColumnSegment(columns, name=f"{self._segment_prefix}-{self._segment_seq}")
        self._segment_seq += 1
        self._segments.append(segment)
        return segment

    def close(self) -> None:
        """Terminate the pool and unlink every shared-memory segment.

        Idempotent and exception-safe: the pool teardown is bounded by a
        watchdog (a wedged worker is killed rather than joined forever, see
        :func:`repro.mapreduce.supervisor.shutdown_pool`), and every segment
        is destroyed even if destroying one of them raises.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._supervisor.shutdown()
        finally:
            segments, self._segments = self._segments, []
            errors = []
            for segment in segments:
                try:
                    segment.destroy()
                except Exception as error:  # pragma: no cover - defensive
                    errors.append(error)
            self._context_entries.clear()
            self._mask_specs.clear()
            self._idf_specs.clear()
            self._index_entries.clear()
            if errors:  # pragma: no cover - defensive
                raise errors[0]

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - safety net only
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # shared-column export
    # ------------------------------------------------------------------
    def _context_entry(self, context) -> dict:
        """The shared token-CSR segment of ``context`` (exported once)."""
        key = id(context)
        cached = self._context_entries.get(key)
        if cached is not None and cached[0] is context:
            return cached[1]
        num_descriptions = context.num_descriptions
        tok_ptr = array("q", [0])
        tok_ids = array("q")
        tok_counts = array("q")
        for ordinal in range(num_descriptions):
            ids_column, counts_column = context.token_counts(ordinal)
            _extend_int64(tok_ids, ids_column)
            _extend_int64(tok_counts, counts_column)
            tok_ptr.append(len(tok_ids))
        segment = self._segment(
            {
                "tok_ptr": ("q", tok_ptr),
                "tok_ids": ("q", tok_ids),
                "tok_counts": ("q", tok_counts),
            }
        )
        entry = {"spec": segment.spec, "n": num_descriptions, "tok_ptr": tok_ptr}
        self._context_entries[key] = (context, entry)
        return entry

    def _mask_spec(self, context, stop_words, min_token_length) -> Optional[SegmentSpec]:
        """The shared admission mask of one token-filter config (``None`` if trivial)."""
        token_filter = context.token_filter(stop_words, min_token_length)
        if token_filter.trivial:
            return None
        key = (id(context), id(token_filter))
        cached = self._mask_specs.get(key)
        if cached is not None and cached[0] is token_filter:
            return cached[1]
        mask = token_filter.mask(context.vocabulary_size)
        segment = self._segment({"mask": ("B", mask)})
        self._mask_specs[key] = (token_filter, segment.spec)
        return segment.spec

    def _idf_spec(self, context, vectorizer) -> SegmentSpec:
        """The shared idf column of a fitted vectorizer over the vocabulary."""
        key = (id(context), id(vectorizer))
        cached = self._idf_specs.get(key)
        if cached is not None and cached[0] is vectorizer:
            return cached[1]
        idf = array(
            "d",
            (
                vectorizer.idf(context.token(token_id))
                for token_id in range(context.vocabulary_size)
            ),
        )
        segment = self._segment({"idf": ("d", idf)})
        self._idf_specs[key] = (vectorizer, segment.spec)
        return segment.spec

    # ------------------------------------------------------------------
    # context interning
    # ------------------------------------------------------------------
    def intern_context(self, context) -> bool:
        """Build ``context``'s interned columns with the pool (sharded interning).

        Workers tokenise contiguous description ranges into local
        vocabularies; the driver merges the shard vocabularies in range order
        (get-or-assign reproduces the serial first-occurrence id order) and
        remaps the per-attribute columns and streams, so ordinals, vocabulary
        order and every column are byte-identical to the serial
        ``_intern_all`` pass.  Returns ``False`` -- leaving the context to
        intern itself serially -- when there is nothing to shard (an already
        interned or near-empty context).
        """
        if context is None or context._interned:
            return False
        descriptions = context._collect_descriptions()
        if len(descriptions) < 2:
            return False
        payloads = []
        costs = []
        for description in descriptions:
            attributes = tuple(
                (attribute, description.values(attribute))
                for attribute in description.attribute_names
            )
            payloads.append(attributes)
            costs.append(
                1 + sum(len(value) for _, values in attributes for value in values)
            )
        tasks = [
            (payloads[start:stop],)
            for start, stop in contiguous_partitions(costs, self.num_workers)
        ]
        shards = self._run(worker.intern_descriptions_job, tasks, "interning")
        context._intern_shards(descriptions, shards)
        return True

    # ------------------------------------------------------------------
    # blocking
    # ------------------------------------------------------------------
    def token_postings(self, builder, context) -> Dict[int, array]:
        """Token postings (``token id -> ascending description ordinals``) of
        ``context`` under ``builder``'s admission rule, built by the pool.

        Partitions are balanced by per-description token count; each worker
        returns its range's local postings and the range-order merge
        reproduces the sequential builder's posting content exactly (ordinals
        ascend within and across ranges).
        """
        entry = self._context_entry(context)
        mask_spec = self._mask_spec(context, builder.stop_words, builder.min_token_length)
        tok_ptr = entry["tok_ptr"]
        costs = [tok_ptr[o + 1] - tok_ptr[o] for o in range(entry["n"])]
        tasks = [
            (entry["spec"], mask_spec, start, stop)
            for start, stop in contiguous_partitions(costs, self.num_workers)
        ]
        postings: Dict[int, array] = {}
        for token_column, counts, flat in self._run(worker.token_postings_job, tasks, "postings"):
            position = 0
            for token_id, count in zip(token_column, counts):
                posting = postings.get(token_id)
                if posting is None:
                    postings[token_id] = posting = array("q")
                posting.extend(flat[position : position + count])
                position += count
        return postings

    # ------------------------------------------------------------------
    # block cleaning
    # ------------------------------------------------------------------
    def block_cardinalities(self, blocks) -> array:
        """Cardinality column of ``blocks`` (block purging), built by the pool.

        The driver ships only per-block ``(size, split)`` pairs; workers
        compute their range's ``Block.num_comparisons`` integers and the
        range-order concatenation equals the sequential column exactly.
        """
        lens = array("q")
        splits = array("q")
        for block in blocks:
            if block.is_bilateral:
                left = len(block.left_members)
                lens.append(left + len(block.right_members))
                splits.append(left)
            else:
                lens.append(len(block.members))
                splits.append(-1)
        segment = self._segment({"blk_len": ("q", lens), "blk_split": ("q", splits)})
        tasks = [
            (segment.spec, start, stop)
            for start, stop in contiguous_partitions([1] * len(lens), self.num_workers)
        ]
        cards = array("q")
        for chunk in self._run(worker.block_cardinalities_job, tasks, "cardinalities"):
            cards.extend(chunk)
        return cards

    def filter_keep_flags(self, ent_of, card_of, num_entities, ratio, use_numpy) -> bytearray:
        """Keep flags over the assignment positions (block filtering).

        Entities are sharded into contiguous ordinal ranges balanced by
        degree; each worker ranks its entities' assignments with the same
        stable (cardinality, block index) sort the sequential pass runs, and
        since per-entity decisions are independent the OR of the ranges'
        keep sets is bit-identical to the sequential flags.
        """
        keep_flags = bytearray(len(ent_of))
        segment = self._segment({"ent_of": ("q", ent_of), "card_of": ("q", card_of)})
        degrees = [0] * num_entities
        for o in ent_of:
            degrees[o] += 1
        costs = [degree + 1 for degree in degrees]
        tasks = [
            (segment.spec, ratio, start, stop, use_numpy)
            for start, stop in contiguous_partitions(costs, self.num_workers)
        ]
        for chunk in self._run(worker.filter_keep_job, tasks, "filtering"):
            for position in chunk:
                keep_flags[position] = 1
        return keep_flags

    def propagate_pairs(self, blocks) -> "object":
        """Comparison propagation of ``blocks``, fanned out over block ranges.

        The driver interns members block-major (the sequential intern order),
        ships the CSR layout plus identifier ranks, and workers stream their
        range's comparisons as dedup codes with canonical endpoints and a
        bilateral orientation flag, deduplicated locally.  The driver then
        resolves global first occurrences through one seen-set walked in
        range order -- reproducing the sequential pass's emission sequence,
        key strings and left/right orientation -- and re-raises the oracle's
        self-pair error at the exact comparison the sequential pass would.
        """
        from repro.blocking.base import Block, BlockCollection

        ordinal: Dict[str, int] = {}
        intern = ordinal.setdefault
        ent_of = array("q")
        blk_ptr = array("q", [0])
        blk_split = array("q")
        costs = []
        for block in blocks:
            if block.is_bilateral:
                left = block.left_members
                right = block.right_members
                for member in left:
                    ent_of.append(intern(member, len(ordinal)))
                for member in right:
                    ent_of.append(intern(member, len(ordinal)))
                blk_split.append(len(left))
                costs.append(1 + len(left) * len(right))
            else:
                members = block.members
                for member in members:
                    ent_of.append(intern(member, len(ordinal)))
                blk_split.append(-1)
                size = len(members)
                costs.append(1 + size * (size - 1) // 2)
            blk_ptr.append(len(ent_of))
        ids = list(ordinal)
        rank_column = array("q")
        _extend_int64(rank_column, identifier_ranks(ids))
        segment = self._segment(
            {
                "blk_ptr": ("q", blk_ptr),
                "blk_split": ("q", blk_split),
                "ent_of": ("q", ent_of),
                "ranks": ("q", rank_column),
            }
        )
        tasks = [
            (segment.spec, start, stop)
            for start, stop in contiguous_partitions(costs, self.num_workers)
        ]
        deduplicated = BlockCollection(name=f"{blocks.name}/propagated")
        seen = set()
        seen_add = seen.add
        out = []
        append = out.append
        pair = Block.pair
        bilateral_pair = Block.bilateral_pair
        for codes, firsts, seconds, flags, error in self._run(worker.propagate_pairs_job, tasks, "propagation"):
            for code, f, s, orientation in zip(codes, firsts, seconds, flags):
                if code in seen:
                    continue
                seen_add(code)
                first = ids[f]
                second = ids[s]
                if orientation == 0:
                    append(pair(f"pair:{first}|{second}", first, second))
                elif orientation == 1:
                    append(bilateral_pair(f"pair:{first}|{second}", first, second))
                else:
                    append(bilateral_pair(f"pair:{first}|{second}", second, first))
            if error is not None:
                block_index, left_pos, right_pos = error
                block = blocks[block_index]
                canonical_pair(
                    block.left_members[left_pos], block.right_members[right_pos]
                )
        deduplicated._extend_trusted(out)
        return deduplicated

    # ------------------------------------------------------------------
    # meta-blocking
    # ------------------------------------------------------------------
    def install_node_weights(self, index_engine) -> bool:
        """Fan ``index_engine``'s node-weight stream out to the pool.

        Exports the index's CSR columns (plus the identifier-rank column that
        stands in for string comparisons) to shared memory and installs a
        ``node_weights_source`` on the engine, so every pruning pass and
        weight stream transparently consumes the pooled rounds.  Returns
        ``False`` -- leaving the engine untouched -- when there is nothing to
        parallelise (an empty index).
        """
        if index_engine.num_entities == 0:
            return False
        entry = self._index_entry(index_engine)

        def source(scheme: str, lower: bool):
            rounds = self._node_weight_rounds(index_engine, entry, scheme, lower)
            vectorised = index_engine._use_numpy
            for nodes, ptr, neighbours_flat, weights_flat in rounds:
                if vectorised:
                    np_neighbours = _np.frombuffer(neighbours_flat, dtype=_np.int64)
                    np_weights = _np.frombuffer(weights_flat, dtype=_np.float64)
                for position, node in enumerate(nodes):
                    lo, hi = ptr[position], ptr[position + 1]
                    if vectorised:
                        yield node, np_neighbours[lo:hi], np_weights[lo:hi]
                    else:
                        yield node, neighbours_flat[lo:hi], weights_flat[lo:hi]

        index_engine.node_weights_source = source
        return True

    def retained_edges(self, index_engine, scheme: str, pruning: str, budget=None, k=None):
        """Run ``pruning`` under ``scheme`` with pooled retained-edge emission.

        Unlike :meth:`install_node_weights` -- which ships every edge weight
        back to the driver for it to prune -- the per-node threshold/top-k
        selection itself runs in the workers over contiguous node ranges, so
        only *retained* edges (plus O(nodes) threshold columns and O(budget)
        candidate buffers) ever cross the process boundary.  Driver-side
        concatenation in range order reproduces the sequential emission
        order, tie-breaks included; the run statistics are installed on
        ``index_engine`` exactly as a sequential pass would.  Returns the
        retained :class:`WeightedEdge` list, or ``None`` for an empty index
        (the caller falls back to the sequential path).
        """
        if index_engine.num_entities == 0:
            return None
        if pruning == "CEP" and budget is not None and budget < 0:
            raise ValueError(f"CEP budget must be non-negative, got {budget}")
        entry = self._index_entry(index_engine)
        factors_spec = self._factors_spec(index_engine, entry, scheme)
        use_numpy = index_engine._use_numpy
        edge = index_engine._edge
        parts = entry["parts"]

        if pruning == "WEP":
            tasks = [
                (entry["spec"], factors_spec, scheme, start, stop, use_numpy)
                for start, stop in parts
            ]
            count = 0
            partials: List[float] = []
            for shard_count, shard_partials in self._run(worker.wep_stats_job, tasks, "wep_stats"):
                count += shard_count
                partials.extend(shard_partials)
            if count == 0:
                index_engine._finish(0, 0)
                return []
            # the shards' exact-sum expansions concatenate into one stream
            # whose fsum equals the sequential full-stream fsum exactly
            threshold = math.fsum(partials) / count
            tasks = [
                (entry["spec"], factors_spec, scheme, threshold, start, stop, use_numpy)
                for start, stop in parts
            ]
            retained = []
            for firsts, seconds, weights in self._run(worker.wep_emit_job, tasks, "wep_emit"):
                for i, j, weight in zip(firsts, seconds, weights):
                    retained.append(edge(i, j, weight))
            index_engine._finish(count, len(retained))
            return retained

        if pruning in ("WNP", "ReciprocalWNP"):
            reciprocal = pruning == "ReciprocalWNP"
            num_entities = index_engine.num_entities
            thresholds = array("d", bytes(8 * num_entities))
            total = 0
            tasks = [
                (entry["spec"], factors_spec, scheme, start, stop, use_numpy)
                for start, stop in parts
            ]
            for (start, stop), (counts, sums, shard_total) in zip(
                parts, self._run(worker.wnp_stats_job, tasks, "wnp_stats")
            ):
                total += shard_total
                for offset, degree in enumerate(counts):
                    if degree:
                        thresholds[start + offset] = sums[offset] / degree
            num_edges = total // 2
            if num_edges == 0:
                index_engine._finish(0, 0)
                return []
            thresholds_spec = self._segment({"thresholds": ("d", thresholds)}).spec
            tasks = [
                (
                    entry["spec"],
                    factors_spec,
                    scheme,
                    thresholds_spec,
                    reciprocal,
                    start,
                    stop,
                    use_numpy,
                )
                for start, stop in parts
            ]
            retained = []
            for firsts, seconds, weights in self._run(worker.wnp_emit_job, tasks, "wnp_emit"):
                for i, j, weight in zip(firsts, seconds, weights):
                    retained.append(edge(i, j, weight))
            index_engine._finish(num_edges, len(retained))
            return retained

        if pruning in ("CNP", "ReciprocalCNP"):
            reciprocal = pruning == "ReciprocalCNP"
            if k is None:
                nodes = max(1, index_engine.num_entities)
                k = max(1, int(round(index_engine.num_assignments / nodes)) - 1)
            tasks = [
                (entry["spec"], factors_spec, scheme, k, start, stop, use_numpy)
                for start, stop in parts
            ]
            endorsed: Dict[Tuple[int, int], list] = {}
            total = 0
            for a_column, b_column, w_column, shard_total in self._run(worker.cnp_endorse_job, tasks, "cnp"):
                total += shard_total
                for a, b, weight in zip(a_column, b_column, w_column):
                    pair = (a, b) if a < b else (b, a)
                    endorsement = endorsed.get(pair)
                    if endorsement is None:
                        endorsed[pair] = [weight, 1]
                    else:
                        endorsement[1] += 1
            num_edges = total // 2
            needed = 2 if reciprocal else 1
            retained = []
            for (a, b), (weight, endorsements) in endorsed.items():
                if endorsements >= needed and weight > 0:
                    retained.append(edge(a, b, weight))
            index_engine._finish(num_edges, len(retained))
            return retained

        # CEP
        if budget is None:
            budget = max(1, index_engine.num_assignments // 2)
        tasks = [
            (entry["spec"], factors_spec, scheme, budget, start, stop, use_numpy)
            for start, stop in parts
        ]
        count = 0
        merged = []
        for shard_count, neg_column, rank_f, rank_s, a_column, b_column in self._run(worker.cep_candidates_job, tasks, "cep"):
            count += shard_count
            merged.extend(zip(neg_column, rank_f, rank_s, a_column, b_column))
        final = heapq.nsmallest(budget, merged)
        retained = [edge(a, b, -neg_weight) for neg_weight, _rf, _rs, a, b in final]
        index_engine._finish(count, len(retained))
        return retained

    def _index_entry(self, index_engine) -> dict:
        key = id(index_engine)
        cached = self._index_entries.get(key)
        if cached is not None and cached[0] is index_engine:
            return cached[1]
        ranks = identifier_ranks(index_engine._ids)
        rank_column = array("q")
        _extend_int64(rank_column, ranks)
        segment = self._segment(
            {
                "blk_ptr": ("q", index_engine._blk_ptr),
                "blk_ents": ("q", index_engine._blk_ents),
                "blk_split": ("q", index_engine._blk_split),
                "recip": ("d", index_engine._recip),
                "ent_ptr": ("q", index_engine._ent_ptr),
                "ent_blocks": ("q", index_engine._ent_blocks),
                "ent_side": ("b", index_engine._ent_side),
                "ranks": ("q", rank_column),
            }
        )
        ent_ptr = index_engine._ent_ptr
        costs = [
            ent_ptr[node + 1] - ent_ptr[node] + 1
            for node in range(index_engine.num_entities)
        ]
        entry = {
            "spec": segment.spec,
            "parts": contiguous_partitions(costs, self.num_workers),
            "factors": {},
            "rounds": {},
        }
        self._index_entries[key] = (index_engine, entry)
        return entry

    def _node_weight_rounds(self, index_engine, entry: dict, scheme: str, lower: bool):
        """One pooled pass of the (scheme, lower) weight stream, cached.

        Pruning schemes consume the same stream up to twice (threshold pass
        then emission pass), so each round is fanned out once and replayed
        from the driver-side cache afterwards.
        """
        key = (scheme, lower)
        cached = entry["rounds"].get(key)
        if cached is not None:
            return cached
        factors_spec = self._factors_spec(index_engine, entry, scheme)
        tasks = [
            (entry["spec"], factors_spec, scheme, lower, start, stop, index_engine._use_numpy)
            for start, stop in entry["parts"]
        ]
        rounds = self._run(worker.node_weights_job, tasks, "weights")
        entry["rounds"][key] = rounds
        return rounds

    def _factors_spec(self, index_engine, entry: dict, scheme: str) -> Optional[SegmentSpec]:
        """The shared global-factor column of ECBS/EJS (``None`` for local schemes)."""
        if scheme not in ("ECBS", "EJS"):
            return None
        cached = entry["factors"].get(scheme)
        if cached is not None:
            return cached
        if scheme == "EJS" and index_engine._degree_cache is None:
            self._pooled_degrees(index_engine, entry)
        factors = array("d", index_engine._factors(scheme))
        segment = self._segment({"factors": ("d", factors)})
        entry["factors"][scheme] = segment.spec
        return segment.spec

    def _pooled_degrees(self, index_engine, entry: dict) -> None:
        """Fill the index's EJS degree cache from pooled partial-degree rounds.

        Each worker returns the degree contributions of its node range as a
        full-length integer column; summing the columns is a commutative
        integer reduction, so the result equals the sequential
        ``_degrees`` column exactly.
        """
        tasks = [
            (entry["spec"], start, stop, index_engine._use_numpy)
            for start, stop in entry["parts"]
        ]
        results = self._run(worker.partial_degrees_job, tasks, "degrees")
        num_entities = index_engine.num_entities
        num_edges = 0
        if _np is not None and index_engine._use_numpy:
            accumulated = _np.zeros(num_entities, dtype=_np.int64)
            for degrees, edges in results:
                if len(degrees):
                    accumulated += _np.frombuffer(degrees, dtype=_np.int64)
                num_edges += edges
            total = array("q")
            total.frombytes(accumulated.tobytes())
        else:
            total = array("q", bytes(8 * num_entities))
            for degrees, edges in results:
                num_edges += edges
                for node, degree in enumerate(degrees):
                    if degree:
                        total[node] += degree
        index_engine._degree_cache = (total, num_edges)

    # ------------------------------------------------------------------
    # comparison columns
    # ------------------------------------------------------------------
    def weight_sort(self, columns):
        """``columns.weight_sorted()`` with pooled per-shard sorting.

        Row ranges are argsorted by the full ``(-weight, rank(first),
        rank(second))`` key in the workers, and the driver k-way merges the
        shard orders (heap merge over the same key, with the absolute row
        index as the final stability tie-break).  The resulting permutation
        -- and therefore the output columns -- is identical to the
        sequential sort's.  Returns ``None`` when there is nothing to sort
        (the caller falls back to :meth:`ComparisonColumns.weight_sorted`).
        """
        n = len(columns)
        if n <= 1 or columns.weight_ordered:
            return None
        rank_column = array("q")
        _extend_int64(rank_column, identifier_ranks(columns.ids))
        exported = {
            "rank": ("q", rank_column),
            "first": ("q", columns.first),
            "second": ("q", columns.second),
        }
        has_weights = columns.weights is not None
        if has_weights:
            exported["weights"] = ("d", columns.weights)
        segment = self._segment(exported)
        tasks = [
            (segment.spec, has_weights, start, stop)
            for start, stop in contiguous_partitions([1] * n, self.num_workers)
        ]
        shards = self._run(worker.weight_sort_job, tasks, "weight_sort")
        first = columns.first
        second = columns.second
        weights = columns.weights
        rank = rank_column

        def keyed(shard):
            # the trailing row index only decides full-key ties: within a
            # shard indices ascend (stable shard sort) and across shards the
            # earlier shard holds the smaller indices, so it reproduces the
            # sequential sort's stability exactly
            if has_weights:
                for i in shard:
                    yield (-weights[i], rank[first[i]], rank[second[i]], i)
            else:
                for i in shard:
                    yield (rank[first[i]], rank[second[i]], i)

        sorted_first = array("q")
        sorted_second = array("q")
        sorted_weights = array("d") if has_weights else None
        for row in heapq.merge(*(keyed(shard) for shard in shards)):
            i = row[-1]
            sorted_first.append(first[i])
            sorted_second.append(second[i])
            if has_weights:
                sorted_weights.append(weights[i])
        return ComparisonColumns(
            columns.ids,
            sorted_first,
            sorted_second,
            sorted_weights,
            descriptions=columns.descriptions,
            distinct=columns.distinct,
            weight_ordered=True,
        )

    # ------------------------------------------------------------------
    # clustering
    # ------------------------------------------------------------------
    def cluster_links(self, first, second, is_match, num_ids: int):
        """Connected components of the positive rows, via per-shard union--find.

        ``first``/``second`` must already be in canonical orientation (the
        clustering engine's ``_canonical_rows``).  Workers scan contiguous
        row ranges -- each running the sequential union--find pass locally
        -- and the driver links every locally touched member to its local
        root, shard by shard in range order.  The merged partition equals
        the sequential one (a union of equivalence relations over the same
        edges) and the deduplicated shard orders reproduce the sequential
        first-touch order, so the grouped clusters come out in the identical
        list order.  Returns ``(links, order)``, or ``None`` when there is
        nothing to fan out.
        """
        n = len(first)
        if n == 0 or num_ids == 0:
            return None
        segment = self._segment(
            {
                "first": ("q", first),
                "second": ("q", second),
                "is_match": ("B", is_match),
            }
        )
        tasks = [
            (segment.spec, num_ids, start, stop)
            for start, stop in contiguous_partitions([1] * n, self.num_workers)
        ]
        links = IntUnionFind(num_ids)
        touched = bytearray(num_ids)
        order: List[int] = []
        append = order.append
        for shard_order, shard_roots in self._run(worker.cluster_links_job, tasks, "clustering"):
            for member, root in zip(shard_order, shard_roots):
                if not touched[member]:
                    touched[member] = 1
                    append(member)
                if member != root:
                    links.union(root, member)
        return links, order

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def similarity_scores(self, context, matcher, ordinal_pairs) -> List[float]:
        """Profile similarity of ``(left ordinal, right ordinal)`` pairs.

        Workers rebuild each touched description's profile from the shared
        token CSR (TF-IDF weights from the shared idf column, set profiles
        through the shared admission mask) and score their slice of the pair
        batch with the oracle expressions; concatenating the slices in
        partition order restores input order.
        """
        entry = self._context_entry(context)
        if matcher.vectorizer is not None:
            mode = "tfidf"
            similarity_name = ""
            mask_spec = self._mask_spec(context, None, matcher.vectorizer.min_token_length)
            idf_spec = self._idf_spec(context, matcher.vectorizer)
        else:
            mode = "set"
            similarity_name = matcher.similarity_name
            mask_spec = self._mask_spec(context, matcher.stop_words, matcher.min_token_length)
            idf_spec = None
        first = array("q", (pair[0] for pair in ordinal_pairs))
        second = array("q", (pair[1] for pair in ordinal_pairs))
        tasks = [
            (
                entry["spec"],
                mask_spec,
                idf_spec,
                mode,
                similarity_name,
                first[start:stop],
                second[start:stop],
            )
            for start, stop in contiguous_partitions([1.0] * len(first), self.num_workers)
        ]
        scores: List[float] = []
        for chunk in self._run(worker.similarity_scores_job, tasks, "scoring"):
            scores.extend(chunk)
        return scores
