"""Worker-process job functions of the multi-process parallel engine.

Each function here is a top-level callable (so it is picklable under every
``multiprocessing`` start method) that receives one task tuple: the
:class:`~repro.mapreduce.shm.ColumnSegment` specs of the shared inputs plus
an entity-ordinal range, and returns only the per-partition result columns --
plain ``array`` objects that pickle compactly.  The shared inputs themselves
are never shipped: workers attach the driver's segments and read them through
zero-copy views.

Bit-identity is the contract.  Every kernel either *is* the sequential code
(ranged :meth:`EntityIndexEngine._node_weights
<repro.metablocking.entity_index.EntityIndexEngine._node_weights>` over a
:meth:`from_arrays <repro.metablocking.entity_index.EntityIndexEngine.from_arrays>`
replica, :func:`~repro.text.vectorizer.weighted_cosine`,
:func:`~repro.matching.engine._set_score`) or replicates its exact
expressions over the same exact integers (the TF-IDF profile build mirrors
``ProfileStore._build_from_context`` term for term), so concatenating the
partition results in range order reproduces the single-process stream float
for float.

Per-process caches keep repeated rounds cheap: attached segments are held in
a small LRU (released view-first, see :mod:`repro.mapreduce.shm`), and
index-engine replicas / description profiles are memoised per segment name --
segment names are unique per driver allocation, so a name can never refer to
two different payloads.
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, Optional, Tuple

from repro.mapreduce.shm import AttachedSegment, SegmentSpec, attach
from repro.matching.engine import _set_score
from repro.metablocking.entity_index import EntityIndexEngine
from repro.text.vectorizer import SparseVector, weighted_cosine

try:  # pragma: no cover - exercised implicitly when numpy is installed
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: attached segments this worker keeps mapped (evicted view-first, oldest first)
_SEGMENT_CACHE_SIZE = 8

_segments: Dict[str, AttachedSegment] = {}
_engines: Dict[Tuple[str, bool], EntityIndexEngine] = {}
_profiles: Dict[Tuple, Dict[int, object]] = {}

#: whether attachments must be unregistered from this process's resource
#: tracker -- True only in spawned workers, which run their own tracker
#: (see repro.mapreduce.shm); set by the pool initializer
_unregister_on_attach = False


def configure(unregister_on_attach: bool) -> None:
    """Pool initializer: set this worker process's tracker discipline."""
    global _unregister_on_attach
    _unregister_on_attach = bool(unregister_on_attach)


def _segment(spec: SegmentSpec) -> AttachedSegment:
    """The cached attachment of ``spec``'s segment (LRU over segment names)."""
    name = spec[0]
    segment = _segments.pop(name, None)
    if segment is None:
        segment = attach(spec, unregister=_unregister_on_attach)
    _segments[name] = segment  # re-insertion keeps the dict in LRU order
    while len(_segments) > _SEGMENT_CACHE_SIZE:
        evicted_name, evicted = next(iter(_segments.items()))
        del _segments[evicted_name]
        # derived caches hold copies or views into this mapping: drop them
        _engines_pop(evicted_name)
        for key in [k for k in _profiles if k[0] == evicted_name]:
            del _profiles[key]
        evicted.release()
    return segment


def _engines_pop(name: str) -> None:
    for key in [k for k in _engines if k[0] == name]:
        del _engines[key]


# ----------------------------------------------------------------------
# blocking
# ----------------------------------------------------------------------
def token_postings_job(args) -> Tuple[array, array, array]:
    """Local token postings of one entity-ordinal range.

    Reads the context's token CSR (``tok_ptr``/``tok_ids``) and the
    builder's admission mask, and returns the range's postings as three
    columns: the touched token ids (sorted ascending), the posting length
    per token, and the flattened ordinals (appended in ordinal order, so the
    driver's range-order merge yields ascending postings -- the sequential
    builder's exact content).
    """
    ctx_spec, mask_spec, start, stop = args
    views = _segment(ctx_spec).views
    tok_ptr = views["tok_ptr"]
    tok_ids = views["tok_ids"]
    mask = _segment(mask_spec).views["mask"] if mask_spec is not None else None
    postings: Dict[int, array] = {}
    for ordinal in range(start, stop):
        for token_id in tok_ids[tok_ptr[ordinal] : tok_ptr[ordinal + 1]]:
            if mask is not None and not mask[token_id]:
                continue
            posting = postings.get(token_id)
            if posting is None:
                postings[token_id] = posting = array("q")
            posting.append(ordinal)
    token_column = array("q", sorted(postings))
    counts = array("q", (len(postings[t]) for t in token_column))
    flat = array("q")
    for token_id in token_column:
        flat.extend(postings[token_id])
    return token_column, counts, flat


# ----------------------------------------------------------------------
# meta-blocking
# ----------------------------------------------------------------------
def _index_engine(
    mb_spec: SegmentSpec,
    use_numpy: bool,
    factors_spec: Optional[SegmentSpec],
    scheme: str,
) -> EntityIndexEngine:
    segment = _segment(mb_spec)
    key = (mb_spec[0], use_numpy)
    engine = _engines.get(key)
    if engine is None:
        engine = EntityIndexEngine.from_arrays(segment.views, use_numpy)
        _engines[key] = engine
    if factors_spec is not None and scheme not in engine._factor_cache:
        engine._factor_cache[scheme] = _segment(factors_spec).views["factors"]
    return engine


def node_weights_job(args) -> Tuple[array, array, array, array]:
    """Weighted neighbourhoods of one node range, as four flat columns.

    ``(nodes, ptr, neighbours, weights)``: node ``nodes[k]``'s neighbourhood
    is ``neighbours[ptr[k]:ptr[k+1]]`` with aligned weights.  The stream is
    exactly what the sequential ranged ``_node_weights`` pass yields -- it
    *is* that pass, over a worker-side replica of the index.
    """
    mb_spec, factors_spec, scheme, lower, start, stop, use_numpy = args
    engine = _index_engine(mb_spec, use_numpy, factors_spec, scheme)
    nodes = array("q")
    ptr = array("q", [0])
    neighbours_flat = array("q")
    weights_flat = array("d")
    vectorised = engine._use_numpy
    for i, neighbours, weights in engine._node_weights(scheme, lower, start, stop):
        nodes.append(i)
        if vectorised:
            neighbours_flat.frombytes(
                _np.ascontiguousarray(neighbours, dtype=_np.int64).tobytes()
            )
            weights_flat.frombytes(
                _np.ascontiguousarray(weights, dtype=_np.float64).tobytes()
            )
        else:
            neighbours_flat.extend(neighbours)
            weights_flat.extend(weights)
        ptr.append(len(neighbours_flat))
    return nodes, ptr, neighbours_flat, weights_flat


def partial_degrees_job(args) -> Tuple[array, int]:
    """EJS support round: the degree contributions of one node range."""
    mb_spec, start, stop, use_numpy = args
    engine = _index_engine(mb_spec, use_numpy, None, "")
    return engine._partial_degrees(start, stop)


# ----------------------------------------------------------------------
# matching
# ----------------------------------------------------------------------
def _profile_table(
    ctx_spec: SegmentSpec,
    mask_spec: Optional[SegmentSpec],
    idf_spec: Optional[SegmentSpec],
    mode: str,
) -> Dict[int, object]:
    key = (ctx_spec[0], mask_spec[0] if mask_spec else None, idf_spec[0] if idf_spec else None, mode)
    table = _profiles.get(key)
    if table is None:
        _profiles[key] = table = {}
    return table


def _tfidf_profile(o, tok_ptr, tok_ids, tok_counts, mask, idf) -> Optional[SparseVector]:
    """The TF-IDF vector of one ordinal, mirroring ``_build_from_context``.

    Same exact integers (ids/counts ascending by token id), same term-
    frequency expression, same driver-computed idf floats, same ``fsum``
    norm: the resulting :class:`SparseVector` is the very ``weight_map`` the
    profile store would hand to :func:`weighted_cosine`.  ``None`` stands
    for an empty profile (scored as an empty mapping, like the store's).
    """
    lo, hi = tok_ptr[o], tok_ptr[o + 1]
    if mask is None:
        kept = list(zip(tok_ids[lo:hi], tok_counts[lo:hi]))
    else:
        kept = [
            (token_id, count)
            for token_id, count in zip(tok_ids[lo:hi], tok_counts[lo:hi])
            if mask[token_id]
        ]
    if not kept:
        return None
    max_count = max(count for _, count in kept)
    weights = [
        (0.5 + 0.5 * count / max_count) * idf[token_id] for token_id, count in kept
    ]
    norm = math.sqrt(math.fsum(w * w for w in weights))
    return SparseVector(
        ((token_id, weight) for (token_id, _), weight in zip(kept, weights)),
        norm=norm,
    )


def _set_profile(o, tok_ptr, tok_ids, mask) -> frozenset:
    ids = tok_ids[tok_ptr[o] : tok_ptr[o + 1]]
    if mask is None:
        return frozenset(ids)
    return frozenset(token_id for token_id in ids if mask[token_id])


def similarity_scores_job(args) -> array:
    """Similarity of one contiguous slice of an ordinal-pair batch."""
    ctx_spec, mask_spec, idf_spec, mode, similarity_name, first, second = args
    views = _segment(ctx_spec).views
    tok_ptr = views["tok_ptr"]
    tok_ids = views["tok_ids"]
    tok_counts = views["tok_counts"]
    mask = _segment(mask_spec).views["mask"] if mask_spec is not None else None
    idf = _segment(idf_spec).views["idf"] if idf_spec is not None else None
    table = _profile_table(ctx_spec, mask_spec, idf_spec, mode)
    scores = array("d")
    if mode == "tfidf":
        for a, b in zip(first, second):
            vector_a = table.get(a, False)
            if vector_a is False:
                table[a] = vector_a = _tfidf_profile(a, tok_ptr, tok_ids, tok_counts, mask, idf)
            vector_b = table.get(b, False)
            if vector_b is False:
                table[b] = vector_b = _tfidf_profile(b, tok_ptr, tok_ids, tok_counts, mask, idf)
            scores.append(weighted_cosine(vector_a or {}, vector_b or {}))
    else:
        for a, b in zip(first, second):
            set_a = table.get(a)
            if set_a is None:
                table[a] = set_a = _set_profile(a, tok_ptr, tok_ids, mask)
            set_b = table.get(b)
            if set_b is None:
                table[b] = set_b = _set_profile(b, tok_ptr, tok_ids, mask)
            scores.append(
                _set_score(similarity_name, len(set_a), len(set_b), len(set_a & set_b))
            )
    return scores
