"""Worker-process job functions of the multi-process parallel engine.

Each function here is a top-level callable (so it is picklable under every
``multiprocessing`` start method) that receives one task tuple: the
:class:`~repro.mapreduce.shm.ColumnSegment` specs of the shared inputs plus
an entity-ordinal range, and returns only the per-partition result columns --
plain ``array`` objects that pickle compactly.  The shared inputs themselves
are never shipped: workers attach the driver's segments and read them through
zero-copy views.

Bit-identity is the contract.  Every kernel either *is* the sequential code
(ranged :meth:`EntityIndexEngine._node_weights
<repro.metablocking.entity_index.EntityIndexEngine._node_weights>` over a
:meth:`from_arrays <repro.metablocking.entity_index.EntityIndexEngine.from_arrays>`
replica, :func:`~repro.text.vectorizer.weighted_cosine`,
:func:`~repro.matching.engine._set_score`) or replicates its exact
expressions over the same exact integers (the TF-IDF profile build mirrors
``ProfileStore._build_from_context`` term for term), so concatenating the
partition results in range order reproduces the single-process stream float
for float.

Per-process caches keep repeated rounds cheap: attached segments are held in
a small LRU (released view-first, see :mod:`repro.mapreduce.shm`), and
index-engine replicas / description profiles are memoised per segment name --
segment names are unique per driver allocation, so a name can never refer to
two different payloads.
"""

from __future__ import annotations

import heapq
import math
from array import array
from typing import Dict, Optional, Tuple

from repro.core.unionfind import IntUnionFind
from repro.mapreduce import faults
from repro.mapreduce.shm import AttachedSegment, SegmentSpec, attach
from repro.matching.engine import _set_score
from repro.metablocking.entity_index import _CEP_COMPACT_SLACK, EntityIndexEngine
from repro.text.tokenize import tokenize
from repro.text.vectorizer import SparseVector, weighted_cosine

try:  # pragma: no cover - exercised implicitly when numpy is installed
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: attached segments this worker keeps mapped (evicted view-first, oldest first)
_SEGMENT_CACHE_SIZE = 8

_segments: Dict[str, AttachedSegment] = {}
_engines: Dict[Tuple[str, bool], EntityIndexEngine] = {}
_profiles: Dict[Tuple, Dict[int, object]] = {}

#: whether attachments must be unregistered from this process's resource
#: tracker -- True only in spawned workers, which run their own tracker
#: (see repro.mapreduce.shm); set by the pool initializer
_unregister_on_attach = False


def configure(unregister_on_attach: bool) -> None:
    """Pool initializer: set this worker process's tracker discipline.

    Also marks the process as a pool worker for the fault-injection harness
    (:mod:`repro.mapreduce.faults`): injected faults only ever fire in
    workers, never on the driver.
    """
    global _unregister_on_attach
    _unregister_on_attach = bool(unregister_on_attach)
    faults.mark_worker()


def release_attachments() -> None:
    """Release every cached segment attachment of this process, view-first.

    Workers never need to call this -- their caches die with the process.
    The *driver* does, after running a worker job inline on the degraded
    recovery path: the job populated this module's per-process caches in the
    driver's own interpreter, and the cached attachments pin shared-memory
    mappings that must be dropped before the owning engine unlinks its
    segments (or the interpreter exits).
    """
    _profiles.clear()
    _engines.clear()
    while _segments:
        _, segment = _segments.popitem()
        segment.release()


def _segment(spec: SegmentSpec) -> AttachedSegment:
    """The cached attachment of ``spec``'s segment (LRU over segment names)."""
    name = spec[0]
    segment = _segments.pop(name, None)
    if segment is None:
        segment = attach(spec, unregister=_unregister_on_attach)
    _segments[name] = segment  # re-insertion keeps the dict in LRU order
    while len(_segments) > _SEGMENT_CACHE_SIZE:
        evicted_name, evicted = next(iter(_segments.items()))
        del _segments[evicted_name]
        # derived caches hold copies or views into this mapping: drop them
        _engines_pop(evicted_name)
        for key in [k for k in _profiles if k[0] == evicted_name]:
            del _profiles[key]
        evicted.release()
    return segment


def _engines_pop(name: str) -> None:
    for key in [k for k in _engines if k[0] == name]:
        del _engines[key]


# ----------------------------------------------------------------------
# context interning
# ----------------------------------------------------------------------
def intern_descriptions_job(args):
    """Intern one contiguous description range into a *local* vocabulary.

    The payload is the raw attribute material of the range -- per
    description, ``(attribute, values)`` pairs in attribute order.  The loop
    is ``PipelineContext._intern_all`` run with a fresh vocabulary: local
    token ids are assigned in the shard's first-occurrence order, so the
    driver's shard-order get-or-assign merge reassigns them to exactly the
    serial global ids (``PipelineContext._intern_shards``).

    Returns ``(local tokens, entries)`` where each entry is
    ``(attribute names, per-attribute sorted local ids, aligned counts,
    local-id stream)``.
    """
    (payload,) = args
    token_ids: Dict[str, int] = {}
    tokens = []
    entries = []
    for attributes in payload:
        names = []
        id_columns = []
        count_columns = []
        stream = array("q")
        for attribute, values in attributes:
            counts: Dict[int, int] = {}
            for value in values:
                for token in tokenize(value):
                    token_id = token_ids.get(token)
                    if token_id is None:
                        token_id = len(tokens)
                        token_ids[token] = token_id
                        tokens.append(token)
                    counts[token_id] = counts.get(token_id, 0) + 1
                    stream.append(token_id)
            names.append(attribute)
            items = sorted(counts.items())
            id_columns.append(array("q", (t for t, _ in items)))
            count_columns.append(array("q", (c for _, c in items)))
        entries.append(
            (tuple(names), tuple(id_columns), tuple(count_columns), stream)
        )
    return tokens, entries


# ----------------------------------------------------------------------
# blocking
# ----------------------------------------------------------------------
def token_postings_job(args) -> Tuple[array, array, array]:
    """Local token postings of one entity-ordinal range.

    Reads the context's token CSR (``tok_ptr``/``tok_ids``) and the
    builder's admission mask, and returns the range's postings as three
    columns: the touched token ids (sorted ascending), the posting length
    per token, and the flattened ordinals (appended in ordinal order, so the
    driver's range-order merge yields ascending postings -- the sequential
    builder's exact content).
    """
    ctx_spec, mask_spec, start, stop = args
    views = _segment(ctx_spec).views
    tok_ptr = views["tok_ptr"]
    tok_ids = views["tok_ids"]
    mask = _segment(mask_spec).views["mask"] if mask_spec is not None else None
    postings: Dict[int, array] = {}
    for ordinal in range(start, stop):
        for token_id in tok_ids[tok_ptr[ordinal] : tok_ptr[ordinal + 1]]:
            if mask is not None and not mask[token_id]:
                continue
            posting = postings.get(token_id)
            if posting is None:
                postings[token_id] = posting = array("q")
            posting.append(ordinal)
    token_column = array("q", sorted(postings))
    counts = array("q", (len(postings[t]) for t in token_column))
    flat = array("q")
    for token_id in token_column:
        flat.extend(postings[token_id])
    return token_column, counts, flat


# ----------------------------------------------------------------------
# block cleaning
# ----------------------------------------------------------------------
def block_cardinalities_job(args) -> array:
    """Cardinality column of one block range, from per-block sizes.

    ``split * (n - split)`` for bilateral blocks and ``n * (n - 1) // 2``
    for unilateral ones -- the exact integers ``Block.num_comparisons``
    computes from its member tuples.
    """
    spec, start, stop = args
    views = _segment(spec).views
    lens = views["blk_len"]
    splits = views["blk_split"]
    cards = array("q")
    for b in range(start, stop):
        n = lens[b]
        split = splits[b]
        cards.append(split * (n - split) if split >= 0 else n * (n - 1) // 2)
    return cards


def filter_keep_job(args) -> array:
    """Kept assignment positions of one entity-ordinal range (block filtering).

    Each entity in the range keeps its ``max(1, ceil(ratio * degree))``
    smallest-cardinality assignments; ties break on ascending assignment
    position (= ascending block index), via the same stable sorts the
    sequential pass runs.  Per-entity decisions are independent, so the
    union of the ranges' kept positions equals the sequential keep set.
    """
    spec, ratio, start, stop, use_numpy = args
    kept = array("q")
    if start >= stop:
        return kept
    views = _segment(spec).views
    ent_of = views["ent_of"]
    card_of = views["card_of"]
    if use_numpy and _np is not None:
        np = _np
        ent = np.frombuffer(ent_of, dtype=np.int64)
        card = np.frombuffer(card_of, dtype=np.int64)
        positions = np.flatnonzero((ent >= start) & (ent < stop))
        if not len(positions):
            return kept
        sub_ent = ent[positions] - start
        sub_card = card[positions]
        order = np.lexsort((sub_card, sub_ent))
        ent_sorted = sub_ent[order]
        degrees = np.bincount(sub_ent, minlength=stop - start)
        ent_ptr = np.concatenate(([0], np.cumsum(degrees)))
        rank = np.arange(len(positions), dtype=np.int64) - ent_ptr[ent_sorted]
        keep_counts = np.maximum(1, np.ceil(ratio * degrees)).astype(np.int64)
        kept.frombytes(
            np.ascontiguousarray(
                positions[order][rank < keep_counts[ent_sorted]], dtype=np.int64
            ).tobytes()
        )
        return kept
    per_entity = [[] for _ in range(stop - start)]
    for position, o in enumerate(ent_of):
        if start <= o < stop:
            per_entity[o - start].append(position)
    for positions in per_entity:
        positions.sort(key=card_of.__getitem__)
        keep = max(1, math.ceil(ratio * len(positions)))
        kept.extend(positions[:keep])
    return kept


def propagate_pairs_job(args):
    """Candidate pair stream of one block range (comparison propagation).

    Walks the range's blocks in block-major order emitting, per comparison,
    the dedup code ``(min << 32) | max``, the canonically-ordered endpoint
    ordinals (rank comparison stands in for identifier-string comparison)
    and an orientation flag (0 unilateral, 1 bilateral with the canonical
    first on the proposing block's left side, 2 swapped).  Pairs already
    seen *within the range* are dropped -- only a pair's first local
    occurrence can be its global first occurrence, which the driver resolves
    in range order.  A bilateral self-pair aborts the range immediately and
    is reported as ``(block, left position, right position)`` so the driver
    can fail exactly like the sequential pass.
    """
    spec, start, stop = args
    views = _segment(spec).views
    blk_ptr = views["blk_ptr"]
    blk_split = views["blk_split"]
    ent_of = views["ent_of"]
    ranks = views["ranks"]
    codes = array("q")
    firsts = array("q")
    seconds = array("q")
    flags = bytearray()
    local_seen = set()
    seen_add = local_seen.add
    for block_index in range(start, stop):
        lo, hi = blk_ptr[block_index], blk_ptr[block_index + 1]
        split = blk_split[block_index]
        if split >= 0:
            left = ent_of[lo : lo + split]
            right = ent_of[lo + split : hi]
            left_set = set(left)
            for left_pos, a in enumerate(left):
                shifted = a << 32
                for right_pos, b in enumerate(right):
                    if a == b:  # self-pair: report, driver fails like the oracle
                        return codes, firsts, seconds, flags, (
                            block_index,
                            left_pos,
                            right_pos,
                        )
                    code = shifted | b if a < b else (b << 32) | a
                    if code in local_seen:
                        continue
                    seen_add(code)
                    codes.append(code)
                    if ranks[a] < ranks[b]:
                        firsts.append(a)
                        seconds.append(b)
                        flags.append(1 if a in left_set else 2)
                    else:
                        firsts.append(b)
                        seconds.append(a)
                        flags.append(1 if b in left_set else 2)
        else:
            members = ent_of[lo:hi]
            size = hi - lo
            for i in range(size):
                a = members[i]
                shifted = a << 32
                for j in range(i + 1, size):
                    b = members[j]
                    code = shifted | b if a < b else (b << 32) | a
                    if code in local_seen:
                        continue
                    seen_add(code)
                    codes.append(code)
                    if ranks[a] < ranks[b]:
                        firsts.append(a)
                        seconds.append(b)
                    else:
                        firsts.append(b)
                        seconds.append(a)
                    flags.append(0)
    return codes, firsts, seconds, flags, None


# ----------------------------------------------------------------------
# meta-blocking
# ----------------------------------------------------------------------
def _index_engine(
    mb_spec: SegmentSpec,
    use_numpy: bool,
    factors_spec: Optional[SegmentSpec],
    scheme: str,
) -> EntityIndexEngine:
    segment = _segment(mb_spec)
    key = (mb_spec[0], use_numpy)
    engine = _engines.get(key)
    if engine is None:
        engine = EntityIndexEngine.from_arrays(segment.views, use_numpy)
        _engines[key] = engine
    if factors_spec is not None and scheme not in engine._factor_cache:
        engine._factor_cache[scheme] = _segment(factors_spec).views["factors"]
    return engine


def node_weights_job(args) -> Tuple[array, array, array, array]:
    """Weighted neighbourhoods of one node range, as four flat columns.

    ``(nodes, ptr, neighbours, weights)``: node ``nodes[k]``'s neighbourhood
    is ``neighbours[ptr[k]:ptr[k+1]]`` with aligned weights.  The stream is
    exactly what the sequential ranged ``_node_weights`` pass yields -- it
    *is* that pass, over a worker-side replica of the index.
    """
    mb_spec, factors_spec, scheme, lower, start, stop, use_numpy = args
    engine = _index_engine(mb_spec, use_numpy, factors_spec, scheme)
    nodes = array("q")
    ptr = array("q", [0])
    neighbours_flat = array("q")
    weights_flat = array("d")
    vectorised = engine._use_numpy
    for i, neighbours, weights in engine._node_weights(scheme, lower, start, stop):
        nodes.append(i)
        if vectorised:
            neighbours_flat.frombytes(
                _np.ascontiguousarray(neighbours, dtype=_np.int64).tobytes()
            )
            weights_flat.frombytes(
                _np.ascontiguousarray(weights, dtype=_np.float64).tobytes()
            )
        else:
            neighbours_flat.extend(neighbours)
            weights_flat.extend(weights)
        ptr.append(len(neighbours_flat))
    return nodes, ptr, neighbours_flat, weights_flat


def partial_degrees_job(args) -> Tuple[array, int]:
    """EJS support round: the degree contributions of one node range."""
    mb_spec, start, stop, use_numpy = args
    engine = _index_engine(mb_spec, use_numpy, None, "")
    return engine._partial_degrees(start, stop)


def _exact_partials(values) -> list:
    """Shewchuk non-overlapping expansion of ``sum(values)``.

    The returned partials represent the range's sum *exactly* (it is the
    state ``math.fsum`` carries internally), so ``fsum`` over the
    concatenated partials of a sharded pass equals ``fsum`` over the
    original full stream -- the driver recovers the exactly rounded global
    sum without the weights ever leaving the workers.
    """
    partials: list = []
    for x in values:
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]
    return partials


def wep_stats_job(args) -> Tuple[int, array]:
    """WEP threshold round: edge count and exact sum partials of one range."""
    mb_spec, factors_spec, scheme, start, stop, use_numpy = args
    engine = _index_engine(mb_spec, use_numpy, factors_spec, scheme)
    count = 0
    vectorised = engine._use_numpy

    def edge_weights():
        nonlocal count
        for _i, _neighbours, weights in engine._node_weights(scheme, True, start, stop):
            count += len(weights)
            yield from weights.tolist() if vectorised else weights

    partials = _exact_partials(edge_weights())
    return count, array("d", partials)


def wep_emit_job(args) -> Tuple[array, array, array]:
    """WEP emission round: the retained edges of one node range."""
    mb_spec, factors_spec, scheme, threshold, start, stop, use_numpy = args
    engine = _index_engine(mb_spec, use_numpy, factors_spec, scheme)
    firsts = array("q")
    seconds = array("q")
    kept = array("d")
    if engine._use_numpy:
        np = _np
        for i, neighbours, weights in engine._node_weights(scheme, True, start, stop):
            close = np.abs(weights - threshold) <= 1e-9 * np.maximum(
                np.abs(weights), abs(threshold)
            )
            keep = (weights > threshold) | (close & (weights > 0))
            for j, weight in zip(neighbours[keep].tolist(), weights[keep].tolist()):
                firsts.append(i)
                seconds.append(j)
                kept.append(weight)
    else:
        for i, neighbours, weights in engine._node_weights(scheme, True, start, stop):
            for j, weight in zip(neighbours, weights):
                if weight > threshold or (math.isclose(weight, threshold) and weight > 0):
                    firsts.append(i)
                    seconds.append(j)
                    kept.append(weight)
    return firsts, seconds, kept


def wnp_stats_job(args) -> Tuple[array, array, int]:
    """WNP threshold round: per-node neighbour counts and sums of one range.

    Each node's full (unrestricted) neighbourhood lies entirely within the
    node's own range pass, so the per-node ``fsum`` runs the identical code
    the sequential pass runs -- bit-identical thresholds.
    """
    mb_spec, factors_spec, scheme, start, stop, use_numpy = args
    engine = _index_engine(mb_spec, use_numpy, factors_spec, scheme)
    counts = array("q", bytes(8 * (stop - start)))
    sums = array("d", bytes(8 * (stop - start)))
    total = 0
    for i, neighbours, weights in engine._node_weights(scheme, False, start, stop):
        degree = len(neighbours)
        counts[i - start] = degree
        total += degree
        sums[i - start] = math.fsum(weights)
    return counts, sums, total


def wnp_emit_job(args) -> Tuple[array, array, array]:
    """WNP emission round: the retained edges of one node range."""
    (
        mb_spec,
        factors_spec,
        scheme,
        thresholds_spec,
        reciprocal,
        start,
        stop,
        use_numpy,
    ) = args
    engine = _index_engine(mb_spec, use_numpy, factors_spec, scheme)
    thresholds = _segment(thresholds_spec).views["thresholds"]
    firsts = array("q")
    seconds = array("q")
    kept = array("d")
    if engine._use_numpy:
        np_thresholds = _np.frombuffer(thresholds, dtype=_np.float64)
        for i, neighbours, weights in engine._node_weights(scheme, True, start, stop):
            keep_first = weights >= thresholds[i]
            keep_second = weights >= np_thresholds[neighbours]
            keep = (keep_first & keep_second) if reciprocal else (keep_first | keep_second)
            keep &= weights > 0
            for j, weight in zip(neighbours[keep].tolist(), weights[keep].tolist()):
                firsts.append(i)
                seconds.append(j)
                kept.append(weight)
    else:
        for i, neighbours, weights in engine._node_weights(scheme, True, start, stop):
            threshold_i = thresholds[i]
            for j, weight in zip(neighbours, weights):
                keep_first = weight >= threshold_i
                keep_second = weight >= thresholds[j]
                keep = (
                    (keep_first and keep_second)
                    if reciprocal
                    else (keep_first or keep_second)
                )
                if keep and weight > 0:
                    firsts.append(i)
                    seconds.append(j)
                    kept.append(weight)
    return firsts, seconds, kept


def cnp_endorse_job(args) -> Tuple[array, array, array, int]:
    """CNP endorsement round: per-node top-``k`` selections of one range.

    Selection tuples substitute identifier *ranks* for the identifier
    strings the sequential pass compares -- an order-equivalent key -- and
    the per-node ``nlargest`` emission order is returned verbatim, so the
    driver can replay the endorsement inserts in node order.
    """
    mb_spec, factors_spec, scheme, k, start, stop, use_numpy = args
    engine = _index_engine(mb_spec, use_numpy, factors_spec, scheme)
    ranks = engine._ranks()
    a_column = array("q")
    b_column = array("q")
    w_column = array("d")
    total = 0
    vectorised = engine._use_numpy
    for i, neighbours, weights in engine._node_weights(scheme, False, start, stop):
        degree = len(neighbours)
        total += degree
        if k <= 0:
            continue
        if vectorised and degree > k:
            kth = _np.partition(weights, degree - k)[degree - k]
            keep = weights >= kth
            candidate_pairs = zip(neighbours[keep].tolist(), weights[keep].tolist())
        elif vectorised:
            candidate_pairs = zip(neighbours.tolist(), weights.tolist())
        else:
            candidate_pairs = zip(neighbours, weights)
        rank_i = ranks[i]
        incident = []
        for j, weight in candidate_pairs:
            rank_j = ranks[j]
            if rank_i < rank_j:
                incident.append((weight, rank_i, rank_j, i, j))
            else:
                incident.append((weight, rank_j, rank_i, j, i))
        for weight, _rf, _rs, a, b in heapq.nlargest(k, incident):
            a_column.append(a)
            b_column.append(b)
            w_column.append(weight)
    return a_column, b_column, w_column, total


def cep_candidates_job(args):
    """CEP candidate round: the budget-bounded best candidates of one range.

    Runs the sequential pass's bounded-buffer selection (rank tuples in
    place of identifier strings) over the range; the local ``nsmallest``
    result is a superset filter -- the driver's global ``nsmallest`` over
    the union of the local buffers equals the sequential selection.
    """
    mb_spec, factors_spec, scheme, budget, start, stop, use_numpy = args
    engine = _index_engine(mb_spec, use_numpy, factors_spec, scheme)
    ranks = engine._ranks()
    count = 0
    buffer: list = []
    cutoff = -math.inf
    compact_at = 2 * budget + _CEP_COMPACT_SLACK
    vectorised = engine._use_numpy
    for i, neighbours, weights in engine._node_weights(scheme, True, start, stop):
        count += len(neighbours)
        if budget == 0:
            continue
        if vectorised and cutoff != -math.inf:
            keep = weights >= cutoff
            neighbours = neighbours[keep]
            weights = weights[keep]
        rank_i = ranks[i]
        for j, weight in zip(
            neighbours.tolist() if vectorised else neighbours,
            weights.tolist() if vectorised else weights,
        ):
            if weight < cutoff:
                continue
            rank_j = ranks[j]
            if rank_i < rank_j:
                buffer.append((-weight, rank_i, rank_j, i, j))
            else:
                buffer.append((-weight, rank_j, rank_i, j, i))
        if len(buffer) >= compact_at:
            buffer = heapq.nsmallest(budget, buffer)
            if len(buffer) == budget and budget > 0:
                cutoff = -buffer[-1][0]
    buffer = heapq.nsmallest(budget, buffer)
    neg_column = array("d")
    rank_f = array("q")
    rank_s = array("q")
    a_column = array("q")
    b_column = array("q")
    for neg_weight, rf, rs, a, b in buffer:
        neg_column.append(neg_weight)
        rank_f.append(rf)
        rank_s.append(rs)
        a_column.append(a)
        b_column.append(b)
    return count, neg_column, rank_f, rank_s, a_column, b_column


# ----------------------------------------------------------------------
# comparison columns
# ----------------------------------------------------------------------
def weight_sort_job(args) -> array:
    """Sorted row indices of one row range of a :class:`ComparisonColumns`.

    The range's rows are ordered by the table's full sort key
    ``(-weight, rank(first), rank(second))`` (ranks stand in for the
    identifier strings); the driver's k-way merge of the shard orders
    reproduces the sequential ``weight_sorted`` permutation exactly,
    stability included.
    """
    spec, has_weights, start, stop = args
    views = _segment(spec).views
    rank = views["rank"]
    first = views["first"]
    second = views["second"]
    if _np is not None:
        np = _np
        np_rank = np.frombuffer(rank, dtype=np.int64)
        np_first = np.frombuffer(first, dtype=np.int64)[start:stop]
        np_second = np.frombuffer(second, dtype=np.int64)[start:stop]
        if has_weights:
            np_weights = np.frombuffer(views["weights"], dtype=np.float64)[start:stop]
            order = np.lexsort((np_rank[np_second], np_rank[np_first], -np_weights))
        else:
            order = np.lexsort((np_rank[np_second], np_rank[np_first]))
        result = array("q")
        result.frombytes(
            np.ascontiguousarray(order + start, dtype=np.int64).tobytes()
        )
        return result
    if has_weights:
        weights = views["weights"]
        indices = sorted(
            range(start, stop),
            key=lambda i: (-weights[i], rank[first[i]], rank[second[i]]),
        )
    else:
        indices = sorted(
            range(start, stop), key=lambda i: (rank[first[i]], rank[second[i]])
        )
    return array("q", indices)


# ----------------------------------------------------------------------
# clustering
# ----------------------------------------------------------------------
def cluster_links_job(args) -> Tuple[array, array]:
    """Union--find pass over the positive decisions of one row range.

    Runs the sequential connected-components scan (first-touch order
    tracking included) over the range's canonical-orientation rows and
    returns ``(order, roots)``: the locally touched ordinals in first-touch
    order, each aligned with its local union-find root.  Linking every
    member to its local root, shard by shard in range order, reproduces both
    the sequential partition (a union of equivalence relations) and the
    sequential first-touch order (contiguous ranges make the earliest
    touching shard the earliest touching row).
    """
    spec, num_ids, start, stop = args
    views = _segment(spec).views
    first = views["first"]
    second = views["second"]
    flags = views["is_match"]
    links = IntUnionFind(num_ids)
    touched = bytearray(num_ids)
    order = array("q")
    for row in range(start, stop):
        if not flags[row]:
            continue
        f = first[row]
        s = second[row]
        if not touched[f]:
            touched[f] = 1
            order.append(f)
        if not touched[s]:
            touched[s] = 1
            order.append(s)
        links.union(f, s)
    roots = array("q", (links.find(member) for member in order))
    return order, roots


# ----------------------------------------------------------------------
# matching
# ----------------------------------------------------------------------
def _profile_table(
    ctx_spec: SegmentSpec,
    mask_spec: Optional[SegmentSpec],
    idf_spec: Optional[SegmentSpec],
    mode: str,
) -> Dict[int, object]:
    key = (ctx_spec[0], mask_spec[0] if mask_spec else None, idf_spec[0] if idf_spec else None, mode)
    table = _profiles.get(key)
    if table is None:
        _profiles[key] = table = {}
    return table


def _tfidf_profile(o, tok_ptr, tok_ids, tok_counts, mask, idf) -> Optional[SparseVector]:
    """The TF-IDF vector of one ordinal, mirroring ``_build_from_context``.

    Same exact integers (ids/counts ascending by token id), same term-
    frequency expression, same driver-computed idf floats, same ``fsum``
    norm: the resulting :class:`SparseVector` is the very ``weight_map`` the
    profile store would hand to :func:`weighted_cosine`.  ``None`` stands
    for an empty profile (scored as an empty mapping, like the store's).
    """
    lo, hi = tok_ptr[o], tok_ptr[o + 1]
    if mask is None:
        kept = list(zip(tok_ids[lo:hi], tok_counts[lo:hi]))
    else:
        kept = [
            (token_id, count)
            for token_id, count in zip(tok_ids[lo:hi], tok_counts[lo:hi])
            if mask[token_id]
        ]
    if not kept:
        return None
    max_count = max(count for _, count in kept)
    weights = [
        (0.5 + 0.5 * count / max_count) * idf[token_id] for token_id, count in kept
    ]
    norm = math.sqrt(math.fsum(w * w for w in weights))
    return SparseVector(
        ((token_id, weight) for (token_id, _), weight in zip(kept, weights)),
        norm=norm,
    )


def _set_profile(o, tok_ptr, tok_ids, mask) -> frozenset:
    ids = tok_ids[tok_ptr[o] : tok_ptr[o + 1]]
    if mask is None:
        return frozenset(ids)
    return frozenset(token_id for token_id in ids if mask[token_id])


def similarity_scores_job(args) -> array:
    """Similarity of one contiguous slice of an ordinal-pair batch."""
    ctx_spec, mask_spec, idf_spec, mode, similarity_name, first, second = args
    views = _segment(ctx_spec).views
    tok_ptr = views["tok_ptr"]
    tok_ids = views["tok_ids"]
    tok_counts = views["tok_counts"]
    mask = _segment(mask_spec).views["mask"] if mask_spec is not None else None
    idf = _segment(idf_spec).views["idf"] if idf_spec is not None else None
    table = _profile_table(ctx_spec, mask_spec, idf_spec, mode)
    scores = array("d")
    if mode == "tfidf":
        for a, b in zip(first, second):
            vector_a = table.get(a, False)
            if vector_a is False:
                table[a] = vector_a = _tfidf_profile(a, tok_ptr, tok_ids, tok_counts, mask, idf)
            vector_b = table.get(b, False)
            if vector_b is False:
                table[b] = vector_b = _tfidf_profile(b, tok_ptr, tok_ids, tok_counts, mask, idf)
            scores.append(weighted_cosine(vector_a or {}, vector_b or {}))
    else:
        for a, b in zip(first, second):
            set_a = table.get(a)
            if set_a is None:
                table[a] = set_a = _set_profile(a, tok_ptr, tok_ids, mask)
            set_b = table.get(b)
            if set_b is None:
                table[b] = set_b = _set_profile(b, tok_ptr, tok_ids, mask)
            scores.append(
                _set_score(similarity_name, len(set_a), len(set_b), len(set_a & set_b))
            )
    return scores
